#ifndef XCLEAN_XML_TOKENIZER_H_
#define XCLEAN_XML_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace xclean {

/// Tokenization policy. The defaults mirror the paper's indexing rules
/// (Sec. VII-A): "Stop words, numbers and short tokens (less than three
/// characters) are not indexed."
struct TokenizerOptions {
  /// Lowercase tokens (ASCII).
  bool lowercase = true;
  /// Minimum token length kept; shorter tokens are dropped.
  size_t min_token_length = 3;
  /// Drop tokens consisting solely of digits.
  bool drop_numbers = true;
  /// Drop common English stop words.
  bool drop_stopwords = true;
};

/// Splits element text into index/query tokens: contiguous runs of ASCII
/// alphanumerics (everything else — whitespace and punctuation — is a
/// separator), then applies the filters above. Bytes >= 0x80 (UTF-8
/// continuation or lead bytes) are treated as part of a token so that
/// non-ASCII words survive as opaque tokens rather than being shredded.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = TokenizerOptions());

  /// Tokens of `text`, in order, after filtering.
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Same, reusing `out`'s capacity (cleared first). The parallel index
  /// build tokenizes millions of nodes; reusing one vector per worker keeps
  /// the pass allocation-free in steady state.
  void TokenizeInto(std::string_view text, std::vector<std::string>& out) const;

  /// Applies normalization + filters to a single word. Returns an empty
  /// string if the word is filtered out. Used for query keywords, where
  /// splitting already happened on whitespace.
  std::string NormalizeToken(std::string_view word) const;

  const TokenizerOptions& options() const { return options_; }

  /// True if `token` (already lowercased) is in the built-in stopword list.
  static bool IsStopword(std::string_view token);

 private:
  bool Keep(const std::string& token) const;

  TokenizerOptions options_;
};

}  // namespace xclean

#endif  // XCLEAN_XML_TOKENIZER_H_
