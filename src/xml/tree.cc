#include "xml/tree.h"

#include <algorithm>

#include "common/check.h"

namespace xclean {

namespace {
const std::string kEmptyString;
}  // namespace

NodeId XmlTree::AncestorAtDepth(NodeId n, uint32_t target_depth) const {
  XCLEAN_CHECK(target_depth >= 1 && target_depth <= nodes_[n].depth);
  NodeId cur = n;
  while (nodes_[cur].depth > target_depth) cur = nodes_[cur].parent;
  return cur;
}

NodeId XmlTree::Lca(NodeId a, NodeId b) const {
  size_t prefix = DeweyCommonPrefix(dewey(a), dewey(b));
  XCLEAN_CHECK(prefix >= 1);  // every pair shares the root
  return AncestorAtDepth(a, static_cast<uint32_t>(prefix));
}

const std::string& XmlTree::text(NodeId n) const {
  if (nodes_[n].text_id == kNoText) return kEmptyString;
  return texts_[nodes_[n].text_id];
}

std::vector<NodeId> XmlTree::TextNodes() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].text_id != kNoText) out.push_back(n);
  }
  return out;
}

NodeId XmlTree::FindByDewey(DeweyView d) const {
  if (d.empty() || d[0] != 1 || nodes_.empty()) return kInvalidNode;
  NodeId cur = root();
  for (size_t i = 1; i < d.size(); ++i) {
    uint32_t ordinal = d[i];
    NodeId child = FirstChild(cur);
    for (uint32_t seen = 1; child != kInvalidNode && seen < ordinal; ++seen) {
      child = NextSibling(child);
    }
    if (child == kInvalidNode) return kInvalidNode;
    cur = child;
  }
  return cur;
}

std::string XmlTree::PathString(PathId p) const {
  std::vector<LabelId> chain;
  for (PathId cur = p; cur != kInvalidPath; cur = path_parents_[cur]) {
    chain.push_back(path_labels_[cur]);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    out.push_back('/');
    out += labels_[*it];
  }
  return out;
}

PathId XmlTree::FindPath(const std::string& path) const {
  // Paths are few (tens to hundreds); a linear scan keeps the tree free of
  // an extra string->id map that only tests and examples need.
  for (PathId p = 0; p < path_depths_.size(); ++p) {
    if (PathString(p) == path) return p;
  }
  return kInvalidPath;
}

double XmlTree::avg_depth() const {
  if (nodes_.empty()) return 0.0;
  return static_cast<double>(depth_sum_) / static_cast<double>(nodes_.size());
}

uint64_t XmlTree::ApproxMemoryBytes() const {
  uint64_t bytes = nodes_.capacity() * sizeof(Node) +
                   dewey_pool_.capacity() * sizeof(uint32_t) +
                   path_parents_.capacity() * sizeof(PathId) +
                   path_labels_.capacity() * sizeof(LabelId) +
                   path_depths_.capacity() * sizeof(uint32_t) +
                   path_node_counts_.capacity() * sizeof(uint32_t);
  for (const std::string& s : texts_) bytes += sizeof(std::string) + s.size();
  for (const std::string& s : labels_) {
    bytes += sizeof(std::string) + s.size();
  }
  return bytes;
}

XmlTreeBuilder::XmlTreeBuilder() = default;

LabelId XmlTreeBuilder::InternLabel(std::string_view label) {
  auto it = label_ids_.find(std::string(label));
  if (it != label_ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(tree_.labels_.size());
  tree_.labels_.emplace_back(label);
  label_ids_.emplace(std::string(label), id);
  return id;
}

PathId XmlTreeBuilder::InternPath(PathId parent, LabelId label) {
  uint64_t key = (static_cast<uint64_t>(parent) << 32) | label;
  auto it = path_ids_.find(key);
  if (it != path_ids_.end()) return it->second;
  PathId id = static_cast<PathId>(tree_.path_depths_.size());
  tree_.path_parents_.push_back(parent);
  tree_.path_labels_.push_back(label);
  uint32_t depth =
      parent == XmlTree::kInvalidPath ? 1 : tree_.path_depths_[parent] + 1;
  tree_.path_depths_.push_back(depth);
  tree_.path_node_counts_.push_back(0);
  path_ids_.emplace(key, id);
  return id;
}

Status XmlTreeBuilder::BeginElement(std::string_view label) {
  if (stack_.empty() && root_done_) {
    return Status::InvalidArgument(
        "XmlTreeBuilder: multiple roots (element after root closed)");
  }
  if (label.empty()) {
    return Status::InvalidArgument("XmlTreeBuilder: empty element label");
  }
  NodeId id = static_cast<NodeId>(tree_.nodes_.size());
  XmlTree::Node node;
  node.label_id = InternLabel(label);
  if (stack_.empty()) {
    node.parent = kInvalidNode;
    node.depth = 1;
    node.path_id = InternPath(XmlTree::kInvalidPath, node.label_id);
    node.dewey_offset = static_cast<uint32_t>(tree_.dewey_pool_.size());
    tree_.dewey_pool_.push_back(1);
  } else {
    NodeId parent = stack_.back();
    node.parent = parent;
    node.depth = tree_.nodes_[parent].depth + 1;
    node.path_id = InternPath(tree_.nodes_[parent].path_id, node.label_id);
    // Dewey = parent's dewey + this child's 1-based ordinal.
    uint32_t ordinal = ++child_counts_.back();
    node.dewey_offset = static_cast<uint32_t>(tree_.dewey_pool_.size());
    DeweyView pd(tree_.dewey_pool_.data() + tree_.nodes_[parent].dewey_offset,
                 tree_.nodes_[parent].depth);
    tree_.dewey_pool_.insert(tree_.dewey_pool_.end(), pd.begin(), pd.end());
    tree_.dewey_pool_.push_back(ordinal);
  }
  tree_.path_node_counts_[node.path_id]++;
  tree_.max_depth_ = std::max(tree_.max_depth_, node.depth);
  tree_.depth_sum_ += node.depth;
  tree_.nodes_.push_back(node);
  stack_.push_back(id);
  child_counts_.push_back(0);
  return Status::Ok();
}

Status XmlTreeBuilder::AddText(std::string_view text) {
  if (stack_.empty()) {
    return Status::InvalidArgument("XmlTreeBuilder: text outside any element");
  }
  XmlTree::Node& node = tree_.nodes_[stack_.back()];
  if (node.text_id == XmlTree::kNoText) {
    node.text_id = static_cast<uint32_t>(tree_.texts_.size());
    tree_.texts_.emplace_back(text);
  } else {
    // Mixed content: merge the runs with a separating space so token
    // boundaries survive.
    std::string& existing = tree_.texts_[node.text_id];
    if (!existing.empty() && !text.empty()) existing.push_back(' ');
    existing.append(text);
  }
  return Status::Ok();
}

Status XmlTreeBuilder::AddLeaf(std::string_view label, std::string_view text) {
  Status s = BeginElement(label);
  if (!s.ok()) return s;
  if (!text.empty()) {
    s = AddText(text);
    if (!s.ok()) return s;
  }
  return EndElement();
}

Status XmlTreeBuilder::EndElement() {
  if (stack_.empty()) {
    return Status::InvalidArgument("XmlTreeBuilder: EndElement without open");
  }
  NodeId id = stack_.back();
  tree_.nodes_[id].subtree_end = static_cast<NodeId>(tree_.nodes_.size() - 1);
  stack_.pop_back();
  child_counts_.pop_back();
  if (stack_.empty()) root_done_ = true;
  return Status::Ok();
}

Result<XmlTree> XmlTreeBuilder::Finish() && {
  if (!stack_.empty()) {
    return Status::InvalidArgument("XmlTreeBuilder: unclosed elements");
  }
  if (!root_done_) {
    return Status::InvalidArgument("XmlTreeBuilder: empty tree");
  }
  return std::move(tree_);
}

}  // namespace xclean
