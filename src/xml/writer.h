#ifndef XCLEAN_XML_WRITER_H_
#define XCLEAN_XML_WRITER_H_

#include <string>

#include "xml/tree.h"

namespace xclean {

/// Serialization knobs for WriteXml.
struct WriteOptions {
  /// Pretty-print with two-space indentation and one element per line.
  /// When false, emits a compact single-line document.
  bool indent = true;
  /// Emit "@name" children as real XML attributes (inverse of the parser's
  /// attributes_as_nodes mapping). When false they become <_name> elements.
  bool attribute_nodes_as_attributes = true;
};

/// Serializes the subtree rooted at `node` back to XML text. Text content is
/// entity-escaped, so Parse(Write(tree)) reproduces the tree (round-trip is
/// exercised by tests). Useful for dumping synthetic corpora and for showing
/// result entities in the examples.
std::string WriteXml(const XmlTree& tree, NodeId node,
                     const WriteOptions& options = WriteOptions());

/// Serializes the whole tree.
inline std::string WriteXml(const XmlTree& tree,
                            const WriteOptions& options = WriteOptions()) {
  return WriteXml(tree, tree.root(), options);
}

/// Escapes &, <, >, " and ' for use in text or attribute values.
std::string EscapeXmlText(const std::string& text);

}  // namespace xclean

#endif  // XCLEAN_XML_WRITER_H_
