#ifndef XCLEAN_XML_DEWEY_H_
#define XCLEAN_XML_DEWEY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace xclean {

/// A Dewey code is the sequence of sibling ordinals on the path from the
/// tree root to a node (root = [1], its second child = [1,2], ...). The
/// paper's two partial orders are:
///
///   x < y      — document order: lexicographic comparison of the codes.
///   x `<_AD` y — x is a (strict) ancestor of y: x's code is a proper
///                prefix of y's code.
///
/// XmlTree stores all codes in one pooled array; a DeweyView is a cheap
/// non-owning window into that pool.
using DeweyView = std::span<const uint32_t>;

/// Lexicographic comparison giving document order: negative if a < b,
/// 0 if equal, positive if a > b. A proper prefix sorts before its
/// extensions (the ancestor precedes its descendants in document order).
int CompareDewey(DeweyView a, DeweyView b);

/// True iff `a` is a proper prefix of `b` (a is a strict ancestor of b).
bool IsDeweyAncestor(DeweyView a, DeweyView b);

/// True iff `a` is a prefix of `b`, including a == b.
bool IsDeweyAncestorOrSelf(DeweyView a, DeweyView b);

/// Number of leading components shared by `a` and `b`. The LCA of the two
/// nodes is the ancestor at this depth.
size_t DeweyCommonPrefix(DeweyView a, DeweyView b);

/// Renders "1.2.3" in the paper's dotted notation.
std::string DeweyToString(DeweyView d);

/// Parses the dotted notation; returns empty on malformed input.
std::vector<uint32_t> DeweyFromString(const std::string& s);

}  // namespace xclean

#endif  // XCLEAN_XML_DEWEY_H_
