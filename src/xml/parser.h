#ifndef XCLEAN_XML_PARSER_H_
#define XCLEAN_XML_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/tree.h"

namespace xclean {

/// Parser behaviour knobs.
struct ParseOptions {
  /// Represent attributes as child element nodes labeled "@name" whose text
  /// is the attribute value (the paper treats attribute nodes as element
  /// nodes; Sec. III). When false, attributes are dropped.
  bool attributes_as_nodes = true;
  /// Drop text runs that consist solely of whitespace (indentation).
  bool skip_whitespace_text = true;
};

/// From-scratch, single-pass XML parser covering the subset needed to model
/// real bibliographic / encyclopedic corpora:
///
///  - elements with attributes (single- or double-quoted),
///  - character data and CDATA sections,
///  - comments, processing instructions and the XML declaration (skipped),
///  - DOCTYPE declarations, including an internal subset (skipped),
///  - the five predefined entities plus decimal/hex character references
///    (decoded to UTF-8),
///  - UTF-8 content passed through verbatim.
///
/// Well-formedness violations (mismatched tags, unterminated constructs,
/// stray markup) are reported as ParseError with a line number. There is no
/// DTD validation.
///
/// Parses one document into an XmlTree.
Result<XmlTree> ParseXmlString(std::string_view xml,
                               const ParseOptions& options = ParseOptions());

/// Parses a collection of documents and joins them under a virtual root
/// element (the paper's construction for INEX: "We form a single XML
/// document by adding a virtual root").
Result<XmlTree> ParseXmlCollection(
    const std::vector<std::string>& documents, std::string_view root_label,
    const ParseOptions& options = ParseOptions());

/// Reads and parses a file.
Result<XmlTree> ParseXmlFile(const std::string& path,
                             const ParseOptions& options = ParseOptions());

/// Lower-level interface used by ParseXmlString/ParseXmlCollection: streams
/// one document's events into an existing builder (so collections build one
/// tree). The builder must be positioned where the document root may begin.
Status ParseXmlInto(std::string_view xml, const ParseOptions& options,
                    XmlTreeBuilder& builder);

}  // namespace xclean

#endif  // XCLEAN_XML_PARSER_H_
