#ifndef XCLEAN_XML_PARSER_H_
#define XCLEAN_XML_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/tree.h"

namespace xclean {

/// Counters for content the parser repaired or dropped rather than
/// rejecting the document. Real corpora are messy; silently discarding a
/// malformed character reference is the right recovery for indexing, but
/// the loss must be observable — a corpus whose counters jump between
/// crawls is a corpus whose text statistics shifted.
struct ParseStats {
  /// `&#...;` references that failed to decode (bad digits, code point 0,
  /// beyond U+10FFFF). The reference is dropped from the text.
  uint64_t malformed_char_refs = 0;
  /// Named entities outside the predefined five (`&amp;` etc.), passed
  /// through literally as `&name;`.
  uint64_t unknown_entities = 0;
  /// `&` runs with no terminating `;`, emitted literally.
  uint64_t unterminated_refs = 0;

  void Add(const ParseStats& other) {
    malformed_char_refs += other.malformed_char_refs;
    unknown_entities += other.unknown_entities;
    unterminated_refs += other.unterminated_refs;
  }
};

/// Parser behaviour knobs.
struct ParseOptions {
  /// Represent attributes as child element nodes labeled "@name" whose text
  /// is the attribute value (the paper treats attribute nodes as element
  /// nodes; Sec. III). When false, attributes are dropped.
  bool attributes_as_nodes = true;
  /// Drop text runs that consist solely of whitespace (indentation).
  bool skip_whitespace_text = true;
};

/// From-scratch, single-pass XML parser covering the subset needed to model
/// real bibliographic / encyclopedic corpora:
///
///  - elements with attributes (single- or double-quoted),
///  - character data and CDATA sections,
///  - comments, processing instructions and the XML declaration (skipped),
///  - DOCTYPE declarations, including an internal subset (skipped),
///  - the five predefined entities plus decimal/hex character references
///    (decoded to UTF-8),
///  - UTF-8 content passed through verbatim.
///
/// Well-formedness violations (mismatched tags, unterminated constructs,
/// stray markup) are reported as ParseError with a line number. There is no
/// DTD validation.
///
/// Parses one document into an XmlTree. When `stats` is non-null, repair
/// counters are accumulated into it (never reset — callers aggregate
/// across documents).
Result<XmlTree> ParseXmlString(std::string_view xml,
                               const ParseOptions& options = ParseOptions(),
                               ParseStats* stats = nullptr);

/// Parses a collection of documents and joins them under a virtual root
/// element (the paper's construction for INEX: "We form a single XML
/// document by adding a virtual root").
Result<XmlTree> ParseXmlCollection(
    const std::vector<std::string>& documents, std::string_view root_label,
    const ParseOptions& options = ParseOptions(), ParseStats* stats = nullptr);

/// Reads and parses a file.
Result<XmlTree> ParseXmlFile(const std::string& path,
                             const ParseOptions& options = ParseOptions(),
                             ParseStats* stats = nullptr);

/// Lower-level interface used by ParseXmlString/ParseXmlCollection: streams
/// one document's events into an existing builder (so collections build one
/// tree). The builder must be positioned where the document root may begin.
Status ParseXmlInto(std::string_view xml, const ParseOptions& options,
                    XmlTreeBuilder& builder, ParseStats* stats = nullptr);

}  // namespace xclean

#endif  // XCLEAN_XML_PARSER_H_
