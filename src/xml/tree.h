#ifndef XCLEAN_XML_TREE_H_
#define XCLEAN_XML_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "xml/dewey.h"

namespace xclean {

/// Preorder node identifier. Document order on Dewey codes coincides with
/// preorder-id order, so all list processing in the index layer works on
/// NodeIds; Dewey codes are materialized only for truncation, LCA and
/// display.
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Identifier of a label path ("node type" in the paper): the concatenation
/// of element labels from the root to a node, e.g. /dblp/article/title.
using PathId = uint32_t;

/// Identifier of an element label.
using LabelId = uint32_t;

/// Rooted, node-labeled, ordered tree model of one XML document (or of a
/// collection joined under a virtual root). Nodes are stored in preorder.
///
/// Per the paper's data model (Sec. III):
///  - attributes and PCDATA are treated as element nodes; in this
///    implementation attribute nodes carry "@name" labels and text content
///    attaches to the element that directly contains it,
///  - the root has depth 1,
///  - label paths act as node types; two nodes with equal PathId contain the
///    same sort of information.
///
/// Instances are immutable after construction (via XmlTreeBuilder or the
/// parser) and cheap to query: every accessor is O(1) except
/// AncestorAtDepth which walks the parent chain.
class XmlTree {
 public:
  XmlTree(const XmlTree&) = delete;
  XmlTree& operator=(const XmlTree&) = delete;
  XmlTree(XmlTree&&) noexcept = default;
  XmlTree& operator=(XmlTree&&) noexcept = default;

  /// Number of nodes. Valid ids are [0, size()); 0 is the root.
  NodeId size() const { return static_cast<NodeId>(nodes_.size()); }
  NodeId root() const { return 0; }

  /// Parent id, or kInvalidNode for the root.
  NodeId parent(NodeId n) const { return nodes_[n].parent; }

  /// Depth with the paper's convention: root depth is 1.
  uint32_t depth(NodeId n) const { return nodes_[n].depth; }

  LabelId label_id(NodeId n) const { return nodes_[n].label_id; }
  const std::string& label(NodeId n) const {
    return labels_[nodes_[n].label_id];
  }

  PathId path_id(NodeId n) const { return nodes_[n].path_id; }

  /// Largest preorder id inside n's subtree (inclusive); equals n for a
  /// leaf. Descendant test: a <_AD b  iff  a < b && b <= subtree_end(a).
  NodeId subtree_end(NodeId n) const { return nodes_[n].subtree_end; }

  bool IsAncestor(NodeId a, NodeId d) const {
    return a < d && d <= nodes_[a].subtree_end;
  }
  bool IsAncestorOrSelf(NodeId a, NodeId d) const {
    return a <= d && d <= nodes_[a].subtree_end;
  }

  /// Dewey code view (valid as long as the tree lives).
  DeweyView dewey(NodeId n) const {
    return DeweyView(dewey_pool_.data() + nodes_[n].dewey_offset,
                     nodes_[n].depth);
  }
  std::string DeweyString(NodeId n) const { return DeweyToString(dewey(n)); }

  /// Ancestor of n at the given depth (1 = root). Requires
  /// 1 <= target_depth <= depth(n); returns n itself when equal.
  NodeId AncestorAtDepth(NodeId n, uint32_t target_depth) const;

  /// Lowest common ancestor of two nodes.
  NodeId Lca(NodeId a, NodeId b) const;

  /// Text directly attached to this node (concatenation of its PCDATA
  /// children in document order). Empty for pure structural nodes.
  const std::string& text(NodeId n) const;
  bool has_text(NodeId n) const { return nodes_[n].text_id != kNoText; }

  /// First child / next sibling traversal (preorder layout makes both O(1)).
  NodeId FirstChild(NodeId n) const {
    return nodes_[n].subtree_end > n ? n + 1 : kInvalidNode;
  }
  NodeId NextSibling(NodeId n) const {
    if (nodes_[n].parent == kInvalidNode) return kInvalidNode;
    NodeId next = nodes_[n].subtree_end + 1;
    return next <= nodes_[nodes_[n].parent].subtree_end ? next : kInvalidNode;
  }

  /// Looks a node up by its Dewey code; kInvalidNode if absent.
  NodeId FindByDewey(DeweyView d) const;

  /// Ids of all text-bearing nodes, in preorder. The unit of work the
  /// parallel index build chunks over (index/index_builder.cc).
  std::vector<NodeId> TextNodes() const;

  // --- Label table ------------------------------------------------------
  size_t label_count() const { return labels_.size(); }
  const std::string& label_name(LabelId id) const { return labels_[id]; }

  // --- Label path ("node type") table ------------------------------------
  size_t path_count() const { return path_depths_.size(); }
  uint32_t path_depth(PathId p) const { return path_depths_[p]; }
  /// Number of nodes whose label path is p — the N of Eq. (8) when p is the
  /// chosen result type.
  uint32_t path_node_count(PathId p) const { return path_node_counts_[p]; }
  /// "/a/b/c" rendering of the path.
  std::string PathString(PathId p) const;
  /// PathId for a "/a/b/c" string; kInvalidPath if not present in the tree.
  PathId FindPath(const std::string& path) const;

  static constexpr PathId kInvalidPath = 0xFFFFFFFFu;

  /// Maximum node depth in the tree.
  uint32_t max_depth() const { return max_depth_; }
  /// Mean node depth.
  double avg_depth() const;

  /// Approximate resident bytes of the tree structures (node table, Dewey
  /// pool, text and label storage, path tables).
  uint64_t ApproxMemoryBytes() const;

 private:
  friend class XmlTreeBuilder;
  friend struct SerializationAccess;  // index_io.cc
  XmlTree() = default;

  static constexpr uint32_t kNoText = 0xFFFFFFFFu;

  struct Node {
    NodeId parent = kInvalidNode;
    LabelId label_id = 0;
    PathId path_id = 0;
    uint32_t depth = 0;
    NodeId subtree_end = 0;
    uint32_t dewey_offset = 0;
    uint32_t text_id = kNoText;  // index into texts_, kNoText if none
  };

  std::vector<Node> nodes_;
  std::vector<uint32_t> dewey_pool_;
  std::vector<std::string> texts_;
  std::vector<std::string> labels_;
  // Path table: per path, its (parent path, tail label) plus cached depth and
  // node count. Root path has parent kInvalidPath.
  std::vector<PathId> path_parents_;
  std::vector<LabelId> path_labels_;
  std::vector<uint32_t> path_depths_;
  std::vector<uint32_t> path_node_counts_;
  uint32_t max_depth_ = 0;
  uint64_t depth_sum_ = 0;
};

/// Incremental builder used by the parser and the synthetic data
/// generators. Usage:
///
///   XmlTreeBuilder b;
///   b.BeginElement("dblp");
///     b.BeginElement("article");
///       b.BeginElement("title"); b.AddText("On trees"); b.EndElement();
///     b.EndElement();
///   b.EndElement();
///   Result<XmlTree> tree = std::move(b).Finish();
class XmlTreeBuilder {
 public:
  XmlTreeBuilder();

  /// Opens a child element of the current element (or the root if none is
  /// open yet; only one root is allowed).
  Status BeginElement(std::string_view label);

  /// Appends text to the currently open element.
  Status AddText(std::string_view text);

  /// Convenience: BeginElement + AddText + EndElement.
  Status AddLeaf(std::string_view label, std::string_view text);

  /// Closes the current element.
  Status EndElement();

  /// Current nesting depth (0 when nothing is open).
  size_t open_depth() const { return stack_.size(); }

  /// Finalizes the tree. All elements must be closed and a root must exist.
  Result<XmlTree> Finish() &&;

 private:
  LabelId InternLabel(std::string_view label);
  PathId InternPath(PathId parent, LabelId label);

  XmlTree tree_;
  std::vector<NodeId> stack_;
  std::vector<uint32_t> child_counts_;  // parallel to stack_
  std::unordered_map<std::string, LabelId> label_ids_;
  // (parent_path << 32) | label  ->  path id
  std::unordered_map<uint64_t, PathId> path_ids_;
  bool root_done_ = false;
};

}  // namespace xclean

#endif  // XCLEAN_XML_TREE_H_
