#include "xml/dewey.h"

#include <algorithm>

#include "common/string_util.h"

namespace xclean {

int CompareDewey(DeweyView a, DeweyView b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool IsDeweyAncestor(DeweyView a, DeweyView b) {
  if (a.size() >= b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin());
}

bool IsDeweyAncestorOrSelf(DeweyView a, DeweyView b) {
  if (a.size() > b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin());
}

size_t DeweyCommonPrefix(DeweyView a, DeweyView b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

std::string DeweyToString(DeweyView d) {
  std::string out;
  for (size_t i = 0; i < d.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(d[i]);
  }
  return out;
}

std::vector<uint32_t> DeweyFromString(const std::string& s) {
  std::vector<uint32_t> out;
  if (s.empty()) return out;
  for (const std::string& piece : SplitChar(s, '.')) {
    if (piece.empty()) return {};
    uint64_t v = 0;
    for (char c : piece) {
      if (!IsAsciiDigit(c)) return {};
      v = v * 10 + static_cast<uint64_t>(c - '0');
      if (v > 0xFFFFFFFFULL) return {};
    }
    out.push_back(static_cast<uint32_t>(v));
  }
  return out;
}

}  // namespace xclean
