#include "xml/tokenizer.h"

#include <array>
#include <algorithm>

#include "common/string_util.h"

namespace xclean {

namespace {

// Small closed-class stopword list; enough to keep glue words out of the
// vocabulary without suppressing content terms. Sorted for binary search.
constexpr std::array<std::string_view, 42> kStopwords = {
    "about", "after", "all",   "also",  "and",   "are",  "been",  "before",
    "but",   "can",   "could", "did",   "for",   "from", "had",   "has",
    "have",  "her",   "his",   "how",   "into",  "its",  "more",  "not",
    "one",   "our",   "out",   "over",  "she",   "that", "the",   "their",
    "then",  "there", "they",  "this",  "was",   "were", "which", "who",
    "with",  "you",
};

bool IsTokenChar(char c) {
  return IsAsciiAlnum(c) || static_cast<unsigned char>(c) >= 0x80;
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

bool Tokenizer::IsStopword(std::string_view token) {
  return std::binary_search(kStopwords.begin(), kStopwords.end(), token);
}

bool Tokenizer::Keep(const std::string& token) const {
  if (token.size() < options_.min_token_length) return false;
  if (options_.drop_numbers &&
      std::all_of(token.begin(), token.end(),
                  [](char c) { return IsAsciiDigit(c); })) {
    return false;
  }
  if (options_.drop_stopwords && IsStopword(token)) return false;
  return true;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  TokenizeInto(text, out);
  return out;
}

void Tokenizer::TokenizeInto(std::string_view text,
                             std::vector<std::string>& out) const {
  out.clear();
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsTokenChar(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && IsTokenChar(text[i])) ++i;
    if (i == start) continue;
    std::string token(text.substr(start, i - start));
    if (options_.lowercase) AsciiLowerInPlace(token);
    if (Keep(token)) out.push_back(std::move(token));
  }
}

std::string Tokenizer::NormalizeToken(std::string_view word) const {
  // A query keyword may still carry punctuation (e.g. "geo-tagging,"): run
  // it through the same splitter and glue the pieces back together so the
  // result is a single keyword comparable with vocabulary tokens.
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < word.size()) {
    while (i < word.size() && !IsTokenChar(word[i])) ++i;
    size_t start = i;
    while (i < word.size() && IsTokenChar(word[i])) ++i;
    if (i > start) pieces.emplace_back(word.substr(start, i - start));
  }
  std::string token = Join(pieces, "");
  if (options_.lowercase) AsciiLowerInPlace(token);
  if (!Keep(token)) return std::string();
  return token;
}

}  // namespace xclean
