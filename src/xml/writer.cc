#include "xml/writer.h"

#include <vector>

namespace xclean {

namespace {

void WriteNode(const XmlTree& tree, NodeId node, const WriteOptions& options,
               int indent_level, std::string& out) {
  auto indent = [&]() {
    if (options.indent) {
      for (int i = 0; i < indent_level; ++i) out += "  ";
    }
  };
  auto newline = [&]() {
    if (options.indent) out.push_back('\n');
  };

  const std::string& label = tree.label(node);

  indent();
  out.push_back('<');
  // "@name" nodes rendered as elements get a parse-safe label.
  bool is_attr_node = !label.empty() && label[0] == '@';
  std::string element_label =
      is_attr_node ? "_" + label.substr(1) : label;
  out += element_label;

  // Collect leading attribute children if they are to be inlined.
  std::vector<NodeId> element_children;
  for (NodeId c = tree.FirstChild(node); c != kInvalidNode;
       c = tree.NextSibling(c)) {
    const std::string& child_label = tree.label(c);
    bool child_is_attr = !child_label.empty() && child_label[0] == '@';
    if (child_is_attr && options.attribute_nodes_as_attributes &&
        tree.FirstChild(c) == kInvalidNode) {
      out.push_back(' ');
      out += child_label.substr(1);
      out += "=\"";
      out += EscapeXmlText(tree.text(c));
      out.push_back('"');
    } else {
      element_children.push_back(c);
    }
  }

  const std::string& text = tree.text(node);
  if (element_children.empty() && text.empty()) {
    out += "/>";
    newline();
    return;
  }
  out.push_back('>');

  if (element_children.empty()) {
    // Pure text node: keep it on one line.
    out += EscapeXmlText(text);
    out += "</";
    out += element_label;
    out.push_back('>');
    newline();
    return;
  }

  newline();
  if (!text.empty()) {
    indent();
    if (options.indent) out += "  ";
    out += EscapeXmlText(text);
    newline();
  }
  for (NodeId c : element_children) {
    WriteNode(tree, c, options, indent_level + 1, out);
  }
  indent();
  out += "</";
  out += element_label;
  out.push_back('>');
  newline();
}

}  // namespace

std::string EscapeXmlText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string WriteXml(const XmlTree& tree, NodeId node,
                     const WriteOptions& options) {
  std::string out;
  WriteNode(tree, node, options, 0, out);
  return out;
}

}  // namespace xclean
