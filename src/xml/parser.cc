#include "xml/parser.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace xclean {

namespace {

/// Internal cursor over the document with line tracking for diagnostics.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool AtEnd() const { return pos_ >= data_.size(); }
  char Peek() const { return data_[pos_]; }
  char PeekAt(size_t offset) const {
    size_t i = pos_ + offset;
    return i < data_.size() ? data_[i] : '\0';
  }
  size_t remaining() const { return data_.size() - pos_; }

  char Advance() {
    char c = data_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  bool ConsumePrefix(std::string_view prefix) {
    if (remaining() < prefix.size()) return false;
    if (data_.substr(pos_, prefix.size()) != prefix) return false;
    AdvanceBy(prefix.size());
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && IsAsciiSpace(Peek())) Advance();
  }

  size_t pos() const { return pos_; }
  size_t line() const { return line_; }
  std::string_view Slice(size_t start, size_t end) const {
    return data_.substr(start, end - start);
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

void AppendUtf8(uint32_t cp, std::string& out) {
  if (cp <= 0x7F) {
    out.push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

bool IsNameStartChar(char c) {
  return IsAsciiAlpha(c) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || IsAsciiDigit(c) || c == '-' || c == '.';
}

class Parser {
 public:
  Parser(std::string_view xml, const ParseOptions& options,
         XmlTreeBuilder& builder)
      : cur_(xml), options_(options), builder_(builder) {}

  Status Run() {
    Status s = SkipProlog();
    if (!s.ok()) return s;
    if (cur_.AtEnd() || cur_.Peek() != '<') {
      return Err("expected document root element");
    }
    s = ParseElement();
    if (!s.ok()) return s;
    // Trailing misc: whitespace, comments, PIs.
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.AtEnd()) break;
      if (cur_.ConsumePrefix("<!--")) {
        s = SkipUntil("-->", "unterminated trailing comment");
        if (!s.ok()) return s;
      } else if (cur_.ConsumePrefix("<?")) {
        s = SkipUntil("?>", "unterminated trailing processing instruction");
        if (!s.ok()) return s;
      } else {
        return Err("content after document root element");
      }
    }
    return Status::Ok();
  }

  const ParseStats& stats() const { return stats_; }

 private:
  Status Err(const std::string& what) {
    return Status::ParseError(
        StrFormat("%s at line %zu", what.c_str(), cur_.line()));
  }

  Status SkipUntil(std::string_view terminator, const char* err) {
    while (!cur_.AtEnd()) {
      if (cur_.ConsumePrefix(terminator)) return Status::Ok();
      cur_.Advance();
    }
    return Err(err);
  }

  Status SkipProlog() {
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.ConsumePrefix("<?")) {
        Status s = SkipUntil("?>", "unterminated processing instruction");
        if (!s.ok()) return s;
      } else if (cur_.ConsumePrefix("<!--")) {
        Status s = SkipUntil("-->", "unterminated comment");
        if (!s.ok()) return s;
      } else if (cur_.ConsumePrefix("<!DOCTYPE")) {
        Status s = SkipDoctype();
        if (!s.ok()) return s;
      } else {
        return Status::Ok();
      }
    }
  }

  Status SkipDoctype() {
    // Skip to the matching '>', tolerating an internal subset in [...].
    int bracket_depth = 0;
    while (!cur_.AtEnd()) {
      char c = cur_.Advance();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth <= 0) {
        return Status::Ok();
      }
    }
    return Err("unterminated DOCTYPE");
  }

  Status ParseName(std::string& out) {
    if (cur_.AtEnd() || !IsNameStartChar(cur_.Peek())) {
      return Err("expected a name");
    }
    size_t start = cur_.pos();
    cur_.Advance();
    while (!cur_.AtEnd() && IsNameChar(cur_.Peek())) cur_.Advance();
    out.assign(cur_.Slice(start, cur_.pos()));
    return Status::Ok();
  }

  /// Decodes &amp; &lt; &gt; &apos; &quot; &#DD; &#xHH; following a consumed
  /// '&'. Unknown named entities are passed through literally (real corpora
  /// contain undeclared entities; dropping text would skew statistics).
  Status DecodeEntity(std::string& out) {
    size_t start = cur_.pos();
    std::string name;
    while (!cur_.AtEnd() && cur_.Peek() != ';' && cur_.Peek() != '<' &&
           !IsAsciiSpace(cur_.Peek()) && cur_.pos() - start < 12) {
      name.push_back(cur_.Advance());
    }
    if (cur_.AtEnd() || cur_.Peek() != ';') {
      // Not a well-formed reference: emit literally.
      ++stats_.unterminated_refs;
      out.push_back('&');
      out.append(name);
      return Status::Ok();
    }
    cur_.Advance();  // ';'
    if (name == "amp") {
      out.push_back('&');
    } else if (name == "lt") {
      out.push_back('<');
    } else if (name == "gt") {
      out.push_back('>');
    } else if (name == "apos") {
      out.push_back('\'');
    } else if (name == "quot") {
      out.push_back('"');
    } else if (!name.empty() && name[0] == '#') {
      uint32_t cp = 0;
      bool ok = name.size() > 1;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (size_t i = 2; i < name.size() && ok; ++i) {
          char c = name[i];
          uint32_t digit;
          if (IsAsciiDigit(c)) {
            digit = static_cast<uint32_t>(c - '0');
          } else if (c >= 'a' && c <= 'f') {
            digit = static_cast<uint32_t>(c - 'a' + 10);
          } else if (c >= 'A' && c <= 'F') {
            digit = static_cast<uint32_t>(c - 'A' + 10);
          } else {
            ok = false;
            break;
          }
          cp = cp * 16 + digit;
        }
      } else {
        for (size_t i = 1; i < name.size() && ok; ++i) {
          if (!IsAsciiDigit(name[i])) {
            ok = false;
            break;
          }
          cp = cp * 10 + static_cast<uint32_t>(name[i] - '0');
        }
      }
      if (ok && cp > 0 && cp <= 0x10FFFF) {
        AppendUtf8(cp, out);
      } else {
        // Drop the malformed reference, but count the loss.
        ++stats_.malformed_char_refs;
      }
    } else {
      // Unknown named entity: keep it readable.
      ++stats_.unknown_entities;
      out.push_back('&');
      out.append(name);
      out.push_back(';');
    }
    return Status::Ok();
  }

  Status ParseAttributes(std::vector<std::pair<std::string, std::string>>&
                             attributes,
                         bool& self_closing, bool& closed) {
    self_closing = false;
    closed = false;
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.AtEnd()) return Err("unterminated start tag");
      char c = cur_.Peek();
      if (c == '>') {
        cur_.Advance();
        closed = true;
        return Status::Ok();
      }
      if (c == '/') {
        cur_.Advance();
        if (cur_.AtEnd() || cur_.Peek() != '>') {
          return Err("expected '>' after '/' in tag");
        }
        cur_.Advance();
        self_closing = true;
        closed = true;
        return Status::Ok();
      }
      std::string name;
      Status s = ParseName(name);
      if (!s.ok()) return s;
      cur_.SkipWhitespace();
      if (cur_.AtEnd() || cur_.Peek() != '=') {
        return Err("expected '=' after attribute name '" + name + "'");
      }
      cur_.Advance();
      cur_.SkipWhitespace();
      if (cur_.AtEnd() || (cur_.Peek() != '"' && cur_.Peek() != '\'')) {
        return Err("expected quoted attribute value for '" + name + "'");
      }
      char quote = cur_.Advance();
      std::string value;
      for (;;) {
        if (cur_.AtEnd()) return Err("unterminated attribute value");
        char vc = cur_.Advance();
        if (vc == quote) break;
        if (vc == '&') {
          s = DecodeEntity(value);
          if (!s.ok()) return s;
        } else {
          value.push_back(vc);
        }
      }
      attributes.emplace_back(std::move(name), std::move(value));
    }
  }

  Status ParseElement() {
    // cur_ points at '<'.
    cur_.Advance();
    std::string name;
    Status s = ParseName(name);
    if (!s.ok()) return s;
    std::vector<std::pair<std::string, std::string>> attributes;
    bool self_closing = false, closed = false;
    s = ParseAttributes(attributes, self_closing, closed);
    if (!s.ok()) return s;
    s = builder_.BeginElement(name);
    if (!s.ok()) return s;
    if (options_.attributes_as_nodes) {
      for (auto& [attr_name, attr_value] : attributes) {
        s = builder_.AddLeaf("@" + attr_name, attr_value);
        if (!s.ok()) return s;
      }
    }
    if (!self_closing) {
      s = ParseContent(name);
      if (!s.ok()) return s;
    }
    return builder_.EndElement();
  }

  Status ParseContent(const std::string& open_name) {
    std::string text;
    auto flush_text = [&]() -> Status {
      bool all_space = true;
      for (char c : text) {
        if (!IsAsciiSpace(c)) {
          all_space = false;
          break;
        }
      }
      if (!text.empty() && !(options_.skip_whitespace_text && all_space)) {
        Status s = builder_.AddText(text);
        if (!s.ok()) return s;
      }
      text.clear();
      return Status::Ok();
    };

    for (;;) {
      if (cur_.AtEnd()) {
        return Err("unexpected end of input inside <" + open_name + ">");
      }
      char c = cur_.Peek();
      if (c == '<') {
        if (cur_.ConsumePrefix("</")) {
          Status s = flush_text();
          if (!s.ok()) return s;
          std::string close_name;
          s = ParseName(close_name);
          if (!s.ok()) return s;
          cur_.SkipWhitespace();
          if (cur_.AtEnd() || cur_.Peek() != '>') {
            return Err("expected '>' in end tag </" + close_name + ">");
          }
          cur_.Advance();
          if (close_name != open_name) {
            return Err("mismatched end tag: expected </" + open_name +
                       ">, found </" + close_name + ">");
          }
          return Status::Ok();
        }
        if (cur_.ConsumePrefix("<!--")) {
          Status s = SkipUntil("-->", "unterminated comment");
          if (!s.ok()) return s;
          continue;
        }
        if (cur_.ConsumePrefix("<![CDATA[")) {
          size_t start = cur_.pos();
          Status s = SkipUntil("]]>", "unterminated CDATA section");
          if (!s.ok()) return s;
          text.append(cur_.Slice(start, cur_.pos() - 3));
          continue;
        }
        if (cur_.ConsumePrefix("<?")) {
          Status s = SkipUntil("?>", "unterminated processing instruction");
          if (!s.ok()) return s;
          continue;
        }
        if (cur_.PeekAt(1) == '!') {
          return Err("unsupported markup declaration in content");
        }
        // Child element.
        Status s = flush_text();
        if (!s.ok()) return s;
        s = ParseElement();
        if (!s.ok()) return s;
        continue;
      }
      cur_.Advance();
      if (c == '&') {
        Status s = DecodeEntity(text);
        if (!s.ok()) return s;
      } else {
        text.push_back(c);
      }
    }
  }

  Cursor cur_;
  const ParseOptions& options_;
  XmlTreeBuilder& builder_;
  ParseStats stats_;
};

}  // namespace

Status ParseXmlInto(std::string_view xml, const ParseOptions& options,
                    XmlTreeBuilder& builder, ParseStats* stats) {
  Parser parser(xml, options, builder);
  Status s = parser.Run();
  // Counters accumulate even on error: the counts up to the failure point
  // are real losses the caller may want to report alongside the error.
  if (stats != nullptr) stats->Add(parser.stats());
  return s;
}

Result<XmlTree> ParseXmlString(std::string_view xml,
                               const ParseOptions& options,
                               ParseStats* stats) {
  XmlTreeBuilder builder;
  Status s = ParseXmlInto(xml, options, builder, stats);
  if (!s.ok()) return s;
  return std::move(builder).Finish();
}

Result<XmlTree> ParseXmlCollection(const std::vector<std::string>& documents,
                                   std::string_view root_label,
                                   const ParseOptions& options,
                                   ParseStats* stats) {
  XmlTreeBuilder builder;
  Status s = builder.BeginElement(root_label);
  if (!s.ok()) return s;
  for (size_t i = 0; i < documents.size(); ++i) {
    s = ParseXmlInto(documents[i], options, builder, stats);
    if (!s.ok()) {
      return Status::ParseError(StrFormat("document %zu: %s", i,
                                          s.message().c_str()));
    }
  }
  s = builder.EndElement();
  if (!s.ok()) return s;
  return std::move(builder).Finish();
}

Result<XmlTree> ParseXmlFile(const std::string& path,
                             const ParseOptions& options, ParseStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string contents = buf.str();
  return ParseXmlString(contents, options, stats);
}

}  // namespace xclean
