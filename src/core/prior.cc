#include "core/prior.h"

#include "common/check.h"
#include "core/slca.h"

namespace xclean {

LogEntityPrior::LogEntityPrior(const XmlIndex& index, double floor)
    : index_(&index), floor_(floor), credit_(index.tree().size(), 0.0) {}

void LogEntityPrior::AddQuery(const Query& query, uint64_t count) {
  XCLEAN_CHECK(!finalized_);
  std::vector<std::vector<NodeId>> witness_lists;
  for (const std::string& word : query.keywords) {
    TokenId token = index_->vocabulary().Find(word);
    if (token == kInvalidToken) continue;
    std::vector<NodeId> nodes;
    const PostingList& list = index_->postings(token);
    nodes.reserve(list.size());
    for (const Posting& p : list) nodes.push_back(p.node);
    witness_lists.push_back(std::move(nodes));
  }
  if (witness_lists.empty()) return;
  std::vector<NodeId> slcas = ComputeSlcas(index_->tree(), witness_lists);
  if (slcas.empty()) return;
  ++logged_queries_;
  // Split the query's popularity across its answers so broad queries do
  // not swamp specific ones.
  double share = static_cast<double>(count) /
                 static_cast<double>(slcas.size());
  for (NodeId n : slcas) credit_[n] += share;
}

void LogEntityPrior::Finalize() {
  XCLEAN_CHECK(!finalized_);
  finalized_ = true;
  const XmlTree& tree = index_->tree();
  // Reverse-preorder accumulation turns per-node credit into subtree
  // totals (same trick as the indexer's subtree token counts).
  for (NodeId n = tree.size(); n-- > 0;) {
    if (n != tree.root()) credit_[tree.parent(n)] += credit_[n];
  }
}

double LogEntityPrior::weight(NodeId node) const {
  XCLEAN_CHECK(finalized_);
  return floor_ + credit_[node];
}

std::function<double(NodeId)> LogEntityPrior::AsFunction() const {
  XCLEAN_CHECK(finalized_);
  return [this](NodeId node) { return weight(node); };
}

}  // namespace xclean
