#include "core/space_edit.h"

#include <set>

namespace xclean {

namespace {

/// Neighbors of one segmentation under a single space change.
std::vector<Query> SingleChanges(const Query& query,
                                 const Vocabulary& vocabulary,
                                 size_t min_token_length) {
  std::vector<Query> out;
  // Merges (space deletions).
  for (size_t i = 0; i + 1 < query.keywords.size(); ++i) {
    std::string merged = query.keywords[i] + query.keywords[i + 1];
    if (!vocabulary.Contains(merged)) continue;
    Query next;
    next.keywords.reserve(query.keywords.size() - 1);
    for (size_t j = 0; j < query.keywords.size(); ++j) {
      if (j == i) {
        next.keywords.push_back(merged);
        ++j;  // skip the absorbed keyword
      } else {
        next.keywords.push_back(query.keywords[j]);
      }
    }
    out.push_back(std::move(next));
  }
  // Splits (space insertions).
  for (size_t i = 0; i < query.keywords.size(); ++i) {
    const std::string& word = query.keywords[i];
    if (word.size() < 2 * min_token_length) continue;
    for (size_t cut = min_token_length;
         cut + min_token_length <= word.size(); ++cut) {
      std::string left = word.substr(0, cut);
      std::string right = word.substr(cut);
      if (!vocabulary.Contains(left) || !vocabulary.Contains(right)) continue;
      Query next;
      next.keywords.reserve(query.keywords.size() + 1);
      for (size_t j = 0; j < query.keywords.size(); ++j) {
        if (j == i) {
          next.keywords.push_back(left);
          next.keywords.push_back(right);
        } else {
          next.keywords.push_back(query.keywords[j]);
        }
      }
      out.push_back(std::move(next));
    }
  }
  return out;
}

}  // namespace

std::vector<SpaceEdit> ExpandSpaceEdits(const Query& query,
                                        const Vocabulary& vocabulary,
                                        uint32_t tau,
                                        size_t min_token_length) {
  std::vector<SpaceEdit> out;
  std::set<std::vector<std::string>> seen;
  out.push_back(SpaceEdit{query, 0});
  seen.insert(query.keywords);
  // Breadth-first over segmentations: frontier at distance c expands to
  // c + 1 until tau.
  size_t frontier_begin = 0;
  for (uint32_t change = 1; change <= tau; ++change) {
    size_t frontier_end = out.size();
    for (size_t i = frontier_begin; i < frontier_end; ++i) {
      // Copy: out may reallocate while we push.
      Query base = out[i].query;
      for (Query& next :
           SingleChanges(base, vocabulary, min_token_length)) {
        if (seen.insert(next.keywords).second) {
          out.push_back(SpaceEdit{std::move(next), change});
        }
      }
    }
    frontier_begin = frontier_end;
    if (frontier_begin == out.size()) break;  // no new segmentations
  }
  return out;
}

}  // namespace xclean
