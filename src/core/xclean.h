#ifndef XCLEAN_CORE_XCLEAN_H_
#define XCLEAN_CORE_XCLEAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "core/accumulator.h"
#include "core/query.h"
#include "core/query_scratch.h"
#include "core/variant_gen.h"
#include "index/xml_index.h"
#include "lm/error_model.h"
#include "lm/language_model.h"
#include "lm/lm_stats_cache.h"
#include "lm/result_type.h"

namespace xclean {

/// Which XML keyword query semantics defines the entities r_j of Eq. (8).
enum class Semantics {
  /// Specific result node type (XReal-style; the paper's main setting,
  /// Sec. IV-B2): FindResultType picks one label path p_C per candidate and
  /// every node of that path is an entity (N = #nodes of the path).
  kNodeType,
  /// SLCA semantics (Sec. VI-B): the candidate's SLCA nodes are its
  /// entities (N = #SLCAs of the candidate).
  kSlca,
  /// ELCA semantics (Sec. VIII lists it among the result structures the
  /// framework accommodates): the candidate's exclusive LCAs are its
  /// entities — a superset of the SLCAs that also credits ancestors with
  /// their own exclusive witnesses.
  kElca,
};

/// All tuning knobs of the XClean algorithm, named after the paper's
/// symbols. The defaults are the paper's reported best settings.
struct XCleanOptions {
  /// Edit distance threshold eps for var_eps(q). Must not exceed the
  /// index's FastSS radius.
  uint32_t max_ed = 2;
  /// Error penalty beta of Eq. (5); beta = 5 is the paper's best (Table IV).
  double beta = 5.0;
  /// Dirichlet smoothing mass mu (Eq. for P(w|D); unstated in the paper, we
  /// use the standard 2000).
  double mu = 2000.0;
  /// Depth reduction r of Eq. (7).
  double reduction = 0.8;
  /// Minimal depth threshold d (Sec. V-B): result types shallower than this
  /// are never considered and subtrees are formed by truncating anchors to
  /// this depth. The paper finds d = 2 usually sufficient.
  uint32_t min_depth = 2;
  /// Number of suggestions returned.
  size_t top_k = 10;
  /// Maximum number of in-memory score accumulators gamma (Sec. V-D);
  /// 0 means unbounded (exact evaluation).
  size_t gamma = 1000;
  /// Entity semantics.
  Semantics semantics = Semantics::kNodeType;
  /// Cognitive-error extension: admit Soundex-equal variants.
  bool include_soundex = false;
  /// Precompute the per-token and per-entity Dirichlet terms of Eq. (8)
  /// once per index (lm/lm_stats_cache.h) instead of recomputing them for
  /// every scored entity. Costs 8 bytes per vocabulary token plus 8 bytes
  /// per tree node; scores are bit-identical either way (the cache keeps
  /// the exact arithmetic of LanguageModel). Disable only to trade the
  /// memory back on very large trees.
  bool lm_stats_cache = true;
  /// Optional non-uniform entity prior P(r_j|T) (Sec. IV-B2 notes the
  /// generalization). When set, each entity's contribution is weighted by
  /// prior(r_j) and the uniform 1/N factor is dropped.
  std::function<double(NodeId)> entity_prior;
};

/// Per-query degradation overrides: an overloaded server tightens the
/// paper's quality knobs for one request without rebuilding the algorithm
/// (each XClean instance is immutable and shared across threads). Every
/// field is a *cap* against the instance's XCleanOptions — the effective
/// value is min(option, tuning) — so tuning can only cheapen a query,
/// never widen it past what the index supports (e.g. max_ed stays within
/// the FastSS radius). Sentinel values mean "no override"; a
/// default-constructed QueryTuning changes nothing.
struct QueryTuning {
  /// Cap on XCleanOptions::max_ed (variants with larger edit distance are
  /// skipped). UINT32_MAX = no override.
  uint32_t max_ed = UINT32_MAX;
  /// Cap on the accumulator bound gamma. Applies even when the instance
  /// runs unbounded (options.gamma == 0). SIZE_MAX = no override.
  size_t gamma = SIZE_MAX;
  /// Cap on the suggestions returned. SIZE_MAX = no override.
  size_t top_k = SIZE_MAX;

  bool no_override() const {
    return max_ed == UINT32_MAX && gamma == SIZE_MAX && top_k == SIZE_MAX;
  }
};

/// Counters describing the work done by the last Suggest() call; used by
/// the efficiency benches and the skipping/pruning tests.
struct XCleanRunStats {
  uint64_t subtrees_processed = 0;
  uint64_t occurrences_collected = 0;
  uint64_t candidates_enumerated = 0;
  uint64_t entities_scored = 0;
  uint64_t result_type_computations = 0;
  uint64_t accumulator_evictions = 0;
  uint64_t accumulators_final = 0;
  /// True when a CancelToken stopped the run before the merged-list pass
  /// completed: the returned suggestions are a best-effort partial top-k
  /// (every score is an underestimate of the full evaluation).
  bool truncated = false;
  /// Which budget tripped when truncated is set.
  CancelCause cancel_cause = CancelCause::kNone;
};

/// The XClean algorithm (Algorithm 1): computes the scores of all candidate
/// queries in a single pass over the merged variant inverted lists, driven
/// by anchor nodes and depth-d Dewey truncation, with skip-based list
/// advancement, lazy result-type computation and gamma-bounded
/// probabilistic accumulator pruning.
///
/// All per-query state lives in a QueryScratch arena; entry points differ
/// only in which scratch they use (a private one for the stats-recording
/// QueryCleaner path, a caller-provided one for batch/serving reuse, a
/// stack-local one otherwise).
class XClean : public QueryCleaner {
 public:
  XClean(const XmlIndex& index, XCleanOptions options = XCleanOptions());

  /// QueryCleaner entry point; records the run's counters in
  /// last_run_stats() and reuses a private scratch across calls, so it is
  /// NOT safe to call concurrently on one instance — concurrent servers
  /// use SuggestWithStats or per-thread scratches.
  std::vector<Suggestion> Suggest(const Query& query) override;
  std::string name() const override;

  /// Thread-safe entry point: all mutable state lives on the stack (plus
  /// the immutable index), so any number of threads may call this on one
  /// XClean instance concurrently. `stats` (optional) receives the run's
  /// work counters.
  std::vector<Suggestion> SuggestWithStats(const Query& query,
                                           XCleanRunStats* stats) const;

  /// The core evaluation: runs Algorithm 1 with all per-query state in
  /// `scratch` and writes the ranked suggestions into *out (reusing its
  /// storage; it is resized to the result count). Safe to call from many
  /// threads concurrently provided each uses its own scratch. A scratch
  /// previously used with a different XClean instance is re-zeroed
  /// automatically.
  ///
  /// `cancel` (optional) makes the run cooperatively cancellable: work is
  /// charged inside the merged-list drains, skips, candidate enumeration
  /// and entity scoring, and when the token trips the anchor loop unwinds
  /// and the accumulators gathered so far are ranked into a partial top-k
  /// (stats->truncated = true). An attached-but-unlimited token produces
  /// bit-identical scores to running without one — cancellation changes
  /// when the algorithm stops, never what it computes. `tuning` (optional)
  /// caps max_ed/gamma/top_k for this query only (graceful degradation
  /// under load); both hooks keep the steady state allocation-free.
  void SuggestWithScratch(const Query& query, QueryScratch& scratch,
                          std::vector<Suggestion>* out, XCleanRunStats* stats,
                          CancelToken* cancel = nullptr,
                          const QueryTuning* tuning = nullptr) const;

  /// Evaluates a batch of queries through one shared scratch, so later
  /// queries reuse the arena storage and memo tables warmed by earlier
  /// ones. `scratch` may be null (a local one is used); `stats` (optional)
  /// receives one entry per query. `cancel` (optional) covers the whole
  /// batch: once it trips, the current query surfaces its partial top-k
  /// and the remaining queries return empty, truncated results.
  std::vector<std::vector<Suggestion>> SuggestBatch(
      const std::vector<Query>& queries, QueryScratch* scratch = nullptr,
      std::vector<XCleanRunStats>* stats = nullptr,
      CancelToken* cancel = nullptr,
      const QueryTuning* tuning = nullptr) const;

  const XCleanOptions& options() const { return options_; }
  const XCleanRunStats& last_run_stats() const { return stats_; }

  /// Process-unique id of this instance; QueryScratch uses it to detect
  /// that it was handed to a different algorithm (e.g. after an index
  /// hot-swap) and must drop its memo tables.
  uint64_t epoch() const { return epoch_; }

  /// The LM stats cache, or nullptr when options().lm_stats_cache is off.
  const LmStatsCache* lm_stats_cache() const { return lm_stats_.get(); }

 private:
  /// Re-zeroes `scratch` if it was last used by a different instance.
  void BindScratch(QueryScratch& scratch) const;

  /// Variants of `keyword` through the scratch's cross-query memo.
  const std::vector<Variant>& LookupVariants(QueryScratch& scratch,
                                             const std::string& keyword) const;

  /// P(w | D(r)) through the stats cache when enabled.
  double ProbInEntity(TokenId token, uint64_t count, NodeId entity) const {
    return lm_stats_ != nullptr
               ? lm_stats_->ProbInEntity(token, count, entity)
               : language_model_.ProbInEntity(token, count, entity);
  }

  /// exp(-beta * d), precomputed per edit distance (d <= max_ed always;
  /// Soundex variants enter clamped to max_ed). Same call as
  /// ErrorModel::Weight, hoisted out of the per-candidate loop.
  double EditWeight(uint32_t distance) const {
    return distance < edit_weight_.size() ? edit_weight_[distance]
                                          : error_model_.Weight(distance);
  }

  /// Node-type semantics: attribute the current candidate's occurrences to
  /// entities of the chosen result type and fold complete entities into the
  /// accumulator.
  void ScoreNodeTypeEntities(QueryScratch& scratch, size_t num_slots,
                             const ResultTypeScorer::Choice& choice,
                             double error_weight, XCleanRunStats& stats,
                             CancelToken* cancel) const;

  /// SLCA/ELCA semantics: compute the candidate's LCA-family entities
  /// inside the current subtree and fold them into the accumulator.
  void ScoreLcaEntities(QueryScratch& scratch, size_t num_slots,
                        double error_weight, XCleanRunStats& stats,
                        CancelToken* cancel) const;

  const XmlIndex* index_;
  XCleanOptions options_;
  VariantGenerator variant_gen_;
  ErrorModel error_model_;
  std::vector<double> edit_weight_;
  LanguageModel language_model_;
  std::unique_ptr<LmStatsCache> lm_stats_;
  ResultTypeScorer type_scorer_;
  uint64_t epoch_;
  XCleanRunStats stats_;
  /// Scratch for the stats-recording Suggest() path (single-threaded by
  /// contract), so the experiment harness gets cross-query arena reuse.
  std::unique_ptr<QueryScratch> own_scratch_;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_XCLEAN_H_
