#ifndef XCLEAN_CORE_XCLEAN_H_
#define XCLEAN_CORE_XCLEAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/accumulator.h"
#include "core/query.h"
#include "core/variant_gen.h"
#include "index/xml_index.h"
#include "lm/error_model.h"
#include "lm/language_model.h"
#include "lm/result_type.h"

namespace xclean {

/// Which XML keyword query semantics defines the entities r_j of Eq. (8).
enum class Semantics {
  /// Specific result node type (XReal-style; the paper's main setting,
  /// Sec. IV-B2): FindResultType picks one label path p_C per candidate and
  /// every node of that path is an entity (N = #nodes of the path).
  kNodeType,
  /// SLCA semantics (Sec. VI-B): the candidate's SLCA nodes are its
  /// entities (N = #SLCAs of the candidate).
  kSlca,
  /// ELCA semantics (Sec. VIII lists it among the result structures the
  /// framework accommodates): the candidate's exclusive LCAs are its
  /// entities — a superset of the SLCAs that also credits ancestors with
  /// their own exclusive witnesses.
  kElca,
};

/// All tuning knobs of the XClean algorithm, named after the paper's
/// symbols. The defaults are the paper's reported best settings.
struct XCleanOptions {
  /// Edit distance threshold eps for var_eps(q). Must not exceed the
  /// index's FastSS radius.
  uint32_t max_ed = 2;
  /// Error penalty beta of Eq. (5); beta = 5 is the paper's best (Table IV).
  double beta = 5.0;
  /// Dirichlet smoothing mass mu (Eq. for P(w|D); unstated in the paper, we
  /// use the standard 2000).
  double mu = 2000.0;
  /// Depth reduction r of Eq. (7).
  double reduction = 0.8;
  /// Minimal depth threshold d (Sec. V-B): result types shallower than this
  /// are never considered and subtrees are formed by truncating anchors to
  /// this depth. The paper finds d = 2 usually sufficient.
  uint32_t min_depth = 2;
  /// Number of suggestions returned.
  size_t top_k = 10;
  /// Maximum number of in-memory score accumulators gamma (Sec. V-D);
  /// 0 means unbounded (exact evaluation).
  size_t gamma = 1000;
  /// Entity semantics.
  Semantics semantics = Semantics::kNodeType;
  /// Cognitive-error extension: admit Soundex-equal variants.
  bool include_soundex = false;
  /// Optional non-uniform entity prior P(r_j|T) (Sec. IV-B2 notes the
  /// generalization). When set, each entity's contribution is weighted by
  /// prior(r_j) and the uniform 1/N factor is dropped.
  std::function<double(NodeId)> entity_prior;
};

/// Counters describing the work done by the last Suggest() call; used by
/// the efficiency benches and the skipping/pruning tests.
struct XCleanRunStats {
  uint64_t subtrees_processed = 0;
  uint64_t occurrences_collected = 0;
  uint64_t candidates_enumerated = 0;
  uint64_t entities_scored = 0;
  uint64_t result_type_computations = 0;
  uint64_t accumulator_evictions = 0;
  uint64_t accumulators_final = 0;
};

/// The XClean algorithm (Algorithm 1): computes the scores of all candidate
/// queries in a single pass over the merged variant inverted lists, driven
/// by anchor nodes and depth-d Dewey truncation, with skip-based list
/// advancement, lazy result-type computation and gamma-bounded
/// probabilistic accumulator pruning.
class XClean : public QueryCleaner {
 public:
  XClean(const XmlIndex& index, XCleanOptions options = XCleanOptions());

  /// QueryCleaner entry point; records the run's counters in
  /// last_run_stats() and is therefore NOT safe to call concurrently on
  /// one instance — concurrent servers use SuggestWithStats.
  std::vector<Suggestion> Suggest(const Query& query) override;
  std::string name() const override;

  /// Thread-safe entry point: all state lives on the stack (plus the
  /// immutable index), so any number of threads may call this on one
  /// XClean instance concurrently. `stats` (optional) receives the run's
  /// work counters.
  std::vector<Suggestion> SuggestWithStats(const Query& query,
                                           XCleanRunStats* stats) const;

  const XCleanOptions& options() const { return options_; }
  const XCleanRunStats& last_run_stats() const { return stats_; }

 private:
  struct SlotOccurrence {
    NodeId node;
    uint32_t tf;
  };

  const XmlIndex* index_;
  XCleanOptions options_;
  VariantGenerator variant_gen_;
  ErrorModel error_model_;
  LanguageModel language_model_;
  ResultTypeScorer type_scorer_;
  XCleanRunStats stats_;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_XCLEAN_H_
