#ifndef XCLEAN_CORE_ELCA_H_
#define XCLEAN_CORE_ELCA_H_

#include <vector>

#include "xml/tree.h"

namespace xclean {

/// Exclusive Lowest Common Ancestors (the ELCA keyword query semantics the
/// paper cites among the result structures its framework can accommodate,
/// Sec. VIII): node v is an ELCA of the witness sets iff for every set
/// there is a witness in v's subtree whose path to v passes through no
/// other node that itself contains all sets ("exclusive" witnesses — v
/// answers the query with content not already claimed by a descendant
/// answer).
///
/// Every SLCA is an ELCA, and every ELCA contains all sets; the inclusion
/// chain SLCA ⊆ ELCA ⊆ {nodes containing all sets} is checked by tests.
///
/// `lists` must be sorted ascending and duplicate-free; the result is
/// sorted ascending.
///
/// Algorithm: collect the "full" nodes (containing every set) from the
/// smallest list's ancestor chains, then assign every witness to its
/// lowest full ancestor-or-self; the ELCAs are the full nodes assigned a
/// witness from every set. O(total witnesses * depth).
std::vector<NodeId> ComputeElcas(const XmlTree& tree,
                                 const std::vector<std::vector<NodeId>>& lists);

/// Reference oracle for tests: checks the definition directly per node.
std::vector<NodeId> ComputeElcasBruteForce(
    const XmlTree& tree, const std::vector<std::vector<NodeId>>& lists);

}  // namespace xclean

#endif  // XCLEAN_CORE_ELCA_H_
