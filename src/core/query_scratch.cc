#include "core/query_scratch.h"

#include <atomic>

namespace xclean {

uint64_t QueryScratch::NextEpoch() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace xclean
