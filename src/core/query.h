#ifndef XCLEAN_CORE_QUERY_H_
#define XCLEAN_CORE_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/tokenizer.h"
#include "xml/tree.h"

namespace xclean {

/// A keyword query: an ordered sequence of keywords (Sec. III). Keywords
/// may or may not be vocabulary tokens — that is the whole point.
struct Query {
  std::vector<std::string> keywords;

  bool empty() const { return keywords.empty(); }
  size_t size() const { return keywords.size(); }

  /// "keyword1 keyword2 ..." rendering.
  std::string ToString() const;

  bool operator==(const Query& other) const = default;
};

/// Splits raw user input on whitespace and normalizes each keyword with the
/// same policy as indexing (lowercase, strip punctuation). Keywords that
/// normalize to nothing (stopwords, numbers, too short) are dropped, which
/// mirrors how the indexed corpus was filtered.
Query ParseQuery(std::string_view text, const Tokenizer& tokenizer);

/// Input bounds for ParseQueryBounded. The candidate space of Algorithm 1
/// is a Cartesian product over keywords, so its size is exponential in the
/// keyword count — unbounded input is an invitation to wedge a worker. The
/// defaults are generous for human-typed keyword queries (the paper's
/// workloads are 2-4 keywords).
struct QueryParseLimits {
  /// Maximum raw input length in bytes (checked before any work).
  size_t max_bytes = 4096;
  /// Maximum keywords surviving normalization.
  size_t max_keywords = 12;
};

/// ParseQuery with input bounds: returns InvalidArgument when `text`
/// exceeds max_bytes or normalizes to more than max_keywords keywords,
/// instead of handing an adversarial Cartesian product to the algorithm.
Result<Query> ParseQueryBounded(std::string_view text,
                                const Tokenizer& tokenizer,
                                const QueryParseLimits& limits);

/// One alternative query suggestion with its diagnostics.
struct Suggestion {
  /// The suggested keywords (same arity as the input query, except for
  /// space-edit suggestions which may merge or split keywords).
  std::vector<std::string> words;
  /// Ranking score: P(C|Q,T) up to the constant kappa of Eq. (2). Scores
  /// are comparable only within one suggestion list.
  double score = 0.0;
  /// The inferred result node type p_C (node-type semantics), or
  /// XmlTree::kInvalidPath when the algorithm has none (baselines, SLCA).
  PathId result_type = XmlTree::kInvalidPath;
  /// Number of entities that contributed to the score; > 0 guarantees the
  /// suggestion has non-empty results.
  uint32_t entity_count = 0;
  /// The error-model component P(Q|C) of the score.
  double error_weight = 0.0;

  std::string ToString() const;
};

/// Common interface of all query cleaning algorithms (XClean node-type,
/// XClean SLCA, the naive scorer, PY08, the log-based corrector), so the
/// experiment harness can run them uniformly.
class QueryCleaner {
 public:
  virtual ~QueryCleaner() = default;

  /// Top-k suggestions, best first. An empty result means the cleaner has
  /// nothing to offer (e.g. no variant of some keyword exists).
  virtual std::vector<Suggestion> Suggest(const Query& query) = 0;

  /// Short display name for reports ("XClean", "PY08", ...).
  virtual std::string name() const = 0;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_QUERY_H_
