#ifndef XCLEAN_CORE_CANDIDATE_MAP_H_
#define XCLEAN_CORE_CANDIDATE_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "index/vocabulary.h"

namespace xclean {

/// Deterministic hash of a candidate-query token sequence (splitmix64-style
/// mixing, seeded by the length). Used by every candidate-keyed table on the
/// suggestion hot path.
inline uint64_t HashCandidateTokens(const TokenId* key, size_t len) {
  uint64_t h = 0x9E3779B97F4A7C15ull + len;
  for (size_t i = 0; i < len; ++i) {
    uint64_t x = h ^ (key[i] + 0x9E3779B97F4A7C15ull);
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    h = x;
  }
  return h;
}

/// Open-addressing hash map keyed by candidate-query token sequences,
/// designed for the zero-steady-state-allocation contract of QueryScratch:
///
///   - keys live in one contiguous TokenId pool, entries in one vector, and
///     the bucket array holds entry indices — three flat allocations total,
///     all of which Clear() retains;
///   - erased entries go on a free list and are reused by later inserts of
///     equal key length (on the hot path every key has the query's length,
///     so reuse always succeeds and a gamma-bounded table reaches a steady
///     footprint);
///   - same-size rehashes (tombstone flushes) refill the existing bucket
///     array in place instead of allocating a new one.
///
/// Value pointers are invalidated by GetOrCreate (entry storage may grow);
/// keys are stable until Clear(). Iteration via entry indices visits
/// insertion order with freed slots reused in LIFO order — deterministic for
/// a deterministic operation sequence, which is all the callers need (final
/// ranking sorts by a total order).
template <typename V>
class CandidateMap {
 public:
  CandidateMap() = default;
  CandidateMap(CandidateMap&&) noexcept = default;
  CandidateMap& operator=(CandidateMap&&) noexcept = default;
  CandidateMap(const CandidateMap&) = delete;
  CandidateMap& operator=(const CandidateMap&) = delete;

  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Removes every entry but keeps all storage (buckets, entry vector, key
  /// pool, free list capacity).
  void Clear() {
    std::fill(buckets_.begin(), buckets_.end(), kEmpty);
    entries_.clear();
    key_pool_.clear();
    free_.clear();
    live_ = 0;
    tombstones_ = 0;
  }

  V* Find(const TokenId* key, size_t len) {
    const Entry* e = FindEntry(key, len);
    return e == nullptr ? nullptr : const_cast<V*>(&e->value);
  }
  const V* Find(const TokenId* key, size_t len) const {
    const Entry* e = FindEntry(key, len);
    return e == nullptr ? nullptr : &e->value;
  }

  /// Value for `key`, inserting a default-constructed one if absent.
  /// `created` (optional) reports whether an insert happened. The returned
  /// pointer is invalidated by the next GetOrCreate or Clear.
  V* GetOrCreate(const TokenId* key, size_t len, bool* created = nullptr) {
    if (buckets_.empty()) buckets_.assign(kInitialBuckets, kEmpty);
    uint64_t hash = HashCandidateTokens(key, len);
    size_t mask = buckets_.size() - 1;
    size_t insert_at = SIZE_MAX;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      int32_t slot = buckets_[i];
      if (slot == kEmpty) {
        if (insert_at == SIZE_MAX) insert_at = i;
        break;
      }
      if (slot == kTombstone) {
        if (insert_at == SIZE_MAX) insert_at = i;
        continue;
      }
      Entry& e = entries_[slot];
      if (e.hash == hash && e.key_len == len &&
          std::equal(key, key + len, key_pool_.data() + e.key_offset)) {
        if (created != nullptr) *created = false;
        return &e.value;
      }
    }
    if (created != nullptr) *created = true;
    if ((live_ + tombstones_ + 1) * 4 >= buckets_.size() * 3) {
      Rehash();
      // Rehash flushed tombstones and may have moved everything; re-probe
      // for the insert position (the key is known absent).
      mask = buckets_.size() - 1;
      insert_at = hash & mask;
      while (buckets_[insert_at] != kEmpty) {
        insert_at = (insert_at + 1) & mask;
      }
    } else if (buckets_[insert_at] == kTombstone) {
      --tombstones_;
    }
    int32_t slot = AllocateEntry(key, len, hash);
    buckets_[insert_at] = slot;
    ++live_;
    return &entries_[slot].value;
  }

  /// Erases the entry at `entry_index` (which must be alive). Its entry slot
  /// and key-pool region go on the free list for reuse.
  void EraseEntryAt(size_t entry_index) {
    Entry& e = entries_[entry_index];
    XCLEAN_CHECK(e.alive);
    size_t mask = buckets_.size() - 1;
    for (size_t i = e.hash & mask;; i = (i + 1) & mask) {
      XCLEAN_CHECK(buckets_[i] != kEmpty);
      if (buckets_[i] == static_cast<int32_t>(entry_index)) {
        buckets_[i] = kTombstone;
        break;
      }
    }
    e.alive = false;
    free_.push_back(static_cast<int32_t>(entry_index));
    --live_;
    ++tombstones_;
  }

  // --- Entry-index access (for iteration without allocating) -------------
  size_t entry_count() const { return entries_.size(); }
  bool entry_alive(size_t i) const { return entries_[i].alive; }
  const TokenId* entry_key(size_t i) const {
    return key_pool_.data() + entries_[i].key_offset;
  }
  size_t entry_key_len(size_t i) const { return entries_[i].key_len; }
  V& entry_value(size_t i) { return entries_[i].value; }
  const V& entry_value(size_t i) const { return entries_[i].value; }

  /// Calls fn(key, key_len, value) for every live entry.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].alive) {
        fn(key_pool_.data() + entries_[i].key_offset, entries_[i].key_len,
           entries_[i].value);
      }
    }
  }

 private:
  struct Entry {
    uint64_t hash = 0;
    uint32_t key_offset = 0;
    uint32_t key_len = 0;
    bool alive = false;
    V value{};
  };

  static constexpr int32_t kEmpty = -1;
  static constexpr int32_t kTombstone = -2;
  static constexpr size_t kInitialBuckets = 16;

  const Entry* FindEntry(const TokenId* key, size_t len) const {
    if (buckets_.empty()) return nullptr;
    uint64_t hash = HashCandidateTokens(key, len);
    size_t mask = buckets_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      int32_t slot = buckets_[i];
      if (slot == kEmpty) return nullptr;
      if (slot == kTombstone) continue;
      const Entry& e = entries_[slot];
      if (e.hash == hash && e.key_len == len &&
          std::equal(key, key + len, key_pool_.data() + e.key_offset)) {
        return &e;
      }
    }
  }

  int32_t AllocateEntry(const TokenId* key, size_t len, uint64_t hash) {
    // Prefer a freed entry whose key region has the right length (always
    // the case on the hot path, where all keys share the query length).
    for (size_t f = free_.size(); f > 0; --f) {
      int32_t idx = free_[f - 1];
      Entry& e = entries_[idx];
      if (e.key_len != len) continue;
      free_.erase(free_.begin() + (f - 1));
      std::copy(key, key + len, key_pool_.data() + e.key_offset);
      e.hash = hash;
      e.alive = true;
      e.value = V{};
      return idx;
    }
    Entry e;
    e.hash = hash;
    e.key_offset = static_cast<uint32_t>(key_pool_.size());
    e.key_len = static_cast<uint32_t>(len);
    e.alive = true;
    key_pool_.insert(key_pool_.end(), key, key + len);
    entries_.push_back(std::move(e));
    return static_cast<int32_t>(entries_.size() - 1);
  }

  void Rehash() {
    // Grow when live entries alone approach the load limit; otherwise the
    // pressure is tombstones (bounded-gamma eviction churn) and an in-place
    // flush restores headroom without allocating.
    size_t new_size = (live_ + 1) * 4 >= buckets_.size() * 3
                          ? buckets_.size() * 2
                          : buckets_.size();
    if (new_size != buckets_.size()) {
      buckets_.assign(new_size, kEmpty);
    } else {
      // Tombstone flush: refill the existing array, no allocation.
      std::fill(buckets_.begin(), buckets_.end(), kEmpty);
    }
    tombstones_ = 0;
    size_t mask = buckets_.size() - 1;
    for (size_t idx = 0; idx < entries_.size(); ++idx) {
      if (!entries_[idx].alive) continue;
      size_t i = entries_[idx].hash & mask;
      while (buckets_[i] != kEmpty) i = (i + 1) & mask;
      buckets_[i] = static_cast<int32_t>(idx);
    }
  }

  std::vector<int32_t> buckets_;
  std::vector<Entry> entries_;
  std::vector<TokenId> key_pool_;
  std::vector<int32_t> free_;
  size_t live_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_CANDIDATE_MAP_H_
