#include "core/log_correct.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace xclean {

LogCorrector::LogCorrector() : LogCorrector(Options()) {}

LogCorrector::LogCorrector(Options options)
    : options_(options),
      fastss_(FastSsIndex::Options{options.max_ed, 13}) {}

void LogCorrector::AddLogQuery(const std::vector<std::string>& words,
                               uint64_t count) {
  XCLEAN_CHECK(!frozen_);
  for (const std::string& word : words) {
    auto it = word_ids_.find(word);
    if (it == word_ids_.end()) {
      uint32_t id = static_cast<uint32_t>(words_.size());
      words_.push_back(word);
      popularity_.push_back(count);
      word_ids_.emplace(word, id);
    } else {
      popularity_[it->second] += count;
    }
  }
}

void LogCorrector::AddRewrite(const std::string& misspelling,
                              const std::string& correction) {
  XCLEAN_CHECK(!frozen_);
  rewrites_[misspelling] = correction;
}

void LogCorrector::Freeze() {
  XCLEAN_CHECK(!frozen_);
  frozen_ = true;
  fastss_.Build(words_);
}

std::vector<Suggestion> LogCorrector::Suggest(const Query& query) {
  XCLEAN_CHECK(frozen_);
  if (query.empty()) return {};

  Suggestion s;
  s.score = 1.0;
  s.error_weight = 1.0;
  bool corrected_all = true;
  for (const std::string& word : query.keywords) {
    // 1. Known log word: keep as-is.
    if (word_ids_.count(word) != 0) {
      s.words.push_back(word);
      continue;
    }
    // 2. Log-mined rewrite.
    auto rit = rewrites_.find(word);
    if (rit != rewrites_.end()) {
      s.words.push_back(rit->second);
      continue;
    }
    // 3. Popularity-greedy edit-distance correction.
    std::vector<FastSsIndex::Match> matches =
        fastss_.Find(word, options_.max_ed);
    if (matches.empty()) {
      // The engine has never seen anything like this word: it keeps it and
      // effectively offers no help on this keyword.
      s.words.push_back(word);
      corrected_all = false;
      continue;
    }
    auto channel_score = [&](const FastSsIndex::Match& m) {
      return static_cast<double>(popularity_[m.word_id]) *
             std::exp(-options_.distance_decay *
                      static_cast<double>(m.distance));
    };
    std::sort(matches.begin(), matches.end(),
              [&](const FastSsIndex::Match& a, const FastSsIndex::Match& b) {
                // Noisy-channel ranking dominated by popularity — the
                // documented bias — with a weak distance prior.
                double sa = channel_score(a), sb = channel_score(b);
                if (sa != sb) return sa > sb;
                if (a.distance != b.distance) return a.distance < b.distance;
                return fastss_.word(a.word_id) < fastss_.word(b.word_id);
              });
    s.words.push_back(fastss_.word(matches[0].word_id));
  }
  if (!corrected_all && s.words == query.keywords) {
    // Nothing changed and some words were unknown: the engine shows plain
    // results with no "did you mean".
    return {};
  }
  return {s};
}

}  // namespace xclean
