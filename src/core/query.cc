#include "core/query.h"

#include "common/string_util.h"

namespace xclean {

std::string Query::ToString() const { return Join(keywords, " "); }

Query ParseQuery(std::string_view text, const Tokenizer& tokenizer) {
  Query query;
  for (const std::string& word : SplitWhitespace(text)) {
    std::string normalized = tokenizer.NormalizeToken(word);
    if (!normalized.empty()) query.keywords.push_back(std::move(normalized));
  }
  return query;
}

Result<Query> ParseQueryBounded(std::string_view text,
                                const Tokenizer& tokenizer,
                                const QueryParseLimits& limits) {
  if (text.size() > limits.max_bytes) {
    return Status::InvalidArgument(
        "query of " + std::to_string(text.size()) + " bytes exceeds the " +
        std::to_string(limits.max_bytes) + "-byte input limit");
  }
  Query query = ParseQuery(text, tokenizer);
  if (query.size() > limits.max_keywords) {
    return Status::InvalidArgument(
        "query has " + std::to_string(query.size()) +
        " keywords, over the limit of " +
        std::to_string(limits.max_keywords));
  }
  return query;
}

std::string Suggestion::ToString() const { return Join(words, " "); }

}  // namespace xclean
