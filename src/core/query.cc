#include "core/query.h"

#include "common/string_util.h"

namespace xclean {

std::string Query::ToString() const { return Join(keywords, " "); }

Query ParseQuery(std::string_view text, const Tokenizer& tokenizer) {
  Query query;
  for (const std::string& word : SplitWhitespace(text)) {
    std::string normalized = tokenizer.NormalizeToken(word);
    if (!normalized.empty()) query.keywords.push_back(std::move(normalized));
  }
  return query;
}

std::string Suggestion::ToString() const { return Join(words, " "); }

}  // namespace xclean
