#include "core/suggester.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <type_traits>

#include "core/space_edit.h"
#include "xml/parser.h"

namespace xclean {

// Concurrency contract (relied on by serve/engine.h): a suggester is shared
// across server threads behind a shared_ptr<const XCleanSuggester>, never
// copied, and queried only through the const Suggest() overloads.
static_assert(!std::is_copy_constructible_v<XCleanSuggester> &&
                  !std::is_copy_assignable_v<XCleanSuggester>,
              "XCleanSuggester must not be copyable; share one instance");
static_assert(std::is_nothrow_move_constructible_v<XCleanSuggester>,
              "XCleanSuggester factories return by value");
// Fails to compile if either Suggest() overload loses its const qualifier.
[[maybe_unused]] constexpr auto kConstRawSuggest =
    static_cast<std::vector<Suggestion> (XCleanSuggester::*)(std::string_view)
                    const>(&XCleanSuggester::Suggest);
[[maybe_unused]] constexpr auto kConstQuerySuggest =
    static_cast<std::vector<Suggestion> (XCleanSuggester::*)(const Query&)
                    const>(&XCleanSuggester::Suggest);

XCleanSuggester::XCleanSuggester(std::unique_ptr<XmlIndex> index,
                                 SuggesterOptions options)
    : index_(std::move(index)), options_(options) {
  algorithm_ = std::make_unique<XClean>(*index_, options_.xclean);
}

Result<XCleanSuggester> XCleanSuggester::FromXmlString(
    std::string_view xml, SuggesterOptions options,
    IndexOptions index_options) {
  Result<XmlTree> tree = ParseXmlString(xml);
  if (!tree.ok()) return tree.status();
  XCleanSuggester suggester(
      XmlIndex::Build(std::move(tree).value(), index_options), options);
  suggester.index_->set_source_bytes(xml.size());
  return suggester;
}

Result<XCleanSuggester> XCleanSuggester::FromXmlFile(
    const std::string& path, SuggesterOptions options,
    IndexOptions index_options) {
  Result<XmlTree> tree = ParseXmlFile(path);
  if (!tree.ok()) return tree.status();
  return XCleanSuggester(
      XmlIndex::Build(std::move(tree).value(), index_options), options);
}

XCleanSuggester XCleanSuggester::FromTree(XmlTree tree,
                                          SuggesterOptions options,
                                          IndexOptions index_options) {
  return XCleanSuggester(XmlIndex::Build(std::move(tree), index_options),
                         options);
}

XCleanSuggester XCleanSuggester::FromIndex(std::unique_ptr<XmlIndex> index,
                                           SuggesterOptions options) {
  return XCleanSuggester(std::move(index), options);
}

std::vector<Suggestion> XCleanSuggester::Suggest(
    std::string_view query_text) const {
  return Suggest(ParseQuery(query_text, index_->tokenizer()));
}

std::vector<Suggestion> XCleanSuggester::Suggest(const Query& query) const {
  // Route through the stateless const entry point (no last_run_stats()
  // recording) so a shared suggester is safe under concurrent callers.
  return Suggest(query, nullptr);
}

std::vector<std::vector<Suggestion>> XCleanSuggester::SuggestBatch(
    const std::vector<std::string>& query_texts, QueryScratch* scratch,
    CancelToken* cancel, const QueryTuning* tuning) const {
  std::vector<Query> queries;
  queries.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    queries.push_back(ParseQuery(text, index_->tokenizer()));
  }
  return SuggestBatch(queries, scratch, cancel, tuning);
}

std::vector<std::vector<Suggestion>> XCleanSuggester::SuggestBatch(
    const std::vector<Query>& queries, QueryScratch* scratch,
    CancelToken* cancel, const QueryTuning* tuning) const {
  QueryScratch local;
  QueryScratch& shared = scratch != nullptr ? *scratch : local;
  std::vector<std::vector<Suggestion>> out;
  out.reserve(queries.size());
  for (const Query& query : queries) {
    if (cancel != nullptr && cancel->cancelled()) {
      // Batch budget exhausted on an earlier query: the rest come back
      // empty rather than unbudgeted.
      out.emplace_back();
      continue;
    }
    out.push_back(Suggest(query, &shared, cancel, tuning));
  }
  return out;
}

namespace {

/// Sums the work counters of `from` into `into` (the space-error path runs
/// the algorithm once per re-segmentation but reports one stats block).
void AccumulateStats(const XCleanRunStats& from, XCleanRunStats* into) {
  if (into == nullptr) return;
  into->subtrees_processed += from.subtrees_processed;
  into->occurrences_collected += from.occurrences_collected;
  into->candidates_enumerated += from.candidates_enumerated;
  into->entities_scored += from.entities_scored;
  into->result_type_computations += from.result_type_computations;
  into->accumulator_evictions += from.accumulator_evictions;
  into->accumulators_final += from.accumulators_final;
  if (from.truncated) {
    into->truncated = true;
    into->cancel_cause = from.cancel_cause;
  }
}

}  // namespace

std::vector<Suggestion> XCleanSuggester::Suggest(
    const Query& query, QueryScratch* scratch, CancelToken* cancel,
    const QueryTuning* tuning, XCleanRunStats* stats) const {
  QueryScratch local;
  QueryScratch& arena = scratch != nullptr ? *scratch : local;
  if (options_.space_tau == 0) {
    std::vector<Suggestion> out;
    algorithm_->SuggestWithScratch(query, arena, &out, stats, cancel, tuning);
    return out;
  }
  if (stats != nullptr) *stats = XCleanRunStats{};

  // Space-error extension: clean every admissible re-segmentation, penalize
  // by the number of space changes, and merge (deduplicating by suggestion
  // words — the same candidate can be reachable from several
  // segmentations; the best-scoring route wins).
  std::vector<Suggestion> merged;
  std::set<std::vector<std::string>> seen;
  std::vector<SpaceEdit> forms =
      ExpandSpaceEdits(query, index_->vocabulary(), options_.space_tau,
                       index_->tokenizer().options().min_token_length);
  std::vector<Suggestion> form_out;
  XCleanRunStats form_stats;
  for (const SpaceEdit& form : forms) {
    if (cancel != nullptr && cancel->cancelled()) break;
    double penalty =
        std::exp(-options_.space_penalty_beta * form.changes);
    algorithm_->SuggestWithScratch(form.query, arena, &form_out, &form_stats,
                                   cancel, tuning);
    AccumulateStats(form_stats, stats);
    for (Suggestion& s : form_out) {
      s.score *= penalty;
      s.error_weight *= penalty;
      if (seen.insert(s.words).second) merged.push_back(std::move(s));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Suggestion& a, const Suggestion& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.words < b.words;
            });
  size_t top_k = options_.xclean.top_k;
  if (tuning != nullptr) top_k = std::min(top_k, tuning->top_k);
  if (merged.size() > top_k) merged.resize(top_k);
  return merged;
}

}  // namespace xclean
