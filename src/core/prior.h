#ifndef XCLEAN_CORE_PRIOR_H_
#define XCLEAN_CORE_PRIOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/query.h"
#include "index/xml_index.h"

namespace xclean {

/// Non-uniform entity priors P(r_j | T) from a query log — the
/// generalization Sec. IV-B2 points at: "this can be easily generalized to
/// non-uniform priors if additional data or domain knowledge is available
/// (e.g., query logs)".
///
/// Each logged query credits the SLCA nodes of its keywords (the parts of
/// the document users actually asked about); an entity's prior weight is a
/// floor plus the total credit inside its subtree, so popular regions of
/// the document lift the candidates they answer. Weights are relative —
/// XClean's ranking only needs proportionality.
///
/// Usage:
///   LogEntityPrior prior(index);
///   prior.AddQuery(q1, 120);
///   prior.AddQuery(q2, 7);
///   prior.Finalize();
///   options.entity_prior = prior.AsFunction();   // prior must outlive it
class LogEntityPrior {
 public:
  /// `floor` is the weight of an entity no logged query ever touched;
  /// it keeps unseen content reachable (a zero floor would make the
  /// cleaner blind outside the log).
  explicit LogEntityPrior(const XmlIndex& index, double floor = 1.0);

  /// Records one logged query with its popularity. Keywords that are not
  /// vocabulary tokens are ignored; a query with no resolvable keywords
  /// contributes nothing.
  void AddQuery(const Query& query, uint64_t count);

  /// Aggregates credits into subtree weights. Must be called once, after
  /// the last AddQuery and before weight()/AsFunction().
  void Finalize();

  /// floor + total credit under `node`. Requires Finalize().
  double weight(NodeId node) const;

  /// Adapter for XCleanOptions::entity_prior. The returned function holds
  /// a pointer to this object, which must outlive it.
  std::function<double(NodeId)> AsFunction() const;

  uint64_t logged_queries() const { return logged_queries_; }

 private:
  const XmlIndex* index_;
  double floor_;
  std::vector<double> credit_;  // per node; subtree-aggregated by Finalize
  uint64_t logged_queries_ = 0;
  bool finalized_ = false;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_PRIOR_H_
