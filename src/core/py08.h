#ifndef XCLEAN_CORE_PY08_H_
#define XCLEAN_CORE_PY08_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.h"
#include "core/query.h"
#include "core/variant_gen.h"
#include "index/xml_index.h"

namespace xclean {

/// Tuning knobs for the PY08 baseline.
struct Py08Options {
  /// Edit distance threshold for variant generation (same space as XClean
  /// so the comparison is about scoring, not recall).
  uint32_t max_ed = 2;
  /// "The number of top segments that are computed for each partial query"
  /// (the paper's reuse of gamma for PY08, Table V): both the number of
  /// partial candidates kept per query prefix in the segmentation DP and
  /// the number of variant combinations scored per segment. 0 = unbounded.
  size_t gamma = 100;
  /// Maximum words in one segment (phrases longer than this are split).
  size_t max_segment_len = 3;
  size_t top_k = 10;
};

/// Reimplementation of the PY08 keyword-query-cleaning baseline ([2] in the
/// paper), adapted to XML exactly as Sec. VII-B describes: "this algorithm
/// treats each relational tuple as an independent document ... we adapt the
/// algorithm to work on XML data by treating each XML element as a
/// document". Scoring follows Sec. II:
///
///     score(C)      = Σ_{w∈C} score_IR(w) * f(w)
///     score_IR(w)   = max_t tfidf(w, t)
///     tfidf(w, t)   = count(w, t) / |t| * log(N / df(w))
///
/// f(w) is PY08's "fixed score for a given w": a spelling-similarity
/// factor, not a calibrated probability. We use the standard normalized
/// edit similarity f(w) = 1 - ed(q, w) / max(|q|, |w|), the PY08-era
/// choice; it decays far slower than XClean's exp(-beta*ed), which is part
/// of why the IR term dominates.
///
/// Evaluation procedure: like the original system, the query is cut into
/// contiguous *segments*; each candidate segment instantiation is scored by
/// a fresh pass over its variants' inverted lists (multi-word segments look
/// for single elements containing the whole phrase), and a left-to-right
/// dynamic program keeps the top gamma partial queries per prefix. These
/// repeated per-segment list passes are exactly why the paper measures PY08
/// 5-10x slower than XClean's single merged pass (Table VI).
///
/// The two biases the paper demonstrates fall straight out of the scoring:
/// rare tokens win (df sits in the idf), and segments are maximized
/// independently with no cross-segment connectivity requirement, so
/// suggested queries may have no results at all.
class Py08Cleaner : public QueryCleaner {
 public:
  Py08Cleaner(const XmlIndex& index, Py08Options options = Py08Options());

  std::vector<Suggestion> Suggest(const Query& query) override;
  std::string name() const override { return "PY08"; }

  /// Budgeted evaluation: every posting pass (score_IR scans, phrase
  /// passes) and segment instantiation is charged to `cancel`; when it
  /// trips, enumeration stops and the segmentation DP runs over whatever
  /// segments were scored (possibly yielding no full-length suggestion),
  /// with last_truncated() set.
  std::vector<Suggestion> SuggestWithBudget(const Query& query,
                                            CancelToken* cancel);

  const Py08Options& options() const { return options_; }

  /// Posting entries read by the last Suggest call (the repeated-pass I/O
  /// cost driving Table VI).
  uint64_t last_postings_read() const { return last_postings_read_; }
  /// True when the last call was stopped early by its CancelToken.
  bool last_truncated() const { return last_truncated_; }

  /// max_t tfidf(w, t): exposed for tests of the bias analysis.
  double ScoreIr(TokenId token) const;

  /// f(w) = 1 - ed / max(|observed|, |intended|).
  static double SpellingSimilarity(std::string_view observed,
                                   std::string_view intended,
                                   uint32_t edit_distance);

 private:
  /// One instantiation of a segment: concrete tokens plus its score.
  struct SegmentCandidate {
    std::vector<TokenId> tokens;
    double score = 0.0;          // Σ tfidf contributions, already weighted
    double similarity = 1.0;     // Π f(w)
  };

  /// Scores a multi-word segment instantiation with a fresh pass over the
  /// variants' posting lists: the best Σ_w tfidf(w, t) over elements t
  /// containing every word of the segment; 0 if no element does.
  double ScorePhrasePass(const std::vector<TokenId>& tokens) const;

  const XmlIndex* index_;
  Py08Options options_;
  VariantGenerator variant_gen_;
  mutable uint64_t last_postings_read_ = 0;
  bool last_truncated_ = false;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_PY08_H_
