#ifndef XCLEAN_CORE_NAIVE_H_
#define XCLEAN_CORE_NAIVE_H_

#include <string>
#include <vector>

#include "core/query.h"
#include "core/xclean.h"

namespace xclean {

/// The naive evaluation strategy the paper contrasts Algorithm 1 against
/// (Sec. V): "enumerate all candidate queries and score them one by one",
/// re-scanning every variant's full inverted list for every candidate it
/// appears in. Scores are mathematically identical to XClean with unbounded
/// accumulators (gamma = 0) — the equivalence test in
/// tests/xclean_equivalence_test.cc relies on this — but the I/O grows with
/// the number of candidates instead of staying one pass.
///
/// Reuses XCleanOptions; gamma is ignored (the naive scorer is exact),
/// entity_prior and both semantics are honored.
class NaiveCleaner : public QueryCleaner {
 public:
  NaiveCleaner(const XmlIndex& index, XCleanOptions options = XCleanOptions());

  std::vector<Suggestion> Suggest(const Query& query) override;
  std::string name() const override { return "Naive"; }

  /// Budgeted evaluation: charges one candidate per Cartesian entry and one
  /// posting per entry scanned; when `cancel` trips, the candidates scored
  /// so far are ranked and returned with last_truncated() set. An unlimited
  /// token gives results identical to Suggest(). The naive scorer exists as
  /// the differential oracle, so its budget hooks mirror XClean's — the
  /// oracle must survive the same adversarial queries the serving path does.
  std::vector<Suggestion> SuggestWithBudget(const Query& query,
                                            CancelToken* cancel);

  /// Candidates actually scored by the last Suggest call.
  uint64_t last_candidates() const { return last_candidates_; }
  /// Posting entries read by the last Suggest call (the repeated-I/O cost).
  uint64_t last_postings_read() const { return last_postings_read_; }
  /// True when the last call was stopped early by its CancelToken.
  bool last_truncated() const { return last_truncated_; }

  /// Safety valve for benchmarks: queries whose Cartesian candidate space
  /// exceeds this are skipped (Suggest returns empty and
  /// last_query_skipped() is set) — the naive strategy is exponential in
  /// the query length, which is the point being measured. 0 = no cap.
  void set_candidate_cap(uint64_t cap) { candidate_cap_ = cap; }
  bool last_query_skipped() const { return last_query_skipped_; }

 private:
  struct Scored {
    std::vector<TokenId> tokens;
    double sum = 0.0;
    double error_weight = 0.0;
    uint32_t entity_count = 0;
    PathId result_type = XmlTree::kInvalidPath;
    double n_entities = 0.0;
  };

  void ScoreCandidateNodeType(const std::vector<TokenId>& candidate,
                              Scored& out, CancelToken* cancel);
  void ScoreCandidateSlca(const std::vector<TokenId>& candidate, Scored& out,
                          CancelToken* cancel);

  const XmlIndex* index_;
  XCleanOptions options_;
  VariantGenerator variant_gen_;
  ErrorModel error_model_;
  LanguageModel language_model_;
  ResultTypeScorer type_scorer_;
  uint64_t last_candidates_ = 0;
  uint64_t last_postings_read_ = 0;
  uint64_t candidate_cap_ = 0;
  bool last_query_skipped_ = false;
  bool last_truncated_ = false;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_NAIVE_H_
