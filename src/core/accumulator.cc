#include "core/accumulator.h"

#include <cstring>
#include <limits>

#include "common/check.h"

namespace xclean {

std::string EncodeCandidate(const std::vector<TokenId>& tokens) {
  std::string key(tokens.size() * sizeof(TokenId), '\0');
  std::memcpy(key.data(), tokens.data(), key.size());
  return key;
}

std::vector<TokenId> DecodeCandidate(const std::string& key) {
  XCLEAN_CHECK(key.size() % sizeof(TokenId) == 0);
  std::vector<TokenId> tokens(key.size() / sizeof(TokenId));
  std::memcpy(tokens.data(), key.data(), key.size());
  return tokens;
}

CandidateState* AccumulatorTable::Find(const std::string& key) {
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : &it->second;
}

void AccumulatorTable::EvictLowest() {
  auto victim = table_.end();
  double lowest = std::numeric_limits<double>::infinity();
  for (auto it = table_.begin(); it != table_.end(); ++it) {
    double estimate = it->second.error_weight * it->second.sum;
    if (estimate < lowest) {
      lowest = estimate;
      victim = it;
    }
  }
  XCLEAN_CHECK(victim != table_.end());
  table_.erase(victim);
  ++evictions_;
}

CandidateState* AccumulatorTable::GetOrCreate(const std::string& key,
                                              double error_weight) {
  auto it = table_.find(key);
  if (it != table_.end()) return &it->second;
  if (gamma_ != 0 && table_.size() >= gamma_) EvictLowest();
  CandidateState state;
  state.error_weight = error_weight;
  auto [inserted, _] = table_.emplace(key, state);
  return &inserted->second;
}

}  // namespace xclean
