#include "core/accumulator.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace xclean {

std::string EncodeCandidate(const std::vector<TokenId>& tokens) {
  std::string key(tokens.size() * sizeof(TokenId), '\0');
  std::memcpy(key.data(), tokens.data(), key.size());
  return key;
}

std::vector<TokenId> DecodeCandidate(const std::string& key) {
  XCLEAN_CHECK(key.size() % sizeof(TokenId) == 0);
  std::vector<TokenId> tokens(key.size() / sizeof(TokenId));
  std::memcpy(tokens.data(), key.data(), key.size());
  return tokens;
}

void AccumulatorTable::EvictLowest() {
  size_t victim = SIZE_MAX;
  double lowest = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < map_.entry_count(); ++i) {
    if (!map_.entry_alive(i)) continue;
    const CandidateState& state = map_.entry_value(i);
    double estimate = state.error_weight * state.sum;
    if (estimate > lowest) continue;
    if (estimate == lowest && victim != SIZE_MAX) {
      // Deterministic tie-break: the lexicographically smallest candidate
      // token sequence loses.
      const TokenId* a = map_.entry_key(i);
      const TokenId* b = map_.entry_key(victim);
      if (!std::lexicographical_compare(a, a + map_.entry_key_len(i), b,
                                        b + map_.entry_key_len(victim))) {
        continue;
      }
    }
    lowest = estimate;
    victim = i;
  }
  XCLEAN_CHECK(victim != SIZE_MAX);
  map_.EraseEntryAt(victim);
  ++evictions_;
}

CandidateState* AccumulatorTable::GetOrCreate(const TokenId* key, size_t len,
                                              double error_weight) {
  if (CandidateState* state = map_.Find(key, len)) return state;
  if (gamma_ != 0 && map_.size() >= gamma_) EvictLowest();
  bool created = false;
  CandidateState* state = map_.GetOrCreate(key, len, &created);
  XCLEAN_CHECK(created);
  state->error_weight = error_weight;
  return state;
}

CandidateState* AccumulatorTable::GetOrCreate(const std::string& key,
                                              double error_weight) {
  std::vector<TokenId> tokens = DecodeCandidate(key);
  return GetOrCreate(tokens.data(), tokens.size(), error_weight);
}

CandidateState* AccumulatorTable::Find(const std::string& key) {
  std::vector<TokenId> tokens = DecodeCandidate(key);
  return Find(tokens.data(), tokens.size());
}

}  // namespace xclean
