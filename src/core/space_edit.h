#ifndef XCLEAN_CORE_SPACE_EDIT_H_
#define XCLEAN_CORE_SPACE_EDIT_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "index/vocabulary.h"

namespace xclean {

/// One re-segmentation of the input query obtained by inserting or
/// deleting spaces (Sec. VI-A), with the number of changes used.
struct SpaceEdit {
  Query query;
  uint32_t changes = 0;
};

/// Enumerates every re-segmentation of `query` reachable with at most `tau`
/// space changes (Sec. VI-A):
///
///  - deleting the space between two adjacent keywords merges them
///    ("power point" -> "powerpoint"),
///  - inserting a space inside a keyword splits it ("databasesystems" ->
///    "databases systems").
///
/// Following the paper, a change is only admitted if every token it creates
/// is in the vocabulary (most space changes produce invalid tokens, which
/// keeps the expansion cheap), and pieces shorter than min_token_length are
/// rejected (they could never have been indexed). The unmodified query is
/// always included with changes = 0. Results are deduplicated.
std::vector<SpaceEdit> ExpandSpaceEdits(const Query& query,
                                        const Vocabulary& vocabulary,
                                        uint32_t tau,
                                        size_t min_token_length = 3);

}  // namespace xclean

#endif  // XCLEAN_CORE_SPACE_EDIT_H_
