#ifndef XCLEAN_CORE_SUGGESTER_H_
#define XCLEAN_CORE_SUGGESTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "core/xclean.h"
#include "index/xml_index.h"

namespace xclean {

/// Facade configuration: the algorithm options plus the space-error
/// extension.
struct SuggesterOptions {
  XCleanOptions xclean;
  /// Maximum number of space insertions/deletions considered (tau of
  /// Sec. VI-A); 0 disables re-segmentation.
  uint32_t space_tau = 0;
  /// Penalty weight per space change: a re-segmented query's suggestions
  /// are discounted by exp(-space_penalty_beta * changes), mirroring the
  /// edit-error model (the paper leaves the relative weighting of error
  /// types to future work; this default treats a space change like one
  /// character edit).
  double space_penalty_beta = 5.0;
};

/// The top-level public API: owns the index and the algorithm, accepts raw
/// query strings, and (optionally) folds in the space-error extension.
///
///   auto suggester = XCleanSuggester::FromXmlString(xml);
///   if (!suggester.ok()) { ... }
///   for (const Suggestion& s : suggester->Suggest("tree icdt")) { ... }
class XCleanSuggester {
 public:
  /// Parses `xml` and builds the index.
  static Result<XCleanSuggester> FromXmlString(
      std::string_view xml, SuggesterOptions options = SuggesterOptions(),
      IndexOptions index_options = IndexOptions());

  /// Reads, parses and indexes an XML file.
  static Result<XCleanSuggester> FromXmlFile(
      const std::string& path, SuggesterOptions options = SuggesterOptions(),
      IndexOptions index_options = IndexOptions());

  /// Builds over an already-parsed tree.
  static XCleanSuggester FromTree(XmlTree tree,
                                  SuggesterOptions options = SuggesterOptions(),
                                  IndexOptions index_options = IndexOptions());

  /// Wraps an already-built index — typically one loaded from a snapshot
  /// file (index/index_io.h), the offline-build / online-serve split the
  /// serving engine's hot-swap path uses.
  static XCleanSuggester FromIndex(
      std::unique_ptr<XmlIndex> index,
      SuggesterOptions options = SuggesterOptions());

  /// Movable (so factories can return by value) but not copyable: the
  /// suggester owns the index, and concurrent users share one instance
  /// behind a shared_ptr instead of copying it.
  XCleanSuggester(XCleanSuggester&&) noexcept = default;
  XCleanSuggester& operator=(XCleanSuggester&&) noexcept = default;
  XCleanSuggester(const XCleanSuggester&) = delete;
  XCleanSuggester& operator=(const XCleanSuggester&) = delete;

  /// Top-k suggestions for a raw query string. With space_tau > 0, all
  /// re-segmentations within the budget are cleaned and their suggestion
  /// lists merged under the space penalty.
  ///
  /// Thread safety: const and touches no mutable state — the index is
  /// immutable after Build and the algorithm runs on caller-owned scratch
  /// (a stack-local one here), so any number of threads may call Suggest()
  /// on one shared instance concurrently. This is the contract the serving
  /// engine (serve/engine.h) relies on.
  std::vector<Suggestion> Suggest(std::string_view query_text) const;

  /// Structured entry point; same thread-safety contract.
  std::vector<Suggestion> Suggest(const Query& query) const;

  /// Structured entry point with a caller-owned scratch arena: repeated
  /// calls through one scratch reuse its buffers and memo tables, making
  /// steady-state suggestion allocation-free (core/query_scratch.h).
  /// `scratch` may be null (a stack-local one is used). Concurrent callers
  /// must use distinct scratches — the serving engine keeps one per worker
  /// thread.
  ///
  /// `cancel` (optional) threads a per-request budget into the algorithm
  /// (see XClean::SuggestWithScratch): when it trips, the best-effort
  /// partial top-k accumulated so far is returned and stats->truncated is
  /// set. With space_tau > 0, one token covers all re-segmentations.
  /// `tuning` (optional) caps max_ed/gamma/top_k for this request only
  /// (the serving engine's degraded tiers). `stats` (optional) receives
  /// the run counters, summed across re-segmentations.
  std::vector<Suggestion> Suggest(const Query& query, QueryScratch* scratch,
                                  CancelToken* cancel = nullptr,
                                  const QueryTuning* tuning = nullptr,
                                  XCleanRunStats* stats = nullptr) const;

  /// Evaluates a batch of raw query strings (or parsed queries) through one
  /// shared scratch: the batch costs one arena warm-up total instead of one
  /// per query, and repeated keywords across the batch hit the variant and
  /// result-type memos. Results are positional. Same thread-safety contract
  /// as Suggest(query, scratch). `cancel` (optional) covers the whole
  /// batch: once tripped, remaining queries return empty.
  std::vector<std::vector<Suggestion>> SuggestBatch(
      const std::vector<std::string>& query_texts,
      QueryScratch* scratch = nullptr, CancelToken* cancel = nullptr,
      const QueryTuning* tuning = nullptr) const;
  std::vector<std::vector<Suggestion>> SuggestBatch(
      const std::vector<Query>& queries, QueryScratch* scratch = nullptr,
      CancelToken* cancel = nullptr,
      const QueryTuning* tuning = nullptr) const;

  const XmlIndex& index() const { return *index_; }
  const XClean& algorithm() const { return *algorithm_; }
  /// Mutable access for the single-threaded experiment harness (needed for
  /// the stats-recording QueryCleaner::Suggest path); never use this on an
  /// instance shared across threads.
  XClean& mutable_algorithm() { return *algorithm_; }
  const SuggesterOptions& options() const { return options_; }

 private:
  XCleanSuggester(std::unique_ptr<XmlIndex> index, SuggesterOptions options);

  std::unique_ptr<XmlIndex> index_;
  std::unique_ptr<XClean> algorithm_;
  SuggesterOptions options_;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_SUGGESTER_H_
