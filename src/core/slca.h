#ifndef XCLEAN_CORE_SLCA_H_
#define XCLEAN_CORE_SLCA_H_

#include <vector>

#include "xml/tree.h"

namespace xclean {

/// Smallest Lowest Common Ancestors of l witness sets (the SLCA keyword
/// query semantics, Sec. VI-B): the nodes whose subtree contains at least
/// one witness from every set, and none of whose proper descendants does.
///
/// `lists` must be sorted ascending and duplicate-free; the result is
/// sorted ascending. Empty input or any empty list yields an empty result.
///
/// Algorithm: every qualifying node is an ancestor-or-self of some witness
/// in the smallest list, so the candidate set is the union of that list's
/// ancestor chains; containment per list is a binary search against the
/// candidate's preorder interval, and a final document-order sweep removes
/// non-minimal (ancestor) nodes. With per-subtree witness lists this is
/// O(|L_min| * depth * l * log|L|) — exact and cheap at the sizes the
/// XClean pass produces; the brute-force oracle in tests checks it.
std::vector<NodeId> ComputeSlcas(const XmlTree& tree,
                                 const std::vector<std::vector<NodeId>>& lists);

/// Reference implementation used by tests: O(n * l * log) scan of every
/// tree node. Exposed here so benches can also measure it.
std::vector<NodeId> ComputeSlcasBruteForce(
    const XmlTree& tree, const std::vector<std::vector<NodeId>>& lists);

}  // namespace xclean

#endif  // XCLEAN_CORE_SLCA_H_
