#include "core/naive.h"

#include <algorithm>
#include <map>

#include "core/elca.h"
#include "core/slca.h"

namespace xclean {

NaiveCleaner::NaiveCleaner(const XmlIndex& index, XCleanOptions options)
    : index_(&index),
      options_(options),
      variant_gen_(index,
                   VariantGenOptions{options.max_ed, options.include_soundex}),
      error_model_(options.beta),
      language_model_(index, options.mu),
      type_scorer_(index, options.reduction) {}

void NaiveCleaner::ScoreCandidateNodeType(
    const std::vector<TokenId>& candidate, Scored& out, CancelToken* cancel) {
  const XmlTree& tree = index_->tree();
  const size_t l = candidate.size();
  ResultTypeScorer::Choice choice =
      type_scorer_.FindResultType(candidate, options_.min_depth);
  if (choice.path == XmlTree::kInvalidPath) return;
  out.result_type = choice.path;
  out.n_entities = tree.path_node_count(choice.path);
  uint32_t entity_depth = tree.path_depth(choice.path);

  // One full scan of every keyword's inverted list per candidate — the
  // repeated I/O the XClean pass avoids.
  std::map<NodeId, std::vector<uint64_t>> entity_counts;
  for (size_t i = 0; i < l; ++i) {
    const PostingList& list = index_->postings(candidate[i]);
    last_postings_read_ += list.size();
    // Abandon the half-scanned candidate outright: a partially counted
    // entity map would score entities with missing keywords.
    if (cancel != nullptr && cancel->ChargePostings(list.size())) return;
    for (const Posting& p : list) {
      if (tree.depth(p.node) < entity_depth) continue;
      NodeId entity = tree.AncestorAtDepth(p.node, entity_depth);
      if (tree.path_id(entity) != choice.path) continue;
      auto [it, created] =
          entity_counts.try_emplace(entity, std::vector<uint64_t>(l, 0));
      it->second[i] += p.tf;
    }
  }
  for (const auto& [entity, counts] : entity_counts) {
    bool complete = true;
    for (size_t i = 0; i < l; ++i) {
      if (counts[i] == 0) {
        complete = false;
        break;
      }
    }
    if (!complete) continue;
    double prod = 1.0;
    for (size_t i = 0; i < l; ++i) {
      prod *= language_model_.ProbInEntity(candidate[i], counts[i], entity);
    }
    if (options_.entity_prior) prod *= options_.entity_prior(entity);
    out.sum += prod;
    out.entity_count += 1;
  }
}

void NaiveCleaner::ScoreCandidateSlca(const std::vector<TokenId>& candidate,
                                      Scored& out, CancelToken* cancel) {
  const XmlTree& tree = index_->tree();
  const size_t l = candidate.size();
  std::vector<std::vector<NodeId>> witness_lists(l);
  for (size_t i = 0; i < l; ++i) {
    const PostingList& list = index_->postings(candidate[i]);
    last_postings_read_ += list.size();
    if (cancel != nullptr && cancel->ChargePostings(list.size())) return;
    witness_lists[i].reserve(list.size());
    for (const Posting& p : list) witness_lists[i].push_back(p.node);
  }
  std::vector<NodeId> slcas = options_.semantics == Semantics::kSlca
                                  ? ComputeSlcas(tree, witness_lists)
                                  : ComputeElcas(tree, witness_lists);
  // The depth-d threshold prunes shallow (root-connected-only) entities in
  // XClean; the naive scorer applies the same rule for comparability.
  std::vector<NodeId> kept;
  for (NodeId e : slcas) {
    if (tree.depth(e) >= options_.min_depth) kept.push_back(e);
  }
  if (kept.empty()) return;
  out.n_entities = static_cast<double>(kept.size());
  for (NodeId entity : kept) {
    if (cancel != nullptr && cancel->ChargePostings(1)) return;
    NodeId end = tree.subtree_end(entity);
    double prod = 1.0;
    for (size_t i = 0; i < l; ++i) {
      const PostingList& list = index_->postings(candidate[i]);
      auto it = std::lower_bound(
          list.begin(), list.end(), entity,
          [](const Posting& p, NodeId target) { return p.node < target; });
      uint64_t count = 0;
      for (; it != list.end() && it->node <= end; ++it) count += it->tf;
      prod *= language_model_.ProbInEntity(candidate[i], count, entity);
    }
    if (options_.entity_prior) prod *= options_.entity_prior(entity);
    out.sum += prod;
    out.entity_count += 1;
  }
}

std::vector<Suggestion> NaiveCleaner::Suggest(const Query& query) {
  return SuggestWithBudget(query, nullptr);
}

std::vector<Suggestion> NaiveCleaner::SuggestWithBudget(const Query& query,
                                                        CancelToken* cancel) {
  last_candidates_ = 0;
  last_postings_read_ = 0;
  last_query_skipped_ = false;
  last_truncated_ = false;
  const size_t l = query.size();
  if (l == 0) return {};

  std::vector<std::vector<Variant>> variants(l);
  uint64_t space = 1;
  for (size_t i = 0; i < l; ++i) {
    variants[i] = variant_gen_.Generate(query.keywords[i]);
    if (variants[i].empty()) return {};
    space *= variants[i].size();
    if (candidate_cap_ != 0 && space > candidate_cap_) {
      last_query_skipped_ = true;
      return {};
    }
  }

  std::vector<Scored> scored;
  std::vector<size_t> odometer(l, 0);
  std::vector<TokenId> candidate(l);
  for (;;) {
    if (cancel != nullptr && cancel->ChargeCandidate()) {
      last_truncated_ = true;
      break;
    }
    double error_weight = 1.0;
    for (size_t i = 0; i < l; ++i) {
      candidate[i] = variants[i][odometer[i]].token;
      error_weight *=
          error_model_.Weight(variants[i][odometer[i]].distance);
    }
    ++last_candidates_;

    Scored s;
    s.tokens = candidate;
    s.error_weight = error_weight;
    if (options_.semantics == Semantics::kNodeType) {
      ScoreCandidateNodeType(candidate, s, cancel);
    } else {
      ScoreCandidateSlca(candidate, s, cancel);
    }
    if (s.entity_count > 0) scored.push_back(std::move(s));
    if (cancel != nullptr && cancel->cancelled()) {
      last_truncated_ = true;
      break;
    }

    size_t slot = l;
    bool done = false;
    while (slot > 0) {
      --slot;
      if (++odometer[slot] < variants[slot].size()) break;
      odometer[slot] = 0;
      if (slot == 0) done = true;
    }
    if (done) break;
  }

  std::vector<Suggestion> suggestions;
  suggestions.reserve(scored.size());
  for (Scored& s : scored) {
    Suggestion out;
    out.words.reserve(s.tokens.size());
    for (TokenId t : s.tokens) {
      out.words.push_back(index_->vocabulary().token(t));
    }
    out.error_weight = s.error_weight;
    out.entity_count = s.entity_count;
    out.result_type = s.result_type;
    double n = options_.entity_prior ? 1.0 : s.n_entities;
    out.score = s.error_weight * s.sum / n;
    suggestions.push_back(std::move(out));
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const Suggestion& a, const Suggestion& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.words < b.words;
            });
  if (suggestions.size() > options_.top_k) {
    suggestions.resize(options_.top_k);
  }
  return suggestions;
}

}  // namespace xclean
