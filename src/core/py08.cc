#include "core/py08.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

namespace xclean {

Py08Cleaner::Py08Cleaner(const XmlIndex& index, Py08Options options)
    : index_(&index),
      options_(options),
      variant_gen_(index, VariantGenOptions{options.max_ed, false}) {}

double Py08Cleaner::SpellingSimilarity(std::string_view observed,
                                       std::string_view intended,
                                       uint32_t edit_distance) {
  size_t longer = std::max(observed.size(), intended.size());
  if (longer == 0) return 1.0;
  return 1.0 -
         static_cast<double>(edit_distance) / static_cast<double>(longer);
}

double Py08Cleaner::ScoreIr(TokenId token) const {
  // score_IR(w) = max_t count(w,t)/|t| * log(N/df(w)), maximized by a full
  // scan of w's inverted list ("tuples" = text-bearing XML elements).
  const PostingList& list = index_->postings(token);
  last_postings_read_ += list.size();
  double idf = std::log(static_cast<double>(index_->text_node_count()) /
                        static_cast<double>(index_->doc_freq(token)));
  double best = 0.0;
  for (const Posting& p : list) {
    double tf_norm = static_cast<double>(p.tf) /
                     static_cast<double>(index_->node_token_count(p.node));
    best = std::max(best, tf_norm * idf);
  }
  return best;
}

double Py08Cleaner::ScorePhrasePass(const std::vector<TokenId>& tokens) const {
  // Drive the intersection from the shortest list, binary-searching the
  // others; every invocation re-reads the lists (no caching across
  // segments — this mirrors the original system's per-segment DB probes).
  size_t driver = 0;
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (index_->postings(tokens[i]).size() <
        index_->postings(tokens[driver]).size()) {
      driver = i;
    }
  }
  const PostingList& driver_list = index_->postings(tokens[driver]);
  last_postings_read_ += driver_list.size();

  std::vector<double> idf(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    idf[i] = std::log(static_cast<double>(index_->text_node_count()) /
                      static_cast<double>(index_->doc_freq(tokens[i])));
  }

  double best = 0.0;
  for (const Posting& dp : driver_list) {
    double sum = 0.0;
    bool all = true;
    for (size_t i = 0; i < tokens.size(); ++i) {
      const PostingList& list = index_->postings(tokens[i]);
      auto it = std::lower_bound(
          list.begin(), list.end(), dp.node,
          [](const Posting& p, NodeId n) { return p.node < n; });
      ++last_postings_read_;
      if (it == list.end() || it->node != dp.node) {
        all = false;
        break;
      }
      sum += static_cast<double>(it->tf) /
             static_cast<double>(index_->node_token_count(dp.node)) * idf[i];
    }
    if (all) best = std::max(best, sum);
  }
  return best;
}

std::vector<Suggestion> Py08Cleaner::Suggest(const Query& query) {
  return SuggestWithBudget(query, nullptr);
}

std::vector<Suggestion> Py08Cleaner::SuggestWithBudget(const Query& query,
                                                       CancelToken* cancel) {
  last_postings_read_ = 0;
  last_truncated_ = false;
  const size_t l = query.size();
  if (l == 0) return {};

  // Variants per keyword, with word-level contributions used to rank
  // segment instantiations before the expensive phrase passes.
  struct SlotVariant {
    TokenId token;
    double word_score;   // score_IR(w) * f(w)
    double similarity;   // f(w)
  };
  std::vector<std::vector<SlotVariant>> slots(l);
  for (size_t i = 0; i < l; ++i) {
    for (const Variant& v : variant_gen_.Generate(query.keywords[i])) {
      // Without every slot's variant list there is nothing sensible to
      // segment, so a budget tripped this early yields a truncated-empty
      // result (each ScoreIr call below is a full posting scan).
      if (cancel != nullptr &&
          cancel->ChargePostings(index_->postings(v.token).size())) {
        last_truncated_ = true;
        return {};
      }
      double similarity =
          SpellingSimilarity(query.keywords[i],
                             index_->vocabulary().token(v.token), v.distance);
      slots[i].push_back(
          SlotVariant{v.token, ScoreIr(v.token) * similarity, similarity});
    }
    if (slots[i].empty()) return {};
    std::sort(slots[i].begin(), slots[i].end(),
              [](const SlotVariant& a, const SlotVariant& b) {
                if (a.word_score != b.word_score) {
                  return a.word_score > b.word_score;
                }
                return a.token < b.token;
              });
  }

  // Segment candidates for every span [i, j): instantiations of the span's
  // keywords, scored by a fresh posting pass (multi-word spans require one
  // element to contain the whole phrase; spans that never co-occur are
  // dropped, except single words which always stand).
  const size_t cap = options_.gamma == 0 ? SIZE_MAX : options_.gamma;
  std::map<std::pair<size_t, size_t>, std::vector<SegmentCandidate>> segments;
  for (size_t begin = 0; begin < l && !last_truncated_; ++begin) {
    size_t max_end = std::min(l, begin + options_.max_segment_len);
    for (size_t end = begin + 1; end <= max_end && !last_truncated_; ++end) {
      std::vector<SegmentCandidate>& out = segments[{begin, end}];
      // Enumerate instantiations over the (descending-sorted) slot lists
      // with an odometer — first-slot-major order, so the gamma cap keeps
      // a good approximation of the top instantiations.
      std::vector<size_t> odo(end - begin, 0);
      for (;;) {
        if (cancel != nullptr && cancel->ChargeCandidate()) {
          // Keep the instantiations scored so far; the DP below makes the
          // best of the partial segment table.
          last_truncated_ = true;
          break;
        }
        SegmentCandidate cand;
        cand.tokens.reserve(end - begin);
        double word_sum = 0.0;
        for (size_t i = begin; i < end; ++i) {
          const SlotVariant& v = slots[i][odo[i - begin]];
          cand.tokens.push_back(v.token);
          cand.similarity *= v.similarity;
          word_sum += v.word_score;
        }
        if (end - begin == 1) {
          cand.score = word_sum;
        } else {
          const uint64_t before = last_postings_read_;
          double phrase = ScorePhrasePass(cand.tokens);
          if (cancel != nullptr) {
            cancel->ChargePostings(last_postings_read_ - before);
          }
          // Phrase must materialize in some element; weight by the
          // segment's spelling similarity.
          cand.score = phrase * cand.similarity;
        }
        if (end - begin == 1 || cand.score > 0.0) {
          out.push_back(std::move(cand));
        }
        if (out.size() >= cap) break;
        // Odometer.
        size_t slot = end - begin;
        bool done = false;
        while (slot > 0) {
          --slot;
          if (++odo[slot] < slots[begin + slot].size()) break;
          odo[slot] = 0;
          if (slot == 0) done = true;
        }
        if (done) break;
      }
      std::sort(out.begin(), out.end(),
                [](const SegmentCandidate& a, const SegmentCandidate& b) {
                  return a.score > b.score;
                });
    }
  }

  // Left-to-right segmentation DP keeping the top gamma partial queries
  // per prefix ("top segments computed for each partial query").
  struct Partial {
    std::vector<TokenId> tokens;
    double score = 0.0;
    double similarity = 1.0;
  };
  std::vector<std::vector<Partial>> dp(l + 1);
  dp[0].push_back(Partial{});
  for (size_t end = 1; end <= l; ++end) {
    std::vector<Partial>& bucket = dp[end];
    for (size_t begin = end < options_.max_segment_len
                            ? 0
                            : end - options_.max_segment_len;
         begin < end; ++begin) {
      auto seg_it = segments.find({begin, end});
      if (seg_it == segments.end()) continue;
      for (const Partial& prefix : dp[begin]) {
        for (const SegmentCandidate& seg : seg_it->second) {
          Partial next;
          next.tokens = prefix.tokens;
          next.tokens.insert(next.tokens.end(), seg.tokens.begin(),
                             seg.tokens.end());
          next.score = prefix.score + seg.score;
          next.similarity = prefix.similarity * seg.similarity;
          bucket.push_back(std::move(next));
        }
      }
    }
    std::sort(bucket.begin(), bucket.end(),
              [](const Partial& a, const Partial& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.tokens < b.tokens;
              });
    // Dedupe identical token sequences reached via different segmentations
    // (keep the best-scoring route).
    std::vector<Partial> unique;
    for (Partial& p : bucket) {
      bool dup = false;
      for (const Partial& u : unique) {
        if (u.tokens == p.tokens) {
          dup = true;
          break;
        }
      }
      if (!dup) unique.push_back(std::move(p));
      if (unique.size() >= cap) break;
    }
    bucket = std::move(unique);
  }

  std::vector<Suggestion> suggestions;
  for (const Partial& p : dp[l]) {
    if (suggestions.size() >= options_.top_k) break;
    Suggestion s;
    s.score = p.score;
    s.error_weight = p.similarity;
    s.words.reserve(p.tokens.size());
    for (TokenId t : p.tokens) {
      s.words.push_back(index_->vocabulary().token(t));
    }
    // PY08 performs no connectivity / result check across segments:
    // result_type stays invalid and entity_count 0 — suggestions may have
    // empty results.
    suggestions.push_back(std::move(s));
  }
  return suggestions;
}

}  // namespace xclean
