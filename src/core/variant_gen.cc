#include "core/variant_gen.h"

#include <algorithm>

#include "common/check.h"
#include "text/soundex.h"

namespace xclean {

VariantGenerator::VariantGenerator(const XmlIndex& index,
                                   VariantGenOptions options)
    : index_(&index), options_(options) {
  XCLEAN_CHECK(options_.max_ed <= index.fastss().options().max_ed);
  if (options_.include_soundex) {
    const Vocabulary& vocab = index.vocabulary();
    for (TokenId id = 0; id < vocab.size(); ++id) {
      std::string code = Soundex(vocab.token(id));
      if (!code.empty()) soundex_buckets_[code].push_back(id);
    }
  }
}

std::vector<Variant> VariantGenerator::Generate(
    const std::string& keyword) const {
  std::vector<Variant> out;
  for (const FastSsIndex::Match& m :
       index_->fastss().Find(keyword, options_.max_ed)) {
    out.push_back(Variant{m.word_id, m.distance});
  }
  if (options_.include_soundex) {
    std::string code = Soundex(keyword);
    auto it = soundex_buckets_.find(code);
    if (it != soundex_buckets_.end()) {
      for (TokenId id : it->second) {
        bool already = false;
        for (const Variant& v : out) {
          if (v.token == id) {
            already = true;
            break;
          }
        }
        if (!already) out.push_back(Variant{id, options_.max_ed});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Variant& a, const Variant& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.token < b.token);
  });
  return out;
}

}  // namespace xclean
