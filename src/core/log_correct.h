#ifndef XCLEAN_CORE_LOG_CORRECT_H_
#define XCLEAN_CORE_LOG_CORRECT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "text/fastss.h"

namespace xclean {

/// Proxy for the commercial search engines (SE1/SE2) of the paper's
/// evaluation (Sec. VII-B). The engines could not be reimplemented, but the
/// paper attributes their behaviour to query-log use: near-perfect on clean
/// queries (they know which queries are real), better on RULE misspellings
/// (common human misspellings appear in logs with their corrections) than
/// on random edits, biased toward popular queries, and returning at most
/// one suggestion (so their measured MRR is a lower bound).
///
/// This corrector reproduces exactly those mechanisms:
///  - a log vocabulary with popularity counts, built from a query log,
///  - a learned rewrite table (misspelling -> correction), standing in for
///    log-mined correction pairs,
///  - per-word correction: a word in the log vocabulary is kept; otherwise
///    the rewrite table is consulted; otherwise the most popular log word
///    within the edit threshold wins (the popularity bias the paper
///    criticizes: "a rare word in a correct query may be corrected to a
///    similar word that appears more often in the log"),
///  - at most one suggestion, with no database access at all.
class LogCorrector : public QueryCleaner {
 public:
  struct Options {
    uint32_t max_ed = 2;
    /// Noisy-channel mixing: candidate corrections are ranked by
    /// popularity * exp(-distance_decay * ed). Small decay = the raw
    /// popularity bias the paper criticizes; engines in practice mix in a
    /// weak distance prior.
    double distance_decay = 1.0;
    std::string display_name = "SE-proxy";
  };

  LogCorrector();
  explicit LogCorrector(Options options);

  /// Registers a logged query with a popularity weight.
  void AddLogQuery(const std::vector<std::string>& words, uint64_t count);

  /// Registers a log-mined rewrite pair.
  void AddRewrite(const std::string& misspelling,
                  const std::string& correction);

  /// Freezes the log (builds the FastSS structure). Must be called after
  /// the last AddLogQuery/AddRewrite and before Suggest.
  void Freeze();

  std::vector<Suggestion> Suggest(const Query& query) override;
  std::string name() const override { return options_.display_name; }

  size_t log_vocabulary_size() const { return words_.size(); }

 private:
  Options options_;
  std::vector<std::string> words_;
  std::vector<uint64_t> popularity_;
  std::unordered_map<std::string, uint32_t> word_ids_;
  std::unordered_map<std::string, std::string> rewrites_;
  FastSsIndex fastss_;
  bool frozen_ = false;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_LOG_CORRECT_H_
