#ifndef XCLEAN_CORE_ACCUMULATOR_H_
#define XCLEAN_CORE_ACCUMULATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/vocabulary.h"
#include "xml/tree.h"

namespace xclean {

/// Candidate queries are encoded as byte strings (l * 4 bytes of TokenId)
/// so they can key hash tables without a custom hasher.
std::string EncodeCandidate(const std::vector<TokenId>& tokens);
std::vector<TokenId> DecodeCandidate(const std::string& key);

/// Per-candidate score accumulator state.
struct CandidateState {
  /// Σ_j Π_w P(w | D(r_j)) over the entities processed so far (the sum of
  /// Eq. 8 before the 1/N prior).
  double sum = 0.0;
  /// P(Q|C): the error-model weight of this candidate.
  double error_weight = 0.0;
  /// Entities that contributed (each contains every keyword of C).
  uint32_t entity_count = 0;
};

/// The paper's bounded in-memory accumulator table (Sec. V-D): at most
/// gamma candidate queries hold score accumulators. When a new candidate
/// arrives and the table is full, the victim is the candidate whose
/// estimated final score — error_weight * sum, i.e. P(Q|C) times the
/// partial P(C|T) mass observed so far (Hoeffding sample-mean estimate) —
/// is lowest. An evicted candidate that reappears restarts from zero; the
/// probabilistic argument is that low-partial-score candidates are unlikely
/// to reach the top-k.
class AccumulatorTable {
 public:
  /// gamma = 0 means unbounded (exact evaluation).
  explicit AccumulatorTable(size_t gamma) : gamma_(gamma) {}

  /// Accumulator for `key`, creating (and possibly evicting) as needed.
  /// The returned pointer is invalidated by the next GetOrCreate call.
  /// `error_weight` is stored on creation.
  CandidateState* GetOrCreate(const std::string& key, double error_weight);

  /// Accumulator for `key` if present.
  CandidateState* Find(const std::string& key);

  size_t size() const { return table_.size(); }
  uint64_t eviction_count() const { return evictions_; }

  const std::unordered_map<std::string, CandidateState>& entries() const {
    return table_;
  }

 private:
  void EvictLowest();

  size_t gamma_;
  uint64_t evictions_ = 0;
  std::unordered_map<std::string, CandidateState> table_;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_ACCUMULATOR_H_
