#ifndef XCLEAN_CORE_ACCUMULATOR_H_
#define XCLEAN_CORE_ACCUMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/candidate_map.h"
#include "index/vocabulary.h"
#include "xml/tree.h"

namespace xclean {

/// Candidate queries are encoded as byte strings (l * 4 bytes of TokenId)
/// where a string-keyed container is convenient (tests, diagnostics). The
/// hot path keys tables by the raw TokenId sequence instead.
std::string EncodeCandidate(const std::vector<TokenId>& tokens);
std::vector<TokenId> DecodeCandidate(const std::string& key);

/// Per-candidate score accumulator state.
struct CandidateState {
  /// Σ_j Π_w P(w | D(r_j)) over the entities processed so far (the sum of
  /// Eq. 8 before the 1/N prior).
  double sum = 0.0;
  /// P(Q|C): the error-model weight of this candidate.
  double error_weight = 0.0;
  /// Entities that contributed (each contains every keyword of C).
  uint32_t entity_count = 0;
};

/// One candidate's accumulator state exported from a partial evaluation —
/// the unit a scatter-gather coordinator merges. Because P(C|T) is a sum
/// over entities (Eq. 8) and every entity lives in exactly one shard,
/// per-shard partials combine by plain addition of `sum`, `entity_count`
/// and `lca_total`; `error_weight` and `result_type` are functions of the
/// candidate and the *global* statistics, so equal across shards. The
/// normalizer N is applied only after the merge: the global path node
/// count for node-type semantics, Σ lca_total for SLCA/ELCA.
struct PartialCandidate {
  /// Candidate token sequence in the global vocabulary
  /// (delta::MergedStats ids).
  std::vector<TokenId> tokens;
  /// P(Q|C); identical on every shard (a string property of C and Q).
  double error_weight = 0.0;
  /// This shard's share of Σ_j Π_w P(w | D(r_j)).
  double sum = 0.0;
  /// Entities of this shard that contributed.
  uint32_t entity_count = 0;
  /// This shard's contribution to the SLCA/ELCA normalizer N (0 under
  /// node-type semantics, where N is the global path node count).
  uint32_t lca_total = 0;
  /// Globally-chosen result type (node-type semantics only). Shards share
  /// the merged type lists, so every shard reports the same choice for the
  /// same candidate.
  PathId result_type = XmlTree::kInvalidPath;
};

/// The paper's bounded in-memory accumulator table (Sec. V-D): at most
/// gamma candidate queries hold score accumulators. When a new candidate
/// arrives and the table is full, the victim is the candidate whose
/// estimated final score — error_weight * sum, i.e. P(Q|C) times the
/// partial P(C|T) mass observed so far (Hoeffding sample-mean estimate) —
/// is lowest; ties break to the lexicographically smallest candidate token
/// sequence (pinned by a regression test: the victim choice is part of the
/// algorithm's observable behavior under gamma pruning). An evicted
/// candidate that reappears restarts from zero; the probabilistic argument
/// is that low-partial-score candidates are unlikely to reach the top-k.
///
/// Storage is a flat open-addressing table (CandidateMap) whose backing
/// arrays survive Reset(), so a QueryScratch-owned instance allocates only
/// while warming up.
class AccumulatorTable {
 public:
  /// gamma = 0 means unbounded (exact evaluation).
  explicit AccumulatorTable(size_t gamma) : gamma_(gamma) {}

  /// Drops all entries and the eviction counter but keeps the backing
  /// storage; `gamma` may change between runs.
  void Reset(size_t gamma) {
    gamma_ = gamma;
    evictions_ = 0;
    map_.Clear();
  }

  /// Accumulator for the candidate token sequence, creating (and possibly
  /// evicting) as needed. The returned pointer is invalidated by the next
  /// GetOrCreate call. `error_weight` is stored on creation.
  CandidateState* GetOrCreate(const TokenId* key, size_t len,
                              double error_weight);

  /// Accumulator for the candidate if present.
  CandidateState* Find(const TokenId* key, size_t len) {
    return map_.Find(key, len);
  }

  /// Folds one exported partial into the table: gets-or-creates the
  /// candidate's accumulator and adds the partial's probability mass and
  /// entity count. Partials must be merged in a deterministic order (the
  /// coordinator merges shards in ascending shard id) so the floating-point
  /// summation is reproducible run to run. Returns the merged state.
  CandidateState* MergePartial(const TokenId* key, size_t len,
                               double error_weight, double sum,
                               uint32_t entity_count) {
    CandidateState* state = GetOrCreate(key, len, error_weight);
    state->sum += sum;
    state->entity_count += entity_count;
    return state;
  }

  /// String-keyed conveniences over EncodeCandidate keys (tests and
  /// non-hot-path callers).
  CandidateState* GetOrCreate(const std::string& key, double error_weight);
  CandidateState* Find(const std::string& key);

  size_t size() const { return map_.size(); }
  uint64_t eviction_count() const { return evictions_; }

  /// Calls fn(key, key_len, state) for every live accumulator.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach(fn);
  }

 private:
  void EvictLowest();

  size_t gamma_;
  uint64_t evictions_ = 0;
  CandidateMap<CandidateState> map_;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_ACCUMULATOR_H_
