#ifndef XCLEAN_CORE_QUERY_SCRATCH_H_
#define XCLEAN_CORE_QUERY_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/accumulator.h"
#include "core/candidate_map.h"
#include "core/variant_gen.h"
#include "index/merged_list.h"
#include "lm/result_type.h"

namespace xclean {

namespace delta {
class LayeredXClean;
}  // namespace delta

/// Reusable per-query arena for the XClean hot path: owns the merged-list
/// heads and heap storage, the per-slot occurrence buffers, the candidate
/// key buffer, and the AccumulatorTable backing store, plus two cross-query
/// memo tables (variant lists per keyword, result-type choices per
/// candidate). A warmed-up scratch makes steady-state Suggest() calls with
/// zero heap allocation (asserted by tests/zero_alloc_test.cc for the
/// node-type semantics; the LCA semantics still allocate inside the
/// SLCA/ELCA computations).
///
/// Usage: pass one instance to XClean::SuggestWithScratch /
/// XCleanSuggester::Suggest(query, &scratch) across many queries. A scratch
/// binds to the first XClean instance that uses it; when a *different*
/// instance (new options or a hot-swapped index) picks it up, the memo
/// tables are dropped automatically — this is how serving threads keep a
/// thread_local scratch across index swaps without ever serving stale
/// statistics.
///
/// Thread safety: none. One scratch belongs to one thread at a time.
class QueryScratch {
 public:
  QueryScratch() = default;
  QueryScratch(QueryScratch&&) noexcept = default;
  QueryScratch& operator=(QueryScratch&&) noexcept = default;
  QueryScratch(const QueryScratch&) = delete;
  QueryScratch& operator=(const QueryScratch&) = delete;

  /// Drops all cached state and releases the arena storage.
  void Clear() { *this = QueryScratch(); }

  /// Cross-query memo sizes (diagnostics / tests).
  size_t variant_cache_entries() const { return variant_cache_.size(); }
  size_t type_cache_entries() const { return type_cache_.size(); }

  /// Caps on the cross-query memo tables: when one outgrows its cap at the
  /// start of a query it is dropped wholesale and re-warmed by subsequent
  /// queries. Bounds the footprint of a long-lived (e.g. thread_local)
  /// scratch without per-entry LRU bookkeeping.
  static constexpr size_t kMaxVariantCacheEntries = 8192;
  static constexpr size_t kMaxTypeCacheEntries = 1u << 17;

  /// Process-unique epoch source shared by every algorithm that binds
  /// scratches (XClean and delta::LayeredXClean). A single counter
  /// guarantees two algorithm instances can never collide on an epoch, so
  /// a scratch handed from one to the other always detects the change and
  /// drops its memo tables. 0 is reserved for "unbound".
  static uint64_t NextEpoch();

 private:
  friend class XClean;
  friend class delta::LayeredXClean;

  /// One occurrence of a variant inside the current subtree.
  struct OccInfo {
    NodeId node;
    uint32_t tf;
  };

  /// Occurrences of one (slot, rank) bucket aggregated per entity at some
  /// depth: the entity, its label path, and the summed term frequency.
  /// Lists are ascending by entity (buckets are node-ascending and
  /// AncestorAtDepth is monotone), so candidate scoring intersects them
  /// linearly.
  struct EntityAgg {
    NodeId entity;
    PathId path;
    uint64_t tf;
  };

  /// Sentinel for Slot::agg_depth: the rank's aggregation is stale.
  static constexpr uint32_t kNoAggDepth = 0xFFFFFFFFu;

  /// First index >= p with list[index].entity >= target (or list.size()).
  /// Short linear probe for the common 0-2-entry advance, then galloping +
  /// binary search — same result as the plain linear scan the l-way
  /// intersection loops used to run, but logarithmic when a candidate's
  /// lists are far apart (large subtrees, RULE variant fanouts).
  static size_t AdvanceAgg(const std::vector<EntityAgg>& list, size_t p,
                           NodeId target) {
    const size_t n = list.size();
    for (size_t probe = 0; probe < 4; ++probe, ++p) {
      if (p >= n || list[p].entity >= target) return p;
    }
    size_t step = 4;
    while (p + step < n && list[p + step].entity < target) {
      p += step;
      step <<= 1;
    }
    size_t hi = p + step < n ? p + step : n;
    while (p < hi) {
      const size_t mid = p + (hi - p) / 2;
      if (list[mid].entity < target) {
        p = mid + 1;
      } else {
        hi = mid;
      }
    }
    return p;
  }

  /// Per-keyword-slot state: the variant list (sorted by token; index =
  /// the variant's rank and its MergedList member id), the merged list, and
  /// the current subtree's occurrences bucketed by rank. `active_ranks`
  /// lists the ranks with a non-empty bucket — the invariant maintained
  /// everywhere is: occ_by_rank[r] non-empty implies r is in active_ranks,
  /// so clearing active buckets is O(what was used). `agg_by_rank[r]` memos
  /// the bucket's per-entity aggregation at depth `agg_depth[r]` (stale =
  /// kNoAggDepth): candidates sharing a variant rank and result-type depth
  /// within one subtree attribute occurrences to entities once, not per
  /// candidate.
  struct Slot {
    std::vector<Variant> variants;
    MergedList merged;
    std::vector<std::vector<OccInfo>> occ_by_rank;
    std::vector<uint32_t> active_ranks;
    std::vector<std::vector<EntityAgg>> agg_by_rank;
    std::vector<uint32_t> agg_depth;
  };

  /// One scored candidate at final-ranking time; `key` points into the
  /// accumulator table's key pool (stable until the next query).
  struct FinalEntry {
    double score;
    double error_weight;
    uint32_t entity_count;
    PathId result_type;
    const TokenId* key;
    uint32_t key_len;
  };

  /// Epoch of the XClean instance the memo tables belong to; 0 = unbound.
  uint64_t bound_epoch_ = 0;

  // Cross-query memos (valid only for the bound instance).
  std::unordered_map<std::string, std::vector<Variant>> variant_cache_;
  CandidateMap<ResultTypeScorer::Choice> type_cache_;

  // Per-query arenas; reset (capacity retained) at the start of every run.
  std::vector<Slot> slots_;
  AccumulatorTable accumulators_{0};
  CandidateMap<uint32_t> slca_totals_;
  std::vector<TokenId> candidate_;
  std::vector<size_t> odometer_;
  std::vector<const std::vector<EntityAgg>*> agg_lists_;
  std::vector<size_t> agg_pos_;
  std::vector<std::vector<NodeId>> witness_lists_;
  std::vector<FinalEntry> finals_;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_QUERY_SCRATCH_H_
