#include "core/elca.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace xclean {

namespace {

bool ContainsInRange(const std::vector<NodeId>& list, NodeId lo, NodeId hi) {
  auto it = std::lower_bound(list.begin(), list.end(), lo);
  return it != list.end() && *it <= hi;
}

/// All nodes whose subtree contains at least one witness from every list
/// ("full" nodes). Candidates are the ancestor chains of the smallest
/// list's witnesses, as in ComputeSlcas.
std::unordered_set<NodeId> FullNodes(
    const XmlTree& tree, const std::vector<std::vector<NodeId>>& lists) {
  size_t smallest = 0;
  for (size_t i = 0; i < lists.size(); ++i) {
    if (lists[i].size() < lists[smallest].size()) smallest = i;
  }
  std::unordered_set<NodeId> seen;
  std::unordered_set<NodeId> full;
  for (NodeId witness : lists[smallest]) {
    NodeId cur = witness;
    for (;;) {
      if (!seen.insert(cur).second) break;
      bool all = true;
      for (size_t i = 0; i < lists.size(); ++i) {
        if (i == smallest) continue;
        if (!ContainsInRange(lists[i], cur, tree.subtree_end(cur))) {
          all = false;
          break;
        }
      }
      if (all) full.insert(cur);
      if (cur == tree.root()) break;
      cur = tree.parent(cur);
    }
  }
  return full;
}

}  // namespace

std::vector<NodeId> ComputeElcas(
    const XmlTree& tree, const std::vector<std::vector<NodeId>>& lists) {
  if (lists.empty()) return {};
  for (const auto& list : lists) {
    if (list.empty()) return {};
  }
  std::unordered_set<NodeId> full = FullNodes(tree, lists);
  if (full.empty()) return {};

  // Assign each witness to its lowest full ancestor-or-self and record
  // which sets reached each full node exclusively.
  std::unordered_map<NodeId, std::vector<bool>> exclusive;
  for (size_t i = 0; i < lists.size(); ++i) {
    for (NodeId witness : lists[i]) {
      NodeId cur = witness;
      for (;;) {
        if (full.count(cur) != 0) {
          auto [it, created] =
              exclusive.try_emplace(cur, std::vector<bool>(lists.size()));
          it->second[i] = true;
          break;
        }
        if (cur == tree.root()) break;
        cur = tree.parent(cur);
      }
    }
  }

  std::vector<NodeId> out;
  for (const auto& [node, slots] : exclusive) {
    bool all = true;
    for (bool b : slots) all = all && b;
    if (all) out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> ComputeElcasBruteForce(
    const XmlTree& tree, const std::vector<std::vector<NodeId>>& lists) {
  if (lists.empty()) return {};
  for (const auto& list : lists) {
    if (list.empty()) return {};
  }
  // Full nodes by direct scan.
  std::vector<bool> full(tree.size(), false);
  for (NodeId v = 0; v < tree.size(); ++v) {
    bool all = true;
    for (const auto& list : lists) {
      if (!ContainsInRange(list, v, tree.subtree_end(v))) {
        all = false;
        break;
      }
    }
    full[v] = all;
  }
  std::vector<NodeId> out;
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (!full[v]) continue;
    bool elca = true;
    for (const auto& list : lists) {
      bool has_exclusive_witness = false;
      for (NodeId w : list) {
        if (w < v || w > tree.subtree_end(v)) continue;
        // Check no full node strictly below v on the path to w.
        bool blocked = false;
        for (NodeId cur = w; cur != v; cur = tree.parent(cur)) {
          if (full[cur]) {
            blocked = true;
            break;
          }
        }
        if (!blocked) {
          has_exclusive_witness = true;
          break;
        }
      }
      if (!has_exclusive_witness) {
        elca = false;
        break;
      }
    }
    if (elca) out.push_back(v);
  }
  return out;
}

}  // namespace xclean
