#include "core/xclean.h"

#include <algorithm>

#include "common/check.h"
#include "common/fault_injection.h"
#include "core/elca.h"
#include "core/slca.h"
#include "index/merged_list.h"

namespace xclean {

namespace {

/// Sum of tf of `occ` entries whose node lies in [lo, hi]; occ is sorted by
/// node.
template <typename OccVec>
uint64_t SumTfInRange(const OccVec& occ, NodeId lo, NodeId hi) {
  auto it = std::lower_bound(
      occ.begin(), occ.end(), lo,
      [](const auto& o, NodeId target) { return o.node < target; });
  uint64_t sum = 0;
  for (; it != occ.end() && it->node <= hi; ++it) sum += it->tf;
  return sum;
}

}  // namespace

XClean::XClean(const XmlIndex& index, XCleanOptions options)
    : index_(&index),
      options_(options),
      variant_gen_(index,
                   VariantGenOptions{options.max_ed, options.include_soundex}),
      error_model_(options.beta),
      language_model_(index, options.mu),
      type_scorer_(index, options.reduction),
      epoch_(QueryScratch::NextEpoch()),
      own_scratch_(std::make_unique<QueryScratch>()) {
  if (options_.lm_stats_cache) {
    lm_stats_ = std::make_unique<LmStatsCache>(index, options_.mu);
  }
  edit_weight_.reserve(options_.max_ed + 1);
  for (uint32_t d = 0; d <= options_.max_ed; ++d) {
    edit_weight_.push_back(error_model_.Weight(d));
  }
}

std::string XClean::name() const {
  switch (options_.semantics) {
    case Semantics::kNodeType:
      return "XClean";
    case Semantics::kSlca:
      return "XClean-SLCA";
    default:
      return "XClean-ELCA";
  }
}

std::vector<Suggestion> XClean::Suggest(const Query& query) {
  std::vector<Suggestion> out;
  SuggestWithScratch(query, *own_scratch_, &out, &stats_);
  return out;
}

std::vector<Suggestion> XClean::SuggestWithStats(const Query& query,
                                                 XCleanRunStats* stats) const {
  QueryScratch scratch;
  std::vector<Suggestion> out;
  SuggestWithScratch(query, scratch, &out, stats);
  return out;
}

std::vector<std::vector<Suggestion>> XClean::SuggestBatch(
    const std::vector<Query>& queries, QueryScratch* scratch,
    std::vector<XCleanRunStats>* stats, CancelToken* cancel,
    const QueryTuning* tuning) const {
  QueryScratch local;
  QueryScratch& shared = scratch != nullptr ? *scratch : local;
  if (stats != nullptr) stats->assign(queries.size(), XCleanRunStats{});
  std::vector<std::vector<Suggestion>> out(queries.size());
  std::vector<Suggestion> buf;
  for (size_t i = 0; i < queries.size(); ++i) {
    XCleanRunStats* query_stats = stats != nullptr ? &(*stats)[i] : nullptr;
    if (cancel != nullptr && cancel->cancelled()) {
      // The batch budget tripped on an earlier query: the rest are
      // explicitly truncated-empty rather than silently skipped.
      if (query_stats != nullptr) {
        query_stats->truncated = true;
        query_stats->cancel_cause = cancel->cause();
      }
      out[i].clear();
      continue;
    }
    SuggestWithScratch(queries[i], shared, &buf, query_stats, cancel, tuning);
    out[i] = buf;
  }
  return out;
}

void XClean::BindScratch(QueryScratch& scratch) const {
  if (scratch.bound_epoch_ == epoch_) return;
  // The scratch last served a different instance (other options, or an
  // index hot-swap rebuilt the algorithm): its memo tables describe the
  // wrong world. Drop them; the arenas are world-free and stay.
  scratch.variant_cache_.clear();
  scratch.type_cache_.Clear();
  scratch.bound_epoch_ = epoch_;
}

const std::vector<Variant>& XClean::LookupVariants(
    QueryScratch& scratch, const std::string& keyword) const {
  auto it = scratch.variant_cache_.find(keyword);
  if (it != scratch.variant_cache_.end()) return it->second;
  if (scratch.variant_cache_.size() >= QueryScratch::kMaxVariantCacheEntries) {
    scratch.variant_cache_.clear();
  }
  return scratch.variant_cache_
      .emplace(keyword, variant_gen_.Generate(keyword))
      .first->second;
}

void XClean::ScoreNodeTypeEntities(QueryScratch& scratch, size_t num_slots,
                                   const ResultTypeScorer::Choice& choice,
                                   double error_weight, XCleanRunStats& stats,
                                   CancelToken* cancel) const {
  const XmlTree& tree = index_->tree();
  const uint32_t entity_depth = tree.path_depth(choice.path);

  // Attribute each slot's occurrences (for its current variant rank) to
  // entities at the result type's depth, memoized per (slot, rank, depth)
  // for the current subtree: candidates in the Cartesian product share
  // these lists, so the ancestor walk happens once per bucket, not once
  // per candidate. Buckets are node-ascending and AncestorAtDepth is
  // monotone, so each list comes out sorted by entity with adjacent
  // duplicates — a single linear pass aggregates it.
  auto& lists = scratch.agg_lists_;
  auto& pos = scratch.agg_pos_;
  lists.clear();
  pos.assign(num_slots, 0);
  for (size_t i = 0; i < num_slots; ++i) {
    QueryScratch::Slot& slot = scratch.slots_[i];
    const uint32_t rank = slot.active_ranks[scratch.odometer_[i]];
    std::vector<QueryScratch::EntityAgg>& agg = slot.agg_by_rank[rank];
    if (slot.agg_depth[rank] != entity_depth) {
      agg.clear();
      // A node inside the last entity's subtree has that entity as its
      // depth-K ancestor; the range test replaces the parent walk for the
      // common consecutive-duplicate case.
      NodeId entity_end = 0;
      bool have_entity = false;
      for (const QueryScratch::OccInfo& o : slot.occ_by_rank[rank]) {
        if (tree.depth(o.node) < entity_depth) continue;
        if (have_entity && o.node <= entity_end) {
          agg.back().tf += o.tf;
          continue;
        }
        const NodeId entity = tree.AncestorAtDepth(o.node, entity_depth);
        entity_end = tree.subtree_end(entity);
        have_entity = true;
        agg.push_back(
            QueryScratch::EntityAgg{entity, tree.path_id(entity), o.tf});
      }
      slot.agg_depth[rank] = entity_depth;
    }
    if (agg.empty()) return;  // no entity can contain every keyword
    lists.push_back(&agg);
  }

  // Sorted l-way intersection of the per-slot entity lists: an entity
  // scores only if it contains at least one instance of every keyword
  // (Algorithm 1 line 14) — this is what guarantees suggested queries have
  // non-empty results — and its label path is the chosen result type.
  // Ascending entity order and slot-order products keep the accumulator's
  // floating-point summation identical to the reference evaluation.
  CandidateState* state = nullptr;
  NodeId target = (*lists[0])[0].entity;
  for (;;) {
    // One charge per intersection round bounds the candidate x occurrence
    // re-walk this loop performs across the Cartesian product; stopping
    // between rounds leaves the accumulator with a partial (underestimated)
    // sum, which is exactly the best-effort contract.
    if (cancel != nullptr && cancel->ChargePostings(1)) return;
    bool all_equal = false;
    while (!all_equal) {
      all_equal = true;
      for (size_t i = 0; i < num_slots; ++i) {
        const std::vector<QueryScratch::EntityAgg>& list = *lists[i];
        size_t& p = pos[i];
        p = QueryScratch::AdvanceAgg(list, p, target);
        if (p == list.size()) return;
        if (list[p].entity > target) {
          target = list[p].entity;
          all_equal = false;
        }
      }
    }
    if ((*lists[0])[pos[0]].path == choice.path) {
      double prod = 1.0;
      for (size_t i = 0; i < num_slots; ++i) {
        prod *= ProbInEntity(scratch.candidate_[i], (*lists[i])[pos[i]].tf,
                             target);
      }
      if (options_.entity_prior) prod *= options_.entity_prior(target);
      if (state == nullptr) {
        state = scratch.accumulators_.GetOrCreate(scratch.candidate_.data(),
                                                  num_slots, error_weight);
      }
      state->sum += prod;
      state->entity_count += 1;
      ++stats.entities_scored;
    }
    for (size_t i = 0; i < num_slots; ++i) ++pos[i];
    if (pos[0] == lists[0]->size()) return;
    target = (*lists[0])[pos[0]].entity;
  }
}

void XClean::ScoreLcaEntities(QueryScratch& scratch, size_t num_slots,
                              double error_weight, XCleanRunStats& stats,
                              CancelToken* cancel) const {
  const XmlTree& tree = index_->tree();
  const uint32_t d = options_.min_depth;

  // The candidate's entities inside this subtree are the SLCAs (or ELCAs)
  // of its per-slot witness sets.
  auto& witness = scratch.witness_lists_;
  witness.resize(num_slots);
  for (size_t i = 0; i < num_slots; ++i) {
    const QueryScratch::Slot& slot = scratch.slots_[i];
    const uint32_t rank = slot.active_ranks[scratch.odometer_[i]];
    witness[i].clear();
    for (const QueryScratch::OccInfo& o : slot.occ_by_rank[rank]) {
      witness[i].push_back(o.node);
    }
  }
  std::vector<NodeId> slcas = options_.semantics == Semantics::kSlca
                                  ? ComputeSlcas(tree, witness)
                                  : ComputeElcas(tree, witness);
  // ELCA computation can surface ancestors of g (they contain the
  // subtree's witnesses); the minimal-depth threshold excludes them,
  // exactly as it excludes shallow result types. SLCAs are within the
  // subtree already, so this is a no-op for them.
  std::erase_if(slcas, [&](NodeId e) { return tree.depth(e) < d; });
  if (slcas.empty()) return;

  // Per-candidate total entity count N_C (kept outside the bounded
  // accumulator table: N_C is part of the normalizer, not a score).
  uint32_t* total = scratch.slca_totals_.GetOrCreate(
      scratch.candidate_.data(), num_slots);
  *total += static_cast<uint32_t>(slcas.size());

  CandidateState* state = nullptr;
  for (NodeId entity : slcas) {
    // Each entity rescans the slot occurrence lists (SumTfInRange below);
    // charge it like a posting so LCA scoring honours the budget too.
    if (cancel != nullptr && cancel->ChargePostings(1)) return;
    double prod = 1.0;
    for (size_t i = 0; i < num_slots; ++i) {
      const QueryScratch::Slot& slot = scratch.slots_[i];
      const uint32_t rank = slot.active_ranks[scratch.odometer_[i]];
      uint64_t count = SumTfInRange(slot.occ_by_rank[rank], entity,
                                    tree.subtree_end(entity));
      prod *= ProbInEntity(scratch.candidate_[i], count, entity);
    }
    if (options_.entity_prior) prod *= options_.entity_prior(entity);
    if (state == nullptr) {
      state = scratch.accumulators_.GetOrCreate(scratch.candidate_.data(),
                                                num_slots, error_weight);
    }
    state->sum += prod;
    state->entity_count += 1;
    ++stats.entities_scored;
  }
}

void XClean::SuggestWithScratch(const Query& query, QueryScratch& scratch,
                                std::vector<Suggestion>* out,
                                XCleanRunStats* stats, CancelToken* cancel,
                                const QueryTuning* tuning) const {
  XCleanRunStats local_stats;
  XCleanRunStats& run_stats = stats != nullptr ? *stats : local_stats;
  run_stats = XCleanRunStats{};
  BindScratch(scratch);

  // Effective knobs for this query: the instance's options, optionally
  // capped by the per-query tuning (degraded tiers shrink the variant set,
  // the accumulator bound and the result count; they never widen them).
  uint32_t eff_max_ed = options_.max_ed;
  size_t eff_gamma = options_.gamma;
  size_t eff_top_k = options_.top_k;
  if (tuning != nullptr) {
    eff_max_ed = std::min(eff_max_ed, tuning->max_ed);
    if (tuning->gamma != SIZE_MAX) {
      // gamma == 0 means unbounded, so min() alone would keep it widest.
      eff_gamma =
          eff_gamma == 0 ? tuning->gamma : std::min(eff_gamma, tuning->gamma);
    }
    eff_top_k = std::min(eff_top_k, tuning->top_k);
  }

  const size_t l = query.size();
  if (l == 0) {
    out->clear();
    return;
  }

  // Per-query arena reset (capacity retained) and cross-query memo cap
  // enforcement.
  scratch.accumulators_.Reset(eff_gamma);
  scratch.slca_totals_.Clear();
  if (scratch.type_cache_.size() > QueryScratch::kMaxTypeCacheEntries) {
    scratch.type_cache_.Clear();
  }
  if (scratch.slots_.size() < l) scratch.slots_.resize(l);
  scratch.candidate_.assign(l, 0);

  // Step 1 + 2: variant generation (Sec. V-A, memoized across queries) and
  // one MergedList per keyword over its variants' inverted lists. Variants
  // are ordered by token so a member's index is both the variant's rank and
  // its occurrence bucket — and candidate enumeration over ranks is the
  // deterministic token-order walk the reference evaluation does.
  for (size_t i = 0; i < l; ++i) {
    QueryScratch::Slot& slot = scratch.slots_[i];
    // Occurrence buckets left over from this slot's previous query.
    for (uint32_t r : slot.active_ranks) {
      slot.occ_by_rank[r].clear();
      slot.agg_depth[r] = QueryScratch::kNoAggDepth;
    }
    slot.active_ranks.clear();
    const std::vector<Variant>& vars =
        LookupVariants(scratch, query.keywords[i]);
    // An empty variant list for any keyword empties the whole Cartesian
    // candidate space.
    if (vars.empty()) {
      out->clear();
      return;
    }
    slot.variants = vars;
    if (eff_max_ed < options_.max_ed) {
      // Degraded tier: drop far variants for this query only. The memoized
      // `vars` stays full-width for the next full-tier query, and erase_if
      // keeps the slot vector's capacity, so this stays allocation-free.
      std::erase_if(slot.variants, [eff_max_ed](const Variant& v) {
        return v.distance > eff_max_ed;
      });
      if (slot.variants.empty()) {
        out->clear();
        return;
      }
    }
    std::sort(slot.variants.begin(), slot.variants.end(),
              [](const Variant& a, const Variant& b) {
                return a.token < b.token;
              });
    slot.merged.Reset();
    for (const Variant& v : slot.variants) {
      slot.merged.AddMember(v.token, PostingCursor(index_->postings(v.token)));
    }
    slot.merged.Finish();
    if (slot.occ_by_rank.size() < slot.variants.size()) {
      slot.occ_by_rank.resize(slot.variants.size());
      slot.agg_by_rank.resize(slot.variants.size());
      slot.agg_depth.resize(slot.variants.size(), QueryScratch::kNoAggDepth);
    }
  }

  const XmlTree& tree = index_->tree();
  const uint32_t d = options_.min_depth;

  // Main anchor loop (Algorithm 1 lines 4-16).
  for (;;) {
    XCLEAN_FAULT_HIT("xclean.anchor");
    if (cancel != nullptr && cancel->cancelled()) break;
    // Anchor: the largest current head across the merged lists; nil if any
    // list is exhausted (no further subtree can contain all keywords).
    const MergedList::Head* anchor = nullptr;
    size_t anchor_slot = 0;
    bool exhausted = false;
    for (size_t i = 0; i < l; ++i) {
      const MergedList::Head* h = scratch.slots_[i].merged.cur_pos();
      if (h == nullptr) {
        exhausted = true;
        break;
      }
      if (anchor == nullptr || h->node > anchor->node) {
        anchor = h;
        anchor_slot = i;
      }
    }
    if (exhausted || anchor == nullptr) break;

    // An occurrence shallower than d can lie in no depth-d subtree and no
    // entity of depth >= d; discard it.
    if (tree.depth(anchor->node) < d) {
      scratch.slots_[anchor_slot].merged.Next();
      continue;
    }

    // Truncate the anchor's Dewey code to depth d: the target subtree g.
    NodeId g = tree.AncestorAtDepth(anchor->node, d);
    NodeId g_end = tree.subtree_end(g);
    ++run_stats.subtrees_processed;

    // Align all lists to g (discarding everything before it — those nodes
    // sit in subtrees that cannot contain occurrences of every keyword)
    // and collect the occurrences inside g's subtree, bucketed by variant
    // rank.
    bool all_slots_present = true;
    for (size_t i = 0; i < l; ++i) {
      QueryScratch::Slot& slot = scratch.slots_[i];
      for (uint32_t r : slot.active_ranks) {
        slot.occ_by_rank[r].clear();
        slot.agg_depth[r] = QueryScratch::kNoAggDepth;
      }
      slot.active_ranks.clear();
      slot.merged.SkipTo(g, cancel);
      slot.merged.DrainUpTo(
          g_end,
          [&](uint32_t member, NodeId node, uint32_t tf) {
            std::vector<QueryScratch::OccInfo>& bucket =
                slot.occ_by_rank[member];
            if (bucket.empty()) slot.active_ranks.push_back(member);
            bucket.push_back(QueryScratch::OccInfo{node, tf});
            ++run_stats.occurrences_collected;
          },
          cancel);
      if (slot.active_ranks.empty()) all_slots_present = false;
      // Ranks arrive in head order (node-major); candidate enumeration
      // needs them in ascending rank = token order.
      std::sort(slot.active_ranks.begin(), slot.active_ranks.end());
    }
    // A cancelled drain collected only part of the subtree's occurrences;
    // scoring it would attribute wrong counts, so drop the subtree and
    // surface what earlier subtrees accumulated.
    if (cancel != nullptr && cancel->cancelled()) break;
    if (!all_slots_present) continue;

    // Enumerate candidate queries from the variants observed in g: the
    // Cartesian product of the per-slot variant sets, in token order
    // (odometer over the sorted active ranks, last slot fastest).
    auto& odo = scratch.odometer_;
    odo.assign(l, 0);
    for (;;) {
      if (cancel != nullptr && cancel->ChargeCandidate()) break;
      double error_weight = 1.0;
      for (size_t i = 0; i < l; ++i) {
        const QueryScratch::Slot& slot = scratch.slots_[i];
        const Variant& v = slot.variants[slot.active_ranks[odo[i]]];
        scratch.candidate_[i] = v.token;
        error_weight *= EditWeight(v.distance);
      }
      ++run_stats.candidates_enumerated;

      if (options_.semantics == Semantics::kNodeType) {
        // Lazy FindResultType with the P cache (Algorithm 1 lines 12-13);
        // the cache is cross-query, so repeated candidates across a batch
        // pay the type-list merge once.
        bool created = false;
        ResultTypeScorer::Choice* choice = scratch.type_cache_.GetOrCreate(
            scratch.candidate_.data(), l, &created);
        if (created) {
          ++run_stats.result_type_computations;
          *choice = type_scorer_.FindResultType(scratch.candidate_, d);
        }
        if (choice->path != XmlTree::kInvalidPath) {
          ScoreNodeTypeEntities(scratch, l, *choice, error_weight, run_stats,
                                cancel);
        }
      } else {
        ScoreLcaEntities(scratch, l, error_weight, run_stats, cancel);
      }

      // Advance the Cartesian product (odometer).
      size_t slot = l;
      while (slot > 0) {
        --slot;
        if (++odo[slot] < scratch.slots_[slot].active_ranks.size()) break;
        odo[slot] = 0;
        if (slot == 0) {
          slot = SIZE_MAX;
          break;
        }
      }
      if (slot == SIZE_MAX) break;
    }
  }

  run_stats.accumulator_evictions = scratch.accumulators_.eviction_count();
  run_stats.accumulators_final = scratch.accumulators_.size();
  if (cancel != nullptr && cancel->cancelled()) {
    run_stats.truncated = true;
    run_stats.cancel_cause = cancel->cause();
  }

  // Final scoring (Eq. 10): rank flat entries that point into the
  // accumulator's key pool, then materialize only the top-k into the
  // caller's reused output vector.
  const Vocabulary& vocab = index_->vocabulary();
  auto& finals = scratch.finals_;
  finals.clear();
  scratch.accumulators_.ForEach([&](const TokenId* key, size_t key_len,
                                    const CandidateState& state) {
    QueryScratch::FinalEntry e;
    e.key = key;
    e.key_len = static_cast<uint32_t>(key_len);
    e.error_weight = state.error_weight;
    e.entity_count = state.entity_count;
    e.result_type = XmlTree::kInvalidPath;
    double n_entities = 1.0;
    if (options_.semantics == Semantics::kNodeType) {
      const ResultTypeScorer::Choice* choice =
          scratch.type_cache_.Find(key, key_len);
      XCLEAN_CHECK(choice != nullptr);
      e.result_type = choice->path;
      if (!options_.entity_prior) {
        n_entities = tree.path_node_count(choice->path);
      }
    } else if (!options_.entity_prior) {
      const uint32_t* total = scratch.slca_totals_.Find(key, key_len);
      XCLEAN_CHECK(total != nullptr);
      n_entities = *total;
    }
    e.score = state.error_weight * state.sum / n_entities;
    finals.push_back(e);
  });

  std::sort(finals.begin(), finals.end(),
            [&](const QueryScratch::FinalEntry& a,
                const QueryScratch::FinalEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              // Lexicographic comparison of the suggested word sequences
              // (equal TokenIds are equal words, so compare strings only
              // where ids differ).
              size_t n = std::min(a.key_len, b.key_len);
              for (size_t i = 0; i < n; ++i) {
                if (a.key[i] == b.key[i]) continue;
                return vocab.token(a.key[i]) < vocab.token(b.key[i]);
              }
              return a.key_len < b.key_len;
            });

  const size_t k = std::min(finals.size(), eff_top_k);
  for (size_t r = 0; r < k; ++r) {
    const QueryScratch::FinalEntry& e = finals[r];
    if (out->size() <= r) out->emplace_back();
    Suggestion& s = (*out)[r];
    if (s.words.size() != e.key_len) s.words.resize(e.key_len);
    for (size_t i = 0; i < e.key_len; ++i) s.words[i] = vocab.token(e.key[i]);
    s.score = e.score;
    s.error_weight = e.error_weight;
    s.entity_count = e.entity_count;
    s.result_type = e.result_type;
  }
  out->resize(k);
}

}  // namespace xclean
