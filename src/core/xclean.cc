#include "core/xclean.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "core/elca.h"
#include "core/slca.h"
#include "index/merged_list.h"

namespace xclean {

namespace {

/// Per-subtree occurrence bundle for one keyword slot: the variants seen in
/// the subtree with their occurrence nodes (document order) and term
/// frequencies. std::map keeps variant enumeration deterministic.
struct OccInfo {
  NodeId node;
  uint32_t tf;
};
using SlotOccurrences = std::map<TokenId, std::vector<OccInfo>>;

/// Sum of tf of `occ` entries whose node lies in [lo, hi]; occ is sorted by
/// node.
uint64_t SumTfInRange(const std::vector<OccInfo>& occ, NodeId lo, NodeId hi) {
  auto it = std::lower_bound(
      occ.begin(), occ.end(), lo,
      [](const OccInfo& o, NodeId target) { return o.node < target; });
  uint64_t sum = 0;
  for (; it != occ.end() && it->node <= hi; ++it) sum += it->tf;
  return sum;
}

}  // namespace

XClean::XClean(const XmlIndex& index, XCleanOptions options)
    : index_(&index),
      options_(options),
      variant_gen_(index,
                   VariantGenOptions{options.max_ed, options.include_soundex}),
      error_model_(options.beta),
      language_model_(index, options.mu),
      type_scorer_(index, options.reduction) {}

std::string XClean::name() const {
  switch (options_.semantics) {
    case Semantics::kNodeType:
      return "XClean";
    case Semantics::kSlca:
      return "XClean-SLCA";
    default:
      return "XClean-ELCA";
  }
}

std::vector<Suggestion> XClean::Suggest(const Query& query) {
  return SuggestWithStats(query, &stats_);
}

std::vector<Suggestion> XClean::SuggestWithStats(const Query& query,
                                                 XCleanRunStats* stats) const {
  XCleanRunStats local_stats;
  XCleanRunStats& run_stats = stats != nullptr ? *stats : local_stats;
  run_stats = XCleanRunStats{};
  const size_t l = query.size();
  if (l == 0) return {};

  // Step 1: variant generation (Sec. V-A). An empty variant list for any
  // keyword empties the whole Cartesian candidate space.
  std::vector<std::vector<Variant>> variants(l);
  std::vector<std::unordered_map<TokenId, uint32_t>> distance(l);
  for (size_t i = 0; i < l; ++i) {
    variants[i] = variant_gen_.Generate(query.keywords[i]);
    if (variants[i].empty()) return {};
    for (const Variant& v : variants[i]) distance[i][v.token] = v.distance;
  }

  // Step 2: one MergedList per keyword over its variants' inverted lists.
  std::vector<MergedList> merged;
  merged.reserve(l);
  for (size_t i = 0; i < l; ++i) {
    std::vector<MergedList::Member> members;
    members.reserve(variants[i].size());
    for (const Variant& v : variants[i]) {
      members.push_back(MergedList::Member{
          v.token, PostingCursor(index_->postings(v.token))});
    }
    merged.emplace_back(std::move(members));
  }

  const XmlTree& tree = index_->tree();
  const uint32_t d = options_.min_depth;

  AccumulatorTable accumulators(options_.gamma);
  // P table: cached best result type per candidate (node-type semantics).
  std::unordered_map<std::string, ResultTypeScorer::Choice> type_cache;
  // SLCA semantics: per-candidate total entity count N_C (kept outside the
  // bounded accumulator table: N_C is part of the normalizer, not a score).
  std::unordered_map<std::string, uint32_t> slca_entity_totals;

  std::vector<SlotOccurrences> slot_occ(l);
  std::vector<TokenId> candidate(l);

  // Main anchor loop (Algorithm 1 lines 4-16).
  for (;;) {
    // Anchor: the largest current head across the merged lists; nil if any
    // list is exhausted (no further subtree can contain all keywords).
    const MergedList::Head* anchor = nullptr;
    size_t anchor_slot = 0;
    bool exhausted = false;
    for (size_t i = 0; i < l; ++i) {
      const MergedList::Head* h = merged[i].cur_pos();
      if (h == nullptr) {
        exhausted = true;
        break;
      }
      if (anchor == nullptr || h->node > anchor->node) {
        anchor = h;
        anchor_slot = i;
      }
    }
    if (exhausted || anchor == nullptr) break;

    // An occurrence shallower than d can lie in no depth-d subtree and no
    // entity of depth >= d; discard it.
    if (tree.depth(anchor->node) < d) {
      merged[anchor_slot].Next();
      continue;
    }

    // Truncate the anchor's Dewey code to depth d: the target subtree g.
    NodeId g = tree.AncestorAtDepth(anchor->node, d);
    NodeId g_end = tree.subtree_end(g);
    ++run_stats.subtrees_processed;

    // Align all lists to g (discarding everything before it — those nodes
    // sit in subtrees that cannot contain occurrences of every keyword)
    // and collect the occurrences inside g's subtree.
    bool all_slots_present = true;
    for (size_t i = 0; i < l; ++i) {
      slot_occ[i].clear();
      const MergedList::Head* h = merged[i].SkipTo(g);
      while (h != nullptr && h->node <= g_end) {
        MergedList::Head head = merged[i].Next();
        slot_occ[i][head.token].push_back(OccInfo{head.node, head.tf});
        ++run_stats.occurrences_collected;
        h = merged[i].cur_pos();
      }
      if (slot_occ[i].empty()) all_slots_present = false;
    }
    if (!all_slots_present) continue;

    // Enumerate candidate queries from the variants observed in g: the
    // Cartesian product of the per-slot variant sets, in token order.
    std::vector<SlotOccurrences::const_iterator> iters(l);
    for (size_t i = 0; i < l; ++i) iters[i] = slot_occ[i].begin();
    for (;;) {
      for (size_t i = 0; i < l; ++i) candidate[i] = iters[i]->first;
      ++run_stats.candidates_enumerated;
      std::string key = EncodeCandidate(candidate);

      double error_weight = 1.0;
      for (size_t i = 0; i < l; ++i) {
        error_weight *= error_model_.Weight(distance[i][candidate[i]]);
      }

      if (options_.semantics == Semantics::kNodeType) {
        // Lazy FindResultType with the P cache (Algorithm 1 lines 12-13).
        auto cached = type_cache.find(key);
        if (cached == type_cache.end()) {
          ++run_stats.result_type_computations;
          cached = type_cache
                       .emplace(key, type_scorer_.FindResultType(candidate, d))
                       .first;
        }
        const ResultTypeScorer::Choice& choice = cached->second;
        if (choice.path != XmlTree::kInvalidPath) {
          uint32_t entity_depth = tree.path_depth(choice.path);
          // Group this subtree's occurrences by their entity (the ancestor
          // at the result type's depth, provided its path matches).
          std::map<NodeId, std::vector<uint64_t>> entity_counts;
          for (size_t i = 0; i < l; ++i) {
            for (const OccInfo& occ : iters[i]->second) {
              if (tree.depth(occ.node) < entity_depth) continue;
              NodeId entity = tree.AncestorAtDepth(occ.node, entity_depth);
              if (tree.path_id(entity) != choice.path) continue;
              auto [it, created] = entity_counts.try_emplace(
                  entity, std::vector<uint64_t>(l, 0));
              it->second[i] += occ.tf;
            }
          }
          for (const auto& [entity, counts] : entity_counts) {
            // An entity scores only if it contains at least one instance of
            // every keyword (Algorithm 1 line 14) — this is what guarantees
            // suggested queries have non-empty results.
            bool complete = true;
            for (size_t i = 0; i < l; ++i) {
              if (counts[i] == 0) {
                complete = false;
                break;
              }
            }
            if (!complete) continue;
            double prod = 1.0;
            for (size_t i = 0; i < l; ++i) {
              prod *= language_model_.ProbInEntity(candidate[i], counts[i],
                                                   entity);
            }
            if (options_.entity_prior) prod *= options_.entity_prior(entity);
            CandidateState* state =
                accumulators.GetOrCreate(key, error_weight);
            state->sum += prod;
            state->entity_count += 1;
            ++run_stats.entities_scored;
          }
        }
      } else {
        // LCA-family semantics: the candidate's entities inside this
        // subtree are the SLCAs (or ELCAs) of its per-slot witness sets.
        std::vector<std::vector<NodeId>> witness_lists(l);
        for (size_t i = 0; i < l; ++i) {
          witness_lists[i].reserve(iters[i]->second.size());
          for (const OccInfo& occ : iters[i]->second) {
            witness_lists[i].push_back(occ.node);
          }
        }
        std::vector<NodeId> slcas =
            options_.semantics == Semantics::kSlca
                ? ComputeSlcas(tree, witness_lists)
                : ComputeElcas(tree, witness_lists);
        // ELCA computation can surface ancestors of g (they contain the
        // subtree's witnesses); the minimal-depth threshold excludes them,
        // exactly as it excludes shallow result types. SLCAs are within
        // the subtree already, so this is a no-op for them.
        std::erase_if(slcas,
                      [&](NodeId e) { return tree.depth(e) < d; });
        if (!slcas.empty()) {
          slca_entity_totals[key] += static_cast<uint32_t>(slcas.size());
          for (NodeId entity : slcas) {
            double prod = 1.0;
            for (size_t i = 0; i < l; ++i) {
              uint64_t count = SumTfInRange(iters[i]->second, entity,
                                            tree.subtree_end(entity));
              prod *= language_model_.ProbInEntity(candidate[i], count,
                                                   entity);
            }
            if (options_.entity_prior) prod *= options_.entity_prior(entity);
            CandidateState* state =
                accumulators.GetOrCreate(key, error_weight);
            state->sum += prod;
            state->entity_count += 1;
            ++run_stats.entities_scored;
          }
        }
      }

      // Advance the Cartesian product (odometer).
      size_t slot = l;
      while (slot > 0) {
        --slot;
        if (++iters[slot] != slot_occ[slot].end()) break;
        iters[slot] = slot_occ[slot].begin();
        if (slot == 0) {
          slot = SIZE_MAX;
          break;
        }
      }
      if (slot == SIZE_MAX) break;
    }
  }

  run_stats.accumulator_evictions = accumulators.eviction_count();
  run_stats.accumulators_final = accumulators.size();

  // Final scoring (Eq. 10) and top-k selection.
  std::vector<Suggestion> suggestions;
  suggestions.reserve(accumulators.entries().size());
  for (const auto& [key, state] : accumulators.entries()) {
    std::vector<TokenId> tokens = DecodeCandidate(key);
    Suggestion s;
    s.words.reserve(tokens.size());
    for (TokenId t : tokens) s.words.push_back(index_->vocabulary().token(t));
    s.error_weight = state.error_weight;
    s.entity_count = state.entity_count;
    double n_entities = 1.0;
    if (!options_.entity_prior) {
      if (options_.semantics == Semantics::kNodeType) {
        const ResultTypeScorer::Choice& choice = type_cache.at(key);
        s.result_type = choice.path;
        n_entities = tree.path_node_count(choice.path);
      } else {
        n_entities = slca_entity_totals.at(key);
      }
    } else if (options_.semantics == Semantics::kNodeType) {
      s.result_type = type_cache.at(key).path;
    }
    s.score = state.error_weight * state.sum / n_entities;
    suggestions.push_back(std::move(s));
  }

  std::sort(suggestions.begin(), suggestions.end(),
            [](const Suggestion& a, const Suggestion& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.words < b.words;
            });
  if (suggestions.size() > options_.top_k) {
    suggestions.resize(options_.top_k);
  }
  return suggestions;
}

}  // namespace xclean
