#ifndef XCLEAN_CORE_VARIANT_GEN_H_
#define XCLEAN_CORE_VARIANT_GEN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/xml_index.h"

namespace xclean {

/// One entry of var_eps(q): a vocabulary token within the error threshold
/// of the observed keyword, with its edit distance (the error model input).
struct Variant {
  TokenId token;
  uint32_t distance;
};

/// Variant generation knobs.
struct VariantGenOptions {
  /// Edit distance threshold eps. Must be <= the index's FastSS radius.
  uint32_t max_ed = 2;
  /// Cognitive-error extension (Sec. VI-A): also admit vocabulary tokens
  /// with the same Soundex code. Such tokens, when beyond the edit
  /// threshold, enter with distance = max_ed so the error model gives them
  /// the weakest in-threshold weight (a modeling choice; the paper leaves
  /// the combination of error types to future work).
  bool include_soundex = false;
};

/// Computes var_eps(q) for query keywords (Sec. V-A): probes the index's
/// FastSS deletion-neighborhood structure and verifies candidates, plus the
/// optional Soundex expansion. Results are sorted by (distance, token) so
/// downstream enumeration is deterministic.
class VariantGenerator {
 public:
  VariantGenerator(const XmlIndex& index, VariantGenOptions options);

  /// Variants of one observed keyword. Empty if nothing in the vocabulary
  /// is close enough — in that case no candidate query can use this slot.
  std::vector<Variant> Generate(const std::string& keyword) const;

  const VariantGenOptions& options() const { return options_; }

 private:
  const XmlIndex* index_;
  VariantGenOptions options_;
  // soundex code -> token ids, built only when include_soundex is set.
  std::unordered_map<std::string, std::vector<TokenId>> soundex_buckets_;
};

}  // namespace xclean

#endif  // XCLEAN_CORE_VARIANT_GEN_H_
