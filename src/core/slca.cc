#include "core/slca.h"

#include <algorithm>
#include <unordered_set>

namespace xclean {

namespace {

/// True iff `list` (sorted) has an element inside [lo, hi].
bool ContainsInRange(const std::vector<NodeId>& list, NodeId lo, NodeId hi) {
  auto it = std::lower_bound(list.begin(), list.end(), lo);
  return it != list.end() && *it <= hi;
}

/// Drops every node that has a qualifying proper descendant. `sorted` must
/// be ascending and duplicate-free; qualifying sets are upward closed, so a
/// node's qualifying descendants (if any) follow it immediately in id order
/// within its preorder interval.
std::vector<NodeId> KeepMinimal(const XmlTree& tree,
                                const std::vector<NodeId>& sorted) {
  std::vector<NodeId> out;
  for (size_t i = 0; i < sorted.size(); ++i) {
    NodeId u = sorted[i];
    bool has_descendant =
        i + 1 < sorted.size() && sorted[i + 1] <= tree.subtree_end(u);
    if (!has_descendant) out.push_back(u);
  }
  return out;
}

}  // namespace

std::vector<NodeId> ComputeSlcas(
    const XmlTree& tree, const std::vector<std::vector<NodeId>>& lists) {
  if (lists.empty()) return {};
  size_t smallest = 0;
  for (size_t i = 0; i < lists.size(); ++i) {
    if (lists[i].empty()) return {};
    if (lists[i].size() < lists[smallest].size()) smallest = i;
  }

  // Candidates: ancestor chains of the smallest list's witnesses.
  std::unordered_set<NodeId> seen;
  std::vector<NodeId> qualifying;
  for (NodeId witness : lists[smallest]) {
    NodeId cur = witness;
    for (;;) {
      if (!seen.insert(cur).second) break;  // chain above already visited
      bool all = true;
      for (size_t i = 0; i < lists.size(); ++i) {
        if (i == smallest) continue;
        if (!ContainsInRange(lists[i], cur, tree.subtree_end(cur))) {
          all = false;
          break;
        }
      }
      if (all) {
        qualifying.push_back(cur);
        // Ancestors also qualify but can never be minimal; still walk up to
        // mark them seen so later witnesses stop early.
      }
      if (cur == tree.root()) break;
      cur = tree.parent(cur);
    }
  }
  std::sort(qualifying.begin(), qualifying.end());
  qualifying.erase(std::unique(qualifying.begin(), qualifying.end()),
                   qualifying.end());
  return KeepMinimal(tree, qualifying);
}

std::vector<NodeId> ComputeSlcasBruteForce(
    const XmlTree& tree, const std::vector<std::vector<NodeId>>& lists) {
  if (lists.empty()) return {};
  for (const auto& list : lists) {
    if (list.empty()) return {};
  }
  std::vector<NodeId> qualifying;
  for (NodeId n = 0; n < tree.size(); ++n) {
    bool all = true;
    for (const auto& list : lists) {
      if (!ContainsInRange(list, n, tree.subtree_end(n))) {
        all = false;
        break;
      }
    }
    if (all) qualifying.push_back(n);
  }
  return KeepMinimal(tree, qualifying);
}

}  // namespace xclean
