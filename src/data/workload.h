#ifndef XCLEAN_DATA_WORKLOAD_H_
#define XCLEAN_DATA_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/log_correct.h"
#include "core/query.h"
#include "index/xml_index.h"

namespace xclean {

/// How dirty queries are derived from initial queries (Sec. VII-A).
enum class Perturbation {
  /// The initial query itself (positive query set).
  kClean,
  /// RAND: random edit operations per keyword, guaranteed to leave the
  /// vocabulary, skipping very short tokens (length <= 4).
  kRand,
  /// RULE: common human misspellings — the embedded misspelling table when
  /// it covers the keyword, rule-based human-style misspelling otherwise.
  /// Tends to larger edit distances than RAND, like the Wikipedia list.
  kRule,
};

/// One evaluation query: the dirty query given to the cleaners and the
/// clean query used as ground truth.
struct EvalQuery {
  Query dirty;
  Query truth;
};

/// A named set of evaluation queries ("DBLP-RAND", ...).
struct QuerySet {
  std::string name;
  std::vector<EvalQuery> queries;
};

/// Workload construction knobs.
struct WorkloadOptions {
  uint64_t seed = 7;
  uint32_t num_queries = 100;
  /// Depth of the nodes queries are sampled from (2 = records/articles
  /// directly under the root). Each initial query's keywords co-occur in
  /// one such entity, so initial queries are guaranteed answerable.
  uint32_t entity_depth = 2;
  /// Query length bounds; lengths are drawn from a skewed distribution
  /// with mean ~2.5 like the paper's INEX topic set (1 to 7 keywords).
  uint32_t min_len = 1;
  uint32_t max_len = 7;
  /// RAND: edits injected per (long-enough) keyword.
  uint32_t rand_edits = 1;
  /// RULE fallback: maximum rule applications per keyword.
  uint32_t rule_max_edits = 2;
  /// Keywords must have at least this collection frequency. Human query
  /// words are real words, not the corpus's hapax content typos; the
  /// paper's topics were likewise drawn from INEX titles / ACM citations,
  /// not from corrupted tokens.
  uint64_t min_keyword_cf = 3;
};

/// Samples initial (clean, answerable) queries from the indexed corpus:
/// picks a random depth-`entity_depth` node and draws distinct tokens from
/// its subtree, weighted toward informative (rarer) tokens the way a human
/// picks content words rather than boilerplate.
std::vector<Query> SampleInitialQueries(const XmlIndex& index,
                                        const WorkloadOptions& options);

/// Applies the RAND perturbation of Sec. VII-A to one query: random edit
/// operations per keyword, retried until the keyword leaves the vocabulary
/// (preserving the paper's two technical subtleties: no perturbation of
/// tokens of length <= 4, and no accidental clean queries).
Query PerturbRand(const Query& query, const XmlIndex& index,
                  const WorkloadOptions& options, Rng& rng);

/// Applies the RULE perturbation: table misspelling when available,
/// rule-based otherwise; prefers results outside the vocabulary.
Query PerturbRule(const Query& query, const XmlIndex& index,
                  const WorkloadOptions& options, Rng& rng);

/// Builds a full named query set from initial queries.
QuerySet MakeQuerySet(const std::string& name, const XmlIndex& index,
                      const std::vector<Query>& initial,
                      Perturbation perturbation,
                      const WorkloadOptions& options);

/// Builds the search-engine proxy (see core/log_correct.h): its query log
/// holds the clean query set (Zipf-popular) plus the corpus's most frequent
/// tokens, and its rewrite table is the common-misspelling list — the
/// ingredients the paper attributes to SE1/SE2's query-log advantage.
std::unique_ptr<LogCorrector> BuildSeProxy(
    const XmlIndex& index, const std::vector<Query>& clean_queries,
    uint64_t seed, size_t popular_token_count = 2000);

}  // namespace xclean

#endif  // XCLEAN_DATA_WORKLOAD_H_
