#ifndef XCLEAN_DATA_INEX_GEN_H_
#define XCLEAN_DATA_INEX_GEN_H_

#include <cstdint>

#include "xml/tree.h"

namespace xclean {

/// Configuration of the synthetic INEX/Wikipedia-like corpus. The defaults
/// produce a document-centric collection matching the profile the paper's
/// experiments depend on (Table I: deep — max depth tens, avg ~5.6 —
/// verbose narrative text, a vocabulary several times larger than DBLP's):
///
///   /articles/article/{name, categories/category*,
///                      body/{p*, section/{title, p*, figure/caption,
///                            section/...}}}
///
/// Paragraph text is sampled Zipfian from an expanded English word pool;
/// each article has a topic that biases its word choices, so related words
/// co-occur inside articles (keyword queries have meaningful answers).
struct InexGenOptions {
  uint64_t seed = 1234;
  uint32_t num_articles = 1500;
  /// Target vocabulary size of the expanded word pool (the paper's INEX
  /// vocabulary is ~6x DBLP's).
  uint32_t vocabulary_target = 7000;
  double zipf_s = 1.0;
  uint32_t sections_min = 2;
  uint32_t sections_max = 6;
  uint32_t paragraphs_min = 1;
  uint32_t paragraphs_max = 4;
  uint32_t paragraph_words_min = 15;
  uint32_t paragraph_words_max = 50;
  /// Probability a section nests a subsection (drives max depth).
  double subsection_probability = 0.35;
  /// Maximum nesting of sections.
  uint32_t max_section_depth = 4;
  /// Fraction of narrative words replaced by human-style misspellings —
  /// web-gleaned encyclopedic text contains content errors (the paper's
  /// motivating "geo-taging" case); they make rare near-miss tokens that
  /// stress the rare-token bias of TF/IDF-style scoring.
  double content_typo_rate = 0.01;
};

/// Generates the corpus. Deterministic in the seed.
XmlTree GenerateInex(const InexGenOptions& options = InexGenOptions());

}  // namespace xclean

#endif  // XCLEAN_DATA_INEX_GEN_H_
