#include "data/inex_gen.h"

#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/misspell.h"
#include "data/wordlist.h"

namespace xclean {

namespace {

struct GenContext {
  const InexGenOptions* options;
  Rng* rng;
  const std::vector<std::string>* pool;
  const ZipfDistribution* pool_zipf;
  /// Per-article topical word subset: indices into pool biasing this
  /// article's text so its content words genuinely co-occur.
  std::vector<size_t> topic_words;
};

std::string SampleWord(GenContext& ctx) {
  // 40% of words come from the article's topical subset, the rest from the
  // global Zipfian pool.
  std::string word;
  if (!ctx.topic_words.empty() && ctx.rng->Uniform(10) < 4) {
    word = (*ctx.pool)[ctx.topic_words[ctx.rng->Uniform(
        ctx.topic_words.size())]];
  } else {
    word = (*ctx.pool)[ctx.pool_zipf->Sample(*ctx.rng)];
  }
  if (ctx.rng->Bernoulli(ctx.options->content_typo_rate)) {
    word = RuleMisspell(word, 1, *ctx.rng);
  }
  return word;
}

std::string SampleParagraph(GenContext& ctx) {
  uint32_t n = static_cast<uint32_t>(
      ctx.rng->UniformInt(ctx.options->paragraph_words_min,
                          ctx.options->paragraph_words_max));
  std::vector<std::string> words;
  words.reserve(n);
  for (uint32_t i = 0; i < n; ++i) words.push_back(SampleWord(ctx));
  return Join(words, " ");
}

std::string SampleTitleWords(GenContext& ctx, uint32_t count) {
  std::vector<std::string> words;
  words.reserve(count);
  for (uint32_t i = 0; i < count; ++i) words.push_back(SampleWord(ctx));
  return Join(words, " ");
}

void EmitSection(XmlTreeBuilder& builder, GenContext& ctx, uint32_t depth) {
  XCLEAN_CHECK(builder.BeginElement("section").ok());
  XCLEAN_CHECK(builder.AddLeaf("title", SampleTitleWords(ctx, 2)).ok());
  uint32_t paragraphs = static_cast<uint32_t>(ctx.rng->UniformInt(
      ctx.options->paragraphs_min, ctx.options->paragraphs_max));
  for (uint32_t p = 0; p < paragraphs; ++p) {
    XCLEAN_CHECK(builder.AddLeaf("p", SampleParagraph(ctx)).ok());
  }
  if (ctx.rng->Bernoulli(0.2)) {
    XCLEAN_CHECK(builder.BeginElement("figure").ok());
    XCLEAN_CHECK(builder.AddLeaf("caption", SampleTitleWords(ctx, 5)).ok());
    XCLEAN_CHECK(builder.EndElement().ok());
  }
  if (depth < ctx.options->max_section_depth &&
      ctx.rng->Bernoulli(ctx.options->subsection_probability)) {
    EmitSection(builder, ctx, depth + 1);
  }
  XCLEAN_CHECK(builder.EndElement().ok());
}

}  // namespace

XmlTree GenerateInex(const InexGenOptions& options) {
  Rng rng(options.seed);
  std::vector<std::string> pool =
      ExpandedWordPool(options.vocabulary_target, options.seed);
  ZipfDistribution pool_zipf(pool.size(), options.zipf_s);
  auto topics = WikiTopics();

  GenContext ctx;
  ctx.options = &options;
  ctx.rng = &rng;
  ctx.pool = &pool;
  ctx.pool_zipf = &pool_zipf;

  XmlTreeBuilder builder;
  XCLEAN_CHECK(builder.BeginElement("articles").ok());
  for (uint32_t a = 0; a < options.num_articles; ++a) {
    // Topical word subset: 12-30 pool words this article reuses heavily.
    ctx.topic_words.clear();
    uint64_t topical = 12 + rng.Uniform(19);
    for (uint64_t t = 0; t < topical; ++t) {
      ctx.topic_words.push_back(pool_zipf.Sample(rng));
    }

    XCLEAN_CHECK(builder.BeginElement("article").ok());
    XCLEAN_CHECK(
        builder.AddLeaf("@id", std::to_string(a + 100000)).ok());
    std::string topic(topics[rng.Uniform(topics.size())]);
    XCLEAN_CHECK(
        builder.AddLeaf("name", topic + " " + SampleTitleWords(ctx, 2)).ok());
    XCLEAN_CHECK(builder.BeginElement("categories").ok());
    uint64_t cats = 1 + rng.Uniform(3);
    for (uint64_t c = 0; c < cats; ++c) {
      XCLEAN_CHECK(
          builder
              .AddLeaf("category",
                       std::string(topics[rng.Uniform(topics.size())]))
              .ok());
    }
    XCLEAN_CHECK(builder.EndElement().ok());

    XCLEAN_CHECK(builder.BeginElement("body").ok());
    XCLEAN_CHECK(builder.AddLeaf("p", SampleParagraph(ctx)).ok());
    uint32_t sections = static_cast<uint32_t>(
        rng.UniformInt(options.sections_min, options.sections_max));
    for (uint32_t s = 0; s < sections; ++s) {
      EmitSection(builder, ctx, 1);
    }
    XCLEAN_CHECK(builder.EndElement().ok());
    XCLEAN_CHECK(builder.EndElement().ok());
  }
  XCLEAN_CHECK(builder.EndElement().ok());

  Result<XmlTree> tree = std::move(builder).Finish();
  XCLEAN_CHECK(tree.ok());
  return std::move(tree).value();
}

}  // namespace xclean
