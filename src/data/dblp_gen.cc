#include "data/dblp_gen.h"

#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/misspell.h"
#include "data/wordlist.h"

namespace xclean {

namespace {

/// Sample a title: a Zipfian mix of computer-science terms and common
/// English connective words, e.g. "efficient clustering large graph
/// streams", with an occasional content typo (see DblpGenOptions).
std::string SampleTitle(Rng& rng, const ZipfDistribution& cs_zipf,
                        const ZipfDistribution& en_zipf,
                        const DblpGenOptions& options) {
  auto cs = ComputerScienceTerms();
  auto en = CommonEnglishWords();
  uint32_t n = static_cast<uint32_t>(rng.UniformInt(
      options.title_min_words, options.title_max_words));
  std::vector<std::string> words;
  words.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    // Titles are ~2/3 technical terms, ~1/3 general vocabulary.
    std::string word;
    if (rng.Uniform(3) < 2) {
      word = std::string(cs[cs_zipf.Sample(rng)]);
    } else {
      word = std::string(en[en_zipf.Sample(rng)]);
    }
    if (rng.Bernoulli(options.content_typo_rate)) {
      word = RuleMisspell(word, 1, rng);
    }
    words.push_back(std::move(word));
  }
  return Join(words, " ");
}

}  // namespace

XmlTree GenerateDblp(const DblpGenOptions& options) {
  Rng rng(options.seed);

  auto surnames = Surnames();
  auto firsts = FirstNames();
  auto venues = VenueNames();

  // Venue pools: like real DBLP, journal names and conference names are
  // disjoint (a paper "in OSDI" is never an <article><journal>).
  size_t venue_split = venues.size() / 2;
  std::span<const std::string_view> journals = venues.subspan(0, venue_split);
  std::span<const std::string_view> conferences = venues.subspan(venue_split);

  // Author pool: (first, last) pairs; productivity is Zipfian over the
  // pool, mirroring real bibliographies.
  std::vector<std::string> authors;
  authors.reserve(options.num_authors);
  for (uint32_t i = 0; i < options.num_authors; ++i) {
    std::string name = std::string(firsts[rng.Uniform(firsts.size())]) + " " +
                       std::string(surnames[rng.Uniform(surnames.size())]);
    authors.push_back(std::move(name));
  }

  ZipfDistribution author_zipf(options.num_authors, options.zipf_s);
  ZipfDistribution journal_zipf(journals.size(), options.zipf_s);
  ZipfDistribution conference_zipf(conferences.size(), options.zipf_s);
  ZipfDistribution cs_zipf(ComputerScienceTerms().size(), options.zipf_s);
  ZipfDistribution en_zipf(CommonEnglishWords().size(), options.zipf_s);

  XmlTreeBuilder builder;
  XCLEAN_CHECK(builder.BeginElement("dblp").ok());
  for (uint32_t pub = 0; pub < options.num_publications; ++pub) {
    uint64_t kind = rng.Uniform(10);
    const char* element = kind < 5   ? "article"
                          : kind < 9 ? "inproceedings"
                                     : "phdthesis";
    bool is_article = kind < 5;
    std::string venue(is_article
                          ? journals[journal_zipf.Sample(rng)]
                          : conferences[conference_zipf.Sample(rng)]);
    uint64_t year = 1980 + rng.Uniform(30);

    XCLEAN_CHECK(builder.BeginElement(element).ok());
    XCLEAN_CHECK(
        builder
            .AddLeaf("@key", StrFormat("%s/%s/%u", element, venue.c_str(),
                                       static_cast<unsigned>(pub)))
            .ok());
    uint64_t num_authors = 1 + rng.Uniform(3);
    for (uint64_t a = 0; a < num_authors; ++a) {
      XCLEAN_CHECK(
          builder.AddLeaf("author", authors[author_zipf.Sample(rng)]).ok());
    }
    XCLEAN_CHECK(
        builder.AddLeaf("title", SampleTitle(rng, cs_zipf, en_zipf, options))
            .ok());
    XCLEAN_CHECK(builder.AddLeaf("year", std::to_string(year)).ok());
    const char* venue_tag = is_article ? "journal" : "booktitle";
    XCLEAN_CHECK(builder.AddLeaf(venue_tag, venue).ok());
    if (rng.Bernoulli(0.7)) {
      uint64_t first_page = 1 + rng.Uniform(400);
      XCLEAN_CHECK(builder
                       .AddLeaf("pages", StrFormat("%u-%u",
                                                   static_cast<unsigned>(
                                                       first_page),
                                                   static_cast<unsigned>(
                                                       first_page +
                                                       rng.Uniform(20))))
                       .ok());
    }
    if (rng.Bernoulli(options.cite_probability)) {
      // Citation block adds the deeper structure real DBLP has
      // (/dblp/article/citations/cite).
      XCLEAN_CHECK(builder.BeginElement("citations").ok());
      uint64_t cites = 1 + rng.Uniform(4);
      for (uint64_t c = 0; c < cites; ++c) {
        XCLEAN_CHECK(
            builder
                .AddLeaf("cite", SampleTitle(rng, cs_zipf, en_zipf, options))
                .ok());
      }
      XCLEAN_CHECK(builder.EndElement().ok());
    }
    XCLEAN_CHECK(builder.EndElement().ok());
  }
  XCLEAN_CHECK(builder.EndElement().ok());

  Result<XmlTree> tree = std::move(builder).Finish();
  XCLEAN_CHECK(tree.ok());
  return std::move(tree).value();
}

}  // namespace xclean
