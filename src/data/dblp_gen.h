#ifndef XCLEAN_DATA_DBLP_GEN_H_
#define XCLEAN_DATA_DBLP_GEN_H_

#include <cstdint>

#include "xml/tree.h"

namespace xclean {

/// Configuration of the synthetic DBLP-like corpus. The defaults produce a
/// laptop-scale bibliography whose *structural and statistical profile*
/// matches the paper's DBLP snapshot (Table I: data-centric, shallow —
/// max depth 7, avg 3.8 — record-shaped entries under one root):
///
///   /dblp/{article|inproceedings|phdthesis}
///        /@key /author* /title /year /{journal|booktitle}/ pages? /cite*
///
/// Author productivity, venue sizes and title terms are Zipf-distributed,
/// giving the vocabulary the popularity skew real DBLP has (which is what
/// PY08's rare-token bias feeds on). As in real DBLP, journal names and
/// conference names are disjoint venue pools, so a (venue, author) pair
/// concentrates in one publication kind and result-type inference has a
/// well-defined answer.
struct DblpGenOptions {
  uint64_t seed = 42;
  uint32_t num_publications = 20000;
  /// Distinct author pool size (names are first+last combinations).
  uint32_t num_authors = 4000;
  /// Zipf exponent for author productivity / term popularity.
  double zipf_s = 1.0;
  /// Minimum/maximum content words in a title.
  uint32_t title_min_words = 4;
  uint32_t title_max_words = 9;
  /// Probability a publication carries a citation block (adds depth).
  double cite_probability = 0.15;
  /// Fraction of title/cite words replaced by a human-style misspelling —
  /// the *content errors* the paper motivates query cleaning with (its
  /// "verfication" example): real web-gleaned corpora contain rare
  /// misspelt hapax tokens sitting close (in edit distance) to legitimate
  /// words. These are precisely the rare-token traps PY08's max-TF/IDF
  /// falls for.
  double content_typo_rate = 0.015;
};

/// Generates the corpus directly as a tree. Deterministic in the seed.
XmlTree GenerateDblp(const DblpGenOptions& options = DblpGenOptions());

}  // namespace xclean

#endif  // XCLEAN_DATA_DBLP_GEN_H_
