#ifndef XCLEAN_DATA_MISSPELL_H_
#define XCLEAN_DATA_MISSPELL_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/random.h"

namespace xclean {

/// One entry of the common-misspelling table: a real human misspelling and
/// its correction, in the spirit of the Wikipedia list the paper's RULE
/// perturbation draws from.
struct MisspellingPair {
  std::string_view misspelling;
  std::string_view correction;
};

/// The embedded common-misspelling table (correct words all appear in the
/// data/wordlist pools, so the table actually fires on the synthetic
/// corpora).
std::vector<MisspellingPair> CommonMisspellings();

/// Lookup: correction -> list of known misspellings.
const std::unordered_map<std::string, std::vector<std::string>>&
MisspellingsByCorrection();

/// Rule-based human-style misspeller used when a word has no table entry.
/// Applies one of: letter doubling, doubled-letter dropping, adjacent
/// transposition, ie<->ei swap, vowel substitution, or keyboard-adjacent
/// substitution — the error shapes the Wikipedia list is made of. Repeated
/// application yields edit distances of 2-3, reproducing the property the
/// paper leans on: RULE misspellings are farther from the correct form than
/// single RAND edits.
///
/// `edits` is the number of rule applications. The result may coincide
/// with another real word; like the human misspelling list, no vocabulary
/// exclusion is applied here (workloads can filter).
std::string RuleMisspell(std::string_view word, uint32_t edits, Rng& rng);

}  // namespace xclean

#endif  // XCLEAN_DATA_MISSPELL_H_
