#include "data/misspell.h"

#include <array>

#include "common/string_util.h"
#include "text/keyboard.h"

namespace xclean {

namespace {

// Real common misspellings (Wikipedia-style). Corrections are drawn from
// the data/wordlist pools so the table applies to the synthetic corpora.
constexpr MisspellingPair kTable[] = {
    {"abilty", "ability"},        {"absense", "absence"},
    {"acadamy", "academy"},       {"acount", "account"},
    {"accurat", "accurate"},      {"acheive", "achieve"},
    {"aquire", "acquire"},        {"adress", "address"},
    {"advanse", "advance"},       {"agianst", "against"},
    {"agreemnet", "agreement"},   {"alchohol", "alcohol"},
    {"algoritm", "algorithm"},    {"algorythm", "algorithm"},
    {"anaylsis", "analysis"},     {"ansewr", "answer"},
    {"apparant", "apparent"},     {"appearence", "appearance"},
    {"aproach", "approach"},      {"arcitecture", "architecture"},
    {"arguement", "argument"},    {"artical", "article"},
    {"assembley", "assembly"},    {"athority", "authority"},
    {"attendence", "attendance"}, {"avarage", "average"},
    {"ballance", "balance"},      {"begining", "beginning"},
    {"behaviour", "behavior"},    {"beleive", "believe"},
    {"benifit", "benefit"},       {"betwen", "between"},
    {"bouddhist", "buddhist"},    {"busness", "business"},
    {"calender", "calendar"},     {"campain", "campaign"},
    {"catagory", "category"},     {"cerimony", "ceremony"},
    {"centre", "center"},         {"champian", "champion"},
    {"charactor", "character"},   {"chemestry", "chemistry"},
    {"childrens", "children"},    {"choise", "choice"},
    {"collegue", "colleague"},    {"comittee", "committee"},
    {"commerical", "commercial"}, {"commitee", "committee"},
    {"comunity", "community"},    {"competion", "completion"},
    {"compleet", "complete"},     {"conferance", "conference"},
    {"concious", "conscience"},   {"considerd", "considered"},
    {"consistant", "consistent"}, {"controll", "control"},
    {"convertion", "convention"}, {"critisism", "criticism"},
    {"curent", "current"},        {"databse", "database"},
    {"decison", "decision"},      {"definate", "definite"},
    {"definately", "definitely"}, {"desicion", "decision"},
    {"develope", "develop"},      {"diffrence", "difference"},
    {"dificult", "difficult"},    {"disapear", "disappear"},
    {"discusion", "discussion"},  {"distrubuted", "distributed"},
    {"docment", "document"},      {"ecomony", "economy"},
    {"editon", "edition"},        {"eduction", "education"},
    {"efficent", "efficient"},    {"embarass", "embarrass"},
    {"enviroment", "environment"}, {"equipement", "equipment"},
    {"evalution", "evaluation"},  {"exampel", "example"},
    {"excelent", "excellent"},    {"exercize", "exercise"},
    {"existance", "existence"},   {"experiance", "experience"},
    {"experment", "experiment"},  {"explaination", "explanation"},
    {"familar", "familiar"},      {"feild", "field"},
    {"finaly", "finally"},        {"foriegn", "foreign"},
    {"fucntion", "function"},     {"futher", "further"},
    {"gaurd", "guard"},           {"goverment", "government"},
    {"gerat", "great"},           {"garantee", "guarantee"},
    {"happend", "happened"},      {"heigth", "height"},
    {"histroy", "history"},       {"hygeine", "hygiene"},
    {"identiy", "identity"},      {"imediate", "immediate"},
    {"improvment", "improvement"}, {"independant", "independent"},
    {"influense", "influence"},   {"infomation", "information"},
    {"instanse", "instance"},     {"insurence", "insurance"},
    {"intelligense", "intelligence"}, {"intrest", "interest"},
    {"interveiw", "interview"},   {"iresistible", "irresistible"},
    {"jugdment", "judgment"},     {"knowlege", "knowledge"},
    {"labratory", "laboratory"},  {"langauge", "language"},
    {"lenght", "length"},         {"libary", "library"},
    {"licence", "license"},       {"litterature", "literature"},
    {"mantain", "maintain"},      {"managment", "management"},
    {"marrige", "marriage"},      {"mathmatics", "mathematics"},
    {"mesurement", "measurement"}, {"mechine", "machine"},
    {"memeber", "member"},        {"millenium", "millennium"},
    {"miniture", "miniature"},    {"minumum", "minimum"},
    {"mispell", "misspell"},      {"mariage", "marriage"},
    {"neccessary", "necessary"},  {"negociate", "negotiate"},
    {"nieghbor", "neighbor"},     {"noticable", "noticeable"},
    {"occured", "occurred"},      {"occurence", "occurrence"},
    {"offical", "official"},      {"oppertunity", "opportunity"},
    {"optimisation", "optimization"}, {"orignal", "original"},
    {"paralell", "parallel"},     {"parliment", "parliament"},
    {"partical", "particle"},     {"paticular", "particular"},
    {"perfomance", "performance"}, {"permanant", "permanent"},
    {"persistant", "persistent"}, {"personel", "personal"},
    {"persuation", "persuasion"}, {"philosphy", "philosophy"},
    {"posession", "possession"},  {"posible", "possible"},
    {"postion", "position"},      {"potentialy", "potentially"},
    {"practise", "practice"},     {"precedure", "procedure"},
    {"prefered", "preferred"},    {"presance", "presence"},
    {"probabilty", "probability"}, {"probelm", "problem"},
    {"proccess", "process"},      {"proffesor", "professor"},
    {"prgram", "program"},        {"progres", "progress"},
    {"promiss", "promise"},       {"pronounciation", "pronunciation"},
    {"protocal", "protocol"},     {"pyscology", "psychology"},
    {"publich", "publish"},       {"qaulity", "quality"},
    {"quanity", "quantity"},      {"quarentine", "quarantine"},
    {"questionaire", "questionnaire"}, {"reccomend", "recommend"},
    {"recieve", "receive"},       {"refrence", "reference"},
    {"relevent", "relevant"},     {"religous", "religious"},
    {"rember", "remember"},       {"reptition", "repetition"},
    {"resarch", "research"},      {"resistence", "resistance"},
    {"responce", "response"},     {"responsability", "responsibility"},
    {"restarant", "restaurant"},  {"retreival", "retrieval"},
    {"rythm", "rhythm"},          {"saftey", "safety"},
    {"scedule", "schedule"},      {"secratary", "secretary"},
    {"secuirty", "security"},     {"seperate", "separate"},
    {"sevice", "service"},        {"signifigant", "significant"},
    {"similer", "similar"},       {"sincerly", "sincerely"},
    {"sitution", "situation"},    {"sofware", "software"},
    {"speach", "speech"},         {"stategy", "strategy"},
    {"stenght", "strength"},      {"strcture", "structure"},
    {"studnet", "student"},       {"succes", "success"},
    {"succesful", "successful"},  {"sucess", "success"},
    {"suprise", "surprise"},      {"syncronization", "synchronization"},
    {"sytem", "system"},          {"tecnology", "technology"},
    {"temperture", "temperature"}, {"tendancy", "tendency"},
    {"therapee", "therapy"},      {"thoery", "theory"},
    {"tommorow", "tomorrow"},     {"tounge", "tongue"},
    {"transfered", "transferred"}, {"truely", "truly"},
    {"universty", "university"},  {"unkown", "unknown"},
    {"untill", "until"},          {"usefull", "useful"},
    {"vaccum", "vacuum"},         {"vegtable", "vegetable"},
    {"verfication", "verification"}, {"visable", "visible"},
    {"volum", "volume"},          {"wether", "weather"},
    {"wierd", "weird"},           {"wellfare", "welfare"},
    {"wich", "which"},            {"writting", "writing"},
};

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

}  // namespace

std::vector<MisspellingPair> CommonMisspellings() {
  return std::vector<MisspellingPair>(std::begin(kTable), std::end(kTable));
}

const std::unordered_map<std::string, std::vector<std::string>>&
MisspellingsByCorrection() {
  static const auto* map = [] {
    auto* m =
        new std::unordered_map<std::string, std::vector<std::string>>();
    for (const MisspellingPair& pair : kTable) {
      (*m)[std::string(pair.correction)].push_back(
          std::string(pair.misspelling));
    }
    return m;
  }();
  return *map;
}

std::string RuleMisspell(std::string_view word, uint32_t edits, Rng& rng) {
  std::string out(word);
  for (uint32_t e = 0; e < edits; ++e) {
    if (out.size() < 3) break;
    switch (rng.Uniform(6)) {
      case 0: {  // double a letter
        size_t i = rng.Uniform(out.size());
        out.insert(out.begin() + static_cast<long>(i), out[i]);
        break;
      }
      case 1: {  // drop one of a doubled pair (or any letter)
        size_t doubled = std::string::npos;
        for (size_t i = 0; i + 1 < out.size(); ++i) {
          if (out[i] == out[i + 1]) {
            doubled = i;
            break;
          }
        }
        size_t i = doubled != std::string::npos ? doubled
                                                : rng.Uniform(out.size());
        out.erase(out.begin() + static_cast<long>(i));
        break;
      }
      case 2: {  // transpose adjacent letters
        if (out.size() >= 2) {
          size_t i = rng.Uniform(out.size() - 1);
          std::swap(out[i], out[i + 1]);
        }
        break;
      }
      case 3: {  // ie <-> ei
        size_t pos = out.find("ie");
        if (pos == std::string::npos) pos = out.find("ei");
        if (pos != std::string::npos) {
          std::swap(out[pos], out[pos + 1]);
        } else {
          size_t i = rng.Uniform(out.size());
          out[i] = RandomKeyboardNeighbor(out[i], rng);
        }
        break;
      }
      case 4: {  // vowel substitution (the classic -ance/-ence family)
        std::vector<size_t> vowels;
        for (size_t i = 0; i < out.size(); ++i) {
          if (IsVowel(out[i])) vowels.push_back(i);
        }
        if (!vowels.empty()) {
          size_t i = vowels[rng.Uniform(vowels.size())];
          constexpr char kVowels[] = {'a', 'e', 'i', 'o', 'u'};
          char replacement = out[i];
          while (replacement == out[i]) {
            replacement = kVowels[rng.Uniform(5)];
          }
          out[i] = replacement;
        }
        break;
      }
      default: {  // keyboard-adjacent substitution
        size_t i = rng.Uniform(out.size());
        out[i] = RandomKeyboardNeighbor(out[i], rng);
        break;
      }
    }
  }
  return out;
}

}  // namespace xclean
