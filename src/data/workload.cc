#include "data/workload.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/string_util.h"
#include "data/misspell.h"

namespace xclean {

namespace {

/// Query length with mean ~2.5 over [1, 7] (clamped to the configured
/// bounds), approximating the paper's INEX topic distribution.
uint32_t SampleQueryLength(Rng& rng, const WorkloadOptions& options) {
  // Cumulative weights for lengths 1..7.
  constexpr double kCdf[] = {0.20, 0.55, 0.80, 0.90, 0.95, 0.98, 1.0};
  double u = rng.UniformDouble();
  uint32_t len = 7;
  for (uint32_t i = 0; i < 7; ++i) {
    if (u <= kCdf[i]) {
      len = i + 1;
      break;
    }
  }
  return std::clamp(len, options.min_len, options.max_len);
}

/// Distinct tokens in the subtree of `entity`, collected through the
/// index's inverted data (re-tokenizing node text keeps this independent of
/// posting layout). Tokens rarer than min_cf (content typos, IDs) are not
/// query-keyword material.
std::vector<TokenId> EntityTokens(const XmlIndex& index, NodeId entity,
                                  uint64_t min_cf) {
  const XmlTree& tree = index.tree();
  std::unordered_set<TokenId> seen;
  std::vector<TokenId> out;
  for (NodeId n = entity; n <= tree.subtree_end(entity); ++n) {
    if (!tree.has_text(n)) continue;
    for (const std::string& token : index.tokenizer().Tokenize(tree.text(n))) {
      TokenId id = index.vocabulary().Find(token);
      if (id == kInvalidToken) continue;
      if (index.collection_freq(id) < min_cf) continue;
      if (seen.insert(id).second) out.push_back(id);
    }
  }
  return out;
}

/// Weighted sample without replacement of `count` tokens, weight
/// 1/sqrt(cf): biases toward informative (rare) tokens the way human
/// queries pick content words, without making every keyword a hapax.
std::vector<TokenId> SampleTokens(const XmlIndex& index,
                                  std::vector<TokenId> candidates,
                                  uint32_t count, Rng& rng) {
  std::vector<TokenId> out;
  while (out.size() < count && !candidates.empty()) {
    double total = 0.0;
    std::vector<double> weights(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      weights[i] = 1.0 / std::sqrt(static_cast<double>(
                             index.collection_freq(candidates[i])));
      total += weights[i];
    }
    double u = rng.UniformDouble() * total;
    size_t pick = candidates.size() - 1;
    double acc = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      acc += weights[i];
      if (u <= acc) {
        pick = i;
        break;
      }
    }
    out.push_back(candidates[pick]);
    candidates.erase(candidates.begin() + static_cast<long>(pick));
  }
  return out;
}

bool AllAlpha(const std::string& s) {
  for (char c : s) {
    if (!IsAsciiAlpha(c)) return false;
  }
  return true;
}

/// One random edit operation (insert / delete / substitute a letter).
std::string RandomEdit(const std::string& word, Rng& rng) {
  std::string out = word;
  switch (rng.Uniform(3)) {
    case 0: {  // insertion
      size_t pos = rng.Uniform(out.size() + 1);
      char c = static_cast<char>('a' + rng.Uniform(26));
      out.insert(out.begin() + static_cast<long>(pos), c);
      break;
    }
    case 1: {  // deletion
      out.erase(out.begin() + static_cast<long>(rng.Uniform(out.size())));
      break;
    }
    default: {  // substitution
      size_t pos = rng.Uniform(out.size());
      char c = out[pos];
      while (c == out[pos]) c = static_cast<char>('a' + rng.Uniform(26));
      out[pos] = c;
      break;
    }
  }
  return out;
}

}  // namespace

std::vector<Query> SampleInitialQueries(const XmlIndex& index,
                                        const WorkloadOptions& options) {
  const XmlTree& tree = index.tree();
  Rng rng(options.seed);

  // Entities at the requested depth = children chains of the root.
  std::vector<NodeId> entities;
  for (NodeId n = 0; n < tree.size(); ++n) {
    if (tree.depth(n) == options.entity_depth) entities.push_back(n);
  }
  XCLEAN_CHECK(!entities.empty());

  std::vector<Query> out;
  std::unordered_set<std::string> seen;
  size_t guard = 0;
  while (out.size() < options.num_queries &&
         guard < options.num_queries * 100ull) {
    ++guard;
    NodeId entity = entities[rng.Uniform(entities.size())];
    std::vector<TokenId> tokens =
        EntityTokens(index, entity, options.min_keyword_cf);
    uint32_t len = SampleQueryLength(rng, options);
    if (tokens.size() < len) continue;
    std::vector<TokenId> picked =
        SampleTokens(index, std::move(tokens), len, rng);
    Query q;
    for (TokenId id : picked) {
      q.keywords.push_back(index.vocabulary().token(id));
    }
    if (seen.insert(q.ToString()).second) out.push_back(std::move(q));
  }
  XCLEAN_CHECK(out.size() == options.num_queries);
  return out;
}

Query PerturbRand(const Query& query, const XmlIndex& index,
                  const WorkloadOptions& options, Rng& rng) {
  Query dirty;
  for (const std::string& word : query.keywords) {
    // Paper subtlety (2): keep very short tokens intact so enough signal
    // survives for recovery.
    if (word.size() <= 4) {
      dirty.keywords.push_back(word);
      continue;
    }
    std::string perturbed = word;
    bool accepted = false;
    for (int attempt = 0; attempt < 50 && !accepted; ++attempt) {
      perturbed = word;
      for (uint32_t e = 0; e < options.rand_edits; ++e) {
        perturbed = RandomEdit(perturbed, rng);
      }
      // Paper subtlety (1): the dirty token must leave the vocabulary so
      // the perturbed query is genuinely dirty. It must also survive query
      // normalization unchanged.
      accepted = perturbed.size() >= 3 && AllAlpha(perturbed) &&
                 !index.vocabulary().Contains(perturbed);
    }
    dirty.keywords.push_back(accepted ? perturbed : word);
  }
  return dirty;
}

Query PerturbRule(const Query& query, const XmlIndex& index,
                  const WorkloadOptions& options, Rng& rng) {
  const auto& table = MisspellingsByCorrection();
  Query dirty;
  for (const std::string& word : query.keywords) {
    auto it = table.find(word);
    if (it != table.end()) {
      // A real human misspelling of this word.
      const std::vector<std::string>& forms = it->second;
      dirty.keywords.push_back(forms[rng.Uniform(forms.size())]);
      continue;
    }
    if (word.size() <= 4) {
      dirty.keywords.push_back(word);
      continue;
    }
    // Fallback: rule-based human-style misspelling; prefer forms outside
    // the vocabulary (common misspellings are usually non-words).
    std::string best = word;
    for (int attempt = 0; attempt < 20; ++attempt) {
      uint32_t edits = 1 + static_cast<uint32_t>(rng.Uniform(
                               options.rule_max_edits));
      std::string misspelt = RuleMisspell(word, edits, rng);
      if (misspelt.size() < 3 || !AllAlpha(misspelt) || misspelt == word) {
        continue;
      }
      best = misspelt;
      if (!index.vocabulary().Contains(misspelt)) break;
    }
    dirty.keywords.push_back(best);
  }
  return dirty;
}

QuerySet MakeQuerySet(const std::string& name, const XmlIndex& index,
                      const std::vector<Query>& initial,
                      Perturbation perturbation,
                      const WorkloadOptions& options) {
  Rng rng(options.seed ^ 0xD1CEBA5EULL);
  QuerySet set;
  set.name = name;
  set.queries.reserve(initial.size());
  for (const Query& clean : initial) {
    EvalQuery eq;
    eq.truth = clean;
    switch (perturbation) {
      case Perturbation::kClean:
        eq.dirty = clean;
        break;
      case Perturbation::kRand:
        eq.dirty = PerturbRand(clean, index, options, rng);
        break;
      case Perturbation::kRule:
        eq.dirty = PerturbRule(clean, index, options, rng);
        break;
    }
    set.queries.push_back(std::move(eq));
  }
  return set;
}

std::unique_ptr<LogCorrector> BuildSeProxy(
    const XmlIndex& index, const std::vector<Query>& clean_queries,
    uint64_t seed, size_t popular_token_count) {
  LogCorrector::Options options;
  // Engines search a wide correction radius (they can afford to: the log
  // tells them which results are real queries); this reaches the distant
  // RULE misspellings but also pulls RAND errors toward popular lookalikes.
  options.max_ed = 3;
  auto corrector = std::make_unique<LogCorrector>(options);
  Rng rng(seed);

  // Clean queries enter the log with Zipfian popularity: real logs repeat
  // popular queries many times.
  ZipfDistribution zipf(std::max<uint64_t>(clean_queries.size(), 1), 1.0);
  for (const Query& q : clean_queries) {
    uint64_t count = 1 + 1000 / (1 + zipf.Sample(rng));
    corrector->AddLogQuery(q.keywords, count);
  }

  // The corpus's most frequent tokens also show up in a real log; their
  // popularity is their collection frequency (this is exactly the
  // popularity bias the paper criticizes: frequent words attract
  // corrections).
  std::vector<TokenId> tokens(index.vocabulary().size());
  for (TokenId i = 0; i < tokens.size(); ++i) tokens[i] = i;
  std::sort(tokens.begin(), tokens.end(), [&](TokenId a, TokenId b) {
    return index.collection_freq(a) > index.collection_freq(b);
  });
  if (tokens.size() > popular_token_count) {
    tokens.resize(popular_token_count);
  }
  for (TokenId t : tokens) {
    corrector->AddLogQuery({index.vocabulary().token(t)},
                           index.collection_freq(t));
  }

  // Log-mined rewrite pairs: the common-misspelling table (search engines
  // learn these from query-reformulation chains).
  for (const MisspellingPair& pair : CommonMisspellings()) {
    corrector->AddRewrite(std::string(pair.misspelling),
                          std::string(pair.correction));
  }

  // Engines also learn rewrites for misspellings their users *actually
  // type*: simulate web-scale log mining by generating human-style (rule)
  // misspellings of every established vocabulary word — the same
  // generative process the RULE perturbation uses, which is exactly why
  // the paper observes SEs doing better on RULE than on RAND errors.
  // Iterate ascending popularity so a collision resolves to the more
  // popular correction.
  std::vector<TokenId> rewrite_words(index.vocabulary().size());
  for (TokenId i = 0; i < rewrite_words.size(); ++i) rewrite_words[i] = i;
  std::sort(rewrite_words.begin(), rewrite_words.end(),
            [&](TokenId a, TokenId b) {
              return index.collection_freq(a) < index.collection_freq(b);
            });
  for (TokenId t : rewrite_words) {
    const std::string& word = index.vocabulary().token(t);
    if (word.size() <= 4 || index.collection_freq(t) < 3) continue;
    for (int k = 0; k < 30; ++k) {
      uint32_t edits = 1 + static_cast<uint32_t>(rng.Uniform(2));
      std::string misspelt = RuleMisspell(word, edits, rng);
      if (misspelt != word) corrector->AddRewrite(misspelt, word);
    }
  }

  corrector->Freeze();
  return corrector;
}

}  // namespace xclean
