#ifndef XCLEAN_DATA_WORDLIST_H_
#define XCLEAN_DATA_WORDLIST_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace xclean {

/// Embedded word pools powering the synthetic corpora. All entries are
/// lowercase ASCII, length >= 3 (they survive the tokenizer unchanged), and
/// real English so the common-misspelling table in data/misspell applies.
///
/// The generators draw from these pools with Zipfian rank distributions, so
/// the synthetic vocabularies exhibit the popularity skew that both the
/// rare-token bias of PY08 and the popularity bias of log-based correctors
/// depend on.
std::span<const std::string_view> CommonEnglishWords();
std::span<const std::string_view> ComputerScienceTerms();
std::span<const std::string_view> Surnames();
std::span<const std::string_view> FirstNames();
std::span<const std::string_view> VenueNames();
std::span<const std::string_view> WikiTopics();

/// Derives a larger vocabulary from the base pools by attaching
/// morphological suffixes ("ness", "tion", "ing", ...) — the INEX-like
/// corpus needs a vocabulary several times larger than the DBLP-like one
/// (the paper reports a 6x ratio) while staying plausible English-shaped.
/// Deterministic in `seed`. The result contains every base word first.
std::vector<std::string> ExpandedWordPool(size_t target_size, uint64_t seed);

}  // namespace xclean

#endif  // XCLEAN_DATA_WORDLIST_H_
