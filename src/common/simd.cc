#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define XCLEAN_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define XCLEAN_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace xclean::simd {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;

Level Detect() {
#if defined(XCLEAN_SIMD_X86)
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSse42;
#endif
  return Level::kScalar;
#elif defined(XCLEAN_SIMD_NEON)
  return Level::kNeon;
#else
  return Level::kScalar;
#endif
}

Level InitialLevel() {
  if (ForceScalarFromEnv()) return Level::kScalar;
  return DetectedLevel();
}

std::atomic<Level>& ActiveSlot() {
  static std::atomic<Level> active{InitialLevel()};
  return active;
}

// --- scalar twins ---------------------------------------------------------

const char* DecodeVarint32One(const char* p, const char* end, uint32_t* out) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift < 64 && p < end; shift += 7) {
    uint8_t byte = static_cast<uint8_t>(*p++);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      if (result > 0xFFFFFFFFull) return nullptr;
      *out = static_cast<uint32_t>(result);
      return p;
    }
  }
  return nullptr;
}

const char* DecodeVarint32GroupScalar(const char* p, const char* end,
                                      uint32_t* out, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    p = DecodeVarint32One(p, end, out + i);
    if (p == nullptr) return nullptr;
  }
  return p;
}

size_t CountKeysBelowStride8Scalar(const unsigned char* base, size_t size,
                                   uint32_t target) {
  size_t i = 0;
  for (; i < size; ++i) {
    uint32_t key;
    std::memcpy(&key, base + i * 8, sizeof(key));
    if (key >= target) break;
  }
  return i;
}

uint64_t Key64At(const unsigned char* base, size_t i) {
  uint64_t key;
  std::memcpy(&key, base + i * 16, sizeof(key));
  return key;
}

size_t LowerBoundKey64Stride16Scalar(const unsigned char* base, size_t size,
                                     uint64_t needle) {
  size_t lo = 0, hi = size;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (Key64At(base, mid) < needle) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void Fnv1aBatch4Interleaved(uint64_t seed, const std::string_view in[4],
                            uint64_t out[4]) {
  // Four scalar chains advanced in lockstep: the compiler interleaves the
  // independent xor/multiply chains, hiding each multiply's latency behind
  // the other lanes. Identical arithmetic to one-at-a-time FNV-1a.
  uint64_t h0 = seed, h1 = seed, h2 = seed, h3 = seed;
  const size_t n0 = in[0].size(), n1 = in[1].size();
  const size_t n2 = in[2].size(), n3 = in[3].size();
  size_t common = n0;
  common = common < n1 ? common : n1;
  common = common < n2 ? common : n2;
  common = common < n3 ? common : n3;
  size_t j = 0;
  for (; j < common; ++j) {
    h0 = (h0 ^ static_cast<uint8_t>(in[0][j])) * kFnvPrime;
    h1 = (h1 ^ static_cast<uint8_t>(in[1][j])) * kFnvPrime;
    h2 = (h2 ^ static_cast<uint8_t>(in[2][j])) * kFnvPrime;
    h3 = (h3 ^ static_cast<uint8_t>(in[3][j])) * kFnvPrime;
  }
  for (size_t k = j; k < n0; ++k) {
    h0 = (h0 ^ static_cast<uint8_t>(in[0][k])) * kFnvPrime;
  }
  for (size_t k = j; k < n1; ++k) {
    h1 = (h1 ^ static_cast<uint8_t>(in[1][k])) * kFnvPrime;
  }
  for (size_t k = j; k < n2; ++k) {
    h2 = (h2 ^ static_cast<uint8_t>(in[2][k])) * kFnvPrime;
  }
  for (size_t k = j; k < n3; ++k) {
    h3 = (h3 ^ static_cast<uint8_t>(in[3][k])) * kFnvPrime;
  }
  out[0] = h0;
  out[1] = h1;
  out[2] = h2;
  out[3] = h3;
}

// --- x86-64 tiers ---------------------------------------------------------

#if defined(XCLEAN_SIMD_X86)

__attribute__((target("sse4.2"))) const char* DecodeVarint32GroupSse42(
    const char* p, const char* end, uint32_t* out, size_t count) {
  // Fast path: when the next 8 stream bytes all lack the continuation bit,
  // they are 8 complete one-byte varints; widen u8 -> u32 in two steps.
  // The 16-byte load over-reads past the 8 consumed bytes, so require 16
  // readable bytes and leave the tail to the scalar decoder.
  while (count >= 8 && end - p >= 16) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const int cont = _mm_movemask_epi8(bytes);
    if ((cont & 0xFF) != 0) {
      p = DecodeVarint32One(p, end, out);
      if (p == nullptr) return nullptr;
      ++out;
      --count;
      continue;
    }
    const __m128i lo = _mm_cvtepu8_epi32(bytes);
    const __m128i hi = _mm_cvtepu8_epi32(_mm_srli_si128(bytes, 4));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4), hi);
    out += 8;
    p += 8;
    count -= 8;
  }
  return DecodeVarint32GroupScalar(p, end, out, count);
}

__attribute__((target("avx2"))) const char* DecodeVarint32GroupAvx2(
    const char* p, const char* end, uint32_t* out, size_t count) {
  // 16 one-byte varints per step (32-byte load, low half consumed).
  while (count >= 16 && end - p >= 32) {
    const __m256i bytes =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const int cont = _mm256_movemask_epi8(bytes);
    if ((cont & 0xFFFF) != 0) {
      p = DecodeVarint32One(p, end, out);
      if (p == nullptr) return nullptr;
      ++out;
      --count;
      continue;
    }
    const __m128i low16 = _mm256_castsi256_si128(bytes);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                        _mm256_cvtepu8_epi32(low16));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8),
                        _mm256_cvtepu8_epi32(_mm_srli_si128(low16, 8)));
    out += 16;
    p += 16;
    count -= 16;
  }
  return DecodeVarint32GroupSse42(p, end, out, count);
}

__attribute__((target("sse4.2"))) size_t CountKeysBelowStride8Sse42(
    const unsigned char* base, size_t size, uint32_t target) {
  // Two 8-byte records per 16-byte load; keys sit in the even 32-bit
  // lanes. Unsigned compare via the sign-bit flip trick.
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i tgt = _mm_xor_si128(_mm_set1_epi32(static_cast<int>(target)),
                                    bias);
  size_t i = 0;
  while (i + 2 <= size) {
    const __m128i recs =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + i * 8));
    const __m128i keys = _mm_xor_si128(recs, bias);
    // Lane l is all-ones where target > key (key < target); only even
    // lanes hold keys.
    const int mask =
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(tgt, keys)));
    if ((mask & 0x1) == 0) return i;
    if ((mask & 0x4) == 0) return i + 1;
    i += 2;
  }
  return i + CountKeysBelowStride8Scalar(base + i * 8, size - i, target);
}

__attribute__((target("avx2"))) size_t CountKeysBelowStride8Avx2(
    const unsigned char* base, size_t size, uint32_t target) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i tgt =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(target)), bias);
  size_t i = 0;
  while (i + 4 <= size) {
    const __m256i recs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i * 8));
    const __m256i keys = _mm256_xor_si256(recs, bias);
    const int mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(tgt, keys)));
    // Keys occupy bits 0,2,4,6; compact them and count the all-ones
    // prefix (the array is sorted, so below-target keys are a prefix).
    const unsigned compact = ((mask >> 0) & 1u) | ((mask >> 1) & 2u) |
                             ((mask >> 2) & 4u) | ((mask >> 3) & 8u);
    if (compact != 0xF) {
      unsigned run = 0;
      while (compact & (1u << run)) ++run;
      return i + run;
    }
    i += 4;
  }
  return i + CountKeysBelowStride8Scalar(base + i * 8, size - i, target);
}

__attribute__((target("avx2"))) size_t LowerBoundKey64Stride16Avx2(
    const unsigned char* base, size_t size, uint64_t needle) {
  // Binary-narrow to one vector window, then gather-compare 4 keys per
  // step (stride 16 bytes = scale-8 indices 0,2,4,6) and count the
  // below-needle prefix. Unsigned 64-bit compare via the sign-bit flip.
  size_t lo = 0, hi = size;
  while (hi - lo > 16) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Key64At(base, mid) < needle) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i ndl = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(needle)), bias);
  const __m256i idx = _mm256_setr_epi64x(0, 2, 4, 6);
  while (lo + 4 <= hi) {
    const long long* lanes =
        reinterpret_cast<const long long*>(base + lo * 16);
    const __m256i keys =
        _mm256_xor_si256(_mm256_i64gather_epi64(lanes, idx, 8), bias);
    const int mask =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(ndl, keys)));
    if (mask != 0xF) {
      unsigned run = 0;
      while (mask & (1 << run)) ++run;
      return lo + run;
    }
    lo += 4;
  }
  while (lo < hi && Key64At(base, lo) < needle) ++lo;
  return lo;
}

#endif  // XCLEAN_SIMD_X86

// --- aarch64 (NEON) tier --------------------------------------------------

#if defined(XCLEAN_SIMD_NEON)

const char* DecodeVarint32GroupNeon(const char* p, const char* end,
                                    uint32_t* out, size_t count) {
  while (count >= 8 && end - p >= 16) {
    const uint8x16_t bytes =
        vld1q_u8(reinterpret_cast<const uint8_t*>(p));
    const uint8x8_t low = vget_low_u8(bytes);
    // Any continuation bit in the first 8 bytes -> scalar-decode one.
    if (vmaxv_u8(vand_u8(low, vdup_n_u8(0x80))) != 0) {
      p = DecodeVarint32One(p, end, out);
      if (p == nullptr) return nullptr;
      ++out;
      --count;
      continue;
    }
    const uint16x8_t w16 = vmovl_u8(low);
    vst1q_u32(out, vmovl_u16(vget_low_u16(w16)));
    vst1q_u32(out + 4, vmovl_u16(vget_high_u16(w16)));
    out += 8;
    p += 8;
    count -= 8;
  }
  return DecodeVarint32GroupScalar(p, end, out, count);
}

size_t CountKeysBelowStride8Neon(const unsigned char* base, size_t size,
                                 uint32_t target) {
  const uint32x4_t tgt = vdupq_n_u32(target);
  size_t i = 0;
  while (i + 4 <= size) {
    // De-interleave 4 records: val[0] = keys, val[1] = payloads.
    const uint32x4x2_t recs =
        vld2q_u32(reinterpret_cast<const uint32_t*>(base + i * 8));
    const uint32x4_t below = vcltq_u32(recs.val[0], tgt);
    if (vminvq_u32(below) == 0) {
      // Mixed lanes: count the all-ones prefix (keys ascend, so
      // below-target lanes are a prefix).
      uint32_t lanes[4];
      vst1q_u32(lanes, below);
      size_t run = 0;
      while (run < 4 && lanes[run] != 0) ++run;
      return i + run;
    }
    i += 4;
  }
  return i + CountKeysBelowStride8Scalar(base + i * 8, size - i, target);
}

#endif  // XCLEAN_SIMD_NEON

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse42:
      return "sse4.2";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

Level DetectedLevel() {
  static const Level detected = Detect();
  return detected;
}

Level ActiveLevel() {
  return ActiveSlot().load(std::memory_order_relaxed);
}

bool ForceScalarFromEnv() {
  static const bool force = [] {
    const char* v = std::getenv("XCLEAN_FORCE_SCALAR");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return force;
}

ScopedLevel::ScopedLevel(Level level) : previous_(ActiveLevel()) {
  if (level > DetectedLevel()) level = DetectedLevel();
  ActiveSlot().store(level, std::memory_order_relaxed);
}

ScopedLevel::~ScopedLevel() {
  ActiveSlot().store(previous_, std::memory_order_relaxed);
}

const char* DecodeVarint32Group(Level level, const char* p, const char* end,
                                uint32_t* out, size_t count) {
#if defined(XCLEAN_SIMD_X86)
  if (level == Level::kAvx2) {
    return DecodeVarint32GroupAvx2(p, end, out, count);
  }
  if (level == Level::kSse42) {
    return DecodeVarint32GroupSse42(p, end, out, count);
  }
#elif defined(XCLEAN_SIMD_NEON)
  if (level == Level::kNeon) return DecodeVarint32GroupNeon(p, end, out, count);
#else
  (void)level;
#endif
  return DecodeVarint32GroupScalar(p, end, out, count);
}

size_t CountKeysBelowStride8(Level level, const void* base, size_t size,
                             uint32_t target) {
  const unsigned char* bytes = static_cast<const unsigned char*>(base);
#if defined(XCLEAN_SIMD_X86)
  if (level == Level::kAvx2) {
    return CountKeysBelowStride8Avx2(bytes, size, target);
  }
  if (level == Level::kSse42) {
    return CountKeysBelowStride8Sse42(bytes, size, target);
  }
#elif defined(XCLEAN_SIMD_NEON)
  if (level == Level::kNeon) {
    return CountKeysBelowStride8Neon(bytes, size, target);
  }
#else
  (void)level;
#endif
  return CountKeysBelowStride8Scalar(bytes, size, target);
}

size_t LowerBoundKey64Stride16(Level level, const void* base, size_t size,
                               uint64_t needle) {
  const unsigned char* bytes = static_cast<const unsigned char*>(base);
#if defined(XCLEAN_SIMD_X86)
  if (level == Level::kAvx2) {
    return LowerBoundKey64Stride16Avx2(bytes, size, needle);
  }
#endif
  (void)level;
  return LowerBoundKey64Stride16Scalar(bytes, size, needle);
}

void Fnv1aBatch4(Level level, uint64_t seed, const std::string_view in[4],
                 uint64_t out[4]) {
  // Every tier runs the interleaved form. An AVX2 lane version (bytes
  // gathered per step, 64x64 multiply emulated from 32-bit partial
  // products) was measured 3-5x SLOWER than four interleaved scalar
  // chains: FNV's per-byte multiply is a serial dependency, and the
  // emulation triples the latency on that critical path while the scalar
  // multiplier pipelines the four independent chains for free. The batch
  // API is the optimization; the lanes are best left to the superscalar
  // core.
  (void)level;
  Fnv1aBatch4Interleaved(seed, in, out);
}

}  // namespace xclean::simd
