#include "common/durable_file.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/fault_injection.h"
#include "common/string_util.h"

#if defined(_WIN32)
#include <io.h>
#include <windows.h>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace xclean {

namespace {

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Internal(
      StrFormat("%s failed for '%s': %s", op, path.c_str(),
                std::strerror(errno)));
}

/// Unique temp-file suffix: pid + a process-wide counter. Two publishers
/// racing on the same path get distinct temp files; the losing rename still
/// installs a complete payload.
std::string TempPathFor(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
#if defined(_WIN32)
  const unsigned long pid =
      static_cast<unsigned long>(::GetCurrentProcessId());
#else
  const unsigned long pid = static_cast<unsigned long>(::getpid());
#endif
  return StrFormat("%s.tmp.%lu.%llu", path.c_str(), pid,
                   static_cast<unsigned long long>(n));
}

#if !defined(_WIN32)

Status WriteAll(int fd, std::string_view contents, const std::string& path) {
  const char* p = contents.data();
  size_t left = contents.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

#endif  // !_WIN32

}  // namespace

uint64_t Fnv1a(const void* data, size_t size, uint64_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h = (h ^ p[i]) * 1099511628211ULL;
  }
  return h;
}

Status SyncDirectory(const std::string& dir) {
#if defined(_WIN32)
  (void)dir;
  return Status::Ok();
#else
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Ok();  // best effort: not all FS allow this
  Status s = Status::Ok();
  if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
    s = ErrnoStatus("fsync(dir)", dir);
  }
  ::close(fd);
  return s;
#endif
}

namespace {

/// Funnels an injection point through a normal Status return, so
/// AtomicWriteFile can clean up (close + unlink the temp file) on an
/// injected failure instead of early-returning past the cleanup. A crash
/// callback armed on the point still kills the process at the named stage.
Status HitFaultPoint(const char* point) {
  XCLEAN_FAULT_STATUS(point);
  (void)point;
  return Status::Ok();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       DurableWriteOptions options) {
  const std::string tmp = TempPathFor(path);
  Status s = HitFaultPoint("durable.open_tmp");
  if (!s.ok()) return s;
#if defined(_WIN32)
  // Portability fallback: atomic rename without fsync.
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return ErrnoStatus("open", tmp);
  s = HitFaultPoint("durable.write");
  const size_t written =
      s.ok() ? std::fwrite(contents.data(), 1, contents.size(), f) : 0;
  std::fclose(f);
  if (written != contents.size()) {
    std::remove(tmp.c_str());
    return s.ok() ? ErrnoStatus("write", tmp) : s;
  }
  s = HitFaultPoint("durable.rename");
  if (!s.ok()) {
    std::remove(tmp.c_str());
    return s;
  }
  // MoveFileEx replaces the target in one step; a remove-then-rename pair
  // would leave a window where `path` holds neither the old bytes nor the
  // new ones, breaking the old-or-new contract above.
  if (::MoveFileExA(tmp.c_str(), path.c_str(),
                    MOVEFILE_REPLACE_EXISTING | MOVEFILE_WRITE_THROUGH) ==
      0) {
    std::remove(tmp.c_str());
    return Status::Internal(
        StrFormat("MoveFileEx failed for '%s' (error %lu)", path.c_str(),
                  static_cast<unsigned long>(::GetLastError())));
  }
  return Status::Ok();
#else
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return ErrnoStatus("open", tmp);

  // From here on, any failure must leave no temp litter behind.
  auto fail = [&](Status st) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  };

  if (!(s = HitFaultPoint("durable.write")).ok()) return fail(s);
  if (!(s = WriteAll(fd, contents, tmp)).ok()) return fail(s);
  if (options.sync) {
    if (!(s = HitFaultPoint("durable.sync")).ok()) return fail(s);
    if (::fsync(fd) != 0) return fail(ErrnoStatus("fsync", tmp));
  }
  if (::close(fd) != 0) {
    fd = -1;
    return fail(ErrnoStatus("close", tmp));
  }
  fd = -1;

  if (!(s = HitFaultPoint("durable.rename")).ok()) return fail(s);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail(ErrnoStatus("rename", path));
  }
  if (options.sync) {
    // Past the rename the publish is visible; a sync_dir failure reports
    // "durability unknown" but must not delete anything.
    if (!(s = HitFaultPoint("durable.sync_dir")).ok()) return s;
    const std::string parent =
        std::filesystem::path(path).parent_path().string();
    return SyncDirectory(parent.empty() ? "." : parent);
  }
  return Status::Ok();
#endif
}

Status AppendDurable(const std::string& path, std::string_view record,
                     DurableWriteOptions options) {
  XCLEAN_FAULT_STATUS("durable.append");
#if defined(_WIN32)
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return ErrnoStatus("open", path);
  const size_t written = std::fwrite(record.data(), 1, record.size(), f);
  std::fclose(f);
  if (written != record.size()) return ErrnoStatus("append", path);
  return Status::Ok();
#else
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) return ErrnoStatus("open", path);
  Status s = WriteAll(fd, record, path);
  if (s.ok() && options.sync) {
    s = HitFaultPoint("durable.sync");
    if (s.ok() && ::fsync(fd) != 0) s = ErrnoStatus("fsync", path);
  }
  ::close(fd);
  return s;
#endif
}

Status TruncateFile(const std::string& path, uint64_t size,
                    DurableWriteOptions options) {
  XCLEAN_FAULT_STATUS("durable.truncate");
#if defined(_WIN32)
  std::error_code ec;
  std::filesystem::resize_file(path, size, ec);
  if (ec) {
    return Status::Internal(
        StrFormat("resize_file failed for '%s': %s", path.c_str(),
                  ec.message().c_str()));
  }
  (void)options;
  return Status::Ok();
#else
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path);
  Status s = Status::Ok();
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    s = ErrnoStatus("ftruncate", path);
  } else if (options.sync && ::fsync(fd) != 0) {
    s = ErrnoStatus("fsync", path);
  }
  ::close(fd);
  return s;
#endif
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open file: " + path);
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Internal("read failed for: " + path);
  return out;
}

Result<uint64_t> HashFileContents(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open file: " + path);
  uint64_t h = kFnvOffsetBasis;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    h = Fnv1a(buf, n, h);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Internal("read failed for: " + path);
  return h;
}

Status VerifyFileChecksum(const std::string& path, uint64_t expected_bytes,
                          uint64_t expected_checksum) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::NotFound("cannot stat file: " + path);
  if (size != expected_bytes) {
    return Status::ParseError(
        StrFormat("file '%s': size %llu, expected %llu", path.c_str(),
                  static_cast<unsigned long long>(size),
                  static_cast<unsigned long long>(expected_bytes)));
  }
  Result<uint64_t> hash = HashFileContents(path);
  if (!hash.ok()) return hash.status();
  if (hash.value() != expected_checksum) {
    return Status::ParseError(
        StrFormat("file '%s': content checksum mismatch", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace xclean
