#ifndef XCLEAN_COMMON_THREAD_POOL_H_
#define XCLEAN_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace xclean {

struct ThreadPoolOptions {
  /// Number of worker threads; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  size_t num_threads = 0;
  /// Maximum number of queued (not yet running) tasks. Submitting beyond
  /// this is rejected, never blocked — backpressure must reach the caller.
  size_t queue_capacity = 1024;
};

/// Fixed-size worker pool over a bounded MPMC task queue (mutex+condvar;
/// any thread may submit, all workers consume). Tasks are plain
/// `std::function<void()>`; deadline bookkeeping lives in the serving
/// engine, which checks expiry inside the task it submits.
///
/// Shared by the serving engine (request execution) and the index builder
/// (ParallelFor over build phases), which is why it lives in common/ and
/// not serve/.
class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions options = ThreadPoolOptions());

  /// Joins all workers; queued tasks that have not started are dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution. Returns Unavailable (without blocking)
  /// when the queue is at capacity, InvalidArgument after Shutdown().
  Status TrySubmit(std::function<void()> task);

  /// Deadline-aware submission. An entry still queued when its deadline
  /// passes is *evicted*: its queue slot is released first, then
  /// `on_expired` runs (instead of `task`, never both). Eviction happens
  /// at two points — a worker that pops an expired entry runs on_expired
  /// directly, and a full-queue TrySubmit sweeps expired entries out to
  /// make room before rejecting, so one stuck burst of doomed requests
  /// cannot pin the queue at capacity. on_expired must not block; it runs
  /// on a worker or on the submitting thread (after the slot is freed),
  /// never under the queue lock. Entries dropped by a non-draining
  /// shutdown also get their on_expired called.
  Status TrySubmit(std::function<void()> task,
                   std::chrono::steady_clock::time_point deadline,
                   std::function<void()> on_expired);

  /// Stops accepting work, runs every task already queued, joins workers.
  /// Idempotent; also called by the destructor (which instead drops the
  /// backlog for fast teardown).
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return options_.queue_capacity; }

  /// Instantaneous queue depth (monitoring only).
  size_t queue_depth() const;

  /// Entries whose deadline passed while queued (evicted by a worker, a
  /// full-queue sweep, or shutdown). Monitoring only.
  uint64_t expired_evictions() const;

 private:
  struct Entry {
    std::function<void()> task;
    /// max() = no deadline.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    std::function<void()> on_expired;
  };

  void WorkerLoop();
  void Stop(bool drain);

  ThreadPoolOptions options_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<Entry> queue_;
  bool stopping_ = false;  ///< no new submissions
  bool draining_ = false;  ///< workers finish the backlog before exiting
  uint64_t expired_evictions_ = 0;
};

}  // namespace xclean

#endif  // XCLEAN_COMMON_THREAD_POOL_H_
