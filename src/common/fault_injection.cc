#include "common/fault_injection.h"

#if defined(XCLEAN_FAULT_INJECTION) && XCLEAN_FAULT_INJECTION

#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

namespace xclean::fault {

namespace {

struct Point {
  Status status;  ///< kOk = no status armed
  std::chrono::milliseconds delay{0};
  std::function<void()> callback;
  /// Remaining hits before the point disarms itself; -1 = unlimited.
  int remaining = -1;
  uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Point> points;
};

Registry& TheRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

void Arm(const std::string& point, Point armed) {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, created] = r.points.try_emplace(point);
  armed.hits = it->second.hits;  // keep the count across re-arms
  it->second = std::move(armed);
  if (created) {
    internal::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

namespace internal {

std::atomic<int> g_armed_points{0};

Status Hit(const char* point) {
  Point fired;
  {
    Registry& r = TheRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.points.find(point);
    if (it == r.points.end()) return Status::Ok();
    Point& p = it->second;
    if (p.remaining == 0) return Status::Ok();
    ++p.hits;
    if (p.remaining > 0) --p.remaining;
    fired = p;  // copy: the action runs outside the lock
  }
  if (fired.delay.count() > 0) std::this_thread::sleep_for(fired.delay);
  if (fired.callback) fired.callback();
  return fired.status;
}

}  // namespace internal

void ArmStatus(const std::string& point, Status status, int times) {
  Point p;
  p.status = std::move(status);
  p.remaining = times;
  Arm(point, std::move(p));
}

void ArmDelay(const std::string& point, std::chrono::milliseconds delay,
              int times) {
  Point p;
  p.delay = delay;
  p.remaining = times;
  Arm(point, std::move(p));
}

void ArmCallback(const std::string& point, std::function<void()> callback,
                 int times) {
  Point p;
  p.callback = std::move(callback);
  p.remaining = times;
  Arm(point, std::move(p));
}

void Disarm(const std::string& point) {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(point);
  if (it == r.points.end()) return;
  // Neutralize the point but keep the entry so HitCount survives a
  // Disarm (only DisarmAll zeroes counts). The entry stays counted in
  // g_armed_points; Hit() sees remaining == 0 and passes through.
  const uint64_t hits = it->second.hits;
  it->second = Point{};
  it->second.remaining = 0;
  it->second.hits = hits;
}

void DisarmAll() {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  internal::g_armed_points.fetch_sub(static_cast<int>(r.points.size()),
                                     std::memory_order_relaxed);
  r.points.clear();
}

uint64_t HitCount(const std::string& point) {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(point);
  return it == r.points.end() ? 0 : it->second.hits;
}

}  // namespace xclean::fault

#endif  // XCLEAN_FAULT_INJECTION
