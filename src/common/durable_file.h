#ifndef XCLEAN_COMMON_DURABLE_FILE_H_
#define XCLEAN_COMMON_DURABLE_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace xclean {

/// Crash-safe file primitives shared by every on-disk writer (index
/// snapshots, the snapshot manifest). The contract all of them build on:
///
///   - AtomicWriteFile never leaves `path` in a torn state. The payload
///     goes to a unique `<path>.tmp.<nonce>` sibling, is optionally
///     fsync'd, and is renamed into place; readers observe either the old
///     bytes or the new bytes, never a mix. The parent directory is
///     fsync'd after the rename so the new name itself survives a crash.
///   - AppendDurable appends one blob with O_APPEND and optionally fsyncs;
///     a crash mid-append can tear only the *tail* of the file, which is
///     why journal readers must tolerate (discard) a torn final record.
///   - Fsync is best-effort where the platform lacks it; the injection
///     points below let tests simulate the failures and crashes the real
///     syscalls produce.
///
/// Fault-injection points (common/fault_injection.h), in hit order:
///   durable.open_tmp   before creating the temp file
///   durable.write      before writing the payload
///   durable.sync       before fsync of the written file
///   durable.rename     before renaming the temp file into place
///   durable.sync_dir   before fsync of the parent directory
///   durable.append     before an AppendDurable write
///   durable.truncate   before a TruncateFile shrink
/// A test that arms a crash callback (e.g. _exit) on one of these gets a
/// process death at a named stage of a publish — the crash harness's
/// kill schedules.

/// FNV-1a offset basis; seed for Fnv1a chains.
inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ULL;

/// Incremental FNV-1a over `size` bytes, chained through `seed`.
uint64_t Fnv1a(const void* data, size_t size,
               uint64_t seed = kFnvOffsetBasis);

struct DurableWriteOptions {
  /// fsync the file (and, for AtomicWriteFile, its parent directory) so the
  /// bytes survive power loss, not just process death. Off still gives
  /// atomicity via rename; publishers that need durability keep it on.
  bool sync = true;
};

/// Atomically replaces `path` with `contents` (write temp + rename).
Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       DurableWriteOptions options = DurableWriteOptions());

/// Appends `record` to `path` (creating it if missing), then fsyncs when
/// `options.sync`. One call is one write(2): a crash tears at most the
/// final record.
Status AppendDurable(const std::string& path, std::string_view record,
                     DurableWriteOptions options = DurableWriteOptions());

/// Truncates `path` to `size` bytes, then fsyncs when `options.sync`.
/// Journal owners use this to cut a torn tail back to the last valid
/// record before appending again — AppendDurable's O_APPEND would
/// otherwise concatenate every new record onto bytes no reader can get
/// past.
Status TruncateFile(const std::string& path, uint64_t size,
                    DurableWriteOptions options = DurableWriteOptions());

/// Reads the whole file.
Result<std::string> ReadFileToString(const std::string& path);

/// Streaming FNV-1a of a file's contents — the content identity used by
/// the manifest (publish-time checksum) and the serving engine's snapshot
/// quarantine. Reads the file once in bounded chunks.
Result<uint64_t> HashFileContents(const std::string& path);

/// Checksum-verified read: confirms the file is exactly `expected_bytes`
/// long and hashes to `expected_checksum` before any parser touches it.
/// ParseError on mismatch (with which of the two checks failed).
Status VerifyFileChecksum(const std::string& path, uint64_t expected_bytes,
                          uint64_t expected_checksum);

/// Best-effort fsync of a directory (needed after rename/unlink for the
/// entry itself to be durable). No-op success on platforms where
/// directories cannot be opened.
Status SyncDirectory(const std::string& dir);

}  // namespace xclean

#endif  // XCLEAN_COMMON_DURABLE_FILE_H_
