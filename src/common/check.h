#ifndef XCLEAN_COMMON_CHECK_H_
#define XCLEAN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant check. Unlike assert() it is active in all build
/// types: index and algorithm invariants guard correctness of returned
/// suggestions, and the cost of the checks we place is negligible next to
/// the list traversals around them.
#define XCLEAN_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "XCLEAN_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // XCLEAN_COMMON_CHECK_H_
