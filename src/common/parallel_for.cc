#include "common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

namespace xclean {

namespace {

/// Shared state of one ParallelFor call: a dynamic chunk counter plus a
/// completion latch. Stack-allocated in the caller. The latch counts
/// *helper-task exits*, not finished chunks: a RunChunks loop only returns
/// once every chunk has been claimed, so "the caller's own RunChunks
/// returned and every submitted helper has exited" implies every chunk
/// body completed — and, crucially, that no helper will touch this state
/// again (a chunk-count latch can release while a late helper still
/// performs its empty claim on the dying stack frame).
struct ForState {
  size_t n = 0;
  size_t chunk_size = 0;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next_chunk{0};

  std::mutex mu;
  std::condition_variable done;
  size_t helpers_exited = 0;  // guarded by mu

  /// Claims and runs chunks until none are left.
  void RunChunks() {
    for (;;) {
      size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      size_t begin = chunk * chunk_size;
      size_t end = std::min(n, begin + chunk_size);
      (*body)(begin, end);
    }
  }

  /// Helper-task entry point: drain chunks, then signal exit. The exit
  /// counter bump is the task's last access to this state.
  void RunChunksAsHelper() {
    RunChunks();
    std::lock_guard<std::mutex> lock(mu);
    ++helpers_exited;
    done.notify_all();
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& body,
                 ParallelForOptions options) {
  if (n == 0) return;
  const size_t workers = pool != nullptr ? pool->num_threads() : 0;
  const size_t min_chunk = std::max<size_t>(1, options.min_chunk);
  if (workers == 0 || n <= min_chunk) {
    body(0, n);
    return;
  }

  ForState state;
  state.n = n;
  // The calling thread participates alongside the pool's workers. Aim for a
  // few chunks per participant (dynamic load balancing), bounded below by
  // min_chunk so tiny ranges do not get shredded.
  const size_t participants = workers + 1;
  size_t target_chunks =
      std::min((n + min_chunk - 1) / min_chunk,
               participants * std::max<size_t>(1, options.chunks_per_thread));
  state.chunk_size = (n + target_chunks - 1) / target_chunks;
  state.num_chunks = (n + state.chunk_size - 1) / state.chunk_size;
  state.body = &body;

  // One helper task per worker; each drains chunks until empty. A rejected
  // submission (pool queue full or shut down) just means fewer helpers —
  // the calling thread below makes progress regardless.
  size_t helpers = std::min(workers, state.num_chunks - 1);
  size_t submitted = 0;
  for (size_t i = 0; i < helpers; ++i) {
    if (!pool->TrySubmit([&state] { state.RunChunksAsHelper(); }).ok()) break;
    ++submitted;
  }

  state.RunChunks();

  // state is on this stack frame: do not return until the last helper has
  // made its final access (the helpers_exited bump in RunChunksAsHelper).
  std::unique_lock<std::mutex> lock(state.mu);
  state.done.wait(lock, [&state, submitted] {
    return state.helpers_exited == submitted;
  });
}

}  // namespace xclean
