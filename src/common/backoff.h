#ifndef XCLEAN_COMMON_BACKOFF_H_
#define XCLEAN_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/random.h"

namespace xclean {

/// Capped exponential backoff with decorrelating jitter. Used for
/// transport-class retries (replica failover, snapshot-swap reload): the
/// exponential growth keeps a persistent failure from turning into a retry
/// storm, the cap bounds worst-case added latency, and the jitter
/// de-synchronizes clients that failed together.
struct BackoffOptions {
  std::chrono::nanoseconds initial = std::chrono::milliseconds(2);
  std::chrono::nanoseconds cap = std::chrono::milliseconds(50);
  double multiplier = 2.0;
  /// Fraction of each delay randomized away: the k-th delay is drawn
  /// uniformly from [(1 - jitter) * base_k, base_k]. 0 is fully
  /// deterministic, 1 is full jitter.
  double jitter = 0.5;
};

/// One retry sequence's backoff state. Deterministic in (options, seed):
/// the same seed replays the same delays, which is what lets the replica
/// simulation harness assert exact virtual-time trajectories. Not
/// thread-safe — one instance per retry loop, like the Rng it wraps.
class Backoff {
 public:
  explicit Backoff(const BackoffOptions& options, uint64_t seed)
      : options_(options),
        rng_(seed),
        base_ns_(static_cast<double>(options.initial.count())) {}

  /// Returns the next delay and advances the exponential state.
  std::chrono::nanoseconds Next() {
    const double jitter = std::clamp(options_.jitter, 0.0, 1.0);
    const double scale = 1.0 - jitter * rng_.UniformDouble();
    const auto delay = std::chrono::nanoseconds(
        static_cast<int64_t>(base_ns_ * scale));
    base_ns_ = std::min(base_ns_ * std::max(options_.multiplier, 1.0),
                        static_cast<double>(options_.cap.count()));
    return delay;
  }

  /// Restarts the exponential sequence (the jitter stream keeps advancing,
  /// so delays stay decorrelated across resets).
  void Reset() {
    base_ns_ = static_cast<double>(options_.initial.count());
  }

 private:
  BackoffOptions options_;
  Rng rng_;
  double base_ns_;
};

}  // namespace xclean

#endif  // XCLEAN_COMMON_BACKOFF_H_
