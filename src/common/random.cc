#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace xclean {

uint64_t Rng::Next64() {
  // splitmix64 (Sebastiano Vigna, public domain reference implementation).
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  XCLEAN_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  XCLEAN_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  ZipfDistribution dist(n, s);
  return dist.Sample(*this);
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) {
  XCLEAN_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= total;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace xclean
