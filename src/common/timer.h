#ifndef XCLEAN_COMMON_TIMER_H_
#define XCLEAN_COMMON_TIMER_H_

#include <chrono>

namespace xclean {

/// Monotonic stopwatch used by the experiment harness to report per-query
/// latencies. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xclean

#endif  // XCLEAN_COMMON_TIMER_H_
