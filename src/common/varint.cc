#include "common/varint.h"

#include "common/simd.h"

namespace xclean {

const char* GetVarint32Group(const char* p, const char* end, uint32_t* out,
                             size_t count) {
  return simd::DecodeVarint32Group(simd::ActiveLevel(), p, end, out, count);
}

}  // namespace xclean
