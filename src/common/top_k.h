#ifndef XCLEAN_COMMON_TOP_K_H_
#define XCLEAN_COMMON_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace xclean {

/// Bounded best-k collector. Keeps the k largest items according to Compare
/// (a strict-weak-order "less": the *smallest* kept item sits at the heap
/// top and is evicted first). Push is O(log k); Take() returns items in
/// descending order.
///
/// Used for final suggestion ranking and for k-best candidate enumeration in
/// the PY08 baseline.
template <typename T, typename Compare = std::less<T>>
class TopK {
 public:
  explicit TopK(size_t k, Compare cmp = Compare()) : k_(k), cmp_(cmp) {
    XCLEAN_CHECK(k > 0);
  }

  /// Offers an item; keeps it only if it is among the best k seen so far.
  void Push(T item) {
    if (heap_.size() < k_) {
      heap_.push_back(std::move(item));
      std::push_heap(heap_.begin(), heap_.end(), Greater());
      return;
    }
    // heap_[0] is the smallest kept item.
    if (cmp_(heap_[0], item)) {
      std::pop_heap(heap_.begin(), heap_.end(), Greater());
      heap_.back() = std::move(item);
      std::push_heap(heap_.begin(), heap_.end(), Greater());
    }
  }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Smallest currently-kept item. Only valid when full() — callers use it
  /// to prune work that cannot beat the current k-th best.
  const T& Worst() const {
    XCLEAN_CHECK(!heap_.empty());
    return heap_[0];
  }

  bool full() const { return heap_.size() == k_; }

  /// Destructive extraction, best first (descending by cmp_: sort_heap with
  /// the inverted comparator yields ascending-by-inverted = descending).
  std::vector<T> Take() {
    std::sort_heap(heap_.begin(), heap_.end(), Greater());
    std::vector<T> out = std::move(heap_);
    heap_.clear();
    return out;
  }

 private:
  // Min-heap on cmp_: the comparator handed to the std heap functions must
  // order the *largest* element last, so we invert cmp_.
  struct GreaterImpl {
    const Compare* cmp;
    bool operator()(const T& a, const T& b) const { return (*cmp)(b, a); }
  };
  GreaterImpl Greater() const { return GreaterImpl{&cmp_}; }

  size_t k_;
  Compare cmp_;
  std::vector<T> heap_;
};

}  // namespace xclean

#endif  // XCLEAN_COMMON_TOP_K_H_
