#include "common/status.h"

namespace xclean {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xclean
