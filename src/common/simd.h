#ifndef XCLEAN_COMMON_SIMD_H_
#define XCLEAN_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xclean::simd {

/// Instruction-set capability tiers for the hot-path kernels. Every kernel
/// has a portable scalar implementation that is always compiled and always
/// selectable; the vector tiers are picked at runtime from CPUID (x86-64)
/// or unconditionally (NEON is baseline on aarch64). The dispatch contract
/// is strict: for identical inputs, every tier produces bit-identical
/// outputs (edit distances, decoded postings, cursor positions, hashes) —
/// the `kernels`-labelled differential tests pin this.
enum class Level : uint8_t {
  kScalar = 0,
  kSse42 = 1,  // x86-64: SSE4.2 (implies SSE4.1 widening loads)
  kAvx2 = 2,   // x86-64: AVX2
  kNeon = 3,   // aarch64: Advanced SIMD (baseline)
};

/// Human-readable tier name ("scalar", "sse4.2", "avx2", "neon").
const char* LevelName(Level level);

/// Best tier the running CPU supports, ignoring any override. Computed
/// once per process.
Level DetectedLevel();

/// Tier the kernels dispatch on: DetectedLevel() unless the
/// XCLEAN_FORCE_SCALAR environment variable is set (to anything but "0"),
/// or a ScopedLevel override is active. One relaxed atomic load.
Level ActiveLevel();

/// True when XCLEAN_FORCE_SCALAR demotes the process to the scalar tier —
/// the CI `kernels-scalar` leg runs the full suite this way so the
/// fallback path cannot rot on machines without AVX2/NEON.
bool ForceScalarFromEnv();

/// RAII override of ActiveLevel() for differential tests and scalar-vs-
/// vector benchmarks. Levels above DetectedLevel() are clamped. Not
/// thread-safe against concurrent kernel dispatch by design: tests and
/// benches install it before spawning work.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level);
  ~ScopedLevel();

  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level previous_;
};

// --- Kernel primitives ----------------------------------------------------
//
// Shared low-level routines the per-module kernels (text/edit_distance,
// common/varint, text/fastss, index/postings) dispatch to. Each takes the
// tier explicitly so callers resolve ActiveLevel() once per operation, and
// each has the scalar twin inlined as its `level == kScalar` branch.

/// Decodes `count` LEB128 varint32 values from [p, end) into out[0..count).
/// Returns the position past the last varint, or nullptr on truncation /
/// overlong encoding / 32-bit overflow — exactly the scalar codec's
/// contract. The vector tiers accelerate runs of one-byte varints (the
/// dominant case for posting deltas) by widening 8 or 16 bytes at a time;
/// multi-byte varints fall through to the scalar decoder mid-stream.
const char* DecodeVarint32Group(Level level, const char* p, const char* end,
                                uint32_t* out, size_t count);

/// Counts the leading records of a sorted 8-byte-stride array whose
/// leading uint32 key is < target, scanning at most `size` records from
/// `base`; layout matches index::Posting {uint32 node, uint32 tf}. A
/// bounded-window scan for probes a branch predictor cannot learn;
/// PostingCursor::SkipTo deliberately does NOT use it — its repeated skip
/// sequences predict well enough that a branchy binary search measured
/// ~3x faster than any narrow-then-window-scan finish.
size_t CountKeysBelowStride8(Level level, const void* base, size_t size,
                             uint32_t target);

/// Lower-bound position of `needle` in a sorted 16-byte-stride array whose
/// leading field is a uint64 key: the number of records with key < needle.
/// Layout matches FastSsIndex::Posting {uint64 hash, uint32 word_id}. The
/// scalar tier binary searches; the AVX2 tier binary-narrows to one window
/// and finishes it gather-comparing 4 keys per step. Both return the same
/// (unique) position.
size_t LowerBoundKey64Stride16(Level level, const void* base, size_t size,
                               uint64_t needle);

/// Four independent FNV-1a chains advanced in lockstep, all starting from
/// `seed`: out[i] is bit-identical to folding in[i]'s bytes one at a time
/// with the scalar hash. Lanes may have different lengths. Every tier runs
/// four interleaved scalar chains — batching is the optimization (it
/// breaks the per-hash multiply latency chain; the superscalar core
/// pipelines the four independent multiplies), whereas a true AVX2 lane
/// version measured slower: no 64-bit lane multiply exists below AVX-512DQ
/// and the 32-bit emulation triples the serial per-byte latency.
void Fnv1aBatch4(Level level, uint64_t seed, const std::string_view in[4],
                 uint64_t out[4]);

}  // namespace xclean::simd

#endif  // XCLEAN_COMMON_SIMD_H_
