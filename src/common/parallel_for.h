#ifndef XCLEAN_COMMON_PARALLEL_FOR_H_
#define XCLEAN_COMMON_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"

namespace xclean {

struct ParallelForOptions {
  /// Smallest index range handed to one invocation of the body. Ranges are
  /// never split finer than this, so per-chunk setup cost stays amortized.
  size_t min_chunk = 1;
  /// Upper bound on the number of chunks per worker; more chunks than
  /// workers gives dynamic load balancing for skewed per-item cost.
  size_t chunks_per_thread = 4;
};

/// Runs `body(begin, end)` over a partition of [0, n), scheduling chunks on
/// `pool`'s workers while the calling thread also consumes chunks. Blocks
/// until every chunk has finished; afterwards all writes made by the body
/// happen-before the return (release/acquire via the completion latch).
///
/// The body must be safe to run concurrently against itself on disjoint
/// ranges. Chunk boundaries depend only on (n, options, worker count), and
/// chunks are claimed dynamically — callers that need deterministic output
/// must make per-index results independent of execution order (the index
/// builder writes to disjoint per-index or per-chunk slots and merges in
/// index order).
///
/// `pool == nullptr` (or a single-worker pool, or a range smaller than one
/// chunk) degrades to a plain serial loop, which keeps the serial build
/// path and the parallel one on the same code.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& body,
                 ParallelForOptions options = ParallelForOptions());

}  // namespace xclean

#endif  // XCLEAN_COMMON_PARALLEL_FOR_H_
