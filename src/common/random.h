#ifndef XCLEAN_COMMON_RANDOM_H_
#define XCLEAN_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace xclean {

/// Deterministic 64-bit PRNG (splitmix64 core). Every data generator and
/// workload builder in this repository takes an explicit seed and draws from
/// this engine so experiments are reproducible run to run and machine to
/// machine (std::mt19937 distributions are not portable across standard
/// library implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipfian rank in [0, n) with exponent s; rank 0 is the most popular.
  /// Uses rejection-free inverse-CDF over precomputed weights for small n,
  /// so construct a ZipfDistribution for hot loops instead.
  uint64_t Zipf(uint64_t n, double s);

 private:
  uint64_t state_;
};

/// Precomputed Zipf sampler: O(log n) per sample via binary search on the
/// cumulative weight table. Used by the synthetic data generators, where the
/// same distribution is sampled millions of times.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  /// Returns a rank in [0, n); rank 0 is the most popular.
  uint64_t Sample(Rng& rng) const;

  uint64_t size() const { return static_cast<uint64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace xclean

#endif  // XCLEAN_COMMON_RANDOM_H_
