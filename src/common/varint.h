#ifndef XCLEAN_COMMON_VARINT_H_
#define XCLEAN_COMMON_VARINT_H_

#include <cstdint>
#include <string>

namespace xclean {

/// LEB128-style varint codec used by the compressed index snapshot format
/// (index/index_io.cc). Small values — posting-list deltas, term
/// frequencies, Dewey components — dominate the index payload, so one byte
/// usually replaces four or eight.

inline void PutVarint64(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline void PutVarint32(std::string& out, uint32_t v) {
  PutVarint64(out, v);
}

/// Maps signed deltas to unsigned so small magnitudes of either sign stay
/// one byte: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Decodes one varint from [p, end). Returns the position past the varint,
/// or nullptr on truncation / overlong encoding (> 10 bytes).
inline const char* GetVarint64(const char* p, const char* end, uint64_t* out) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift < 64 && p < end; shift += 7) {
    uint8_t byte = static_cast<uint8_t>(*p++);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return p;
    }
  }
  return nullptr;
}

inline const char* GetVarint32(const char* p, const char* end, uint32_t* out) {
  uint64_t wide = 0;
  p = GetVarint64(p, end, &wide);
  if (p == nullptr || wide > 0xFFFFFFFFull) return nullptr;
  *out = static_cast<uint32_t>(wide);
  return p;
}

/// Scalar twin of GetVarint32Group: one GetVarint32 per element. Exported
/// so differential tests can pin group == elementwise decoding.
inline const char* GetVarint32GroupScalar(const char* p, const char* end,
                                          uint32_t* out, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    p = GetVarint32(p, end, out + i);
    if (p == nullptr) return nullptr;
  }
  return p;
}

/// Decodes `count` varint32 values from [p, end) into out[0..count).
/// Returns the position past the last varint, or nullptr on truncation /
/// overlong encoding / 32-bit overflow. Runtime-dispatched (common/simd.h)
/// block decoder: runs of one-byte varints — the dominant case for
/// delta-encoded posting streams — decode 8 or 16 values per vector step;
/// multi-byte varints fall back to the scalar codec mid-stream. Output is
/// byte-identical to GetVarint32GroupScalar for every input.
const char* GetVarint32Group(const char* p, const char* end, uint32_t* out,
                             size_t count);

}  // namespace xclean

#endif  // XCLEAN_COMMON_VARINT_H_
