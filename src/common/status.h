#ifndef XCLEAN_COMMON_STATUS_H_
#define XCLEAN_COMMON_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>

namespace xclean {

/// Error categories used across the library. Modeled after the usual
/// database-engine status codes; only the codes we actually produce exist.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kParseError,
  kInternal,
  /// Transient overload: the caller may retry (serving-engine backpressure).
  kUnavailable,
  /// The request's deadline expired before it could be served.
  kDeadlineExceeded,
  /// Bytes were lost or corrupted in flight or at rest: a checksum
  /// mismatch, torn frame, or undecodable wire payload. Distinct from
  /// kUnavailable so corrupt-transport events are countable on their own
  /// in replica stats and breaker accounting.
  kDataLoss,
};

/// Lightweight status object. The library does not use exceptions; any
/// operation that can fail returns a Status (or a Result<T>, below).
///
/// A Status is cheap to copy in the OK case (no allocation); error statuses
/// carry a message string.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected '<' at line 3".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error holder. Usage:
///
///   Result<XmlTree> r = ParseString(xml);
///   if (!r.ok()) return r.status();
///   XmlTree tree = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse (mirrors absl::StatusOr).
  Result(T value) : status_(), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace xclean

#endif  // XCLEAN_COMMON_STATUS_H_
