#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace xclean {

ThreadPool::ThreadPool(ThreadPoolOptions options) : options_(options) {
  size_t n = options_.num_threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Stop(/*drain=*/false); }

Status ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::InvalidArgument("thread pool is shut down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      return Status::Unavailable("request queue full");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return Status::Ok();
}

void ThreadPool::Shutdown() { Stop(/*drain=*/true); }

void ThreadPool::Stop(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;  // already stopped
    stopping_ = true;
    draining_ = drain;
    if (!drain) queue_.clear();
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ is necessarily set; with drain semantics the queue is
        // exhausted, without them it was cleared — either way, exit.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace xclean
