#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"

namespace xclean {

ThreadPool::ThreadPool(ThreadPoolOptions options) : options_(options) {
  size_t n = options_.num_threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Stop(/*drain=*/false); }

Status ThreadPool::TrySubmit(std::function<void()> task) {
  return TrySubmit(std::move(task),
                   std::chrono::steady_clock::time_point::max(), nullptr);
}

Status ThreadPool::TrySubmit(std::function<void()> task,
                             std::chrono::steady_clock::time_point deadline,
                             std::function<void()> on_expired) {
  // Expired-entry callbacks collected under the lock, run after it: the
  // queue slots are released before any on_expired observes its request.
  std::vector<std::function<void()>> expired;
  Status status = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::InvalidArgument("thread pool is shut down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Sweep entries that expired while queued — their slots are dead
      // weight; reclaiming them here keeps a burst of doomed requests from
      // pinning the queue at capacity until a worker happens by.
      const auto now = std::chrono::steady_clock::now();
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->deadline <= now) {
          ++expired_evictions_;
          if (it->on_expired) expired.push_back(std::move(it->on_expired));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (queue_.size() >= options_.queue_capacity) {
      status = Status::Unavailable("request queue full");
    } else {
      queue_.push_back(
          Entry{std::move(task), deadline, std::move(on_expired)});
    }
  }
  if (status.ok()) work_available_.notify_one();
  for (std::function<void()>& fn : expired) fn();
  return status;
}

void ThreadPool::Shutdown() { Stop(/*drain=*/true); }

void ThreadPool::Stop(bool drain) {
  std::vector<std::function<void()>> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;  // already stopped
    stopping_ = true;
    draining_ = drain;
    if (!drain) {
      // Fast teardown drops queued tasks, but their expiry callbacks still
      // fire (outside the lock) so no waiter is left dangling.
      for (Entry& e : queue_) {
        if (e.on_expired) dropped.push_back(std::move(e.on_expired));
      }
      queue_.clear();
    }
  }
  for (std::function<void()>& fn : dropped) fn();
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t ThreadPool::expired_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return expired_evictions_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ is necessarily set; with drain semantics the queue is
        // exhausted, without them it was cleared — either way, exit.
        return;
      }
      entry = std::move(queue_.front());
      queue_.pop_front();
      // Popping released the slot; expiry handling below runs unlocked.
      if (entry.on_expired &&
          entry.deadline <= std::chrono::steady_clock::now()) {
        ++expired_evictions_;
        entry.task = nullptr;
      }
    }
    XCLEAN_FAULT_HIT("thread_pool.run");
    if (entry.task) {
      entry.task();
    } else if (entry.on_expired) {
      entry.on_expired();
    }
  }
}

}  // namespace xclean
