#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace xclean {

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  AsciiLowerInPlace(out);
  return out;
}

void AsciiLowerInPlace(std::string& s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
}

bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

bool IsAsciiAlnum(char c) { return IsAsciiAlpha(c) || IsAsciiDigit(c); }

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsAsciiSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsAsciiSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitChar(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace xclean
