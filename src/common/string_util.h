#ifndef XCLEAN_COMMON_STRING_UTIL_H_
#define XCLEAN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xclean {

/// ASCII-only lowercase (the tokenizer normalizes all text through this; the
/// synthetic corpora are ASCII by construction).
std::string AsciiLower(std::string_view s);

/// In-place ASCII lowercase.
void AsciiLowerInPlace(std::string& s);

bool IsAsciiAlpha(char c);
bool IsAsciiDigit(char c);
bool IsAsciiAlnum(char c);
bool IsAsciiSpace(char c);

/// Splits on any whitespace run; no empty pieces are produced.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Splits on a single character delimiter; empty pieces are kept.
std::vector<std::string> SplitChar(std::string_view s, char delim);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace xclean

#endif  // XCLEAN_COMMON_STRING_UTIL_H_
