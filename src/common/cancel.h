#ifndef XCLEAN_COMMON_CANCEL_H_
#define XCLEAN_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace xclean {

/// Why a budgeted query stopped early (CancelToken::cause()).
enum class CancelCause : uint8_t {
  kNone = 0,        ///< not cancelled
  kDeadline,        ///< wall-clock deadline passed mid-algorithm
  kPostings,        ///< posting-drain budget exhausted
  kCandidates,      ///< candidate-enumeration budget exhausted
  kExternal,        ///< external cancel flag raised (shutdown, client gone)
};

inline const char* CancelCauseName(CancelCause cause) {
  switch (cause) {
    case CancelCause::kNone:
      return "none";
    case CancelCause::kDeadline:
      return "deadline";
    case CancelCause::kPostings:
      return "postings";
    case CancelCause::kCandidates:
      return "candidates";
    default:
      return "external";
  }
}

/// Work and walltime limits for one query evaluation. Every limit is
/// optional; a default-constructed budget is unlimited and costs nothing on
/// the hot path. The units are the algorithm's own work counters, so limits
/// degrade quality deterministically and independently of machine speed:
/// `max_postings` bounds the merged-list postings drained (plus
/// skip-advances and per-entity scoring steps, which are charged in the
/// same currency), `max_candidates` bounds the Cartesian candidates
/// enumerated.
struct QueryBudget {
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  uint64_t max_postings = 0;    ///< 0 = unlimited
  uint64_t max_candidates = 0;  ///< 0 = unlimited
  /// Optional external kill switch (e.g. engine shutdown); polled at the
  /// same amortized interval as the deadline. Must outlive the query.
  const std::atomic<bool>* external_cancel = nullptr;

  bool unlimited() const {
    return deadline == std::chrono::steady_clock::time_point::max() &&
           max_postings == 0 && max_candidates == 0 &&
           external_cancel == nullptr;
  }
};

/// Per-query cooperative cancellation token: the algorithm charges work
/// units as it goes and checks the wall clock only every kClockCheckStride
/// units, so the hot path pays one integer add + compare per charge and an
/// occasional steady_clock read — and nothing allocates, preserving the
/// zero-steady-state-allocation contract of the scratch arena.
///
/// A token is single-query, single-thread state (like QueryScratch): create
/// one per request on the stack, pass it down, inspect cancelled()/cause()
/// afterwards. An unlimited token never cancels; with one attached, scores
/// are bit-identical to running without a token (cancellation changes when
/// the algorithm *stops*, never what it computes).
class CancelToken {
 public:
  /// Work units between wall-clock/external-flag polls. Small enough that a
  /// query overshoots its deadline by microseconds, large enough that
  /// steady_clock::now() disappears from profiles.
  static constexpr uint64_t kClockCheckStride = 512;

  /// Unlimited token: every Charge* returns false forever.
  CancelToken() = default;

  explicit CancelToken(const QueryBudget& budget)
      : deadline_(budget.deadline),
        max_postings_(budget.max_postings),
        max_candidates_(budget.max_candidates),
        external_(budget.external_cancel),
        timed_(budget.deadline !=
                   std::chrono::steady_clock::time_point::max() ||
               budget.external_cancel != nullptr) {}

  /// Charges `n` posting-equivalent work units. Returns true when the query
  /// is (now or already) cancelled; the caller should unwind to a safe
  /// point and let partial results surface.
  bool ChargePostings(uint64_t n) {
    if (cause_ != CancelCause::kNone) return true;
    postings_ += n;
    if (max_postings_ != 0 && postings_ > max_postings_) {
      cause_ = CancelCause::kPostings;
      return true;
    }
    return TickClock(n);
  }

  /// Charges one enumerated candidate. Candidates fan out into per-entity
  /// scoring work, so they weigh kCandidateWeight posting-equivalents
  /// against the clock stride.
  bool ChargeCandidate() {
    if (cause_ != CancelCause::kNone) return true;
    candidates_ += 1;
    if (max_candidates_ != 0 && candidates_ > max_candidates_) {
      cause_ = CancelCause::kCandidates;
      return true;
    }
    return TickClock(kCandidateWeight);
  }

  /// Forces a deadline/external poll regardless of the stride (used at
  /// loop boundaries where overshooting matters).
  bool CheckNow() {
    if (cause_ != CancelCause::kNone) return true;
    if (!timed_) return false;
    until_check_ = kClockCheckStride;
    return PollTimedSources();
  }

  bool cancelled() const { return cause_ != CancelCause::kNone; }
  CancelCause cause() const { return cause_; }
  uint64_t postings_charged() const { return postings_; }
  uint64_t candidates_charged() const { return candidates_; }

 private:
  static constexpr uint64_t kCandidateWeight = 16;

  bool TickClock(uint64_t weight) {
    if (!timed_) return false;
    if (until_check_ > weight) {
      until_check_ -= weight;
      return false;
    }
    until_check_ = kClockCheckStride;
    return PollTimedSources();
  }

  bool PollTimedSources() {
    if (external_ != nullptr &&
        external_->load(std::memory_order_relaxed)) {
      cause_ = CancelCause::kExternal;
      return true;
    }
    if (deadline_ != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= deadline_) {
      cause_ = CancelCause::kDeadline;
      return true;
    }
    return false;
  }

  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
  uint64_t max_postings_ = 0;
  uint64_t max_candidates_ = 0;
  const std::atomic<bool>* external_ = nullptr;
  bool timed_ = false;
  uint64_t postings_ = 0;
  uint64_t candidates_ = 0;
  uint64_t until_check_ = kClockCheckStride;
  CancelCause cause_ = CancelCause::kNone;
};

}  // namespace xclean

#endif  // XCLEAN_COMMON_CANCEL_H_
