#ifndef XCLEAN_COMMON_FAULT_INJECTION_H_
#define XCLEAN_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace xclean::fault {

/// Deterministic fault-injection registry. Production code marks *named
/// injection points* (snapshot load, cache lookup, worker dispatch, the
/// core anchor loop); tests arm a point with an action and the next N hits
/// of that point perform it:
///
///   fault::ArmStatus("index_io.load", Status::ParseError("injected"), 2);
///   fault::ArmDelay("xclean.anchor", std::chrono::milliseconds(5));
///   fault::ArmCallback("xclean.anchor", [&] { engine.SwapIndex(next); }, 1);
///   ...
///   fault::DisarmAll();
///
/// Cost model: when nothing is armed, a hit is a single relaxed atomic load
/// (no lock, no allocation — the core-loop point stays on the zero-alloc
/// hot path). When the build is configured with -DXCLEAN_FAULT_INJECTION=OFF
/// (release deployments), every hit compiles to nothing and the Arm*
/// functions become no-ops; call Enabled() in tests and skip.
///
/// Concurrency: Arm*/Disarm* may race hits from any thread; actions are
/// copied out under the registry lock and executed outside it, so an
/// injected callback may itself arm points or touch the engine.

#if defined(XCLEAN_FAULT_INJECTION) && XCLEAN_FAULT_INJECTION

/// True when injection points are compiled in.
constexpr bool Enabled() { return true; }

/// Arms `point` to return `status` from its next `times` hits (-1 = until
/// disarmed). Only points hit through XCLEAN_FAULT_STATUS propagate the
/// status; void points (XCLEAN_FAULT_HIT) ignore it.
void ArmStatus(const std::string& point, Status status, int times = -1);

/// Arms `point` to sleep for `delay` on each of its next `times` hits.
void ArmDelay(const std::string& point, std::chrono::milliseconds delay,
              int times = -1);

/// Arms `point` to invoke `callback` on each of its next `times` hits.
void ArmCallback(const std::string& point, std::function<void()> callback,
                 int times = -1);

void Disarm(const std::string& point);
void DisarmAll();

/// Times `point` was hit while armed (disarming keeps the count; DisarmAll
/// zeroes everything).
uint64_t HitCount(const std::string& point);

namespace internal {
extern std::atomic<int> g_armed_points;
Status Hit(const char* point);
}  // namespace internal

/// Fast-path guard, inlined at every injection point.
inline bool AnyArmed() {
  return internal::g_armed_points.load(std::memory_order_relaxed) > 0;
}

/// Void injection point: executes an armed delay/callback, discards any
/// armed status.
#define XCLEAN_FAULT_HIT(point)                                      \
  do {                                                               \
    if (::xclean::fault::AnyArmed()) {                               \
      (void)::xclean::fault::internal::Hit(point);                   \
    }                                                                \
  } while (0)

/// Status injection point: executes an armed delay/callback and, when a
/// status is armed, returns it from the enclosing function (which must
/// return Status or Result<T>).
#define XCLEAN_FAULT_STATUS(point)                                   \
  do {                                                               \
    if (::xclean::fault::AnyArmed()) {                               \
      ::xclean::Status fault_status =                                \
          ::xclean::fault::internal::Hit(point);                     \
      if (!fault_status.ok()) return fault_status;                   \
    }                                                                \
  } while (0)

#else  // !XCLEAN_FAULT_INJECTION

constexpr bool Enabled() { return false; }

inline void ArmStatus(const std::string&, Status, int = -1) {}
inline void ArmDelay(const std::string&, std::chrono::milliseconds,
                     int = -1) {}
inline void ArmCallback(const std::string&, std::function<void()>,
                        int = -1) {}
inline void Disarm(const std::string&) {}
inline void DisarmAll() {}
inline uint64_t HitCount(const std::string&) { return 0; }
constexpr bool AnyArmed() { return false; }

#define XCLEAN_FAULT_HIT(point) \
  do {                          \
  } while (0)
#define XCLEAN_FAULT_STATUS(point) \
  do {                             \
  } while (0)

#endif  // XCLEAN_FAULT_INJECTION

}  // namespace xclean::fault

#endif  // XCLEAN_COMMON_FAULT_INJECTION_H_
