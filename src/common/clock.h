#ifndef XCLEAN_COMMON_CLOCK_H_
#define XCLEAN_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace xclean {

/// Injectable time source for every component whose behaviour depends on
/// elapsed time rather than on a wall-clock date: overload hysteresis,
/// retry backoff, hedge timers, circuit-breaker cooldowns. Production code
/// runs on RealClock; tests inject a ManualClock and advance virtual time
/// explicitly, so "wait 250 ms" assertions cost nanoseconds and replay
/// deterministically under sanitizers.
///
/// The domain is steady_clock time_points so deadlines interoperate with
/// the existing QueryBudget/CancelToken machinery unchanged.
class Clock {
 public:
  virtual ~Clock() = default;

  virtual std::chrono::steady_clock::time_point Now() const = 0;

  /// Blocks (RealClock) or advances virtual time (ManualClock) by `d`.
  /// Non-positive durations return immediately.
  virtual void SleepFor(std::chrono::nanoseconds d) = 0;
};

/// The process-wide monotonic clock. Stateless; one shared instance.
class RealClock final : public Clock {
 public:
  static RealClock* Get() {
    static RealClock clock;
    return &clock;
  }

  std::chrono::steady_clock::time_point Now() const override {
    return std::chrono::steady_clock::now();
  }

  void SleepFor(std::chrono::nanoseconds d) override {
    if (d > std::chrono::nanoseconds::zero()) std::this_thread::sleep_for(d);
  }
};

/// Virtual time for tests: Now() returns an explicitly-advanced instant and
/// SleepFor() advances it instead of blocking. Thread-safe (atomic), so
/// threaded tests may read while one thread advances.
///
/// The clock is anchored at the real steady_clock at construction and only
/// ever moves forward, so virtual time is always >= real time. That keeps
/// mixed-clock code safe: a deadline computed in virtual time lies in the
/// real future, and components still polling the real clock (CancelToken's
/// amortized deadline checks) can never fire it spuriously — determinism
/// needs only the *deltas*, which are fully virtual.
class ManualClock final : public Clock {
 public:
  ManualClock()
      : now_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

  std::chrono::steady_clock::time_point Now() const override {
    return std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(now_ns_.load(std::memory_order_acquire)));
  }

  void SleepFor(std::chrono::nanoseconds d) override { Advance(d); }

  void Advance(std::chrono::nanoseconds d) {
    if (d > std::chrono::nanoseconds::zero()) {
      now_ns_.fetch_add(d.count(), std::memory_order_acq_rel);
    }
  }

  /// Moves the clock to `t` if that is forward; never rewinds.
  void AdvanceTo(std::chrono::steady_clock::time_point t) {
    const int64_t target =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t.time_since_epoch())
            .count();
    int64_t cur = now_ns_.load(std::memory_order_acquire);
    while (cur < target && !now_ns_.compare_exchange_weak(
                               cur, target, std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<int64_t> now_ns_;
};

/// Null-object resolution: options structs default their clock pointer to
/// nullptr, meaning "the real clock".
inline Clock* ResolveClock(Clock* clock) {
  return clock != nullptr ? clock : RealClock::Get();
}
inline const Clock* ResolveClock(const Clock* clock) {
  return clock != nullptr ? clock : RealClock::Get();
}

}  // namespace xclean

#endif  // XCLEAN_COMMON_CLOCK_H_
