#ifndef XCLEAN_LM_ERROR_MODEL_H_
#define XCLEAN_LM_ERROR_MODEL_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace xclean {

/// The typographical error model of Sec. IV-B1: the probability of typing
/// the observed keyword q when the intended token is w decays exponentially
/// with their edit distance,
///
///     P(q | w) ∝ exp(-beta * ed(q, w))                          (Eq. 5)
///
/// beta controls how heavily edit errors are penalized; the paper finds
/// beta = 5 best on almost every query set (Table IV) and uses it
/// throughout.
///
/// We use the unnormalized weight: the per-slot normalizers z, z' of
/// Eqs. (4)-(5) are shared by every candidate in the same variant list and
/// therefore never change the ranking of candidate queries (noted in the
/// paper's derivation; asserted by a test).
class ErrorModel {
 public:
  explicit ErrorModel(double beta = 5.0) : beta_(beta) {}

  double beta() const { return beta_; }

  /// exp(-beta * ed) for a precomputed edit distance.
  double Weight(uint32_t edit_distance) const;

  /// exp(-beta * ed(observed, intended)).
  double Weight(std::string_view observed, std::string_view intended) const;

  /// Multi-keyword error term P(Q|C) under the per-keyword independence
  /// assumption (Eq. 6): the product of per-slot weights, given the slots'
  /// edit distances.
  double QueryWeight(const std::vector<uint32_t>& edit_distances) const;

 private:
  double beta_;
};

}  // namespace xclean

#endif  // XCLEAN_LM_ERROR_MODEL_H_
