#include "lm/result_type.h"

#include <cmath>

#include "common/check.h"

namespace xclean {

double ResultTypeScorer::Utility(const std::vector<TokenId>& candidate,
                                 PathId path) const {
  double product = 1.0;
  for (TokenId token : candidate) {
    uint32_t f = 0;
    for (const PathFreq& pf : index_->type_index().list(token)) {
      if (pf.path == path) {
        f = pf.freq;
        break;
      }
    }
    if (f == 0) return 0.0;
    product *= static_cast<double>(f);
  }
  return std::log1p(product) *
         std::pow(reduction_, index_->tree().path_depth(path));
}

ResultTypeScorer::Choice ResultTypeScorer::FindResultType(
    const std::vector<TokenId>& candidate, uint32_t min_depth) const {
  XCLEAN_CHECK(!candidate.empty());
  const size_t l = candidate.size();
  std::vector<std::span<const PathFreq>> lists(l);
  std::vector<size_t> pos(l, 0);
  for (size_t i = 0; i < l; ++i) {
    lists[i] = index_->type_index().list(candidate[i]);
    if (lists[i].empty()) return Choice{};
  }

  Choice best;
  // Multi-way sorted intersection driven by the first list.
  for (;;) {
    if (pos[0] >= lists[0].size()) break;
    PathId path = lists[0][pos[0]].path;
    double product = static_cast<double>(lists[0][pos[0]].freq);
    bool all = true;
    for (size_t i = 1; i < l; ++i) {
      // Advance list i to the first entry >= path.
      while (pos[i] < lists[i].size() && lists[i][pos[i]].path < path) {
        ++pos[i];
      }
      if (pos[i] >= lists[i].size()) return best;  // list exhausted
      if (lists[i][pos[i]].path != path) {
        all = false;
        break;
      }
      product *= static_cast<double>(lists[i][pos[i]].freq);
    }
    if (all && index_->tree().path_depth(path) >= min_depth) {
      double utility =
          std::log1p(product) *
          std::pow(reduction_, index_->tree().path_depth(path));
      // freqs are >= 1, so utility > 0; iteration is ascending by PathId,
      // so strict '>' realizes the smaller-path tie break.
      if (utility > best.utility) best = Choice{path, utility, product};
    }
    ++pos[0];
  }
  return best;
}

}  // namespace xclean
