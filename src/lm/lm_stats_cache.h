#ifndef XCLEAN_LM_LM_STATS_CACHE_H_
#define XCLEAN_LM_LM_STATS_CACHE_H_

#include <cstdint>
#include <vector>

#include "index/xml_index.h"

namespace xclean {

/// Precomputed Dirichlet terms of the entity language model (Eq. 8–10):
/// the naive evaluation recomputes, for every candidate sharing a result
/// type, the smoothing numerator mu * P(w|B) per token and the denominator
/// |D(r)| + mu per entity. Both depend only on the (index, mu) pair, so one
/// pass at construction time materializes them:
///
///     smoothing_mass(w)      = mu * P(w|B)
///     entity_denominator(r)  = |D(r)| + mu
///
/// ProbInEntity keeps the exact arithmetic of LanguageModel::Prob —
/// (count + smoothing_mass) / denominator, same operand order, a division,
/// not a reciprocal multiply — so cached and uncached scores are
/// bit-identical (the differential test suite depends on this).
///
/// Invalidation: a cache instance is bound to one immutable XmlIndex. The
/// algorithm (XClean) owns its cache and is itself rebuilt when the serving
/// engine hot-swaps an index snapshot, so a stale cache can never outlive
/// its index; index() exposes the binding for checks.
class LmStatsCache {
 public:
  LmStatsCache(const XmlIndex& index, double mu);

  /// Layered-index variant (delta/merged_stats.cc): entity denominators are
  /// computed from `index` exactly as above, but the smoothing-mass vector
  /// is supplied by the caller — indexed by a *global* (cross-layer) token
  /// id and derived from the merged live collection statistics, so every
  /// layer of an LSM stack smooths against the same background model a
  /// full rebuild would produce. Invalidation contract: the vector describes
  /// one immutable layer-set snapshot; any layer change (add, tombstone,
  /// compaction) must rebuild the merged stats and with them every one of
  /// these caches — delta::MergedStats owns that lifecycle.
  LmStatsCache(const XmlIndex& index, double mu,
               std::vector<double> global_smoothing_mass);

  double mu() const { return mu_; }
  const XmlIndex* index() const { return index_; }

  /// mu * P(w|B): the per-token Dirichlet smoothing mass.
  double smoothing_mass(TokenId token) const { return smoothing_mass_[token]; }

  /// |D(r)| + mu: the per-entity denominator.
  double entity_denominator(NodeId entity_root) const {
    return entity_denom_[entity_root];
  }

  /// P(w | D(r)); bit-identical to LanguageModel::ProbInEntity.
  double ProbInEntity(TokenId token, uint64_t count_in_entity,
                      NodeId entity_root) const {
    return (static_cast<double>(count_in_entity) + smoothing_mass_[token]) /
           entity_denom_[entity_root];
  }

  /// Resident bytes of the two term vectors.
  uint64_t ApproxMemoryBytes() const {
    return (smoothing_mass_.capacity() + entity_denom_.capacity()) *
           sizeof(double);
  }

 private:
  const XmlIndex* index_;
  double mu_;
  std::vector<double> smoothing_mass_;  // indexed by TokenId
  std::vector<double> entity_denom_;    // indexed by NodeId
};

}  // namespace xclean

#endif  // XCLEAN_LM_LM_STATS_CACHE_H_
