#include "lm/lm_stats_cache.h"

namespace xclean {

LmStatsCache::LmStatsCache(const XmlIndex& index, double mu)
    : index_(&index), mu_(mu) {
  const size_t vocab = index.vocabulary().size();
  smoothing_mass_.resize(vocab);
  for (size_t t = 0; t < vocab; ++t) {
    smoothing_mass_[t] = mu * index.BackgroundProb(static_cast<TokenId>(t));
  }
  const NodeId nodes = index.tree().size();
  entity_denom_.resize(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    entity_denom_[n] =
        static_cast<double>(index.subtree_token_count(n)) + mu;
  }
}

LmStatsCache::LmStatsCache(const XmlIndex& index, double mu,
                           std::vector<double> global_smoothing_mass)
    : index_(&index), mu_(mu),
      smoothing_mass_(std::move(global_smoothing_mass)) {
  const NodeId nodes = index.tree().size();
  entity_denom_.resize(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    entity_denom_[n] =
        static_cast<double>(index.subtree_token_count(n)) + mu;
  }
}

}  // namespace xclean
