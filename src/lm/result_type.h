#ifndef XCLEAN_LM_RESULT_TYPE_H_
#define XCLEAN_LM_RESULT_TYPE_H_

#include <cstdint>
#include <vector>

#include "index/xml_index.h"

namespace xclean {

/// Result-type inference for the "specific node type" keyword query
/// semantics (Sec. IV-B2, following XReal): the desirability of label path
/// p as the result type of candidate query C is
///
///     U(C, p) = log(1 + Π_{w∈C} f_w^p) * r^depth(p)              (Eq. 7)
///
/// where f_w^p counts nodes of path p containing w in their subtree and
/// r < 1 discounts deep paths ("too deep in the tree ... contain little
/// additional information"). The paper's examples use r = 0.8.
class ResultTypeScorer {
 public:
  explicit ResultTypeScorer(const XmlIndex& index, double r = 0.8)
      : index_(&index), reduction_(r) {}

  double reduction() const { return reduction_; }

  struct Choice {
    PathId path = XmlTree::kInvalidPath;
    double utility = 0.0;
    /// Π_w f_w^p of the winning path (used in tests / diagnostics).
    double freq_product = 0.0;
  };

  /// U(C, p) for an explicit path (0 if some keyword never occurs under p).
  double Utility(const std::vector<TokenId>& candidate, PathId path) const;

  /// The FindResultType(C) algorithm of Sec. V-B: intersects the keywords'
  /// type lists by a multi-way merge (lists are PathId-sorted) and returns
  /// the path maximizing U(C, p) among paths of depth >= min_depth. Ties
  /// break to the smaller PathId for determinism. Returns kInvalidPath if
  /// the keywords never co-occur under a qualifying type.
  Choice FindResultType(const std::vector<TokenId>& candidate,
                        uint32_t min_depth) const;

 private:
  const XmlIndex* index_;
  double reduction_;
};

}  // namespace xclean

#endif  // XCLEAN_LM_RESULT_TYPE_H_
