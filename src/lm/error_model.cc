#include "lm/error_model.h"

#include <cmath>

#include "text/edit_distance.h"

namespace xclean {

double ErrorModel::Weight(uint32_t edit_distance) const {
  return std::exp(-beta_ * static_cast<double>(edit_distance));
}

double ErrorModel::Weight(std::string_view observed,
                          std::string_view intended) const {
  return Weight(EditDistance(observed, intended));
}

double ErrorModel::QueryWeight(
    const std::vector<uint32_t>& edit_distances) const {
  uint64_t total = 0;
  for (uint32_t d : edit_distances) total += d;
  return std::exp(-beta_ * static_cast<double>(total));
}

}  // namespace xclean
