#ifndef XCLEAN_LM_LANGUAGE_MODEL_H_
#define XCLEAN_LM_LANGUAGE_MODEL_H_

#include <cstdint>

#include "index/xml_index.h"

namespace xclean {

/// Dirichlet-smoothed unigram language model over entity virtual documents
/// (Sec. IV-B2):
///
///     P(w | D) = (count(w, D) + mu * P(w | B)) / (|D| + mu)
///
/// where D = D(r) is the concatenated text of entity r's subtree, B is the
/// background (whole-collection) model, and mu the smoothing mass. The
/// paper adopts this "state-of-the-art" estimator from Zhai & Lafferty; it
/// does not state mu, so we default to the standard mu = 2000.
///
/// Numerics: with at most ~7 query keywords, per-entity products stay above
/// ~1e-60 — comfortably inside double range — so probabilities are plain
/// doubles (no log-space machinery needed).
class LanguageModel {
 public:
  explicit LanguageModel(const XmlIndex& index, double mu = 2000.0)
      : index_(&index), mu_(mu) {}

  double mu() const { return mu_; }

  /// P(w|B): background probability of the token.
  double Background(TokenId token) const {
    return index_->BackgroundProb(token);
  }

  /// P(w | D(r)) given count(w, D(r)) and |D(r)| accumulated by the caller.
  double Prob(TokenId token, uint64_t count_in_doc, uint64_t doc_len) const {
    return (static_cast<double>(count_in_doc) + mu_ * Background(token)) /
           (static_cast<double>(doc_len) + mu_);
  }

  /// P(w | D(r)) for entity rooted at r, with count(w, D(r)) supplied by the
  /// caller (the XClean pass accumulates it while collecting occurrences;
  /// |D(r)| is the precomputed subtree token count).
  double ProbInEntity(TokenId token, uint64_t count_in_entity,
                      NodeId entity_root) const {
    return Prob(token, count_in_entity,
                index_->subtree_token_count(entity_root));
  }

 private:
  const XmlIndex* index_;
  double mu_;
};

}  // namespace xclean

#endif  // XCLEAN_LM_LANGUAGE_MODEL_H_
