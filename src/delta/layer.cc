#include "delta/layer.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace xclean::delta {

bool Layer::IsDead(NodeId n) const {
  auto it = std::partition_point(
      tombstones.begin(), tombstones.end(),
      [n](const Tombstone& t) { return t.end < n; });
  return it != tombstones.end() && it->begin <= n;
}

DeadDocStats ComputeDeadDocStats(const XmlIndex& index, NodeId doc) {
  const XmlTree& tree = index.tree();
  const NodeId end = tree.subtree_end(doc);
  DeadDocStats out;

  std::unordered_map<TokenId, uint64_t> cf;
  // (node << 32 | token): a node's containment of a token counts once no
  // matter how many descendant occurrences witness it.
  std::unordered_set<uint64_t> seen;
  // (token << 32 | path) -> containment count.
  std::unordered_map<uint64_t, uint32_t> type_freq;

  std::vector<std::string> words;
  for (NodeId n = doc; n <= end; ++n) {
    if (!tree.has_text(n)) continue;
    index.tokenizer().TokenizeInto(tree.text(n), words);
    for (const std::string& w : words) {
      const TokenId t = index.vocabulary().Find(w);
      // Every indexed occurrence tokenizes back to a vocabulary entry: the
      // index was built with this same tokenizer over this same text.
      XCLEAN_CHECK(t != kInvalidToken);
      cf[t] += 1;
      out.total_tokens += 1;
      for (NodeId a = n;; a = tree.parent(a)) {
        if (seen.insert((static_cast<uint64_t>(a) << 32) | t).second) {
          type_freq[(static_cast<uint64_t>(t) << 32) | tree.path_id(a)] += 1;
        }
        if (a == doc) break;
      }
    }
  }

  out.cf.assign(cf.begin(), cf.end());
  std::sort(out.cf.begin(), out.cf.end());
  out.type_freqs.reserve(type_freq.size());
  for (const auto& [key, freq] : type_freq) {
    out.type_freqs.push_back(DeadDocStats::TypeFreq{
        static_cast<TokenId>(key >> 32), static_cast<PathId>(key), freq});
  }
  std::sort(out.type_freqs.begin(), out.type_freqs.end(),
            [](const DeadDocStats::TypeFreq& a,
               const DeadDocStats::TypeFreq& b) {
              return a.token != b.token ? a.token < b.token : a.path < b.path;
            });
  return out;
}

Status ReplaySubtree(const XmlTree& tree, NodeId n, XmlTreeBuilder& builder) {
  Status s = builder.BeginElement(tree.label(n));
  if (!s.ok()) return s;
  if (tree.has_text(n)) {
    s = builder.AddText(tree.text(n));
    if (!s.ok()) return s;
  }
  for (NodeId c = tree.FirstChild(n); c != kInvalidNode;
       c = tree.NextSibling(c)) {
    s = ReplaySubtree(tree, c, builder);
    if (!s.ok()) return s;
  }
  return builder.EndElement();
}

Result<XmlTree> JoinLiveTree(const LayerSet& set) {
  XCLEAN_CHECK(!set.layers.empty());
  XmlTreeBuilder builder;
  const XmlTree& base = set.layers[0].index->tree();
  Status s = builder.BeginElement(base.label(base.root()));
  if (!s.ok()) return s;
  for (const Layer& layer : set.layers) {
    const XmlTree& t = layer.index->tree();
    if (t.has_text(t.root())) {
      s = builder.AddText(t.text(t.root()));
      if (!s.ok()) return s;
    }
  }
  for (const Layer& layer : set.layers) {
    const XmlTree& t = layer.index->tree();
    for (NodeId doc = t.FirstChild(t.root()); doc != kInvalidNode;
         doc = t.NextSibling(doc)) {
      if (layer.IsDead(doc)) continue;
      s = ReplaySubtree(t, doc, builder);
      if (!s.ok()) return s;
    }
  }
  s = builder.EndElement();
  if (!s.ok()) return s;
  return std::move(builder).Finish();
}

}  // namespace xclean::delta
