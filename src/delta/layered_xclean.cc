#include "delta/layered_xclean.h"

#include <algorithm>

#include "common/check.h"
#include "common/fault_injection.h"
#include "core/elca.h"
#include "core/slca.h"
#include "index/merged_list.h"

namespace xclean::delta {

namespace {

/// Sum of tf of `occ` entries whose node lies in [lo, hi]; occ is sorted by
/// node. (Same helper as core/xclean.cc — the arithmetic must match.)
template <typename OccVec>
uint64_t SumTfInRange(const OccVec& occ, NodeId lo, NodeId hi) {
  auto it = std::lower_bound(
      occ.begin(), occ.end(), lo,
      [](const auto& o, NodeId target) { return o.node < target; });
  uint64_t sum = 0;
  for (; it != occ.end() && it->node <= hi; ++it) sum += it->tf;
  return sum;
}

}  // namespace

LayeredXClean::LayeredXClean(std::shared_ptr<const LayerSet> layers,
                             std::shared_ptr<const MergedStats> stats,
                             XCleanOptions options)
    : layers_(std::move(layers)),
      stats_(std::move(stats)),
      options_(options),
      error_model_(options.beta),
      epoch_(QueryScratch::NextEpoch()) {
  XCLEAN_CHECK(!layers_->layers.empty());
  // Layer locality of subtrees/entities requires every depth-d subtree to
  // sit inside one document (a depth-2 child of the root).
  XCLEAN_CHECK(options_.min_depth >= 2);
  // A cross-layer entity prior would need node-id translation; unsupported.
  XCLEAN_CHECK(!options_.entity_prior);
  variant_gen_.reserve(layers_->layers.size());
  for (const Layer& layer : layers_->layers) {
    variant_gen_.push_back(std::make_unique<VariantGenerator>(
        *layer.index,
        VariantGenOptions{options_.max_ed, options_.include_soundex}));
  }
  edit_weight_.reserve(options_.max_ed + 1);
  for (uint32_t d = 0; d <= options_.max_ed; ++d) {
    edit_weight_.push_back(error_model_.Weight(d));
  }
}

void LayeredXClean::BindScratch(QueryScratch& scratch) const {
  if (scratch.bound_epoch_ == epoch_) return;
  scratch.variant_cache_.clear();
  scratch.type_cache_.Clear();
  scratch.bound_epoch_ = epoch_;
}

const std::vector<Variant>& LayeredXClean::LookupVariants(
    QueryScratch& scratch, size_t li, const std::string& keyword) const {
  std::string key;
  key.reserve(keyword.size() + 8);
  key.push_back('L');
  key += std::to_string(li);
  key.push_back('|');
  key += keyword;
  auto it = scratch.variant_cache_.find(key);
  if (it != scratch.variant_cache_.end()) return it->second;
  if (scratch.variant_cache_.size() >= QueryScratch::kMaxVariantCacheEntries) {
    scratch.variant_cache_.clear();
  }
  return scratch.variant_cache_
      .emplace(std::move(key), variant_gen_[li]->Generate(keyword))
      .first->second;
}

void LayeredXClean::ScoreNodeTypeEntities(
    size_t li, QueryScratch& scratch, size_t num_slots,
    const ResultTypeScorer::Choice& choice, double error_weight,
    XCleanRunStats& stats, CancelToken* cancel) const {
  const XmlTree& tree = layers_->layers[li].index->tree();
  const uint32_t entity_depth = stats_->path_depth(choice.path);

  // Per-(slot, rank, depth) entity aggregation, memoized for the current
  // subtree exactly as in core/xclean.cc — with the one difference that the
  // EntityAgg carries the *global* PathId, so the comparison against the
  // merged result type below is id-for-id the rebuild's comparison.
  auto& lists = scratch.agg_lists_;
  auto& pos = scratch.agg_pos_;
  lists.clear();
  pos.assign(num_slots, 0);
  for (size_t i = 0; i < num_slots; ++i) {
    QueryScratch::Slot& slot = scratch.slots_[i];
    const uint32_t rank = slot.active_ranks[scratch.odometer_[i]];
    std::vector<QueryScratch::EntityAgg>& agg = slot.agg_by_rank[rank];
    if (slot.agg_depth[rank] != entity_depth) {
      agg.clear();
      NodeId entity_end = 0;
      bool have_entity = false;
      for (const QueryScratch::OccInfo& o : slot.occ_by_rank[rank]) {
        if (tree.depth(o.node) < entity_depth) continue;
        if (have_entity && o.node <= entity_end) {
          agg.back().tf += o.tf;
          continue;
        }
        const NodeId entity = tree.AncestorAtDepth(o.node, entity_depth);
        entity_end = tree.subtree_end(entity);
        have_entity = true;
        agg.push_back(QueryScratch::EntityAgg{
            entity, stats_->ToGlobalPath(li, tree.path_id(entity)), o.tf});
      }
      slot.agg_depth[rank] = entity_depth;
    }
    if (agg.empty()) return;  // no entity can contain every keyword
    lists.push_back(&agg);
  }

  CandidateState* state = nullptr;
  NodeId target = (*lists[0])[0].entity;
  for (;;) {
    if (cancel != nullptr && cancel->ChargePostings(1)) return;
    bool all_equal = false;
    while (!all_equal) {
      all_equal = true;
      for (size_t i = 0; i < num_slots; ++i) {
        const std::vector<QueryScratch::EntityAgg>& list = *lists[i];
        size_t& p = pos[i];
        p = QueryScratch::AdvanceAgg(list, p, target);
        if (p == list.size()) return;
        if (list[p].entity > target) {
          target = list[p].entity;
          all_equal = false;
        }
      }
    }
    if ((*lists[0])[pos[0]].path == choice.path) {
      double prod = 1.0;
      for (size_t i = 0; i < num_slots; ++i) {
        prod *= ProbInEntity(li, scratch.candidate_[i], (*lists[i])[pos[i]].tf,
                             target);
      }
      if (state == nullptr) {
        state = scratch.accumulators_.GetOrCreate(scratch.candidate_.data(),
                                                  num_slots, error_weight);
      }
      state->sum += prod;
      state->entity_count += 1;
      ++stats.entities_scored;
    }
    for (size_t i = 0; i < num_slots; ++i) ++pos[i];
    if (pos[0] == lists[0]->size()) return;
    target = (*lists[0])[pos[0]].entity;
  }
}

void LayeredXClean::ScoreLcaEntities(size_t li, QueryScratch& scratch,
                                     size_t num_slots, double error_weight,
                                     XCleanRunStats& stats,
                                     CancelToken* cancel) const {
  const XmlTree& tree = layers_->layers[li].index->tree();
  const uint32_t d = options_.min_depth;

  auto& witness = scratch.witness_lists_;
  witness.resize(num_slots);
  for (size_t i = 0; i < num_slots; ++i) {
    const QueryScratch::Slot& slot = scratch.slots_[i];
    const uint32_t rank = slot.active_ranks[scratch.odometer_[i]];
    witness[i].clear();
    for (const QueryScratch::OccInfo& o : slot.occ_by_rank[rank]) {
      witness[i].push_back(o.node);
    }
  }
  // SLCA/ELCA over the layer tree equal the rebuild's over the joined tree:
  // witnesses sit inside one live document, whose subtree the join replays
  // verbatim at the same depths.
  std::vector<NodeId> slcas = options_.semantics == Semantics::kSlca
                                  ? ComputeSlcas(tree, witness)
                                  : ComputeElcas(tree, witness);
  std::erase_if(slcas, [&](NodeId e) { return tree.depth(e) < d; });
  if (slcas.empty()) return;

  uint32_t* total =
      scratch.slca_totals_.GetOrCreate(scratch.candidate_.data(), num_slots);
  *total += static_cast<uint32_t>(slcas.size());

  CandidateState* state = nullptr;
  for (NodeId entity : slcas) {
    if (cancel != nullptr && cancel->ChargePostings(1)) return;
    double prod = 1.0;
    for (size_t i = 0; i < num_slots; ++i) {
      const QueryScratch::Slot& slot = scratch.slots_[i];
      const uint32_t rank = slot.active_ranks[scratch.odometer_[i]];
      uint64_t count = SumTfInRange(slot.occ_by_rank[rank], entity,
                                    tree.subtree_end(entity));
      prod *= ProbInEntity(li, scratch.candidate_[i], count, entity);
    }
    if (state == nullptr) {
      state = scratch.accumulators_.GetOrCreate(scratch.candidate_.data(),
                                                num_slots, error_weight);
    }
    state->sum += prod;
    state->entity_count += 1;
    ++stats.entities_scored;
  }
}

void LayeredXClean::ProcessLayer(size_t li, size_t num_slots,
                                 QueryScratch& scratch, const Query& query,
                                 uint32_t eff_max_ed,
                                 XCleanRunStats& run_stats,
                                 CancelToken* cancel) const {
  const Layer& layer = layers_->layers[li];
  const XmlIndex& index = *layer.index;

  // Per-layer slot setup: variants from this layer's vocabulary, merged
  // lists over this layer's postings. An empty variant list only mutes this
  // layer — other layers may still hold matches.
  for (size_t i = 0; i < num_slots; ++i) {
    QueryScratch::Slot& slot = scratch.slots_[i];
    for (uint32_t r : slot.active_ranks) {
      slot.occ_by_rank[r].clear();
      slot.agg_depth[r] = QueryScratch::kNoAggDepth;
    }
    slot.active_ranks.clear();
    const std::vector<Variant>& vars =
        LookupVariants(scratch, li, query.keywords[i]);
    if (vars.empty()) return;
    slot.variants = vars;
    if (eff_max_ed < options_.max_ed) {
      std::erase_if(slot.variants, [eff_max_ed](const Variant& v) {
        return v.distance > eff_max_ed;
      });
      if (slot.variants.empty()) return;
    }
    std::sort(slot.variants.begin(), slot.variants.end(),
              [](const Variant& a, const Variant& b) {
                return a.token < b.token;
              });
    slot.merged.Reset();
    for (const Variant& v : slot.variants) {
      slot.merged.AddMember(v.token, PostingCursor(index.postings(v.token)));
    }
    slot.merged.Finish();
    if (slot.occ_by_rank.size() < slot.variants.size()) {
      slot.occ_by_rank.resize(slot.variants.size());
      slot.agg_by_rank.resize(slot.variants.size());
      slot.agg_depth.resize(slot.variants.size(), QueryScratch::kNoAggDepth);
    }
  }

  const XmlTree& tree = index.tree();
  const uint32_t d = options_.min_depth;

  // Main anchor loop (Algorithm 1 lines 4-16) over this layer.
  for (;;) {
    XCLEAN_FAULT_HIT("delta.anchor");
    if (cancel != nullptr && cancel->cancelled()) return;
    const MergedList::Head* anchor = nullptr;
    size_t anchor_slot = 0;
    bool exhausted = false;
    for (size_t i = 0; i < num_slots; ++i) {
      const MergedList::Head* h = scratch.slots_[i].merged.cur_pos();
      if (h == nullptr) {
        exhausted = true;
        break;
      }
      if (anchor == nullptr || h->node > anchor->node) {
        anchor = h;
        anchor_slot = i;
      }
    }
    if (exhausted || anchor == nullptr) return;

    if (tree.depth(anchor->node) < d) {
      scratch.slots_[anchor_slot].merged.Next();
      continue;
    }

    NodeId g = tree.AncestorAtDepth(anchor->node, d);
    NodeId g_end = tree.subtree_end(g);

    // Tombstone check at subtree granularity: documents die whole, and
    // every depth-d subtree lies inside one document, so g is either fully
    // live or fully dead. A dead g is skipped wholesale — none of its
    // occurrences surface, matching a rebuild that never indexed the doc.
    if (layer.IsDead(g)) {
      for (size_t i = 0; i < num_slots; ++i) {
        scratch.slots_[i].merged.SkipTo(g_end + 1, cancel);
      }
      if (cancel != nullptr && cancel->cancelled()) return;
      continue;
    }
    ++run_stats.subtrees_processed;

    bool all_slots_present = true;
    for (size_t i = 0; i < num_slots; ++i) {
      QueryScratch::Slot& slot = scratch.slots_[i];
      for (uint32_t r : slot.active_ranks) {
        slot.occ_by_rank[r].clear();
        slot.agg_depth[r] = QueryScratch::kNoAggDepth;
      }
      slot.active_ranks.clear();
      slot.merged.SkipTo(g, cancel);
      slot.merged.DrainUpTo(
          g_end,
          [&](uint32_t member, NodeId node, uint32_t tf) {
            std::vector<QueryScratch::OccInfo>& bucket =
                slot.occ_by_rank[member];
            if (bucket.empty()) slot.active_ranks.push_back(member);
            bucket.push_back(QueryScratch::OccInfo{node, tf});
            ++run_stats.occurrences_collected;
          },
          cancel);
      if (slot.active_ranks.empty()) all_slots_present = false;
      std::sort(slot.active_ranks.begin(), slot.active_ranks.end());
    }
    if (cancel != nullptr && cancel->cancelled()) return;
    if (!all_slots_present) continue;

    // Candidate enumeration: the odometer walks ranks in this layer's
    // token order, which may differ from the rebuild's global token order —
    // harmless, since each candidate's contribution is folded into its own
    // accumulator cell and the final ranking is a total order.
    auto& odo = scratch.odometer_;
    odo.assign(num_slots, 0);
    for (;;) {
      if (cancel != nullptr && cancel->ChargeCandidate()) break;
      double error_weight = 1.0;
      for (size_t i = 0; i < num_slots; ++i) {
        const QueryScratch::Slot& slot = scratch.slots_[i];
        const Variant& v = slot.variants[slot.active_ranks[odo[i]]];
        scratch.candidate_[i] = stats_->ToGlobalToken(li, v.token);
        error_weight *= EditWeight(v.distance);
      }
      ++run_stats.candidates_enumerated;

      if (options_.semantics == Semantics::kNodeType) {
        // The type cache keys on global tokens, so a candidate surfacing in
        // several layers (or several queries) pays the merged-list
        // intersection once.
        bool created = false;
        ResultTypeScorer::Choice* choice = scratch.type_cache_.GetOrCreate(
            scratch.candidate_.data(), num_slots, &created);
        if (created) {
          ++run_stats.result_type_computations;
          *choice = stats_->FindResultType(scratch.candidate_, d);
        }
        if (choice->path != XmlTree::kInvalidPath) {
          ScoreNodeTypeEntities(li, scratch, num_slots, *choice, error_weight,
                                run_stats, cancel);
        }
      } else {
        ScoreLcaEntities(li, scratch, num_slots, error_weight, run_stats,
                         cancel);
      }

      size_t slot = num_slots;
      while (slot > 0) {
        --slot;
        if (++odo[slot] < scratch.slots_[slot].active_ranks.size()) break;
        odo[slot] = 0;
        if (slot == 0) {
          slot = SIZE_MAX;
          break;
        }
      }
      if (slot == SIZE_MAX) break;
    }
  }
}

void LayeredXClean::SuggestWithScratch(const Query& query,
                                       QueryScratch& scratch,
                                       std::vector<Suggestion>* out,
                                       XCleanRunStats* stats,
                                       CancelToken* cancel,
                                       const QueryTuning* tuning) const {
  XCleanRunStats local_stats;
  XCleanRunStats& run_stats = stats != nullptr ? *stats : local_stats;
  run_stats = XCleanRunStats{};
  BindScratch(scratch);

  uint32_t eff_max_ed = options_.max_ed;
  size_t eff_gamma = options_.gamma;
  size_t eff_top_k = options_.top_k;
  if (tuning != nullptr) {
    eff_max_ed = std::min(eff_max_ed, tuning->max_ed);
    if (tuning->gamma != SIZE_MAX) {
      eff_gamma =
          eff_gamma == 0 ? tuning->gamma : std::min(eff_gamma, tuning->gamma);
    }
    eff_top_k = std::min(eff_top_k, tuning->top_k);
  }

  const size_t l = query.size();
  if (l == 0) {
    out->clear();
    return;
  }

  // Cross-layer accumulators reset once per query — layer passes compose
  // into them without intermediate resets, in (layer, preorder) subtree
  // order, i.e. the rebuild's accumulation order.
  scratch.accumulators_.Reset(eff_gamma);
  scratch.slca_totals_.Clear();
  if (scratch.type_cache_.size() > QueryScratch::kMaxTypeCacheEntries) {
    scratch.type_cache_.Clear();
  }
  if (scratch.slots_.size() < l) scratch.slots_.resize(l);
  scratch.candidate_.assign(l, 0);

  for (size_t li = 0; li < layers_->layers.size(); ++li) {
    if (cancel != nullptr && cancel->cancelled()) break;
    ProcessLayer(li, l, scratch, query, eff_max_ed, run_stats, cancel);
  }

  run_stats.accumulator_evictions = scratch.accumulators_.eviction_count();
  run_stats.accumulators_final = scratch.accumulators_.size();
  if (cancel != nullptr && cancel->cancelled()) {
    run_stats.truncated = true;
    run_stats.cancel_cause = cancel->cause();
  }

  // Final scoring (Eq. 10) — identical to core/xclean.cc, with token
  // strings and path-node counts drawn from the merged statistics.
  auto& finals = scratch.finals_;
  finals.clear();
  scratch.accumulators_.ForEach([&](const TokenId* key, size_t key_len,
                                    const CandidateState& state) {
    QueryScratch::FinalEntry e;
    e.key = key;
    e.key_len = static_cast<uint32_t>(key_len);
    e.error_weight = state.error_weight;
    e.entity_count = state.entity_count;
    e.result_type = XmlTree::kInvalidPath;
    double n_entities = 1.0;
    if (options_.semantics == Semantics::kNodeType) {
      const ResultTypeScorer::Choice* choice =
          scratch.type_cache_.Find(key, key_len);
      XCLEAN_CHECK(choice != nullptr);
      e.result_type = choice->path;
      n_entities = stats_->path_node_count(choice->path);
    } else {
      const uint32_t* total = scratch.slca_totals_.Find(key, key_len);
      XCLEAN_CHECK(total != nullptr);
      n_entities = *total;
    }
    e.score = state.error_weight * state.sum / n_entities;
    finals.push_back(e);
  });

  std::sort(finals.begin(), finals.end(),
            [&](const QueryScratch::FinalEntry& a,
                const QueryScratch::FinalEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              size_t n = std::min(a.key_len, b.key_len);
              for (size_t i = 0; i < n; ++i) {
                if (a.key[i] == b.key[i]) continue;
                return stats_->token(a.key[i]) < stats_->token(b.key[i]);
              }
              return a.key_len < b.key_len;
            });

  const size_t k = std::min(finals.size(), eff_top_k);
  for (size_t r = 0; r < k; ++r) {
    const QueryScratch::FinalEntry& e = finals[r];
    if (out->size() <= r) out->emplace_back();
    Suggestion& s = (*out)[r];
    if (s.words.size() != e.key_len) s.words.resize(e.key_len);
    for (size_t i = 0; i < e.key_len; ++i) {
      s.words[i] = stats_->token(e.key[i]);
    }
    s.score = e.score;
    s.error_weight = e.error_weight;
    s.entity_count = e.entity_count;
    s.result_type = e.result_type;
  }
  out->resize(k);
}

void LayeredXClean::CollectLayerPartials(const Query& query, size_t layer,
                                         QueryScratch& scratch,
                                         std::vector<PartialCandidate>* out,
                                         XCleanRunStats* stats,
                                         CancelToken* cancel,
                                         const QueryTuning* tuning) const {
  XCLEAN_CHECK(layer < layers_->layers.size());
  XCleanRunStats local_stats;
  XCleanRunStats& run_stats = stats != nullptr ? *stats : local_stats;
  run_stats = XCleanRunStats{};
  BindScratch(scratch);

  uint32_t eff_max_ed = options_.max_ed;
  size_t eff_gamma = options_.gamma;
  if (tuning != nullptr) {
    eff_max_ed = std::min(eff_max_ed, tuning->max_ed);
    if (tuning->gamma != SIZE_MAX) {
      eff_gamma =
          eff_gamma == 0 ? tuning->gamma : std::min(eff_gamma, tuning->gamma);
    }
  }

  out->clear();
  const size_t l = query.size();
  if (l == 0) return;

  scratch.accumulators_.Reset(eff_gamma);
  scratch.slca_totals_.Clear();
  if (scratch.type_cache_.size() > QueryScratch::kMaxTypeCacheEntries) {
    scratch.type_cache_.Clear();
  }
  if (scratch.slots_.size() < l) scratch.slots_.resize(l);
  scratch.candidate_.assign(l, 0);

  ProcessLayer(layer, l, scratch, query, eff_max_ed, run_stats, cancel);

  run_stats.accumulator_evictions = scratch.accumulators_.eviction_count();
  run_stats.accumulators_final = scratch.accumulators_.size();
  if (cancel != nullptr && cancel->cancelled()) {
    run_stats.truncated = true;
    run_stats.cancel_cause = cancel->cause();
  }

  out->reserve(scratch.accumulators_.size());
  scratch.accumulators_.ForEach([&](const TokenId* key, size_t key_len,
                                    const CandidateState& state) {
    PartialCandidate p;
    p.tokens.assign(key, key + key_len);
    p.error_weight = state.error_weight;
    p.sum = state.sum;
    p.entity_count = state.entity_count;
    if (options_.semantics == Semantics::kNodeType) {
      const ResultTypeScorer::Choice* choice =
          scratch.type_cache_.Find(key, key_len);
      XCLEAN_CHECK(choice != nullptr);
      p.result_type = choice->path;
    } else {
      const uint32_t* total = scratch.slca_totals_.Find(key, key_len);
      XCLEAN_CHECK(total != nullptr);
      p.lca_total = *total;
    }
    out->push_back(std::move(p));
  });

  // Canonical export order: global token ids ascending, so identical shard
  // content yields an identical partial list regardless of the accumulator
  // table's internal layout, and the coordinator's shard-major merge order
  // is fully determined by (shard id, candidate key).
  std::sort(out->begin(), out->end(),
            [](const PartialCandidate& a, const PartialCandidate& b) {
              return a.tokens < b.tokens;
            });
}

}  // namespace xclean::delta
