#include "delta/live_index.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"

namespace xclean::delta {

namespace {

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

std::vector<Suggestion> LiveSnapshot::Suggest(const Query& query,
                                              QueryScratch* scratch,
                                              CancelToken* cancel,
                                              const QueryTuning* tuning,
                                              XCleanRunStats* stats) const {
  QueryScratch local;
  QueryScratch& s = scratch != nullptr ? *scratch : local;
  std::vector<Suggestion> out;
  if (base_algo_ != nullptr) {
    base_algo_->SuggestWithScratch(query, s, &out, stats, cancel, tuning);
  } else {
    layered_->SuggestWithScratch(query, s, &out, stats, cancel, tuning);
  }
  return out;
}

LiveIndex::LiveIndex(std::shared_ptr<const XmlIndex> base,
                     LiveIndexOptions options)
    : options_(options) {
  XCLEAN_CHECK(base != nullptr);
  XCLEAN_CHECK(options_.xclean.min_depth >= 2);
  XCLEAN_CHECK(!options_.xclean.entity_prior);
  index_options_ = base->options();
  root_label_ = base->tree().label(base->tree().root());
  base_ = std::move(base);
  base_uid_ = next_uid_++;
  memtable_uid_ = next_uid_++;
  memtable_ = std::make_unique<DeltaIndex>(root_label_, index_options_);
  const XmlTree& t = base_->tree();
  for (NodeId doc = t.FirstChild(t.root()); doc != kInvalidNode;
       doc = t.NextSibling(doc)) {
    base_doc_nodes_.push_back(doc);
    base_doc_ids_.push_back(static_cast<DocId>(docs_.size()));
    docs_.push_back(DocRecord{base_uid_, base_doc_nodes_.size() - 1, false});
  }
  live_docs_ = docs_.size();
  std::lock_guard<std::mutex> lock(mu_);
  RebuildSnapshotLocked();
}

LiveIndex::LiveIndex(const XmlIndex& base, std::shared_ptr<const void> owner,
                     LiveIndexOptions options)
    : LiveIndex(std::shared_ptr<const XmlIndex>(std::move(owner), &base),
                options) {}

LiveIndex::~LiveIndex() { WaitForCompaction(); }

Result<DocId> LiveIndex::Add(std::string_view document_xml) {
  std::lock_guard<std::mutex> lock(mu_);
  Result<size_t> ordinal = memtable_->Add(document_xml);
  if (!ordinal.ok()) return ordinal.status();
  const DocId id = static_cast<DocId>(docs_.size());
  XCLEAN_CHECK(ordinal.value() == memtable_ids_.size());
  memtable_ids_.push_back(id);
  docs_.push_back(DocRecord{memtable_uid_, ordinal.value(), false});
  live_docs_ += 1;
  adds_ += 1;
  sequence_ += 1;
  // Rebuilding before returning is the visibility contract: a snapshot
  // taken after Add() returns serves the new document.
  RebuildSnapshotLocked();
  return id;
}

Status LiveIndex::Delete(DocId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= docs_.size()) return Status::NotFound("no such document id");
  DocRecord& rec = docs_[id];
  if (rec.deleted) return Status::Ok();
  if (rec.layer_uid == memtable_uid_) {
    Status s = memtable_->Remove(rec.ordinal);
    if (!s.ok()) return s;
  } else if (rec.layer_uid == base_uid_) {
    InsertTombstone(base_tombstones_, *base_, base_doc_nodes_[rec.ordinal]);
  } else {
    FrozenLayer* layer = nullptr;
    for (FrozenLayer& f : frozen_) {
      if (f.layer_uid == rec.layer_uid) {
        layer = &f;
        break;
      }
    }
    XCLEAN_CHECK(layer != nullptr);
    InsertTombstone(layer->tombstones, *layer->index,
                    layer->doc_nodes[rec.ordinal]);
  }
  rec.deleted = true;
  live_docs_ -= 1;
  deletes_ += 1;
  sequence_ += 1;
  RebuildSnapshotLocked();
  return Status::Ok();
}

void LiveIndex::InsertTombstone(std::vector<Tombstone>& tombs,
                                const XmlIndex& index, NodeId node) {
  Tombstone t;
  t.begin = node;
  t.end = index.tree().subtree_end(node);
  t.stats = ComputeDeadDocStats(index, node);
  auto it = std::lower_bound(tombs.begin(), tombs.end(), t,
                             [](const Tombstone& a, const Tombstone& b) {
                               return a.begin < b.begin;
                             });
  tombs.insert(it, std::move(t));
}

std::shared_ptr<const LiveSnapshot> LiveIndex::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

void LiveIndex::RebuildSnapshotLocked() {
  auto layers = std::make_shared<LayerSet>();
  layers->layers.push_back(Layer{base_, base_tombstones_});
  for (const FrozenLayer& f : frozen_) {
    layers->layers.push_back(Layer{f.index, f.tombstones});
  }
  const BuiltLayer& mb = memtable_->built();
  if (mb.index != nullptr) {
    layers->layers.push_back(Layer{mb.index, {}});
  }
  std::shared_ptr<LiveSnapshot> snap(new LiveSnapshot());
  snap->layers_ = layers;
  snap->sequence_ = sequence_;
  snap->live_docs_ = live_docs_;
  if (layers->layers.size() == 1 && base_tombstones_.empty()) {
    snap->base_algo_ = std::make_unique<XClean>(*base_, options_.xclean);
  } else {
    snap->stats_ = MergedStats::Build(*layers, options_.xclean);
    snap->layered_ = std::make_unique<LayeredXClean>(layers, snap->stats_,
                                                     options_.xclean);
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snap);
}

Result<uint64_t> LiveIndex::Compact(SnapshotLifecycle* lifecycle, bool sync) {
  std::lock_guard<std::mutex> serialize(compact_mu_);
  const auto compact_start = std::chrono::steady_clock::now();

  // Phase 1 (under mu_): freeze the memtable into an immutable delta layer
  // and capture the stack. New Adds land in a fresh memtable while the
  // merge below runs lock-free.
  std::shared_ptr<const XmlIndex> cap_base;
  std::vector<Tombstone> cap_base_tombs;
  std::vector<NodeId> cap_base_nodes;
  std::vector<DocId> cap_base_ids;
  std::vector<FrozenLayer> cap_frozen;
  bool checkpoint_only = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const BuiltLayer& mb = memtable_->built();
    if (memtable_->total_ordinals() > 0) {
      if (mb.index != nullptr) {
        frozen_.push_back(FrozenLayer{mb.index, mb.doc_nodes, memtable_ids_,
                                      {}, memtable_uid_});
      }
      memtable_uid_ = next_uid_++;
      memtable_ = std::make_unique<DeltaIndex>(root_label_, index_options_);
      memtable_ids_.clear();
    }
    if (frozen_.empty() && base_tombstones_.empty()) {
      // Single clean generation: nothing to fold. Publish it as a durable
      // checkpoint when asked; otherwise the call is a no-op.
      if (lifecycle == nullptr) return static_cast<uint64_t>(0);
      checkpoint_only = true;
      cap_base = base_;
    } else {
      cap_base = base_;
      cap_base_tombs = base_tombstones_;
      cap_base_nodes = base_doc_nodes_;
      cap_base_ids = base_doc_ids_;
      cap_frozen = frozen_;
    }
  }

  if (checkpoint_only) {
    Result<PublishedSnapshot> pub =
        lifecycle->Publish(*cap_base, PublishOptions{{}, sync});
    if (!pub.ok()) return pub.status();
    std::lock_guard<std::mutex> lock(mu_);
    last_publish_micros_ = ElapsedMicros(compact_start);
    last_compact_micros_ = last_publish_micros_;
    return pub.value().generation;
  }

  // Phase 2 (no locks): join every live captured document into one tree,
  // in (layer, preorder) order, and build the next base generation.
  LayerSet cap_set;
  cap_set.layers.push_back(Layer{cap_base, cap_base_tombs});
  for (const FrozenLayer& f : cap_frozen) {
    cap_set.layers.push_back(Layer{f.index, f.tombstones});
  }
  Result<XmlTree> joined = JoinLiveTree(cap_set);
  if (!joined.ok()) return joined.status();
  // DocIds of the joined documents, in join order: the new base's ordinal
  // i will be join_ids[i].
  std::vector<DocId> join_ids;
  for (size_t o = 0; o < cap_base_nodes.size(); ++o) {
    if (!cap_set.layers[0].IsDead(cap_base_nodes[o])) {
      join_ids.push_back(cap_base_ids[o]);
    }
  }
  for (size_t li = 0; li < cap_frozen.size(); ++li) {
    const FrozenLayer& f = cap_frozen[li];
    for (size_t o = 0; o < f.doc_nodes.size(); ++o) {
      if (f.doc_nodes[o] == kInvalidNode) continue;
      if (cap_set.layers[li + 1].IsDead(f.doc_nodes[o])) continue;
      join_ids.push_back(f.doc_ids[o]);
    }
  }
  std::shared_ptr<const XmlIndex> next_base =
      XmlIndex::Build(std::move(joined).value(), index_options_);

  // Phase 3: durable publish through the MANIFEST journal. The journal
  // append is the commit point — a crash before it leaves the previous
  // generation live; a failure here aborts the compaction with the old
  // layer stack fully intact.
  uint64_t generation = 0;
  uint64_t publish_micros = 0;
  if (lifecycle != nullptr) {
    const auto publish_start = std::chrono::steady_clock::now();
    Result<PublishedSnapshot> pub =
        lifecycle->Publish(*next_base, PublishOptions{{}, sync});
    if (!pub.ok()) return pub.status();
    generation = pub.value().generation;
    publish_micros = ElapsedMicros(publish_start);
  }

  // Phase 4 (under mu_): install the new generation. Deletes that raced
  // the merge marked their DocRecord; they re-materialize as tombstones
  // against the new base (their in-flight tombstones died with the folded
  // layers).
  {
    std::lock_guard<std::mutex> lock(mu_);
    base_ = next_base;
    base_uid_ = next_uid_++;
    base_tombstones_.clear();
    base_doc_nodes_.clear();
    base_doc_ids_ = join_ids;
    const XmlTree& t = base_->tree();
    for (NodeId doc = t.FirstChild(t.root()); doc != kInvalidNode;
         doc = t.NextSibling(doc)) {
      base_doc_nodes_.push_back(doc);
    }
    XCLEAN_CHECK(base_doc_nodes_.size() == join_ids.size());
    for (size_t o = 0; o < join_ids.size(); ++o) {
      DocRecord& rec = docs_[join_ids[o]];
      rec.layer_uid = base_uid_;
      rec.ordinal = o;
      if (rec.deleted) {
        // Sorted by construction: o ascends with node ids.
        InsertTombstone(base_tombstones_, *base_, base_doc_nodes_[o]);
      }
    }
    frozen_.clear();
    compactions_ += 1;
    last_publish_micros_ = publish_micros;
    last_compact_micros_ = ElapsedMicros(compact_start);
    sequence_ += 1;
    RebuildSnapshotLocked();
  }

  // Phase 5: retire folded generations only after the new one is serving
  // (a crash before this orphans files but never loses the live state).
  if (lifecycle != nullptr) {
    lifecycle->RetireOldGenerations(1);
  }
  return generation;
}

Status LiveIndex::CompactInBackground(
    SnapshotLifecycle* lifecycle, std::function<void(Result<uint64_t>)> done) {
  bool expected = false;
  if (!compacting_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
    return Status::Unavailable("background compaction already running");
  }
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (compactor_.joinable()) compactor_.join();
  compactor_ = std::thread([this, lifecycle, done = std::move(done)]() {
    Result<uint64_t> result = Compact(lifecycle, /*sync=*/true);
    if (done) done(std::move(result));
    compacting_.store(false, std::memory_order_release);
  });
  return Status::Ok();
}

void LiveIndex::WaitForCompaction() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (compactor_.joinable()) compactor_.join();
}

LiveCounters LiveIndex::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  LiveCounters c;
  c.adds = adds_;
  c.deletes = deletes_;
  c.compactions = compactions_;
  c.live_docs = live_docs_;
  c.memtable_docs = memtable_->live_docs();
  c.layer_count = 1 + frozen_.size() +
                  (memtable_->built().index != nullptr ? 1 : 0);
  c.last_publish_micros = last_publish_micros_;
  c.last_compact_micros = last_compact_micros_;
  c.sequence = sequence_;
  return c;
}

size_t LiveIndex::base_doc_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_doc_nodes_.size();
}

}  // namespace xclean::delta
