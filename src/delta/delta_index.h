#ifndef XCLEAN_DELTA_DELTA_INDEX_H_
#define XCLEAN_DELTA_DELTA_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/xml_index.h"
#include "xml/parser.h"

namespace xclean::delta {

/// A built memtable generation: the index over the memtable's live
/// documents (null when the memtable is empty) plus, per accepted ordinal,
/// the document's root node in that index (kInvalidNode for documents
/// removed before the build).
struct BuiltLayer {
  std::shared_ptr<const XmlIndex> index;
  std::vector<NodeId> doc_nodes;  // indexed by ordinal
};

/// The mutable write head of the LSM stack: documents parsed and staged as
/// trees, indexed eagerly after every mutation so a just-added document is
/// queryable the moment Add() returns. Removal before a freeze simply drops
/// the staged tree (no tombstone — the memtable is rebuilt without it);
/// tombstones only exist for frozen and base layers, whose indexes are
/// immutable.
///
/// The eager rebuild makes Add O(memtable size). That is the memtable
/// contract: it stays small because LiveIndex freezes and compacts it; the
/// base generation — where almost all documents live — is never rebuilt on
/// the write path.
///
/// Thread safety: none; LiveIndex serializes access under its mutex.
class DeltaIndex {
 public:
  DeltaIndex(std::string root_label, IndexOptions options);

  /// Parses one XML document and stages it. Returns the document's ordinal
  /// (dense, never reused) or the parse error. The memtable index is
  /// rebuilt before returning.
  Result<size_t> Add(std::string_view document_xml);

  /// Drops a staged document by ordinal; no-op if already removed.
  /// Rebuilds the memtable index.
  Status Remove(size_t ordinal);

  /// Number of staged (live) documents.
  size_t live_docs() const { return live_docs_; }
  size_t total_ordinals() const { return docs_.size(); }

  /// The current built generation; `index` is null when no live documents
  /// are staged. The returned snapshot is immutable — a later Add/Remove
  /// builds a new one.
  const BuiltLayer& built() const { return built_; }

  /// Replays every staged document (in ordinal order) into `builder` —
  /// used by compaction to fold the memtable into the next base generation.
  Status ReplayInto(XmlTreeBuilder& builder) const;

 private:
  Status Rebuild();

  std::string root_label_;
  IndexOptions options_;
  std::vector<std::unique_ptr<XmlTree>> docs_;  // null = removed
  size_t live_docs_ = 0;
  BuiltLayer built_;
};

}  // namespace xclean::delta

#endif  // XCLEAN_DELTA_DELTA_INDEX_H_
