#ifndef XCLEAN_DELTA_LIVE_INDEX_H_
#define XCLEAN_DELTA_LIVE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/query_scratch.h"
#include "core/xclean.h"
#include "delta/delta_index.h"
#include "delta/layer.h"
#include "delta/layered_xclean.h"
#include "delta/merged_stats.h"
#include "index/manifest.h"
#include "index/xml_index.h"

namespace xclean::delta {

/// Stable handle on a live document; never reused.
using DocId = uint64_t;

struct LiveIndexOptions {
  /// Algorithm options for the read path; min_depth >= 2 and no
  /// entity_prior (prerequisites of the layered evaluation).
  XCleanOptions xclean;
  /// Auto-compaction threshold consulted by the serving engine: when the
  /// memtable holds this many documents after an Add, a background
  /// compaction is kicked off. 0 = compact manually.
  size_t compact_after_docs = 0;
};

/// Monotonic counters describing the write/compaction side.
struct LiveCounters {
  uint64_t adds = 0;
  uint64_t deletes = 0;
  uint64_t compactions = 0;
  uint64_t live_docs = 0;
  uint64_t memtable_docs = 0;
  /// Base + frozen deltas + built memtable.
  uint64_t layer_count = 0;
  /// Wall time of the durable publish inside the last compaction (0 when
  /// the last compaction ran without a lifecycle).
  uint64_t last_publish_micros = 0;
  /// Wall time of the last whole compaction (freeze + merge + install).
  uint64_t last_compact_micros = 0;
  /// Bumped by every visible mutation; equals the current snapshot's
  /// sequence once the mutation returns.
  uint64_t sequence = 0;
};

/// One immutable read snapshot of the layer stack. Produced by LiveIndex
/// after every mutation; readers pin it (shared_ptr) and serve any number
/// of queries against a frozen world while writers install successors.
/// When the stack is a single clean base generation the snapshot serves
/// through plain XClean (the zero-allocation fast path); otherwise through
/// LayeredXClean over merged statistics.
class LiveSnapshot {
 public:
  /// Mirrors XCleanSuggester::Suggest(query, scratch, ...): `scratch` may
  /// be null (a stack-local one is used); concurrent callers use distinct
  /// scratches.
  std::vector<Suggestion> Suggest(const Query& query, QueryScratch* scratch,
                                  CancelToken* cancel = nullptr,
                                  const QueryTuning* tuning = nullptr,
                                  XCleanRunStats* stats = nullptr) const;

  /// Mutation sequence this snapshot reflects.
  uint64_t sequence() const { return sequence_; }
  uint64_t live_docs() const { return live_docs_; }
  size_t layer_count() const { return layers_->layers.size(); }
  const LayerSet& layers() const { return *layers_; }
  /// True when serving through the single-generation XClean fast path.
  bool fast_path() const { return base_algo_ != nullptr; }

 private:
  friend class LiveIndex;
  LiveSnapshot() = default;

  std::shared_ptr<const LayerSet> layers_;
  std::shared_ptr<const MergedStats> stats_;       // layered path only
  std::unique_ptr<const LayeredXClean> layered_;   // layered path only
  std::unique_ptr<const XClean> base_algo_;        // fast path only
  uint64_t sequence_ = 0;
  uint64_t live_docs_ = 0;
};

/// The incremental-indexing subsystem: an LSM-style stack over XmlIndex.
///
///   [ base generation ] [ frozen delta ]* [ memtable ]
///
/// Writes: Add() parses the document into the memtable (eagerly
/// re-indexed, so the document is visible to the *next* snapshot before
/// Add returns); Delete() drops a memtable document outright, or tombstones
/// a frozen/base document together with the exact statistics it removes.
/// Every mutation installs a fresh LiveSnapshot.
///
/// Compaction: freezes the memtable, replays every live document into one
/// joined tree OUTSIDE the write lock, builds the next base generation,
/// optionally publishes it through the crash-safe MANIFEST journal
/// (index/manifest.h — the commit point is the journal append, so a crash
/// anywhere in between leaves the previous generation live, never a mix),
/// then installs it and drops the folded layers. Queries never block:
/// readers keep serving pinned snapshots throughout.
///
/// Locking: `compact_mu_` serializes compactions; `mu_` guards all mutable
/// state (writes are serialized — the expensive merged-stats rebuild rides
/// on the writer, never on readers); `snapshot_mu_` guards only the
/// published snapshot pointer so readers pin it with two refcount ops.
/// Acquisition order: compact_mu_ -> mu_ -> snapshot_mu_.
class LiveIndex {
 public:
  LiveIndex(std::shared_ptr<const XmlIndex> base, LiveIndexOptions options);
  /// Aliasing variant: serve over a base owned by `owner` (e.g. the
  /// engine's XCleanSuggester) without copying it.
  LiveIndex(const XmlIndex& base, std::shared_ptr<const void> owner,
            LiveIndexOptions options);

  /// Waits for any background compaction, then tears down.
  ~LiveIndex();

  LiveIndex(const LiveIndex&) = delete;
  LiveIndex& operator=(const LiveIndex&) = delete;

  /// Parses and stages one XML document. On Ok, the document is visible to
  /// every snapshot taken after the call returns.
  Result<DocId> Add(std::string_view document_xml);

  /// Deletes a document: memtable documents are dropped and re-indexed
  /// out; frozen/base documents are tombstoned with exact removed-stats.
  /// Deleting an already-deleted id is Ok (idempotent).
  Status Delete(DocId id);

  /// The current read snapshot (never null).
  std::shared_ptr<const LiveSnapshot> snapshot() const;

  /// Folds memtable + frozen deltas + tombstones into the next base
  /// generation. With `lifecycle`, the new generation is durably published
  /// through the MANIFEST journal before install (and older generations
  /// retired after), and its generation number is returned; without, the
  /// merge is in-memory only and 0 is returned. `sync` maps to
  /// PublishOptions::sync. Returns 0 without doing work when the stack is
  /// already a single clean generation and no lifecycle was given.
  Result<uint64_t> Compact(SnapshotLifecycle* lifecycle = nullptr,
                           bool sync = true);

  /// Runs Compact(lifecycle, sync=true) on a background thread. Returns
  /// Unavailable if a background compaction is already running. `done`
  /// (optional) is invoked on the compactor thread with the outcome; it
  /// must not call CompactInBackground synchronously.
  Status CompactInBackground(SnapshotLifecycle* lifecycle,
                             std::function<void(Result<uint64_t>)> done = {});

  /// Joins any background compaction (no-op when none is running).
  void WaitForCompaction();
  bool compacting() const {
    return compacting_.load(std::memory_order_acquire);
  }

  LiveCounters counters() const;
  const LiveIndexOptions& options() const { return options_; }
  size_t base_doc_count() const;

 private:
  struct DocRecord {
    uint64_t layer_uid = 0;
    size_t ordinal = 0;
    bool deleted = false;
  };

  struct FrozenLayer {
    std::shared_ptr<const XmlIndex> index;
    std::vector<NodeId> doc_nodes;  // by memtable ordinal; holes invalid
    std::vector<DocId> doc_ids;     // by memtable ordinal
    std::vector<Tombstone> tombstones;
    uint64_t layer_uid = 0;
  };

  /// Builds and installs a fresh LiveSnapshot. Requires mu_.
  void RebuildSnapshotLocked();

  /// Appends a tombstone for `node` (kept sorted by begin). Requires mu_.
  static void InsertTombstone(std::vector<Tombstone>& tombs,
                              const XmlIndex& index, NodeId node);

  LiveIndexOptions options_;
  IndexOptions index_options_;
  std::string root_label_;

  mutable std::mutex mu_;
  std::shared_ptr<const XmlIndex> base_;
  std::vector<Tombstone> base_tombstones_;
  std::vector<NodeId> base_doc_nodes_;  // by base ordinal
  std::vector<DocId> base_doc_ids_;     // by base ordinal
  uint64_t base_uid_ = 0;
  std::vector<FrozenLayer> frozen_;
  std::unique_ptr<DeltaIndex> memtable_;
  std::vector<DocId> memtable_ids_;  // by memtable ordinal
  uint64_t memtable_uid_ = 0;
  uint64_t next_uid_ = 1;
  std::vector<DocRecord> docs_;  // by DocId
  uint64_t live_docs_ = 0;
  uint64_t sequence_ = 0;
  uint64_t adds_ = 0;
  uint64_t deletes_ = 0;
  uint64_t compactions_ = 0;
  uint64_t last_publish_micros_ = 0;
  uint64_t last_compact_micros_ = 0;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const LiveSnapshot> snapshot_;  ///< guarded by snapshot_mu_

  std::mutex compact_mu_;  ///< serializes Compact()
  std::atomic<bool> compacting_{false};
  std::mutex thread_mu_;
  std::thread compactor_;  ///< guarded by thread_mu_
};

}  // namespace xclean::delta

#endif  // XCLEAN_DELTA_LIVE_INDEX_H_
