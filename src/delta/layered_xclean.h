#ifndef XCLEAN_DELTA_LAYERED_XCLEAN_H_
#define XCLEAN_DELTA_LAYERED_XCLEAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "core/query.h"
#include "core/query_scratch.h"
#include "core/variant_gen.h"
#include "core/xclean.h"
#include "delta/layer.h"
#include "delta/merged_stats.h"
#include "lm/error_model.h"

namespace xclean::delta {

/// Algorithm 1 over a layer stack: one sequential anchor-loop pass per
/// layer into a single set of cross-layer accumulators, scoring exactly
/// what XClean would score over a from-scratch rebuild of the live
/// documents (tests/differential_test.cc, DeltaLayersEqualFullRebuild).
///
/// Why per-layer passes compose exactly: documents are depth-2 subtrees
/// and min_depth >= 2, so every depth-d subtree, entity, SLCA and ELCA
/// lies within one document — hence within one layer — and the joined
/// rebuild processes subtrees in (layer, preorder) order, which is
/// precisely the order the sequential passes produce. Per-candidate
/// partial sums therefore accumulate in the same floating-point order;
/// candidate keys are global tokens, result types come from the merged
/// type lists (global PathIds == rebuild PathIds), and the background
/// model is the merged live collection — so scores, tie breaks and
/// result types all match the rebuild bit for bit.
///
/// Tombstones are honoured at the subtree level: a depth-d subtree inside
/// a dead document is skipped wholesale (its occurrences never surface),
/// which is exactly the granularity at which deletions remove content.
///
/// Restrictions (enforced at construction): min_depth >= 2 and no
/// entity_prior — both are prerequisites of the layer-locality argument.
/// Unlike XClean, the layered pass has no zero-allocation contract.
class LayeredXClean {
 public:
  LayeredXClean(std::shared_ptr<const LayerSet> layers,
                std::shared_ptr<const MergedStats> stats,
                XCleanOptions options);

  /// Mirrors XClean::SuggestWithScratch: all per-query state in `scratch`
  /// (re-zeroed automatically if it last served another algorithm), ranked
  /// suggestions into *out, optional cooperative cancellation and per-query
  /// degradation caps.
  void SuggestWithScratch(const Query& query, QueryScratch& scratch,
                          std::vector<Suggestion>* out, XCleanRunStats* stats,
                          CancelToken* cancel = nullptr,
                          const QueryTuning* tuning = nullptr) const;

  /// Scatter phase of scatter-gather serving: runs Algorithm 1 over layer
  /// `layer` ONLY and exports the resulting accumulators as partials keyed
  /// by global tokens, in canonical (token-id ascending) order. Because the
  /// merged statistics are global, a coordinator that adds the `sum`,
  /// `entity_count` and `lca_total` fields across layers and renormalises
  /// once recovers exactly the scores SuggestWithScratch would compute over
  /// the full layer set (same real-valued sum; floating-point grouping
  /// differs, see shard/coordinator.h). Honors the same cancellation and
  /// tuning contract as SuggestWithScratch; a cancelled pass exports
  /// whatever accumulated and sets stats->truncated.
  void CollectLayerPartials(const Query& query, size_t layer,
                            QueryScratch& scratch,
                            std::vector<PartialCandidate>* out,
                            XCleanRunStats* stats,
                            CancelToken* cancel = nullptr,
                            const QueryTuning* tuning = nullptr) const;

  const XCleanOptions& options() const { return options_; }
  const MergedStats& merged_stats() const { return *stats_; }
  size_t layer_count() const { return layers_->layers.size(); }

  /// Process-unique id (shared counter with XClean via
  /// QueryScratch::NextEpoch), so thread-local scratches detect hand-offs
  /// between base and layered algorithms and drop their memo tables.
  uint64_t epoch() const { return epoch_; }

 private:
  void BindScratch(QueryScratch& scratch) const;

  /// Variants of `keyword` in layer `li`'s vocabulary, memoized in the
  /// scratch under a layer-qualified key.
  const std::vector<Variant>& LookupVariants(QueryScratch& scratch, size_t li,
                                             const std::string& keyword) const;

  double ProbInEntity(size_t li, TokenId global_token, uint64_t count,
                      NodeId entity) const {
    return stats_->lm(li).ProbInEntity(global_token, count, entity);
  }

  double EditWeight(uint32_t distance) const {
    return distance < edit_weight_.size() ? edit_weight_[distance]
                                          : error_model_.Weight(distance);
  }

  /// One full anchor-loop pass over layer `li` (Algorithm 1 lines 4-16),
  /// folding into the cross-layer accumulators in `scratch`.
  void ProcessLayer(size_t li, size_t num_slots, QueryScratch& scratch,
                    const Query& query, uint32_t eff_max_ed,
                    XCleanRunStats& run_stats, CancelToken* cancel) const;

  void ScoreNodeTypeEntities(size_t li, QueryScratch& scratch,
                             size_t num_slots,
                             const ResultTypeScorer::Choice& choice,
                             double error_weight, XCleanRunStats& stats,
                             CancelToken* cancel) const;

  void ScoreLcaEntities(size_t li, QueryScratch& scratch, size_t num_slots,
                        double error_weight, XCleanRunStats& stats,
                        CancelToken* cancel) const;

  std::shared_ptr<const LayerSet> layers_;
  std::shared_ptr<const MergedStats> stats_;
  XCleanOptions options_;
  /// One generator per layer (FastSS is per-index); the union of per-layer
  /// variant sets equals the rebuild's variant set — edit distance is a
  /// string property, and every rebuild token lives in some layer.
  std::vector<std::unique_ptr<VariantGenerator>> variant_gen_;
  ErrorModel error_model_;
  std::vector<double> edit_weight_;
  uint64_t epoch_;
};

}  // namespace xclean::delta

#endif  // XCLEAN_DELTA_LAYERED_XCLEAN_H_
