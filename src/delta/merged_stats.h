#ifndef XCLEAN_DELTA_MERGED_STATS_H_
#define XCLEAN_DELTA_MERGED_STATS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/xclean.h"
#include "delta/layer.h"
#include "lm/lm_stats_cache.h"
#include "lm/result_type.h"

namespace xclean::delta {

/// Cross-layer statistics that make the layered read path score exactly
/// like a from-scratch rebuild over the live documents (see
/// tests/differential_test.cc, DeltaLayersEqualFullRebuild):
///
///  - a global vocabulary: base-layer ids kept verbatim, delta-only tokens
///    appended, so candidate keys / accumulator entries / suggestion words
///    are layer-independent;
///  - a global label-path table interned in the exact order a rebuild over
///    JoinLiveTree() would intern paths (first live occurrence, layer
///    order), so PathIds — and with them FindResultType's smaller-PathId
///    tie break — match the rebuild bit for bit;
///  - live collection frequencies (layer totals minus tombstone losses,
///    exact integer arithmetic) folded into the rebuild's smoothing-mass
///    expression mu * (cf / total), shared by one LmStatsCache per layer;
///  - merged type lists per global token: per-layer containment counts
///    minus tombstone losses, mapped to global paths and summed, sorted by
///    PathId. Root-path entries are intentionally stale (summed across
///    layers, dead docs included) — the root's depth 1 sits below every
///    admissible min_depth, so FindResultType skips them before reading
///    the frequency.
///
/// Instances are immutable and describe one LayerSet snapshot; any layer
/// change (add, tombstone, compaction) builds a fresh one.
class MergedStats {
 public:
  static std::shared_ptr<const MergedStats> Build(const LayerSet& set,
                                                  const XCleanOptions& options);

  size_t layer_count() const { return local_to_global_.size(); }

  // --- Global vocabulary -------------------------------------------------
  size_t vocab_size() const { return vocab_size_; }
  /// Base-layer ids map to themselves; delta ids through the layer table.
  TokenId ToGlobalToken(size_t layer, TokenId local) const {
    const std::vector<TokenId>& m = local_to_global_[layer];
    return m.empty() ? local : m[local];
  }
  const std::string& token(TokenId global) const {
    return global < base_vocab_size_
               ? base_->vocabulary().token(global)
               : extra_tokens_[global - base_vocab_size_];
  }

  // --- Global path table (ids == rebuild ids) ----------------------------
  size_t path_count() const { return path_depths_.size(); }
  uint32_t path_depth(PathId p) const { return path_depths_[p]; }
  /// Live nodes of the path across all layers — the N of Eq. (8).
  uint32_t path_node_count(PathId p) const { return path_node_counts_[p]; }
  PathId ToGlobalPath(size_t layer, PathId local) const {
    return path_to_global_[layer][local];
  }
  /// "/a/b/c" rendering (diagnostics).
  std::string PathString(PathId p) const;

  // --- Language model ----------------------------------------------------
  uint64_t total_live_tokens() const { return total_live_; }
  /// mu * P(w|B) over the live collection, indexed by global token.
  double smoothing_mass(TokenId global) const {
    return smoothing_mass_[global];
  }
  /// Per-layer Dirichlet cache: global smoothing masses, layer-local
  /// entity denominators.
  const LmStatsCache& lm(size_t layer) const { return *lm_[layer]; }

  // --- Merged type lists + result-type inference -------------------------
  std::span<const PathFreq> type_list(TokenId global) const {
    return std::span<const PathFreq>(
        type_entries_.data() + type_offsets_[global],
        type_offsets_[global + 1] - type_offsets_[global]);
  }
  /// FindResultType over the merged lists; mirrors
  /// ResultTypeScorer::FindResultType operation for operation so the chosen
  /// path, its utility and the tie break match the rebuild exactly.
  ResultTypeScorer::Choice FindResultType(const std::vector<TokenId>& candidate,
                                          uint32_t min_depth) const;

 private:
  MergedStats() = default;

  std::shared_ptr<const XmlIndex> base_;  // keeps base vocab strings alive
  size_t base_vocab_size_ = 0;
  size_t vocab_size_ = 0;
  double reduction_ = 0.8;
  uint64_t total_live_ = 0;

  std::vector<std::vector<TokenId>> local_to_global_;  // [layer][local]
  std::vector<std::string> extra_tokens_;              // global - base ids

  std::vector<std::vector<PathId>> path_to_global_;  // [layer][local]
  std::vector<PathId> path_parents_;
  std::vector<LabelId> path_labels_;  // indices into path_label_names_
  std::vector<std::string> path_label_names_;
  std::vector<uint32_t> path_depths_;
  std::vector<uint32_t> path_node_counts_;

  std::vector<double> smoothing_mass_;  // indexed by global token
  std::vector<std::unique_ptr<LmStatsCache>> lm_;

  std::vector<uint32_t> type_offsets_;  // vocab_size_ + 1 entries
  std::vector<PathFreq> type_entries_;
};

}  // namespace xclean::delta

#endif  // XCLEAN_DELTA_MERGED_STATS_H_
