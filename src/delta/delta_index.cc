#include "delta/delta_index.h"

#include <utility>

#include "common/check.h"
#include "delta/layer.h"

namespace xclean::delta {

DeltaIndex::DeltaIndex(std::string root_label, IndexOptions options)
    : root_label_(std::move(root_label)), options_(options) {}

Result<size_t> DeltaIndex::Add(std::string_view document_xml) {
  Result<XmlTree> tree = ParseXmlString(document_xml);
  if (!tree.ok()) return tree.status();
  const size_t ordinal = docs_.size();
  docs_.push_back(std::make_unique<XmlTree>(std::move(tree).value()));
  live_docs_ += 1;
  Status s = Rebuild();
  if (!s.ok()) {
    docs_.back().reset();
    live_docs_ -= 1;
    return s;
  }
  return ordinal;
}

Status DeltaIndex::Remove(size_t ordinal) {
  if (ordinal >= docs_.size()) {
    return Status::NotFound("no such memtable ordinal");
  }
  if (docs_[ordinal] == nullptr) return Status::Ok();
  docs_[ordinal].reset();
  live_docs_ -= 1;
  return Rebuild();
}

Status DeltaIndex::ReplayInto(XmlTreeBuilder& builder) const {
  for (const std::unique_ptr<XmlTree>& doc : docs_) {
    if (doc == nullptr) continue;
    Status s = ReplaySubtree(*doc, doc->root(), builder);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status DeltaIndex::Rebuild() {
  if (live_docs_ == 0) {
    built_ = BuiltLayer{};
    built_.doc_nodes.assign(docs_.size(), kInvalidNode);
    return Status::Ok();
  }
  XmlTreeBuilder builder;
  Status s = builder.BeginElement(root_label_);
  if (!s.ok()) return s;
  s = ReplayInto(builder);
  if (!s.ok()) return s;
  s = builder.EndElement();
  if (!s.ok()) return s;
  Result<XmlTree> tree = std::move(builder).Finish();
  if (!tree.ok()) return tree.status();
  BuiltLayer next;
  next.index = XmlIndex::Build(std::move(tree).value(), options_);
  // Documents are the root's children, in the order ReplayInto emitted the
  // live ordinals.
  next.doc_nodes.assign(docs_.size(), kInvalidNode);
  const XmlTree& t = next.index->tree();
  NodeId doc = t.FirstChild(t.root());
  for (size_t i = 0; i < docs_.size(); ++i) {
    if (docs_[i] == nullptr) continue;
    XCLEAN_CHECK(doc != kInvalidNode);
    next.doc_nodes[i] = doc;
    doc = t.NextSibling(doc);
  }
  XCLEAN_CHECK(doc == kInvalidNode);
  built_ = std::move(next);
  return Status::Ok();
}

}  // namespace xclean::delta
