#include "delta/merged_stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace xclean::delta {

std::shared_ptr<const MergedStats> MergedStats::Build(
    const LayerSet& set, const XCleanOptions& options) {
  XCLEAN_CHECK(!set.layers.empty());
  std::shared_ptr<MergedStats> out(new MergedStats());
  const size_t num_layers = set.layers.size();
  out->base_ = set.layers[0].index;
  out->base_vocab_size_ = out->base_->vocabulary().size();
  out->reduction_ = options.reduction;

  // --- Global vocabulary: base ids verbatim, delta-only tokens appended
  // in (layer, local id) order. The rebuild interns tokens in a different
  // (first-seen text) order; that is immaterial — scores never read token
  // ids and the final ranking compares token *strings*.
  const Vocabulary& base_vocab = out->base_->vocabulary();
  out->local_to_global_.resize(num_layers);
  std::unordered_map<std::string, TokenId> extra_ids;
  for (size_t li = 1; li < num_layers; ++li) {
    const Vocabulary& v = set.layers[li].index->vocabulary();
    std::vector<TokenId>& m = out->local_to_global_[li];
    m.resize(v.size());
    for (TokenId t = 0; t < v.size(); ++t) {
      const std::string& w = v.token(t);
      TokenId g = base_vocab.Find(w);
      if (g == kInvalidToken) {
        auto [it, inserted] = extra_ids.emplace(
            w, static_cast<TokenId>(out->base_vocab_size_ +
                                    out->extra_tokens_.size()));
        if (inserted) out->extra_tokens_.push_back(w);
        g = it->second;
      }
      m[t] = g;
    }
  }
  out->vocab_size_ = out->base_vocab_size_ + out->extra_tokens_.size();

  // --- Global path table: replay the path-interning order of a rebuild
  // over JoinLiveTree() — root first, then every live node in (layer,
  // preorder) order — so global PathIds coincide with the rebuild's.
  std::unordered_map<std::string, LabelId> label_ids;
  std::unordered_map<uint64_t, PathId> path_ids;  // (parent << 32) | label
  auto intern_label = [&](const std::string& name) -> LabelId {
    auto [it, inserted] = label_ids.emplace(
        name, static_cast<LabelId>(out->path_label_names_.size()));
    if (inserted) out->path_label_names_.push_back(name);
    return it->second;
  };
  auto intern_path = [&](PathId parent, const std::string& name) -> PathId {
    const LabelId label = intern_label(name);
    const uint64_t key = (static_cast<uint64_t>(parent) << 32) | label;
    auto [it, inserted] =
        path_ids.emplace(key, static_cast<PathId>(out->path_depths_.size()));
    if (inserted) {
      out->path_parents_.push_back(parent);
      out->path_labels_.push_back(label);
      out->path_depths_.push_back(
          parent == XmlTree::kInvalidPath ? 1 : out->path_depths_[parent] + 1);
      out->path_node_counts_.push_back(0);
    }
    return it->second;
  };

  out->path_to_global_.resize(num_layers);
  for (size_t li = 0; li < num_layers; ++li) {
    const Layer& layer = set.layers[li];
    const XmlTree& tree = layer.index->tree();
    out->path_to_global_[li].assign(tree.path_count(), XmlTree::kInvalidPath);
    std::vector<PathId> node_gpath(tree.size(), XmlTree::kInvalidPath);
    const std::vector<Tombstone>& tombs = layer.tombstones;
    size_t ti = 0;
    for (NodeId n = 0; n < tree.size(); ++n) {
      while (ti < tombs.size() && tombs[ti].end < n) ++ti;
      if (ti < tombs.size() && tombs[ti].begin <= n && n <= tombs[ti].end) {
        n = tombs[ti].end;  // skip the dead document wholesale
        continue;
      }
      const PathId g =
          n == tree.root()
              ? intern_path(XmlTree::kInvalidPath, tree.label(n))
              : intern_path(node_gpath[tree.parent(n)], tree.label(n));
      node_gpath[n] = g;
      out->path_to_global_[li][tree.path_id(n)] = g;
      // Later layers' roots fold into the one joined root; counting them
      // again would inflate the N of Eq. (8) for the root path.
      if (n != tree.root() || li == 0) out->path_node_counts_[g] += 1;
    }
  }

  // --- Live background model: layer totals minus tombstone losses, folded
  // into the exact smoothing-mass expression of the single-index cache,
  // mu * (cf / total).
  std::vector<uint64_t> cf_live(out->vocab_size_, 0);
  uint64_t total_live = 0;
  for (size_t li = 0; li < num_layers; ++li) {
    const Layer& layer = set.layers[li];
    const XmlIndex& idx = *layer.index;
    const size_t vocab = idx.vocabulary().size();
    for (TokenId t = 0; t < vocab; ++t) {
      cf_live[out->ToGlobalToken(li, t)] += idx.collection_freq(t);
    }
    total_live += idx.total_tokens();
    for (const Tombstone& tomb : layer.tombstones) {
      total_live -= tomb.stats.total_tokens;
      for (const auto& [t, c] : tomb.stats.cf) {
        cf_live[out->ToGlobalToken(li, t)] -= c;
      }
    }
  }
  out->total_live_ = total_live;
  out->smoothing_mass_.resize(out->vocab_size_);
  for (size_t g = 0; g < out->vocab_size_; ++g) {
    out->smoothing_mass_[g] =
        options.mu * (static_cast<double>(cf_live[g]) /
                      static_cast<double>(total_live));
  }
  out->lm_.reserve(num_layers);
  for (size_t li = 0; li < num_layers; ++li) {
    out->lm_.push_back(std::make_unique<LmStatsCache>(
        *set.layers[li].index, options.mu, out->smoothing_mass_));
  }

  // --- Merged type lists: per-layer containment counts minus tombstone
  // losses (exact for depth >= 2 paths: a dead doc is a whole depth-2
  // subtree, so a live node's containment set is untouched), mapped to
  // global paths and summed across layers.
  std::vector<std::pair<uint64_t, uint64_t>> triples;  // ((g<<32)|path, f)
  for (size_t li = 0; li < num_layers; ++li) {
    const Layer& layer = set.layers[li];
    const XmlIndex& idx = *layer.index;
    std::unordered_map<uint64_t, uint32_t> dead;  // (token << 32) | path
    for (const Tombstone& tomb : layer.tombstones) {
      for (const DeadDocStats::TypeFreq& tf : tomb.stats.type_freqs) {
        dead[(static_cast<uint64_t>(tf.token) << 32) | tf.path] += tf.freq;
      }
    }
    const size_t vocab = idx.vocabulary().size();
    for (TokenId t = 0; t < vocab; ++t) {
      const TokenId g = out->ToGlobalToken(li, t);
      for (const PathFreq& pf : idx.type_index().list(t)) {
        uint32_t f = pf.freq;
        if (!dead.empty()) {
          auto it = dead.find((static_cast<uint64_t>(t) << 32) | pf.path);
          if (it != dead.end()) f -= it->second;
        }
        if (f == 0) continue;
        const PathId gp = out->path_to_global_[li][pf.path];
        XCLEAN_CHECK(gp != XmlTree::kInvalidPath);
        triples.emplace_back((static_cast<uint64_t>(g) << 32) | gp, f);
      }
    }
  }
  std::sort(triples.begin(), triples.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out->type_offsets_.assign(out->vocab_size_ + 1, 0);
  out->type_entries_.reserve(triples.size());
  for (size_t i = 0; i < triples.size();) {
    const uint64_t key = triples[i].first;
    uint64_t freq = 0;
    for (; i < triples.size() && triples[i].first == key; ++i) {
      freq += triples[i].second;
    }
    out->type_entries_.push_back(PathFreq{static_cast<PathId>(key),
                                          static_cast<uint32_t>(freq)});
    out->type_offsets_[static_cast<TokenId>(key >> 32) + 1] += 1;
  }
  for (size_t g = 0; g < out->vocab_size_; ++g) {
    out->type_offsets_[g + 1] += out->type_offsets_[g];
  }
  return out;
}

std::string MergedStats::PathString(PathId p) const {
  std::vector<LabelId> labels;
  for (PathId cur = p; cur != XmlTree::kInvalidPath; cur = path_parents_[cur]) {
    labels.push_back(path_labels_[cur]);
  }
  std::string s;
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    s += '/';
    s += path_label_names_[*it];
  }
  return s;
}

ResultTypeScorer::Choice MergedStats::FindResultType(
    const std::vector<TokenId>& candidate, uint32_t min_depth) const {
  XCLEAN_CHECK(!candidate.empty());
  const size_t l = candidate.size();
  std::vector<std::span<const PathFreq>> lists(l);
  std::vector<size_t> pos(l, 0);
  for (size_t i = 0; i < l; ++i) {
    lists[i] = type_list(candidate[i]);
    if (lists[i].empty()) return ResultTypeScorer::Choice{};
  }

  ResultTypeScorer::Choice best;
  // Multi-way sorted intersection driven by the first list — step for step
  // the loop of ResultTypeScorer::FindResultType, over merged lists whose
  // depth >= min_depth entries match the rebuild's exactly.
  for (;;) {
    if (pos[0] >= lists[0].size()) break;
    PathId path = lists[0][pos[0]].path;
    double product = static_cast<double>(lists[0][pos[0]].freq);
    bool all = true;
    for (size_t i = 1; i < l; ++i) {
      while (pos[i] < lists[i].size() && lists[i][pos[i]].path < path) {
        ++pos[i];
      }
      if (pos[i] >= lists[i].size()) return best;
      if (lists[i][pos[i]].path != path) {
        all = false;
        break;
      }
      product *= static_cast<double>(lists[i][pos[i]].freq);
    }
    if (all && path_depths_[path] >= min_depth) {
      double utility =
          std::log1p(product) * std::pow(reduction_, path_depths_[path]);
      if (utility > best.utility) {
        best = ResultTypeScorer::Choice{path, utility, product};
      }
    }
    ++pos[0];
  }
  return best;
}

}  // namespace xclean::delta
