#ifndef XCLEAN_DELTA_LAYER_H_
#define XCLEAN_DELTA_LAYER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "index/xml_index.h"

namespace xclean::delta {

/// Exact collection statistics of one tombstoned document, computed at
/// deletion time by re-walking its subtree in the host layer. Subtracting
/// these from the layer totals reproduces, integer for integer, the counts
/// a from-scratch rebuild over the remaining live documents would produce —
/// the merged background model and the merged type lists stay exact rather
/// than approximate (the layered-equals-rebuild oracle in
/// tests/differential_test.cc depends on this).
struct DeadDocStats {
  /// One (token, path) containment loss: the number of nodes with label
  /// path `path` inside the dead document whose subtree contains `token`.
  struct TypeFreq {
    TokenId token;
    PathId path;
    uint32_t freq;
  };

  /// Total token occurrences in the dead subtree.
  uint64_t total_tokens = 0;
  /// Collection-frequency losses, sorted by token.
  std::vector<std::pair<TokenId, uint64_t>> cf;
  /// Containment losses, sorted by (token, path). The host layer's *root*
  /// path is deliberately absent: merged root-path entries are stale anyway
  /// (each layer contributes its own root containment count) and the root's
  /// depth 1 sits below every admissible min_depth, so FindResultType never
  /// reads them.
  std::vector<TypeFreq> type_freqs;
};

/// One tombstoned document: the preorder range of its subtree in the host
/// layer, plus the statistics it removes.
struct Tombstone {
  NodeId begin = kInvalidNode;  // the document's root node
  NodeId end = kInvalidNode;    // subtree_end(begin), inclusive
  DeadDocStats stats;
};

/// One immutable index generation plus the tombstones logged against it.
/// Documents are depth-2 subtrees (children of the layer root), so a
/// tombstone range always covers a whole document and live nodes never have
/// dead descendants — which is what keeps per-layer subtree token counts
/// (the entity denominators) valid without any rewriting.
struct Layer {
  std::shared_ptr<const XmlIndex> index;
  /// Sorted by begin; ranges are disjoint.
  std::vector<Tombstone> tombstones;

  /// True if node n lies inside some tombstoned document.
  bool IsDead(NodeId n) const;
};

/// An ordered stack of layers: layer 0 is the base generation, later layers
/// are frozen deltas, the last may be the just-built memtable. The logical
/// collection is the concatenation, in layer order, of every live document —
/// exactly the tree JoinLiveTree() materializes.
struct LayerSet {
  std::vector<Layer> layers;
};

/// Statistics removed by tombstoning `doc` (a depth-2 document root) in
/// `index`: walks the subtree, tokenizes every text node with the index's
/// own tokenizer and attributes containment along the ancestor chain up to
/// and including the document root (the layer root is excluded, see
/// DeadDocStats::type_freqs).
DeadDocStats ComputeDeadDocStats(const XmlIndex& index, NodeId doc);

/// Replays the subtree rooted at n into `builder` (labels, text,
/// children — depth-first, preserving preorder).
Status ReplaySubtree(const XmlTree& tree, NodeId n, XmlTreeBuilder& builder);

/// Materializes the layer set's live collection as one tree: the base
/// layer's root label (and any root text), then every live document of
/// every layer in layer order. Compaction rebuilds the next base generation
/// from this tree, and the differential oracle rebuilds it from scratch to
/// prove the layered read path equivalent.
Result<XmlTree> JoinLiveTree(const LayerSet& set);

}  // namespace xclean::delta

#endif  // XCLEAN_DELTA_LAYER_H_
