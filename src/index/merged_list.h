#ifndef XCLEAN_INDEX_MERGED_LIST_H_
#define XCLEAN_INDEX_MERGED_LIST_H_

#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "index/postings.h"
#include "index/vocabulary.h"

namespace xclean {

/// The paper's MergedList abstraction (Sec. V-C): the inverted lists of all
/// variants of one query keyword, organized as if physically merged into a
/// single list sorted in document order. Implemented as a min-heap of the
/// member cursors' heads; skip_to performs a galloping skip inside member
/// lists that are behind the target.
///
/// Each head carries the variant token it came from, plus the member index
/// (the variant's rank in insertion order), so the caller can attribute
/// occurrences to candidate-query slots without a lookup.
///
/// Instances are reusable: Reset() + AddMember()* + Finish() rebuilds the
/// list over new cursors while keeping the member and heap storage — the
/// QueryScratch arena relies on this to keep steady-state suggestion
/// allocation-free.
class MergedList {
 public:
  struct Member {
    TokenId token;
    PostingCursor cursor;
  };

  struct Head {
    NodeId node;
    uint32_t tf;
    TokenId token;
    /// Index of the member list the head came from (AddMember order).
    uint32_t member;
  };

  /// Per-list counters describing how SkipTo() advanced the heap; the
  /// crossover between the lazy and rebuild strategies is tuned against
  /// BM_MergedListSkipTuning in bench/bench_micro.cc.
  struct SkipStats {
    /// SkipTo calls that had to move the head.
    uint64_t moving_calls = 0;
    /// Members advanced one heap-replace at a time (lazy path).
    uint64_t lazy_advances = 0;
    /// Wholesale heap rebuilds (gallop every member, then make_heap).
    uint64_t rebuilds = 0;
  };

  /// Empty list; populate with Reset()/AddMember()/Finish().
  MergedList() = default;

  explicit MergedList(std::vector<Member> members);

  /// Drops all members but keeps their storage.
  void Reset();

  /// Adds a member list. Only valid between Reset() and Finish().
  void AddMember(TokenId token, PostingCursor cursor);

  /// Heapifies the members added since Reset(); the list is usable after.
  void Finish();

  /// Head (first element) of the merged list, or nullptr when exhausted.
  /// Pointer is invalidated by Next()/SkipTo().
  const Head* cur_pos() const { return exhausted_ ? nullptr : &head_; }

  /// Returns the head and removes it from the list. Requires cur_pos() to
  /// be non-null.
  Head Next();

  /// Discards all entries with node < target and returns the new head (or
  /// nullptr). Ties across member lists are surfaced in ascending
  /// (node, token) order for determinism.
  const Head* SkipTo(NodeId target);

  /// SkipTo that charges its advancement work (lazy advances, rebuild
  /// gallops) to `cancel`. The skip always completes — it is O(m log m)
  /// bounded — so the heap invariant holds either way; the caller checks
  /// cancel->cancelled() before starting the next unbounded phase.
  const Head* SkipTo(NodeId target, CancelToken* cancel);

  /// Pops and visits every entry with node <= limit, calling
  /// fn(member, node, tf) for each. Equivalent to draining with Next(),
  /// but batched per member: a member whose head is within the limit is
  /// popped once and its cursor walked linearly past the limit — one heap
  /// pop/push per member instead of per posting. Entries are surfaced in
  /// per-member node order, NOT global (node, token) order; use Next()
  /// when global order matters (per-rank occurrence bucketing does not).
  ///
  /// When `cancel` is set, one posting is charged per visited entry; on
  /// cancellation the drain stops after the current posting with the heap
  /// invariant restored (the remaining entries stay in the list), so a
  /// later SkipTo/DrainUpTo on the same list is still valid.
  template <typename Fn>
  void DrainUpTo(NodeId limit, Fn&& fn, CancelToken* cancel = nullptr) {
    while (!exhausted_ && head_.node <= limit) {
      const uint32_t member = heap_.front().member;
      PostingCursor& cursor = members_[member].cursor;
      bool stop = false;
      do {
        const Posting& p = cursor.Get();
        fn(member, p.node, p.tf);
        cursor.Next();
        if (cancel != nullptr && cancel->ChargePostings(1)) {
          stop = true;
          break;
        }
      } while (!cursor.AtEnd() && cursor.Get().node <= limit);
      PopTop();
      PushMember(member);
      RefreshHead();
      if (stop) return;
    }
  }

  bool empty() const { return exhausted_; }
  size_t member_count() const { return members_.size(); }
  const SkipStats& skip_stats() const { return skip_stats_; }

 private:
  struct HeapEntry {
    NodeId node;
    TokenId token;
    uint32_t member;
  };

  // Min-heap ordered by (node, token).
  static bool HeapAfter(const HeapEntry& a, const HeapEntry& b) {
    return a.node > b.node || (a.node == b.node && a.token > b.token);
  }

  void PushMember(uint32_t member);
  void PopTop();
  void RefreshHead();
  void RebuildAt(NodeId target);

  std::vector<Member> members_;
  std::vector<HeapEntry> heap_;
  Head head_{};
  bool exhausted_ = true;
  SkipStats skip_stats_;
};

}  // namespace xclean

#endif  // XCLEAN_INDEX_MERGED_LIST_H_
