#ifndef XCLEAN_INDEX_MERGED_LIST_H_
#define XCLEAN_INDEX_MERGED_LIST_H_

#include <cstdint>
#include <vector>

#include "index/postings.h"
#include "index/vocabulary.h"

namespace xclean {

/// The paper's MergedList abstraction (Sec. V-C): the inverted lists of all
/// variants of one query keyword, organized as if physically merged into a
/// single list sorted in document order. Implemented as a min-heap of the
/// member cursors' heads; skip_to performs a galloping skip inside every
/// member list and rebuilds the heap.
///
/// Each head carries the variant token it came from so the caller can
/// attribute occurrences to candidate-query slots.
class MergedList {
 public:
  struct Member {
    TokenId token;
    PostingCursor cursor;
  };

  struct Head {
    NodeId node;
    uint32_t tf;
    TokenId token;
  };

  explicit MergedList(std::vector<Member> members);

  /// Head (first element) of the merged list, or nullptr when exhausted.
  /// Pointer is invalidated by Next()/SkipTo().
  const Head* cur_pos() const { return exhausted_ ? nullptr : &head_; }

  /// Returns the head and removes it from the list. Requires cur_pos() to
  /// be non-null.
  Head Next();

  /// Discards all entries with node < target and returns the new head (or
  /// nullptr). Ties across member lists are surfaced in ascending
  /// (node, token) order for determinism.
  const Head* SkipTo(NodeId target);

  bool empty() const { return exhausted_; }

 private:
  struct HeapEntry {
    NodeId node;
    TokenId token;
    uint32_t member;
  };

  // Min-heap ordered by (node, token).
  static bool HeapAfter(const HeapEntry& a, const HeapEntry& b) {
    return a.node > b.node || (a.node == b.node && a.token > b.token);
  }

  void PushMember(uint32_t member);
  void PopTop();
  void RefreshHead();

  std::vector<Member> members_;
  std::vector<HeapEntry> heap_;
  Head head_{};
  bool exhausted_ = true;
};

}  // namespace xclean

#endif  // XCLEAN_INDEX_MERGED_LIST_H_
