#include "index/xml_index.h"

#include <utility>

#include "index/index_builder.h"

namespace xclean {

std::unique_ptr<XmlIndex> XmlIndex::Build(XmlTree tree, IndexOptions options) {
  return IndexBuilder::Build(std::move(tree), options);
}

uint64_t XmlIndex::ApproxMemoryBytes() const {
  uint64_t bytes = tree_.ApproxMemoryBytes() + fastss_.ApproxMemoryBytes();
  for (const PostingList& list : inverted_lists_) {
    bytes += sizeof(PostingList) + list.size() * sizeof(Posting);
  }
  for (TokenId t = 0; t < type_index_.token_count(); ++t) {
    bytes += type_index_.list(t).size() * sizeof(PathFreq);
  }
  for (const std::string& s : vocabulary_.tokens()) {
    // Token stored once in the vector and once as a map key.
    bytes += 2 * (sizeof(std::string) + s.size()) + sizeof(TokenId);
  }
  bytes += cf_.capacity() * sizeof(uint64_t) +
           df_.capacity() * sizeof(uint32_t) +
           node_tokens_.capacity() * sizeof(uint32_t) +
           subtree_tokens_.capacity() * sizeof(uint64_t);
  return bytes;
}

IndexStats XmlIndex::stats() const {
  IndexStats s;
  s.node_count = tree_.size();
  s.text_node_count = text_node_count_;
  s.token_occurrences = total_tokens_;
  s.vocabulary_size = vocabulary_.size();
  s.path_count = tree_.path_count();
  s.max_depth = tree_.max_depth();
  s.avg_depth = tree_.avg_depth();
  s.xml_bytes = source_bytes_;
  return s;
}

}  // namespace xclean
