#include "index/xml_index.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace xclean {

namespace {

/// Builds the type lists for one token: counts, per label path, the number
/// of *distinct* nodes of that path whose subtree contains the token.
///
/// Postings arrive in document order, so consecutive postings share the
/// ancestor chain up to their Dewey common prefix: for posting node n with
/// common-prefix depth L against the previous posting, exactly the
/// ancestors at depths L+1..depth(n) are newly seen and must be counted
/// (the shallower ones were counted with an earlier posting).
std::vector<PathFreq> BuildTypeList(const XmlTree& tree,
                                    const PostingList& postings) {
  std::unordered_map<PathId, uint32_t> freq;
  NodeId prev = kInvalidNode;
  for (const Posting& p : postings) {
    uint32_t new_from_depth = 1;
    if (prev != kInvalidNode) {
      new_from_depth = static_cast<uint32_t>(
                           DeweyCommonPrefix(tree.dewey(prev), tree.dewey(p.node))) +
                       1;
    }
    NodeId cur = p.node;
    std::vector<NodeId> chain;
    while (tree.depth(cur) >= new_from_depth) {
      chain.push_back(cur);
      if (tree.depth(cur) == 1) break;
      cur = tree.parent(cur);
    }
    for (NodeId a : chain) ++freq[tree.path_id(a)];
    prev = p.node;
  }
  std::vector<PathFreq> out;
  out.reserve(freq.size());
  for (const auto& [path, f] : freq) out.push_back(PathFreq{path, f});
  std::sort(out.begin(), out.end(),
            [](const PathFreq& a, const PathFreq& b) { return a.path < b.path; });
  return out;
}

}  // namespace

std::unique_ptr<XmlIndex> XmlIndex::Build(XmlTree tree, IndexOptions options) {
  std::unique_ptr<XmlIndex> index(new XmlIndex(std::move(tree), options));
  const XmlTree& t = index->tree_;
  const NodeId n = t.size();

  index->node_tokens_.assign(n, 0);
  index->subtree_tokens_.assign(n, 0);

  // Pass 1: tokenize every text-bearing node in preorder; postings appended
  // per token come out sorted by node id for free.
  std::vector<std::vector<Posting>> lists;
  std::unordered_map<TokenId, uint32_t> node_tf;
  for (NodeId node = 0; node < n; ++node) {
    if (!t.has_text(node)) continue;
    std::vector<std::string> tokens = index->tokenizer_.Tokenize(t.text(node));
    if (tokens.empty()) continue;
    ++index->text_node_count_;
    node_tf.clear();
    for (const std::string& token : tokens) {
      TokenId id = index->vocabulary_.Intern(token);
      ++node_tf[id];
    }
    index->node_tokens_[node] = static_cast<uint32_t>(tokens.size());
    index->total_tokens_ += tokens.size();
    if (index->vocabulary_.size() > lists.size()) {
      lists.resize(index->vocabulary_.size());
      index->cf_.resize(index->vocabulary_.size(), 0);
      index->df_.resize(index->vocabulary_.size(), 0);
    }
    for (const auto& [id, tf] : node_tf) {
      lists[id].push_back(Posting{node, tf});
      index->cf_[id] += tf;
      index->df_[id] += 1;
    }
  }

  // Postings per token were appended in preorder node order except that
  // node_tf (an unordered_map) emits one entry per (node, token): each list
  // receives at most one posting per node, in increasing node order. Verify
  // the invariant cheaply, then freeze.
  index->inverted_lists_.reserve(lists.size());
  for (auto& list : lists) {
    for (size_t i = 1; i < list.size(); ++i) {
      XCLEAN_CHECK(list[i - 1].node < list[i].node);
    }
    index->inverted_lists_.emplace_back(std::move(list));
  }

  // Pass 2: subtree token counts by reverse-preorder accumulation.
  for (NodeId node = n; node-- > 0;) {
    index->subtree_tokens_[node] += index->node_tokens_[node];
    if (node != t.root()) {
      index->subtree_tokens_[t.parent(node)] += index->subtree_tokens_[node];
    }
  }

  // Pass 3: type lists (token -> (path, f_w^p)).
  index->type_index_.lists_.resize(index->inverted_lists_.size());
  for (TokenId token = 0; token < index->inverted_lists_.size(); ++token) {
    index->type_index_.lists_[token] =
        BuildTypeList(t, index->inverted_lists_[token]);
  }

  // Pass 4: FastSS variant index over the vocabulary.
  FastSsIndex::Options fs_options;
  fs_options.max_ed = options.fastss_max_ed;
  fs_options.partition_min_length = options.fastss_partition_min_length;
  FastSsIndex fs(fs_options);
  fs.Build(index->vocabulary_.tokens());
  index->fastss_ = std::move(fs);

  return index;
}

uint64_t XmlIndex::ApproxMemoryBytes() const {
  uint64_t bytes = tree_.ApproxMemoryBytes() + fastss_.ApproxMemoryBytes();
  for (const PostingList& list : inverted_lists_) {
    bytes += sizeof(PostingList) + list.size() * sizeof(Posting);
  }
  for (TokenId t = 0; t < type_index_.token_count(); ++t) {
    bytes += type_index_.list(t).size() * sizeof(PathFreq);
  }
  for (const std::string& s : vocabulary_.tokens()) {
    // Token stored once in the vector and once as a map key.
    bytes += 2 * (sizeof(std::string) + s.size()) + sizeof(TokenId);
  }
  bytes += cf_.capacity() * sizeof(uint64_t) +
           df_.capacity() * sizeof(uint32_t) +
           node_tokens_.capacity() * sizeof(uint32_t) +
           subtree_tokens_.capacity() * sizeof(uint64_t);
  return bytes;
}

IndexStats XmlIndex::stats() const {
  IndexStats s;
  s.node_count = tree_.size();
  s.text_node_count = text_node_count_;
  s.token_occurrences = total_tokens_;
  s.vocabulary_size = vocabulary_.size();
  s.path_count = tree_.path_count();
  s.max_depth = tree_.max_depth();
  s.avg_depth = tree_.avg_depth();
  s.xml_bytes = source_bytes_;
  return s;
}

}  // namespace xclean
