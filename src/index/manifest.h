#ifndef XCLEAN_INDEX_MANIFEST_H_
#define XCLEAN_INDEX_MANIFEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/durable_file.h"
#include "common/status.h"
#include "index/index_io.h"
#include "index/xml_index.h"

namespace xclean {

/// Durable snapshot lifecycle for a directory of index snapshots.
///
/// A snapshot directory contains numbered snapshot files plus one
/// append-only journal, `MANIFEST`:
///
///   dir/
///     MANIFEST            append-only recovery journal
///     snap-000001.idx     generation 1 (retired, about to be deleted)
///     snap-000002.idx     generation 2 (live)
///
/// Each journal record is one line, `<body> #<fnv64 of body, hex>`:
///
///   version 1
///   publish <generation> <file> <bytes> <fnv64-of-file, hex>
///   retire <generation>
///
/// The per-record checksum makes every torn or corrupted tail detectable:
/// replay stops at the first record that fails its checksum and discards
/// it and everything after it (append-only means nothing after a torn
/// record can be trusted). Because a PUBLISH record is appended only
/// *after* its snapshot file is fully written, renamed into place and
/// (optionally) fsync'd, replay never references a file that was not
/// completely published.
///
/// The recovery invariant, enforced by tests/crash_recovery_test.cc under
/// randomized torn-write and process-kill schedules: RecoverLatestSnapshot
/// always yields a checksum-valid index equal to the newest published
/// generation or a previous one — never a mix of two generations, never an
/// unloadable state (unless every generation was destroyed, which reports
/// NotFound rather than returning garbage).

/// One live (published, not retired) generation from the journal.
struct ManifestEntry {
  uint64_t generation = 0;
  std::string file;      ///< basename within the snapshot directory
  uint64_t bytes = 0;    ///< snapshot file size at publish time
  uint64_t checksum = 0; ///< FNV-1a of the whole snapshot file
};

/// Journal replay result.
struct ManifestState {
  /// Live generations, ascending; the last entry is the newest.
  std::vector<ManifestEntry> live;
  /// One past the largest generation ever journalled (retired included),
  /// so a recovered publisher never reuses a generation number.
  uint64_t next_generation = 1;
  /// Valid records replayed.
  uint64_t records = 0;
  /// Bytes of the journal that replayed cleanly; the file is
  /// `valid_bytes + torn_bytes` long. SnapshotLifecycle::Open truncates
  /// the journal back to this prefix when torn_bytes > 0.
  uint64_t valid_bytes = 0;
  /// Trailing journal bytes discarded as torn/corrupt (0 on clean replay).
  uint64_t torn_bytes = 0;
};

/// Replays `dir`/MANIFEST. A missing journal is an empty state, not an
/// error (a fresh directory); a journal written by a newer format version
/// is an error (never guess at records we cannot interpret).
Result<ManifestState> ReplayManifest(const std::string& dir);

struct PublishOptions {
  /// Format options for the snapshot file itself.
  IndexSaveOptions save;
  /// fsync file + directory + journal record (full crash durability).
  /// Benchmarks may turn it off to measure the pure atomic-publish cost.
  bool sync = true;
};

/// Outcome of SnapshotLifecycle::Publish.
struct PublishedSnapshot {
  uint64_t generation = 0;
  std::string path;  ///< full path to the published snapshot file
  uint64_t bytes = 0;
  uint64_t checksum = 0;
};

/// What RecoverLatestSnapshot loaded.
struct RecoveredSnapshot {
  uint64_t generation = 0;
  std::string path;
  std::unique_ptr<XmlIndex> index;
  /// Newer live generations that failed verification and were skipped
  /// (0 = the newest published generation recovered intact).
  uint64_t generations_skipped = 0;
};

/// Publisher-side handle on a snapshot directory: replay once, then
/// publish and retire generations against the in-memory state. One
/// process should own a directory's lifecycle at a time (concurrent
/// publishers would race generation numbers); recovery is safe from any
/// process at any time.
class SnapshotLifecycle {
 public:
  explicit SnapshotLifecycle(std::string dir);

  /// Creates the directory if needed and replays the journal. When replay
  /// finds a torn/corrupt tail, Open truncates the journal back to the
  /// valid prefix (fsync'd) before accepting appends — appends go through
  /// O_APPEND, so a tail left in place would poison every future record:
  /// replay stops at the first bad checksum, making post-restart publishes
  /// permanently invisible to recovery. Publish and RetireOldGenerations
  /// call Open implicitly on first use, and re-run it after any failed
  /// journal append (the file and in-memory state may have diverged).
  Status Open();

  /// Serializes `index`, atomically writes it as the next generation's
  /// snapshot file, then appends a durable PUBLISH record. The journal
  /// references the file only once the file is complete on disk, so a
  /// crash anywhere in between leaves the previous generation live.
  Result<PublishedSnapshot> Publish(
      const XmlIndex& index, PublishOptions options = PublishOptions());

  /// Retires every live generation except the newest `keep_latest`:
  /// appends RETIRE records, then deletes the files. Call only after the
  /// generation you intend to keep is live (e.g. after the serving engine
  /// swapped onto it) — the journal entry lands before the unlink, so a
  /// crash in between orphans a file but never resurrects a retired
  /// generation.
  Status RetireOldGenerations(size_t keep_latest = 1);

  /// State as of the last Open/Publish/Retire (journal not re-read).
  const ManifestState& state() const { return state_; }

  const std::string& dir() const { return dir_; }

 private:
  Status AppendRecord(const std::string& body, bool sync);

  std::string dir_;
  ManifestState state_;
  bool open_ = false;
};

/// Startup recovery: replays the journal and loads the newest live
/// generation whose file passes the size + content-checksum check and the
/// per-section checks inside LoadIndex, falling back one generation at a
/// time. NotFound when no generation is recoverable.
Result<RecoveredSnapshot> RecoverLatestSnapshot(const std::string& dir);

}  // namespace xclean

#endif  // XCLEAN_INDEX_MANIFEST_H_
