#ifndef XCLEAN_INDEX_SHARD_MANIFEST_H_
#define XCLEAN_INDEX_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xclean {

/// One shard's slice of a range-partitioned corpus: the contiguous run of
/// document ordinals [doc_begin, doc_end) it owns (documents are the
/// depth-2 children of the corpus root, numbered in document order), plus
/// the snapshot file its index was persisted to. An empty range
/// (doc_begin == doc_end) is legal — a corpus with fewer documents than
/// shards leaves the tail shards empty, and they still serve (zero
/// partials) so the topology never depends on corpus size.
struct ShardManifestEntry {
  uint32_t shard_id = 0;
  uint32_t doc_begin = 0;
  uint32_t doc_end = 0;
  std::string file;       ///< basename within the shard-set directory
  uint64_t bytes = 0;     ///< snapshot size at write time
  uint64_t checksum = 0;  ///< FNV-1a of the snapshot file
};

/// The shard-set manifest: which generation this partitioning belongs to
/// and where each shard's snapshot lives. Written atomically as one
/// checksummed file (`SHARDSET`), in the same line-per-record,
/// `<body> #<fnv64>` format as the snapshot MANIFEST journal — torn or
/// bit-flipped files are detected, never half-parsed:
///
///   shardset 1 <generation> <num_shards> #<fnv64>
///   shard <id> <doc_begin> <doc_end> <file> <bytes> <fnv64-of-file> #<fnv64>
struct ShardSetManifest {
  uint64_t generation = 0;
  std::vector<ShardManifestEntry> shards;
};

/// Serializes and atomically writes `manifest` to `<dir>/SHARDSET`.
Status SaveShardSetManifest(const std::string& dir,
                            const ShardSetManifest& manifest);

/// Loads and verifies `<dir>/SHARDSET`. ParseError on any checksum or
/// structural violation (wrong shard count, ids out of order, overlapping
/// or non-contiguous document ranges) — a manifest that fails any of these
/// must not be served from.
Result<ShardSetManifest> LoadShardSetManifest(const std::string& dir);

}  // namespace xclean

#endif  // XCLEAN_INDEX_SHARD_MANIFEST_H_
