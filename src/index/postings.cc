#include "index/postings.h"

#include <algorithm>

namespace xclean {

void PostingCursor::SkipTo(NodeId target) {
  if (AtEnd() || cur_->node >= target) return;
  // Galloping: double the step until we overshoot, then binary search the
  // last bracket. Keeps short skips O(1) and long skips logarithmic.
  size_t step = 1;
  const Posting* probe = cur_;
  while (probe + step < end_ && (probe + step)->node < target) {
    probe += step;
    step <<= 1;
  }
  const Posting* hi = std::min(probe + step, end_);
  cur_ = std::lower_bound(
      probe, hi, target,
      [](const Posting& p, NodeId t) { return p.node < t; });
}

}  // namespace xclean
