#include "index/postings.h"

#include <algorithm>
#include <cstddef>

namespace xclean {

// simd::CountKeysBelowStride8 reads Posting records as raw 8-byte
// (node, tf) pairs; pin the layout the kernel assumes.
static_assert(sizeof(Posting) == 8, "Posting must be a packed 8-byte record");
static_assert(offsetof(Posting, node) == 0, "node must lead the record");

void PostingCursor::SkipTo(NodeId target) {
  if (AtEnd() || cur_->node >= target) return;
  // Galloping: double the step until we overshoot. Keeps short skips O(1)
  // and long skips logarithmic.
  size_t step = 1;
  const Posting* probe = cur_;
  while (probe + step < end_ && (probe + step)->node < target) {
    probe += step;
    step <<= 1;
  }
  const Posting* lo = probe;  // lo->node < target
  const Posting* hi = std::min(probe + step, end_);
  // Finish the gallop bracket with a plain binary search on every tier. A
  // SIMD window finish (binary-narrow to 16 postings, then
  // simd::CountKeysBelowStride8) measured ~3x slower here: cursor skip
  // sequences repeat, so the branchy search predicts near-perfectly while
  // the branchless/vector finish pays its serial load-latency chain every
  // time. The window-scan kernel stays available for callers with genuinely
  // unpredictable probes.
  cur_ = std::lower_bound(
      lo, hi, target,
      [](const Posting& p, NodeId t) { return p.node < t; });
}

}  // namespace xclean
