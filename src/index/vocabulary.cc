#include "index/vocabulary.h"

namespace xclean {

TokenId Vocabulary::Intern(std::string_view token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

TokenId Vocabulary::Find(std::string_view token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kInvalidToken : it->second;
}

}  // namespace xclean
