#include "index/index_builder.h"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/parallel_for.h"
#include "common/thread_pool.h"

namespace xclean {

namespace {

/// Builds the type lists for one token: counts, per label path, the number
/// of *distinct* nodes of that path whose subtree contains the token.
///
/// Postings arrive in document order, so consecutive postings share the
/// ancestor chain up to their Dewey common prefix: for posting node n with
/// common-prefix depth L against the previous posting, exactly the
/// ancestors at depths L+1..depth(n) are newly seen and must be counted
/// (the shallower ones were counted with an earlier posting).
std::vector<PathFreq> BuildTypeList(const XmlTree& tree,
                                    const PostingList& postings) {
  std::unordered_map<PathId, uint32_t> freq;
  NodeId prev = kInvalidNode;
  for (const Posting& p : postings) {
    uint32_t new_from_depth = 1;
    if (prev != kInvalidNode) {
      new_from_depth = static_cast<uint32_t>(DeweyCommonPrefix(
                           tree.dewey(prev), tree.dewey(p.node))) +
                       1;
    }
    NodeId cur = p.node;
    std::vector<NodeId> chain;
    while (tree.depth(cur) >= new_from_depth) {
      chain.push_back(cur);
      if (tree.depth(cur) == 1) break;
      cur = tree.parent(cur);
    }
    for (NodeId a : chain) ++freq[tree.path_id(a)];
    prev = p.node;
  }
  std::vector<PathFreq> out;
  out.reserve(freq.size());
  for (const auto& [path, f] : freq) out.push_back(PathFreq{path, f});
  std::sort(out.begin(), out.end(), [](const PathFreq& a, const PathFreq& b) {
    return a.path < b.path;
  });
  return out;
}

/// One deduplicated (node, token) occurrence. The flat occurrence table is
/// what the postings shards scan; keeping the node inline avoids a second
/// per-node offset table.
struct Occurrence {
  TokenId token;
  NodeId node;
  uint32_t tf;
};

}  // namespace

std::unique_ptr<XmlIndex> IndexBuilder::Build(XmlTree tree,
                                              IndexOptions options) {
  std::unique_ptr<XmlIndex> index(new XmlIndex(std::move(tree), options));
  const XmlTree& t = index->tree_;
  const NodeId n = t.size();

  size_t threads = options.build_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates in every ParallelFor, so the pool holds
  // threads-1 helpers; threads == 1 runs the same pipeline serially.
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    ThreadPoolOptions pool_options;
    pool_options.num_threads = threads - 1;
    pool_options.queue_capacity = threads * 8;
    pool = std::make_unique<ThreadPool>(pool_options);
  }

  index->node_tokens_.assign(n, 0);
  index->subtree_tokens_.assign(n, 0);

  // Phase 1: tokenize text-bearing nodes, in parallel over chunks. Output
  // slot i depends only on node text_nodes[i], so any schedule produces the
  // same table.
  const std::vector<NodeId> text_nodes = t.TextNodes();
  const size_t num_text_nodes = text_nodes.size();
  std::vector<std::vector<std::string>> tokens_by_node(num_text_nodes);
  ParallelFor(
      pool.get(), num_text_nodes,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          index->tokenizer_.TokenizeInto(t.text(text_nodes[i]),
                                         tokens_by_node[i]);
        }
      },
      ParallelForOptions{.min_chunk = 128});

  // Phase 2 (serial): intern the vocabulary in node order — id assignment
  // must match a serial build byte for byte — and flatten the per-node
  // (token, tf) pairs into one occurrence table in node order.
  std::vector<Occurrence> occurrences;
  std::unordered_map<TokenId, uint32_t> node_tf;
  for (size_t i = 0; i < num_text_nodes; ++i) {
    const std::vector<std::string>& tokens = tokens_by_node[i];
    if (tokens.empty()) continue;
    const NodeId node = text_nodes[i];
    ++index->text_node_count_;
    node_tf.clear();
    for (const std::string& token : tokens) {
      ++node_tf[index->vocabulary_.Intern(token)];
    }
    index->node_tokens_[node] = static_cast<uint32_t>(tokens.size());
    index->total_tokens_ += tokens.size();
    if (index->vocabulary_.size() > index->cf_.size()) {
      index->cf_.resize(index->vocabulary_.size(), 0);
      index->df_.resize(index->vocabulary_.size(), 0);
    }
    for (const auto& [id, tf] : node_tf) {
      occurrences.push_back(Occurrence{id, node, tf});
      index->cf_[id] += tf;
      index->df_[id] += 1;
    }
    tokens_by_node[i].clear();
    tokens_by_node[i].shrink_to_fit();
  }
  tokens_by_node.clear();

  // Phase 3: sharded postings accumulation. Each shard owns a contiguous
  // token range and scans the occurrence table once, appending postings
  // only for its own tokens; within a token, postings arrive in node order
  // because the table is in node order. df gives exact reserve sizes.
  const size_t vocab_size = index->vocabulary_.size();
  std::vector<std::vector<Posting>> lists(vocab_size);
  ParallelFor(
      pool.get(), vocab_size,
      [&](size_t begin, size_t end) {
        for (size_t token = begin; token < end; ++token) {
          lists[token].reserve(index->df_[token]);
        }
        for (const Occurrence& occ : occurrences) {
          if (occ.token >= begin && occ.token < end) {
            lists[occ.token].push_back(Posting{occ.node, occ.tf});
          }
        }
      },
      // One chunk per participant: every extra chunk costs a full scan of
      // the occurrence table.
      ParallelForOptions{.min_chunk = 1, .chunks_per_thread = 1});
  occurrences.clear();
  occurrences.shrink_to_fit();

  index->inverted_lists_.reserve(vocab_size);
  for (std::vector<Posting>& list : lists) {
    for (size_t i = 1; i < list.size(); ++i) {
      XCLEAN_CHECK(list[i - 1].node < list[i].node);
    }
    index->inverted_lists_.emplace_back(std::move(list));
  }

  // Phase 4 (serial): subtree token counts by reverse-preorder
  // accumulation; inherently sequential but O(n) additions.
  for (NodeId node = n; node-- > 0;) {
    index->subtree_tokens_[node] += index->node_tokens_[node];
    if (node != t.root()) {
      index->subtree_tokens_[t.parent(node)] += index->subtree_tokens_[node];
    }
  }

  // Phase 5: type lists, parallel over tokens (each list is a pure function
  // of that token's posting list).
  index->type_index_.lists_.resize(vocab_size);
  ParallelFor(
      pool.get(), vocab_size,
      [&](size_t begin, size_t end) {
        for (size_t token = begin; token < end; ++token) {
          index->type_index_.lists_[token] =
              BuildTypeList(t, index->inverted_lists_[token]);
        }
      },
      ParallelForOptions{.min_chunk = 64});

  // Phase 6: FastSS variant index, parallel neighborhood generation per
  // vocabulary shard with a deterministic merge (text/fastss.cc).
  FastSsIndex::Options fs_options;
  fs_options.max_ed = options.fastss_max_ed;
  fs_options.partition_min_length = options.fastss_partition_min_length;
  FastSsIndex fs(fs_options);
  fs.Build(index->vocabulary_.tokens(), pool.get());
  index->fastss_ = std::move(fs);

  return index;
}

}  // namespace xclean
