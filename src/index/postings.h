#ifndef XCLEAN_INDEX_POSTINGS_H_
#define XCLEAN_INDEX_POSTINGS_H_

#include <cstdint>
#include <vector>

#include "xml/tree.h"

namespace xclean {

/// One inverted-list entry: the paper's (dewey, label-path, tf) tuple.
/// Dewey code and label path are recovered from the node id through the
/// tree in O(1), so the stored entry is just (node, tf). Lists are sorted
/// by node id, which *is* document order (preorder = Dewey lexicographic
/// order).
struct Posting {
  NodeId node;
  uint32_t tf;
};

/// An immutable sorted posting list.
class PostingList {
 public:
  PostingList() = default;
  explicit PostingList(std::vector<Posting> postings)
      : postings_(std::move(postings)) {}

  size_t size() const { return postings_.size(); }
  bool empty() const { return postings_.empty(); }
  const Posting& operator[](size_t i) const { return postings_[i]; }
  const Posting* data() const { return postings_.data(); }

  std::vector<Posting>::const_iterator begin() const {
    return postings_.begin();
  }
  std::vector<Posting>::const_iterator end() const { return postings_.end(); }

 private:
  std::vector<Posting> postings_;
};

/// Forward cursor over a PostingList with the skip operation that powers
/// the anchor-driven traversal of Algorithm 1. SkipTo uses exponential
/// (galloping) search followed by binary search, so a skip over g entries
/// costs O(log g) comparisons while short skips stay cheap.
class PostingCursor {
 public:
  PostingCursor() : cur_(nullptr), end_(nullptr) {}
  explicit PostingCursor(const PostingList& list)
      : cur_(list.data()), end_(list.data() + list.size()) {}

  bool AtEnd() const { return cur_ == end_; }

  /// Current posting; requires !AtEnd().
  const Posting& Get() const { return *cur_; }

  /// Advances one entry; requires !AtEnd().
  void Next() { ++cur_; }

  /// Discards all postings with node < target; the cursor ends on the
  /// first posting with node >= target (or AtEnd).
  void SkipTo(NodeId target);

  /// Entries remaining including the current one.
  size_t remaining() const { return static_cast<size_t>(end_ - cur_); }

 private:
  const Posting* cur_;
  const Posting* end_;
};

}  // namespace xclean

#endif  // XCLEAN_INDEX_POSTINGS_H_
