#include "index/index_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "text/fastss.h"
#include "xml/tree.h"

namespace xclean {

namespace {

constexpr char kMagic[6] = {'X', 'C', 'L', 'I', 'D', 'X'};
constexpr uint32_t kFormatVersion = 1;

uint64_t Fnv1a(const char* data, size_t size, uint64_t h) {
  for (size_t i = 0; i < size; ++i) {
    h = (h ^ static_cast<uint8_t>(data[i])) * 1099511628211ULL;
  }
  return h;
}

/// Buffered little-endian writer accumulating the payload so the trailing
/// checksum can cover all of it.
class Writer {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bool(bool v) { U32(v ? 1 : 0); }

  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  void StrVec(const std::vector<std::string>& v) {
    U64(v.size());
    for (const std::string& s : v) Str(s);
  }

  template <typename T>
  void PodVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(T));
  }

  void Raw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over the loaded payload.
class Reader {
 public:
  explicit Reader(std::string payload) : payload_(std::move(payload)) {}

  Status U32(uint32_t& v) { return Raw(&v, sizeof(v)); }
  Status U64(uint64_t& v) { return Raw(&v, sizeof(v)); }
  Status F64(double& v) { return Raw(&v, sizeof(v)); }
  Status Bool(bool& v) {
    uint32_t raw = 0;
    Status s = U32(raw);
    v = raw != 0;
    return s;
  }

  Status Str(std::string& s) {
    uint64_t size = 0;
    Status st = U64(size);
    if (!st.ok()) return st;
    if (size > remaining()) return Truncated();
    s.assign(payload_.data() + pos_, size);
    pos_ += size;
    return Status::Ok();
  }

  Status StrVec(std::vector<std::string>& v) {
    uint64_t count = 0;
    Status st = U64(count);
    if (!st.ok()) return st;
    // Each entry needs at least its 8-byte length.
    if (count > remaining() / 8) return Truncated();
    v.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      st = Str(v[i]);
      if (!st.ok()) return st;
    }
    return Status::Ok();
  }

  template <typename T>
  Status PodVec(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    Status st = U64(count);
    if (!st.ok()) return st;
    if (count > remaining() / sizeof(T)) return Truncated();
    v.resize(count);
    return Raw(v.data(), count * sizeof(T));
  }

  Status Raw(void* out, size_t size) {
    if (size > remaining()) return Truncated();
    std::memcpy(out, payload_.data() + pos_, size);
    pos_ += size;
    return Status::Ok();
  }

  size_t remaining() const { return payload_.size() - pos_; }

 private:
  static Status Truncated() {
    return Status::ParseError("index file truncated or corrupted");
  }

  std::string payload_;
  size_t pos_ = 0;
};

}  // namespace

/// Private-member access hook (friended by XmlTree, XmlIndex, TypeIndex
/// and FastSsIndex).
struct SerializationAccess {
  static void WriteTree(const XmlTree& tree, Writer& w) {
    w.PodVec(tree.nodes_);
    w.PodVec(tree.dewey_pool_);
    w.StrVec(tree.texts_);
    w.StrVec(tree.labels_);
    w.PodVec(tree.path_parents_);
    w.PodVec(tree.path_labels_);
    w.PodVec(tree.path_depths_);
    w.PodVec(tree.path_node_counts_);
    w.U32(tree.max_depth_);
    w.U64(tree.depth_sum_);
  }

  static Status ReadTree(Reader& r, XmlTree& tree) {
    Status s;
    if (!(s = r.PodVec(tree.nodes_)).ok()) return s;
    if (!(s = r.PodVec(tree.dewey_pool_)).ok()) return s;
    if (!(s = r.StrVec(tree.texts_)).ok()) return s;
    if (!(s = r.StrVec(tree.labels_)).ok()) return s;
    if (!(s = r.PodVec(tree.path_parents_)).ok()) return s;
    if (!(s = r.PodVec(tree.path_labels_)).ok()) return s;
    if (!(s = r.PodVec(tree.path_depths_)).ok()) return s;
    if (!(s = r.PodVec(tree.path_node_counts_)).ok()) return s;
    if (!(s = r.U32(tree.max_depth_)).ok()) return s;
    if (!(s = r.U64(tree.depth_sum_)).ok()) return s;
    // Structural sanity: node/dewey/path table cross references.
    for (const XmlTree::Node& node : tree.nodes_) {
      if (node.label_id >= tree.labels_.size() ||
          node.path_id >= tree.path_depths_.size() ||
          node.subtree_end >= tree.nodes_.size() ||
          static_cast<uint64_t>(node.dewey_offset) + node.depth >
              tree.dewey_pool_.size() ||
          (node.text_id != XmlTree::kNoText &&
           node.text_id >= tree.texts_.size())) {
        return Status::ParseError("index file: inconsistent tree tables");
      }
    }
    return Status::Ok();
  }

  static void WriteIndex(const XmlIndex& index, Writer& w) {
    WriteTree(index.tree_, w);
    // Options.
    const IndexOptions& o = index.options_;
    w.Bool(o.tokenizer.lowercase);
    w.U64(o.tokenizer.min_token_length);
    w.Bool(o.tokenizer.drop_numbers);
    w.Bool(o.tokenizer.drop_stopwords);
    w.U32(o.fastss_max_ed);
    w.U64(o.fastss_partition_min_length);
    // Vocabulary.
    w.StrVec(index.vocabulary_.tokens());
    // Inverted lists.
    w.U64(index.inverted_lists_.size());
    for (const PostingList& list : index.inverted_lists_) {
      w.U64(list.size());
      w.Raw(list.data(), list.size() * sizeof(Posting));
    }
    // Type lists.
    w.U64(index.type_index_.lists_.size());
    for (const auto& list : index.type_index_.lists_) w.PodVec(list);
    // Statistics.
    w.PodVec(index.cf_);
    w.PodVec(index.df_);
    w.PodVec(index.node_tokens_);
    w.PodVec(index.subtree_tokens_);
    w.U64(index.total_tokens_);
    w.U32(index.text_node_count_);
    w.U64(index.source_bytes_);
    // FastSS postings (words are the vocabulary, not re-stored).
    w.PodVec(index.fastss_.postings_);
    w.Bool(index.fastss_.has_partitioned_);
  }

  static Result<std::unique_ptr<XmlIndex>> ReadIndex(Reader& r) {
    XmlTree tree;
    Status s = ReadTree(r, tree);
    if (!s.ok()) return s;

    IndexOptions options;
    uint64_t min_token_length = 0, partition_min_length = 0;
    if (!(s = r.Bool(options.tokenizer.lowercase)).ok()) return s;
    if (!(s = r.U64(min_token_length)).ok()) return s;
    if (!(s = r.Bool(options.tokenizer.drop_numbers)).ok()) return s;
    if (!(s = r.Bool(options.tokenizer.drop_stopwords)).ok()) return s;
    if (!(s = r.U32(options.fastss_max_ed)).ok()) return s;
    if (!(s = r.U64(partition_min_length)).ok()) return s;
    options.tokenizer.min_token_length = min_token_length;
    options.fastss_partition_min_length = partition_min_length;

    std::unique_ptr<XmlIndex> index(
        new XmlIndex(std::move(tree), options));

    std::vector<std::string> tokens;
    if (!(s = r.StrVec(tokens)).ok()) return s;
    for (const std::string& token : tokens) {
      index->vocabulary_.Intern(token);
    }
    if (index->vocabulary_.size() != tokens.size()) {
      return Status::ParseError("index file: duplicate vocabulary tokens");
    }

    uint64_t list_count = 0;
    if (!(s = r.U64(list_count)).ok()) return s;
    if (list_count != tokens.size()) {
      return Status::ParseError("index file: posting/vocabulary mismatch");
    }
    index->inverted_lists_.reserve(list_count);
    for (uint64_t i = 0; i < list_count; ++i) {
      std::vector<Posting> postings;
      if (!(s = r.PodVec(postings)).ok()) return s;
      for (const Posting& p : postings) {
        if (p.node >= index->tree_.size()) {
          return Status::ParseError("index file: posting node out of range");
        }
      }
      index->inverted_lists_.emplace_back(std::move(postings));
    }

    uint64_t type_count = 0;
    if (!(s = r.U64(type_count)).ok()) return s;
    if (type_count != tokens.size()) {
      return Status::ParseError("index file: type-list count mismatch");
    }
    index->type_index_.lists_.resize(type_count);
    for (uint64_t i = 0; i < type_count; ++i) {
      if (!(s = r.PodVec(index->type_index_.lists_[i])).ok()) return s;
    }

    if (!(s = r.PodVec(index->cf_)).ok()) return s;
    if (!(s = r.PodVec(index->df_)).ok()) return s;
    if (!(s = r.PodVec(index->node_tokens_)).ok()) return s;
    if (!(s = r.PodVec(index->subtree_tokens_)).ok()) return s;
    if (!(s = r.U64(index->total_tokens_)).ok()) return s;
    if (!(s = r.U32(index->text_node_count_)).ok()) return s;
    if (!(s = r.U64(index->source_bytes_)).ok()) return s;
    if (index->cf_.size() != tokens.size() ||
        index->df_.size() != tokens.size() ||
        index->node_tokens_.size() != index->tree_.size() ||
        index->subtree_tokens_.size() != index->tree_.size()) {
      return Status::ParseError("index file: statistics size mismatch");
    }

    FastSsIndex::Options fs_options;
    fs_options.max_ed = options.fastss_max_ed;
    fs_options.partition_min_length = options.fastss_partition_min_length;
    FastSsIndex fs(fs_options);
    fs.words_ = tokens;
    if (!(s = r.PodVec(fs.postings_)).ok()) return s;
    if (!(s = r.Bool(fs.has_partitioned_)).ok()) return s;
    fs.built_ = true;
    for (const FastSsIndex::Posting& p : fs.postings_) {
      if (p.word_id >= tokens.size()) {
        return Status::ParseError("index file: FastSS posting out of range");
      }
    }
    index->fastss_ = std::move(fs);

    if (r.remaining() != 0) {
      return Status::ParseError("index file: trailing bytes");
    }
    return index;
  }
};

Status SaveIndex(const XmlIndex& index, std::ostream& out) {
  Writer writer;
  SerializationAccess::WriteIndex(index, writer);
  const std::string& payload = writer.buffer();

  out.write(kMagic, sizeof(kMagic));
  uint32_t version = kFormatVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  uint64_t size = payload.size();
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  uint64_t checksum = Fnv1a(payload.data(), payload.size(),
                            14695981039346656037ULL);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) return Status::Internal("index write failed");
  return Status::Ok();
}

Status SaveIndex(const XmlIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  return SaveIndex(index, out);
}

Result<std::unique_ptr<XmlIndex>> LoadIndex(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not an XClean index file (bad magic)");
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kFormatVersion) {
    return Status::ParseError(
        StrFormat("unsupported index format version %u", version));
  }
  uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!in) return Status::ParseError("index file truncated (no size)");
  std::string payload(size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(size));
  if (!in || static_cast<uint64_t>(in.gcount()) != size) {
    return Status::ParseError("index file truncated (payload)");
  }
  uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum), sizeof(stored_checksum));
  if (!in) return Status::ParseError("index file truncated (checksum)");
  uint64_t checksum =
      Fnv1a(payload.data(), payload.size(), 14695981039346656037ULL);
  if (checksum != stored_checksum) {
    return Status::ParseError("index file checksum mismatch");
  }

  Reader reader(std::move(payload));
  return SerializationAccess::ReadIndex(reader);
}

Result<std::unique_ptr<XmlIndex>> LoadIndex(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open index file: " + path);
  return LoadIndex(in);
}

}  // namespace xclean
