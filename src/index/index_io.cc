#include "index/index_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <new>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/durable_file.h"
#include "common/fault_injection.h"
#include "common/string_util.h"
#include "common/varint.h"
#include "text/fastss.h"
#include "xml/tree.h"

namespace xclean {

namespace {

constexpr char kMagic[6] = {'X', 'C', 'L', 'I', 'D', 'X'};
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

uint64_t Fnv1a(const char* data, size_t size, uint64_t h) {
  for (size_t i = 0; i < size; ++i) {
    h = (h ^ static_cast<uint8_t>(data[i])) * 1099511628211ULL;
  }
  return h;
}

/// The v2 sections, in file order. Each is length-prefixed and carries its
/// own checksum, so a corrupted snapshot reports *which* structure broke.
enum class Section : uint8_t {
  kTree = 1,
  kOptions = 2,
  kVocabulary = 3,
  kPostings = 4,
  kTypeLists = 5,
  kStats = 6,
  kFastSs = 7,
};

const char* SectionName(Section s) {
  switch (s) {
    case Section::kTree:
      return "tree";
    case Section::kOptions:
      return "options";
    case Section::kVocabulary:
      return "vocabulary";
    case Section::kPostings:
      return "postings";
    case Section::kTypeLists:
      return "type-lists";
    case Section::kStats:
      return "statistics";
    case Section::kFastSs:
      return "fastss";
  }
  return "unknown";
}

Status SectionError(Section s, const char* what) {
  return Status::ParseError(
      StrFormat("index file section '%s': %s", SectionName(s), what));
}

/// Buffered little-endian writer accumulating a payload so a trailing
/// checksum can cover all of it. Var* methods are the v2 codec; the
/// fixed-width methods are shared with the v1 writer.
class Writer {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bool(bool v) { U32(v ? 1 : 0); }

  void Var32(uint32_t v) { PutVarint32(buffer_, v); }
  void Var64(uint64_t v) { PutVarint64(buffer_, v); }
  void VarSigned(int64_t v) { PutVarint64(buffer_, ZigZagEncode(v)); }

  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  void VarStr(const std::string& s) {
    Var64(s.size());
    Raw(s.data(), s.size());
  }

  void StrVec(const std::vector<std::string>& v) {
    U64(v.size());
    for (const std::string& s : v) Str(s);
  }

  void VarStrVec(const std::vector<std::string>& v) {
    Var64(v.size());
    for (const std::string& s : v) VarStr(s);
  }

  template <typename T>
  void PodVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(T));
  }

  /// Count-prefixed varint stream (one varint per element).
  template <typename T>
  void VarVec(const std::vector<T>& v) {
    Var64(v.size());
    for (T x : v) Var64(x);
  }

  void Raw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over one loaded payload.
class Reader {
 public:
  explicit Reader(std::string payload) : payload_(std::move(payload)) {}

  Status U32(uint32_t& v) { return Raw(&v, sizeof(v)); }
  Status U64(uint64_t& v) { return Raw(&v, sizeof(v)); }
  Status F64(double& v) { return Raw(&v, sizeof(v)); }
  Status Bool(bool& v) {
    uint32_t raw = 0;
    Status s = U32(raw);
    v = raw != 0;
    return s;
  }

  Status Var32(uint32_t& v) {
    const char* p =
        GetVarint32(payload_.data() + pos_, payload_.data() + payload_.size(),
                    &v);
    if (p == nullptr) return Truncated();
    pos_ = static_cast<size_t>(p - payload_.data());
    return Status::Ok();
  }

  Status Var64(uint64_t& v) {
    const char* p =
        GetVarint64(payload_.data() + pos_, payload_.data() + payload_.size(),
                    &v);
    if (p == nullptr) return Truncated();
    pos_ = static_cast<size_t>(p - payload_.data());
    return Status::Ok();
  }

  Status VarSigned(int64_t& v) {
    uint64_t raw = 0;
    Status s = Var64(raw);
    v = ZigZagDecode(raw);
    return s;
  }

  /// Block-decodes `count` varint32 values via the SIMD-dispatched group
  /// codec (runs of one-byte varints widen 8/16 at a time — the common
  /// case for the delta+tf posting streams).
  Status Var32Group(uint32_t* out, size_t count) {
    const char* p =
        GetVarint32Group(payload_.data() + pos_,
                         payload_.data() + payload_.size(), out, count);
    if (p == nullptr) return Truncated();
    pos_ = static_cast<size_t>(p - payload_.data());
    return Status::Ok();
  }

  Status Str(std::string& s) {
    uint64_t size = 0;
    Status st = U64(size);
    if (!st.ok()) return st;
    return StrBody(size, s);
  }

  Status VarStr(std::string& s) {
    uint64_t size = 0;
    Status st = Var64(size);
    if (!st.ok()) return st;
    return StrBody(size, s);
  }

  Status StrVec(std::vector<std::string>& v) {
    uint64_t count = 0;
    Status st = U64(count);
    if (!st.ok()) return st;
    // Each entry needs at least its 8-byte length.
    if (count > remaining() / 8) return Truncated();
    v.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      st = Str(v[i]);
      if (!st.ok()) return st;
    }
    return Status::Ok();
  }

  Status VarStrVec(std::vector<std::string>& v) {
    uint64_t count = 0;
    Status st = Var64(count);
    if (!st.ok()) return st;
    // Each entry needs at least one length byte.
    if (count > remaining()) return Truncated();
    v.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      st = VarStr(v[i]);
      if (!st.ok()) return st;
    }
    return Status::Ok();
  }

  template <typename T>
  Status PodVec(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    Status st = U64(count);
    if (!st.ok()) return st;
    if (count > remaining() / sizeof(T)) return Truncated();
    v.resize(count);
    return Raw(v.data(), count * sizeof(T));
  }

  template <typename T>
  Status VarVec(std::vector<T>& v) {
    uint64_t count = 0;
    Status st = Var64(count);
    if (!st.ok()) return st;
    // Each element needs at least one byte.
    if (count > remaining()) return Truncated();
    v.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t x = 0;
      st = Var64(x);
      if (!st.ok()) return st;
      if (x > std::numeric_limits<T>::max()) return Truncated();
      v[i] = static_cast<T>(x);
    }
    return Status::Ok();
  }

  Status Raw(void* out, size_t size) {
    if (size > remaining()) return Truncated();
    std::memcpy(out, payload_.data() + pos_, size);
    pos_ += size;
    return Status::Ok();
  }

  size_t remaining() const { return payload_.size() - pos_; }

 private:
  Status StrBody(uint64_t size, std::string& s) {
    if (size > remaining()) return Truncated();
    s.assign(payload_.data() + pos_, size);
    pos_ += size;
    return Status::Ok();
  }

  static Status Truncated() {
    return Status::ParseError("index file truncated or corrupted");
  }

  std::string payload_;
  size_t pos_ = 0;
};

/// Reads `size` bytes from `in` into `payload` in bounded chunks, so a
/// corrupted length field cannot demand one absurd upfront allocation —
/// the stream runs dry first and the lie is reported as truncation.
Status ReadPayload(std::istream& in, uint64_t size, std::string& payload) {
  constexpr uint64_t kChunk = 4 << 20;
  payload.clear();
  while (payload.size() < size) {
    const size_t want =
        static_cast<size_t>(std::min(kChunk, size - payload.size()));
    const size_t old = payload.size();
    try {
      payload.resize(old + want);
    } catch (const std::exception&) {
      return Status::ParseError("index file: implausible payload size");
    }
    in.read(payload.data() + old, static_cast<std::streamsize>(want));
    if (static_cast<size_t>(in.gcount()) != want) {
      return Status::ParseError("index file truncated (payload)");
    }
  }
  return Status::Ok();
}

}  // namespace

/// Private-member access hook (friended by XmlTree, XmlIndex, TypeIndex
/// and FastSsIndex).
struct SerializationAccess {
  // --- shared validation --------------------------------------------------

  static Status ValidateTree(const XmlTree& tree) {
    // Structural sanity: node/dewey/path table cross references.
    for (const XmlTree::Node& node : tree.nodes_) {
      if (node.label_id >= tree.labels_.size() ||
          node.path_id >= tree.path_depths_.size() ||
          node.subtree_end >= tree.nodes_.size() ||
          static_cast<uint64_t>(node.dewey_offset) + node.depth >
              tree.dewey_pool_.size() ||
          (node.text_id != XmlTree::kNoText &&
           node.text_id >= tree.texts_.size())) {
        return Status::ParseError("index file: inconsistent tree tables");
      }
    }
    return Status::Ok();
  }

  // --- format v1 (legacy, monolithic payload) -----------------------------

  static void WriteTreeV1(const XmlTree& tree, Writer& w) {
    w.PodVec(tree.nodes_);
    w.PodVec(tree.dewey_pool_);
    w.StrVec(tree.texts_);
    w.StrVec(tree.labels_);
    w.PodVec(tree.path_parents_);
    w.PodVec(tree.path_labels_);
    w.PodVec(tree.path_depths_);
    w.PodVec(tree.path_node_counts_);
    w.U32(tree.max_depth_);
    w.U64(tree.depth_sum_);
  }

  static Status ReadTreeV1(Reader& r, XmlTree& tree) {
    Status s;
    if (!(s = r.PodVec(tree.nodes_)).ok()) return s;
    if (!(s = r.PodVec(tree.dewey_pool_)).ok()) return s;
    if (!(s = r.StrVec(tree.texts_)).ok()) return s;
    if (!(s = r.StrVec(tree.labels_)).ok()) return s;
    if (!(s = r.PodVec(tree.path_parents_)).ok()) return s;
    if (!(s = r.PodVec(tree.path_labels_)).ok()) return s;
    if (!(s = r.PodVec(tree.path_depths_)).ok()) return s;
    if (!(s = r.PodVec(tree.path_node_counts_)).ok()) return s;
    if (!(s = r.U32(tree.max_depth_)).ok()) return s;
    if (!(s = r.U64(tree.depth_sum_)).ok()) return s;
    return ValidateTree(tree);
  }

  static void WriteIndexV1(const XmlIndex& index, Writer& w) {
    WriteTreeV1(index.tree_, w);
    // Options.
    const IndexOptions& o = index.options_;
    w.Bool(o.tokenizer.lowercase);
    w.U64(o.tokenizer.min_token_length);
    w.Bool(o.tokenizer.drop_numbers);
    w.Bool(o.tokenizer.drop_stopwords);
    w.U32(o.fastss_max_ed);
    w.U64(o.fastss_partition_min_length);
    // Vocabulary.
    w.StrVec(index.vocabulary_.tokens());
    // Inverted lists.
    w.U64(index.inverted_lists_.size());
    for (const PostingList& list : index.inverted_lists_) {
      w.U64(list.size());
      w.Raw(list.data(), list.size() * sizeof(Posting));
    }
    // Type lists.
    w.U64(index.type_index_.lists_.size());
    for (const auto& list : index.type_index_.lists_) w.PodVec(list);
    // Statistics.
    w.PodVec(index.cf_);
    w.PodVec(index.df_);
    w.PodVec(index.node_tokens_);
    w.PodVec(index.subtree_tokens_);
    w.U64(index.total_tokens_);
    w.U32(index.text_node_count_);
    w.U64(index.source_bytes_);
    // FastSS postings (words are the vocabulary, not re-stored). Posting
    // carries 4 tail padding bytes; emit them as explicit zeros — the same
    // 16-byte layout PodVec reads back — so saved bytes never depend on
    // heap garbage and equal-index saves are byte-identical (the
    // determinism tests compare snapshots of parallel vs serial builds).
    static_assert(sizeof(FastSsIndex::Posting) == 16);
    w.U64(index.fastss_.postings_.size());
    for (const FastSsIndex::Posting& p : index.fastss_.postings_) {
      w.U64(p.hash);
      w.U32(p.word_id);
      w.U32(0);
    }
    w.Bool(index.fastss_.has_partitioned_);
  }

  static Result<std::unique_ptr<XmlIndex>> ReadIndexV1(Reader& r) {
    XmlTree tree;
    Status s = ReadTreeV1(r, tree);
    if (!s.ok()) return s;

    IndexOptions options;
    uint64_t min_token_length = 0, partition_min_length = 0;
    if (!(s = r.Bool(options.tokenizer.lowercase)).ok()) return s;
    if (!(s = r.U64(min_token_length)).ok()) return s;
    if (!(s = r.Bool(options.tokenizer.drop_numbers)).ok()) return s;
    if (!(s = r.Bool(options.tokenizer.drop_stopwords)).ok()) return s;
    if (!(s = r.U32(options.fastss_max_ed)).ok()) return s;
    if (!(s = r.U64(partition_min_length)).ok()) return s;
    options.tokenizer.min_token_length = min_token_length;
    options.fastss_partition_min_length = partition_min_length;

    std::unique_ptr<XmlIndex> index(new XmlIndex(std::move(tree), options));

    std::vector<std::string> tokens;
    if (!(s = r.StrVec(tokens)).ok()) return s;
    for (const std::string& token : tokens) {
      index->vocabulary_.Intern(token);
    }
    if (index->vocabulary_.size() != tokens.size()) {
      return Status::ParseError("index file: duplicate vocabulary tokens");
    }

    uint64_t list_count = 0;
    if (!(s = r.U64(list_count)).ok()) return s;
    if (list_count != tokens.size()) {
      return Status::ParseError("index file: posting/vocabulary mismatch");
    }
    index->inverted_lists_.reserve(list_count);
    for (uint64_t i = 0; i < list_count; ++i) {
      std::vector<Posting> postings;
      if (!(s = r.PodVec(postings)).ok()) return s;
      for (const Posting& p : postings) {
        if (p.node >= index->tree_.size()) {
          return Status::ParseError("index file: posting node out of range");
        }
      }
      index->inverted_lists_.emplace_back(std::move(postings));
    }

    uint64_t type_count = 0;
    if (!(s = r.U64(type_count)).ok()) return s;
    if (type_count != tokens.size()) {
      return Status::ParseError("index file: type-list count mismatch");
    }
    index->type_index_.lists_.resize(type_count);
    for (uint64_t i = 0; i < type_count; ++i) {
      if (!(s = r.PodVec(index->type_index_.lists_[i])).ok()) return s;
    }

    if (!(s = r.PodVec(index->cf_)).ok()) return s;
    if (!(s = r.PodVec(index->df_)).ok()) return s;
    if (!(s = r.PodVec(index->node_tokens_)).ok()) return s;
    if (!(s = r.PodVec(index->subtree_tokens_)).ok()) return s;
    if (!(s = r.U64(index->total_tokens_)).ok()) return s;
    if (!(s = r.U32(index->text_node_count_)).ok()) return s;
    if (!(s = r.U64(index->source_bytes_)).ok()) return s;
    if (index->cf_.size() != tokens.size() ||
        index->df_.size() != tokens.size() ||
        index->node_tokens_.size() != index->tree_.size() ||
        index->subtree_tokens_.size() != index->tree_.size()) {
      return Status::ParseError("index file: statistics size mismatch");
    }

    FastSsIndex::Options fs_options;
    fs_options.max_ed = options.fastss_max_ed;
    fs_options.partition_min_length = options.fastss_partition_min_length;
    FastSsIndex fs(fs_options);
    fs.words_ = tokens;
    if (!(s = r.PodVec(fs.postings_)).ok()) return s;
    if (!(s = r.Bool(fs.has_partitioned_)).ok()) return s;
    fs.FinalizeBuckets();
    fs.built_ = true;
    for (const FastSsIndex::Posting& p : fs.postings_) {
      if (p.word_id >= tokens.size()) {
        return Status::ParseError("index file: FastSS posting out of range");
      }
    }
    index->fastss_ = std::move(fs);

    if (r.remaining() != 0) {
      return Status::ParseError("index file: trailing bytes");
    }
    return index;
  }

  // --- format v2 (sectioned, varint + delta) ------------------------------

  static void WriteTreeV2(const XmlTree& tree, Writer& w) {
    const size_t n = tree.nodes_.size();
    w.Var64(n);
    // Columnar, so each stream's delta state stays coherent. Parent and
    // subtree_end are stored relative to the node id (small in practice),
    // dewey_offset relative to its predecessor (it grows by ~depth per
    // node), text ids as deltas over the text-bearing subsequence.
    for (size_t i = 0; i < n; ++i) {
      const XmlTree::Node& node = tree.nodes_[i];
      if (i == 0) {
        w.Var32(0);  // root parent is implicit (kInvalidNode)
      } else {
        w.VarSigned(static_cast<int64_t>(i) - node.parent);
      }
    }
    for (const XmlTree::Node& node : tree.nodes_) w.Var32(node.label_id);
    for (const XmlTree::Node& node : tree.nodes_) w.Var32(node.path_id);
    for (const XmlTree::Node& node : tree.nodes_) w.Var32(node.depth);
    for (size_t i = 0; i < n; ++i) {
      w.VarSigned(static_cast<int64_t>(tree.nodes_[i].subtree_end) -
                  static_cast<int64_t>(i));
    }
    uint64_t prev_dewey = 0;
    for (const XmlTree::Node& node : tree.nodes_) {
      w.VarSigned(static_cast<int64_t>(node.dewey_offset) -
                  static_cast<int64_t>(prev_dewey));
      prev_dewey = node.dewey_offset;
    }
    uint64_t prev_text = 0;
    for (const XmlTree::Node& node : tree.nodes_) {
      if (node.text_id == XmlTree::kNoText) {
        w.Var64(0);
      } else {
        int64_t delta = static_cast<int64_t>(node.text_id) -
                        static_cast<int64_t>(prev_text);
        w.Var64((ZigZagEncode(delta) << 1) | 1);
        prev_text = node.text_id;
      }
    }
    w.VarVec(tree.dewey_pool_);
    w.VarStrVec(tree.texts_);
    w.VarStrVec(tree.labels_);
    w.VarVec(tree.path_parents_);
    w.VarVec(tree.path_labels_);
    w.VarVec(tree.path_depths_);
    w.VarVec(tree.path_node_counts_);
    w.Var32(tree.max_depth_);
    w.Var64(tree.depth_sum_);
  }

  static Status ReadTreeV2(Reader& r, XmlTree& tree) {
    Status s;
    uint64_t n = 0;
    if (!(s = r.Var64(n)).ok()) return s;
    // A node costs at least 7 stream bytes; reject sizes the payload
    // cannot possibly hold before allocating.
    if (n > r.remaining()) return SectionError(Section::kTree, "truncated");
    tree.nodes_.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      int64_t delta = 0;
      if (i == 0) {
        uint32_t zero = 0;
        if (!(s = r.Var32(zero)).ok()) return s;
        tree.nodes_[0].parent = kInvalidNode;
        continue;
      }
      if (!(s = r.VarSigned(delta)).ok()) return s;
      int64_t parent = static_cast<int64_t>(i) - delta;
      if (parent < 0 || parent >= static_cast<int64_t>(i)) {
        return SectionError(Section::kTree, "parent out of range");
      }
      tree.nodes_[i].parent = static_cast<NodeId>(parent);
    }
    for (uint64_t i = 0; i < n; ++i) {
      if (!(s = r.Var32(tree.nodes_[i].label_id)).ok()) return s;
    }
    for (uint64_t i = 0; i < n; ++i) {
      if (!(s = r.Var32(tree.nodes_[i].path_id)).ok()) return s;
    }
    for (uint64_t i = 0; i < n; ++i) {
      if (!(s = r.Var32(tree.nodes_[i].depth)).ok()) return s;
    }
    for (uint64_t i = 0; i < n; ++i) {
      int64_t delta = 0;
      if (!(s = r.VarSigned(delta)).ok()) return s;
      int64_t end = static_cast<int64_t>(i) + delta;
      if (end < static_cast<int64_t>(i) || end >= static_cast<int64_t>(n)) {
        return SectionError(Section::kTree, "subtree end out of range");
      }
      tree.nodes_[i].subtree_end = static_cast<NodeId>(end);
    }
    int64_t prev_dewey = 0;
    for (uint64_t i = 0; i < n; ++i) {
      int64_t delta = 0;
      if (!(s = r.VarSigned(delta)).ok()) return s;
      int64_t offset = prev_dewey + delta;
      if (offset < 0 || offset > 0xFFFFFFFFll) {
        return SectionError(Section::kTree, "dewey offset out of range");
      }
      tree.nodes_[i].dewey_offset = static_cast<uint32_t>(offset);
      prev_dewey = offset;
    }
    int64_t prev_text = 0;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t v = 0;
      if (!(s = r.Var64(v)).ok()) return s;
      if (v == 0) {
        tree.nodes_[i].text_id = XmlTree::kNoText;
        continue;
      }
      if ((v & 1) == 0) {
        return SectionError(Section::kTree, "bad text-id flag");
      }
      int64_t text = prev_text + ZigZagDecode(v >> 1);
      if (text < 0 || text >= 0xFFFFFFFFll) {
        return SectionError(Section::kTree, "text id out of range");
      }
      tree.nodes_[i].text_id = static_cast<uint32_t>(text);
      prev_text = text;
    }
    if (!(s = r.VarVec(tree.dewey_pool_)).ok()) return s;
    if (!(s = r.VarStrVec(tree.texts_)).ok()) return s;
    if (!(s = r.VarStrVec(tree.labels_)).ok()) return s;
    if (!(s = r.VarVec(tree.path_parents_)).ok()) return s;
    if (!(s = r.VarVec(tree.path_labels_)).ok()) return s;
    if (!(s = r.VarVec(tree.path_depths_)).ok()) return s;
    if (!(s = r.VarVec(tree.path_node_counts_)).ok()) return s;
    if (!(s = r.Var32(tree.max_depth_)).ok()) return s;
    if (!(s = r.Var64(tree.depth_sum_)).ok()) return s;
    return ValidateTree(tree);
  }

  static void WriteOptionsV2(const XmlIndex& index, Writer& w) {
    // build_threads is deliberately not persisted: it is a build-latency
    // knob with no effect on index contents, and persisting it would break
    // the "any thread count serializes identically" invariant.
    const IndexOptions& o = index.options_;
    w.Var32(o.tokenizer.lowercase ? 1 : 0);
    w.Var64(o.tokenizer.min_token_length);
    w.Var32(o.tokenizer.drop_numbers ? 1 : 0);
    w.Var32(o.tokenizer.drop_stopwords ? 1 : 0);
    w.Var32(o.fastss_max_ed);
    w.Var64(o.fastss_partition_min_length);
  }

  static Status ReadOptionsV2(Reader& r, IndexOptions& options) {
    Status s;
    uint32_t lowercase = 0, drop_numbers = 0, drop_stopwords = 0;
    uint64_t min_token_length = 0, partition_min_length = 0;
    if (!(s = r.Var32(lowercase)).ok()) return s;
    if (!(s = r.Var64(min_token_length)).ok()) return s;
    if (!(s = r.Var32(drop_numbers)).ok()) return s;
    if (!(s = r.Var32(drop_stopwords)).ok()) return s;
    if (!(s = r.Var32(options.fastss_max_ed)).ok()) return s;
    if (!(s = r.Var64(partition_min_length)).ok()) return s;
    options.tokenizer.lowercase = lowercase != 0;
    options.tokenizer.min_token_length = min_token_length;
    options.tokenizer.drop_numbers = drop_numbers != 0;
    options.tokenizer.drop_stopwords = drop_stopwords != 0;
    options.fastss_partition_min_length = partition_min_length;
    return Status::Ok();
  }

  static void WritePostingsV2(const XmlIndex& index, Writer& w) {
    w.Var64(index.inverted_lists_.size());
    for (const PostingList& list : index.inverted_lists_) {
      w.Var64(list.size());
      NodeId prev = 0;
      for (const Posting& p : list) {
        // Lists are strictly increasing in node id; the first entry stores
        // its absolute id (delta against 0).
        w.Var32(p.node - prev);
        w.Var32(p.tf);
        prev = p.node;
      }
    }
  }

  static Status ReadPostingsV2(Reader& r, XmlIndex& index) {
    Status s;
    uint64_t list_count = 0;
    if (!(s = r.Var64(list_count)).ok()) return s;
    if (list_count != index.vocabulary_.size()) {
      return Status::ParseError("index file: posting/vocabulary mismatch");
    }
    index.inverted_lists_.reserve(list_count);
    // Interleaved (delta, tf) varint pairs block-decoded per list; the
    // scratch buffer is reused across lists.
    std::vector<uint32_t> decoded;
    for (uint64_t i = 0; i < list_count; ++i) {
      uint64_t size = 0;
      if (!(s = r.Var64(size)).ok()) return s;
      // Each posting needs at least two stream bytes.
      if (size > r.remaining()) {
        return SectionError(Section::kPostings, "truncated");
      }
      decoded.resize(size * 2);
      if (!(s = r.Var32Group(decoded.data(), size * 2)).ok()) return s;
      std::vector<Posting> postings;
      postings.reserve(size);
      uint64_t node = 0;
      for (uint64_t j = 0; j < size; ++j) {
        const uint32_t delta = decoded[2 * j];
        const uint32_t tf = decoded[2 * j + 1];
        if (j > 0 && delta == 0) {
          return SectionError(Section::kPostings, "non-increasing node ids");
        }
        node += delta;
        if (node >= index.tree_.size()) {
          return SectionError(Section::kPostings, "node out of range");
        }
        postings.push_back(
            Posting{static_cast<NodeId>(node), tf});
      }
      index.inverted_lists_.emplace_back(std::move(postings));
    }
    return Status::Ok();
  }

  static void WriteTypeListsV2(const XmlIndex& index, Writer& w) {
    w.Var64(index.type_index_.lists_.size());
    for (const std::vector<PathFreq>& list : index.type_index_.lists_) {
      w.Var64(list.size());
      PathId prev = 0;
      for (const PathFreq& pf : list) {
        w.Var32(pf.path - prev);
        w.Var32(pf.freq);
        prev = pf.path;
      }
    }
  }

  static Status ReadTypeListsV2(Reader& r, XmlIndex& index) {
    Status s;
    uint64_t type_count = 0;
    if (!(s = r.Var64(type_count)).ok()) return s;
    if (type_count != index.vocabulary_.size()) {
      return Status::ParseError("index file: type-list count mismatch");
    }
    index.type_index_.lists_.resize(type_count);
    const uint64_t path_count = index.tree_.path_count();
    std::vector<uint32_t> decoded;
    for (uint64_t i = 0; i < type_count; ++i) {
      uint64_t size = 0;
      if (!(s = r.Var64(size)).ok()) return s;
      if (size > r.remaining()) {
        return SectionError(Section::kTypeLists, "truncated");
      }
      std::vector<PathFreq>& list = index.type_index_.lists_[i];
      list.reserve(size);
      decoded.resize(size * 2);
      if (!(s = r.Var32Group(decoded.data(), size * 2)).ok()) return s;
      uint64_t path = 0;
      for (uint64_t j = 0; j < size; ++j) {
        const uint32_t delta = decoded[2 * j];
        const uint32_t freq = decoded[2 * j + 1];
        if (j > 0 && delta == 0) {
          return SectionError(Section::kTypeLists, "non-increasing paths");
        }
        path += delta;
        if (path >= path_count) {
          return SectionError(Section::kTypeLists, "path out of range");
        }
        list.push_back(PathFreq{static_cast<PathId>(path), freq});
      }
    }
    return Status::Ok();
  }

  static void WriteStatsV2(const XmlIndex& index, Writer& w) {
    w.VarVec(index.cf_);
    w.VarVec(index.df_);
    w.VarVec(index.node_tokens_);
    w.VarVec(index.subtree_tokens_);
    w.Var64(index.total_tokens_);
    w.Var32(index.text_node_count_);
    w.Var64(index.source_bytes_);
  }

  static Status ReadStatsV2(Reader& r, XmlIndex& index) {
    Status s;
    if (!(s = r.VarVec(index.cf_)).ok()) return s;
    if (!(s = r.VarVec(index.df_)).ok()) return s;
    if (!(s = r.VarVec(index.node_tokens_)).ok()) return s;
    if (!(s = r.VarVec(index.subtree_tokens_)).ok()) return s;
    if (!(s = r.Var64(index.total_tokens_)).ok()) return s;
    if (!(s = r.Var32(index.text_node_count_)).ok()) return s;
    if (!(s = r.Var64(index.source_bytes_)).ok()) return s;
    if (index.cf_.size() != index.vocabulary_.size() ||
        index.df_.size() != index.vocabulary_.size() ||
        index.node_tokens_.size() != index.tree_.size() ||
        index.subtree_tokens_.size() != index.tree_.size()) {
      return Status::ParseError("index file: statistics size mismatch");
    }
    return Status::Ok();
  }

  static void WriteFastSsV2(const XmlIndex& index, Writer& w) {
    // Postings are sorted by (hash, word_id); hashes delta-encode to a few
    // bytes instead of eight. Words are the vocabulary, not re-stored.
    const auto& postings = index.fastss_.postings_;
    w.Var64(postings.size());
    uint64_t prev_hash = 0;
    for (const FastSsIndex::Posting& p : postings) {
      w.Var64(p.hash - prev_hash);
      w.Var32(p.word_id);
      prev_hash = p.hash;
    }
    w.Var32(index.fastss_.has_partitioned_ ? 1 : 0);
  }

  static Status ReadFastSsV2(Reader& r, XmlIndex& index,
                             const IndexOptions& options) {
    Status s;
    FastSsIndex::Options fs_options;
    fs_options.max_ed = options.fastss_max_ed;
    fs_options.partition_min_length = options.fastss_partition_min_length;
    FastSsIndex fs(fs_options);
    fs.words_ = index.vocabulary_.tokens();

    uint64_t count = 0;
    if (!(s = r.Var64(count)).ok()) return s;
    if (count > r.remaining()) {
      return SectionError(Section::kFastSs, "truncated");
    }
    fs.postings_.reserve(count);
    uint64_t hash = 0;
    const uint64_t word_count = fs.words_.size();
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t delta = 0;
      uint32_t word_id = 0;
      if (!(s = r.Var64(delta)).ok()) return s;
      if (!(s = r.Var32(word_id)).ok()) return s;
      hash += delta;
      if (word_id >= word_count) {
        return SectionError(Section::kFastSs, "posting out of range");
      }
      fs.postings_.push_back(FastSsIndex::Posting{hash, word_id});
    }
    uint32_t has_partitioned = 0;
    if (!(s = r.Var32(has_partitioned)).ok()) return s;
    fs.has_partitioned_ = has_partitioned != 0;
    fs.FinalizeBuckets();
    fs.built_ = true;
    index.fastss_ = std::move(fs);
    return Status::Ok();
  }

  static void WriteVocabularyV2(const XmlIndex& index, Writer& w) {
    w.VarStrVec(index.vocabulary_.tokens());
  }

  static Result<std::unique_ptr<XmlIndex>> ReadIndexV2(std::istream& in);

  static std::unique_ptr<XmlIndex> NewIndex(XmlTree tree,
                                            IndexOptions options) {
    return std::unique_ptr<XmlIndex>(
        new XmlIndex(std::move(tree), options));
  }
};

namespace {

void EmitSection(std::ostream& out, Section tag, const Writer& w) {
  const std::string& payload = w.buffer();
  uint8_t t = static_cast<uint8_t>(tag);
  out.write(reinterpret_cast<const char*>(&t), 1);
  uint64_t size = payload.size();
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  uint64_t checksum = Fnv1a(payload.data(), payload.size(), kFnvOffset);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
}

Status ReadSection(std::istream& in, Section expected, std::string& payload) {
  uint8_t tag = 0;
  in.read(reinterpret_cast<char*>(&tag), 1);
  if (!in) return SectionError(expected, "truncated (missing section)");
  if (tag != static_cast<uint8_t>(expected)) {
    return SectionError(expected, "unexpected section tag");
  }
  uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!in) return SectionError(expected, "truncated (no size)");
  Status s = ReadPayload(in, size, payload);
  if (!s.ok()) return SectionError(expected, "truncated (payload)");
  uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum), sizeof(stored_checksum));
  if (!in) return SectionError(expected, "truncated (checksum)");
  if (Fnv1a(payload.data(), payload.size(), kFnvOffset) != stored_checksum) {
    return SectionError(expected, "checksum mismatch");
  }
  return Status::Ok();
}

/// Parses one section with `parse`, requiring it to consume every payload
/// byte.
template <typename ParseFn>
Status ParseSection(std::istream& in, Section tag, const ParseFn& parse) {
  std::string payload;
  Status s = ReadSection(in, tag, payload);
  if (!s.ok()) return s;
  Reader reader(std::move(payload));
  s = parse(reader);
  if (!s.ok()) return s;
  if (reader.remaining() != 0) {
    return SectionError(tag, "trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<XmlIndex>> SerializationAccess::ReadIndexV2(
    std::istream& in) {
  XmlTree tree;
  IndexOptions options;
  Status s = ParseSection(in, Section::kTree, [&](Reader& r) {
    return ReadTreeV2(r, tree);
  });
  if (!s.ok()) return s;
  s = ParseSection(in, Section::kOptions, [&](Reader& r) {
    return ReadOptionsV2(r, options);
  });
  if (!s.ok()) return s;

  std::unique_ptr<XmlIndex> index = NewIndex(std::move(tree), options);

  s = ParseSection(in, Section::kVocabulary, [&](Reader& r) {
    std::vector<std::string> tokens;
    Status st = r.VarStrVec(tokens);
    if (!st.ok()) return st;
    for (const std::string& token : tokens) {
      index->vocabulary_.Intern(token);
    }
    if (index->vocabulary_.size() != tokens.size()) {
      return Status::ParseError("index file: duplicate vocabulary tokens");
    }
    return Status::Ok();
  });
  if (!s.ok()) return s;

  s = ParseSection(in, Section::kPostings, [&](Reader& r) {
    return ReadPostingsV2(r, *index);
  });
  if (!s.ok()) return s;
  s = ParseSection(in, Section::kTypeLists, [&](Reader& r) {
    return ReadTypeListsV2(r, *index);
  });
  if (!s.ok()) return s;
  s = ParseSection(in, Section::kStats, [&](Reader& r) {
    return ReadStatsV2(r, *index);
  });
  if (!s.ok()) return s;
  s = ParseSection(in, Section::kFastSs, [&](Reader& r) {
    return ReadFastSsV2(r, *index, index->options_);
  });
  if (!s.ok()) return s;
  return index;
}

Status SaveIndex(const XmlIndex& index, std::ostream& out,
                 IndexSaveOptions options) {
  if (options.format_version != kIndexFormatV1 &&
      options.format_version != kIndexFormatLatest) {
    return Status::InvalidArgument(
        StrFormat("cannot write index format version %u",
                  options.format_version));
  }
  out.write(kMagic, sizeof(kMagic));
  uint32_t version = options.format_version;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));

  if (version == kIndexFormatV1) {
    Writer writer;
    SerializationAccess::WriteIndexV1(index, writer);
    const std::string& payload = writer.buffer();
    uint64_t size = payload.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    uint64_t checksum = Fnv1a(payload.data(), payload.size(), kFnvOffset);
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  } else {
    {
      Writer w;
      SerializationAccess::WriteTreeV2(index.tree(), w);
      EmitSection(out, Section::kTree, w);
    }
    {
      Writer w;
      SerializationAccess::WriteOptionsV2(index, w);
      EmitSection(out, Section::kOptions, w);
    }
    {
      Writer w;
      SerializationAccess::WriteVocabularyV2(index, w);
      EmitSection(out, Section::kVocabulary, w);
    }
    {
      Writer w;
      SerializationAccess::WritePostingsV2(index, w);
      EmitSection(out, Section::kPostings, w);
    }
    {
      Writer w;
      SerializationAccess::WriteTypeListsV2(index, w);
      EmitSection(out, Section::kTypeLists, w);
    }
    {
      Writer w;
      SerializationAccess::WriteStatsV2(index, w);
      EmitSection(out, Section::kStats, w);
    }
    {
      Writer w;
      SerializationAccess::WriteFastSsV2(index, w);
      EmitSection(out, Section::kFastSs, w);
    }
  }
  if (!out) return Status::Internal("index write failed");
  return Status::Ok();
}

Status SaveIndex(const XmlIndex& index, const std::string& path,
                 IndexSaveOptions options) {
  // Never truncate the live path in place: a crash or full disk mid-write
  // must not destroy the only copy a server can reload. Serialize fully,
  // then publish atomically (temp + rename, common/durable_file.h).
  std::ostringstream out;
  Status s = SaveIndex(index, out, options);
  if (!s.ok()) return s;
  DurableWriteOptions durable;
  durable.sync = options.sync;
  return AtomicWriteFile(path, out.str(), durable);
}

Result<std::unique_ptr<XmlIndex>> LoadIndex(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not an XClean index file (bad magic)");
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in ||
      (version != kIndexFormatV1 && version != kIndexFormatLatest)) {
    return Status::ParseError(
        StrFormat("unsupported index format version %u", version));
  }

  if (version == kIndexFormatV1) {
    uint64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!in) return Status::ParseError("index file truncated (no size)");
    std::string payload;
    Status s = ReadPayload(in, size, payload);
    if (!s.ok()) return s;
    uint64_t stored_checksum = 0;
    in.read(reinterpret_cast<char*>(&stored_checksum),
            sizeof(stored_checksum));
    if (!in) return Status::ParseError("index file truncated (checksum)");
    if (Fnv1a(payload.data(), payload.size(), kFnvOffset) !=
        stored_checksum) {
      return Status::ParseError("index file checksum mismatch");
    }
    Reader reader(std::move(payload));
    return SerializationAccess::ReadIndexV1(reader);
  }

  return SerializationAccess::ReadIndexV2(in);
}

Result<std::unique_ptr<XmlIndex>> LoadIndex(const std::string& path) {
  XCLEAN_FAULT_STATUS("index_io.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open index file: " + path);
  return LoadIndex(in);
}

}  // namespace xclean
