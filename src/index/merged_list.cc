#include "index/merged_list.h"

#include <algorithm>

#include "common/check.h"

namespace xclean {

MergedList::MergedList(std::vector<Member> members)
    : members_(std::move(members)) {
  heap_.reserve(members_.size());
  for (uint32_t i = 0; i < members_.size(); ++i) PushMember(i);
  RefreshHead();
}

void MergedList::Reset() {
  members_.clear();
  heap_.clear();
  exhausted_ = true;
  skip_stats_ = SkipStats{};
}

void MergedList::AddMember(TokenId token, PostingCursor cursor) {
  members_.push_back(Member{token, cursor});
}

void MergedList::Finish() {
  heap_.clear();
  for (uint32_t i = 0; i < members_.size(); ++i) {
    const PostingCursor& cursor = members_[i].cursor;
    if (cursor.AtEnd()) continue;
    heap_.push_back(HeapEntry{cursor.Get().node, members_[i].token, i});
  }
  std::make_heap(heap_.begin(), heap_.end(), HeapAfter);
  RefreshHead();
}

void MergedList::PushMember(uint32_t member) {
  PostingCursor& cursor = members_[member].cursor;
  if (cursor.AtEnd()) return;
  heap_.push_back(
      HeapEntry{cursor.Get().node, members_[member].token, member});
  std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
}

void MergedList::PopTop() {
  std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
  heap_.pop_back();
}

void MergedList::RefreshHead() {
  if (heap_.empty()) {
    exhausted_ = true;
    return;
  }
  const HeapEntry& top = heap_.front();
  const Posting& p = members_[top.member].cursor.Get();
  head_ = Head{p.node, p.tf, top.token, top.member};
  exhausted_ = false;
}

MergedList::Head MergedList::Next() {
  XCLEAN_CHECK(!exhausted_);
  Head out = head_;
  uint32_t member = heap_.front().member;
  PopTop();
  members_[member].cursor.Next();
  PushMember(member);
  RefreshHead();
  return out;
}

void MergedList::RebuildAt(NodeId target) {
  ++skip_stats_.rebuilds;
  heap_.clear();
  for (uint32_t i = 0; i < members_.size(); ++i) {
    members_[i].cursor.SkipTo(target);
    if (members_[i].cursor.AtEnd()) continue;
    heap_.push_back(
        HeapEntry{members_[i].cursor.Get().node, members_[i].token, i});
  }
  std::make_heap(heap_.begin(), heap_.end(), HeapAfter);
}

const MergedList::Head* MergedList::SkipTo(NodeId target) {
  if (exhausted_) return nullptr;
  if (head_.node >= target) return &head_;
  ++skip_stats_.moving_calls;
  // Lazy path: replace only the heap entries actually behind the target —
  // each is one cursor skip (galloping + binary search, see
  // PostingCursor::SkipTo) plus an O(log m) heap replace. Short skips
  // (the common case: consecutive anchors land in nearby subtrees)
  // move one or two members. Once more than half the members turn out to be
  // behind, fall back to a wholesale rebuild: gallop every cursor and
  // make_heap in O(m), which beats continuing with per-member sifts. The
  // crossover is measured by BM_MergedListSkipTuning (bench_micro).
  const size_t lazy_limit = members_.size() / 2;
  size_t moved = 0;
  while (!heap_.empty() && heap_.front().node < target) {
    if (moved >= lazy_limit) {
      RebuildAt(target);
      break;
    }
    ++moved;
    ++skip_stats_.lazy_advances;
    uint32_t member = heap_.front().member;
    PopTop();
    members_[member].cursor.SkipTo(target);
    PushMember(member);
  }
  RefreshHead();
  return cur_pos();
}

const MergedList::Head* MergedList::SkipTo(NodeId target,
                                           CancelToken* cancel) {
  if (cancel == nullptr) return SkipTo(target);
  const uint64_t lazy_before = skip_stats_.lazy_advances;
  const uint64_t rebuilds_before = skip_stats_.rebuilds;
  const Head* head = SkipTo(target);
  // A rebuild gallops every member cursor; bill it as one unit per member.
  const uint64_t work =
      (skip_stats_.lazy_advances - lazy_before) +
      (skip_stats_.rebuilds - rebuilds_before) * members_.size();
  if (work > 0) cancel->ChargePostings(work);
  return head;
}

}  // namespace xclean
