#include "index/merged_list.h"

#include <algorithm>

#include "common/check.h"

namespace xclean {

MergedList::MergedList(std::vector<Member> members)
    : members_(std::move(members)) {
  heap_.reserve(members_.size());
  for (uint32_t i = 0; i < members_.size(); ++i) PushMember(i);
  RefreshHead();
}

void MergedList::PushMember(uint32_t member) {
  PostingCursor& cursor = members_[member].cursor;
  if (cursor.AtEnd()) return;
  heap_.push_back(
      HeapEntry{cursor.Get().node, members_[member].token, member});
  std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
}

void MergedList::PopTop() {
  std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
  heap_.pop_back();
}

void MergedList::RefreshHead() {
  if (heap_.empty()) {
    exhausted_ = true;
    return;
  }
  const HeapEntry& top = heap_.front();
  const Posting& p = members_[top.member].cursor.Get();
  head_ = Head{p.node, p.tf, top.token};
  exhausted_ = false;
}

MergedList::Head MergedList::Next() {
  XCLEAN_CHECK(!exhausted_);
  Head out = head_;
  uint32_t member = heap_.front().member;
  PopTop();
  members_[member].cursor.Next();
  PushMember(member);
  RefreshHead();
  return out;
}

const MergedList::Head* MergedList::SkipTo(NodeId target) {
  if (exhausted_) return nullptr;
  if (head_.node >= target) return &head_;
  // Skip inside every member list, then rebuild the heap wholesale: after a
  // long-distance skip most heads change, so a rebuild (O(m)) beats m
  // sift-downs.
  heap_.clear();
  for (uint32_t i = 0; i < members_.size(); ++i) {
    members_[i].cursor.SkipTo(target);
    PushMember(i);
  }
  RefreshHead();
  return cur_pos();
}

}  // namespace xclean
