#include "index/shard_manifest.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <string>

#include "common/durable_file.h"

namespace xclean {

namespace {

/// Appends `body` as one checksummed record line, mirroring the snapshot
/// MANIFEST's `<body> #<fnv64>` convention.
void AppendRecord(std::string& out, const std::string& body) {
  char sum[32];
  std::snprintf(sum, sizeof(sum), " #%016" PRIx64,
                Fnv1a(body.data(), body.size()));
  out += body;
  out += sum;
  out += '\n';
}

/// Splits `line` into body and checksum, verifying the checksum. Returns
/// false on any malformation.
bool ParseRecord(const std::string& line, std::string* body) {
  size_t hash = line.rfind(" #");
  if (hash == std::string::npos || line.size() - hash != 2 + 16) return false;
  uint64_t want = 0;
  if (std::sscanf(line.c_str() + hash + 2, "%16" SCNx64, &want) != 1) {
    return false;
  }
  *body = line.substr(0, hash);
  return Fnv1a(body->data(), body->size()) == want;
}

std::string ManifestPath(const std::string& dir) { return dir + "/SHARDSET"; }

}  // namespace

Status SaveShardSetManifest(const std::string& dir,
                            const ShardSetManifest& manifest) {
  std::string contents;
  {
    char head[96];
    std::snprintf(head, sizeof(head), "shardset 1 %" PRIu64 " %zu",
                  manifest.generation, manifest.shards.size());
    AppendRecord(contents, head);
  }
  for (const ShardManifestEntry& e : manifest.shards) {
    if (e.file.find_first_of(" \n") != std::string::npos) {
      return Status::InvalidArgument("shard snapshot filename '" + e.file +
                                     "' contains whitespace");
    }
    std::ostringstream body;
    body << "shard " << e.shard_id << ' ' << e.doc_begin << ' ' << e.doc_end
         << ' ' << e.file << ' ' << e.bytes << ' ';
    char sum[24];
    std::snprintf(sum, sizeof(sum), "%016" PRIx64, e.checksum);
    body << sum;
    AppendRecord(contents, body.str());
  }
  return AtomicWriteFile(ManifestPath(dir), contents);
}

Result<ShardSetManifest> LoadShardSetManifest(const std::string& dir) {
  Result<std::string> contents = ReadFileToString(ManifestPath(dir));
  if (!contents.ok()) return contents.status();

  ShardSetManifest manifest;
  std::istringstream in(contents.value());
  std::string line, body;
  size_t declared_shards = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!ParseRecord(line, &body)) {
      return Status::ParseError("SHARDSET: corrupt record: " + line);
    }
    std::istringstream fields(body);
    std::string kind;
    fields >> kind;
    if (!have_header) {
      uint32_t version = 0;
      if (kind != "shardset" ||
          !(fields >> version >> manifest.generation >> declared_shards) ||
          version != 1) {
        return Status::ParseError("SHARDSET: bad header: " + body);
      }
      have_header = true;
      continue;
    }
    ShardManifestEntry e;
    std::string sum_hex;
    if (kind != "shard" ||
        !(fields >> e.shard_id >> e.doc_begin >> e.doc_end >> e.file >>
          e.bytes >> sum_hex) ||
        std::sscanf(sum_hex.c_str(), "%16" SCNx64, &e.checksum) != 1) {
      return Status::ParseError("SHARDSET: bad shard record: " + body);
    }
    manifest.shards.push_back(std::move(e));
  }
  if (!have_header) return Status::ParseError("SHARDSET: missing header");
  if (manifest.shards.size() != declared_shards) {
    return Status::ParseError("SHARDSET: header declares " +
                              std::to_string(declared_shards) +
                              " shards, found " +
                              std::to_string(manifest.shards.size()));
  }
  // Ranges must tile [0, total) in shard-id order: the partition is the
  // inverse of the layer-order join, so a gap or overlap would silently
  // drop or double-count documents.
  for (size_t i = 0; i < manifest.shards.size(); ++i) {
    const ShardManifestEntry& e = manifest.shards[i];
    if (e.shard_id != i || e.doc_begin > e.doc_end ||
        (i > 0 && e.doc_begin != manifest.shards[i - 1].doc_end)) {
      return Status::ParseError("SHARDSET: shard " + std::to_string(i) +
                                " range is out of order or non-contiguous");
    }
  }
  return manifest;
}

}  // namespace xclean
