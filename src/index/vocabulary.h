#ifndef XCLEAN_INDEX_VOCABULARY_H_
#define XCLEAN_INDEX_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xclean {

/// Dense token id. Tokens are interned in first-seen order during index
/// construction.
using TokenId = uint32_t;

inline constexpr TokenId kInvalidToken = 0xFFFFFFFFu;

/// The token dictionary V of the paper: every distinct token appearing in
/// the document's text content. Bidirectional string <-> id mapping;
/// statistics (cf, df) live in XmlIndex.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Id of `token`, interning it if new.
  TokenId Intern(std::string_view token);

  /// Id of `token` or kInvalidToken if it is not in the vocabulary.
  TokenId Find(std::string_view token) const;

  bool Contains(std::string_view token) const {
    return Find(token) != kInvalidToken;
  }

  const std::string& token(TokenId id) const { return tokens_[id]; }
  size_t size() const { return tokens_.size(); }

  /// All tokens in id order (used to build the FastSS index).
  const std::vector<std::string>& tokens() const { return tokens_; }

 private:
  // Transparent hashing lets Find() take string_view without allocating.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::vector<std::string> tokens_;
  std::unordered_map<std::string, TokenId, StringHash, StringEq> ids_;
};

}  // namespace xclean

#endif  // XCLEAN_INDEX_VOCABULARY_H_
