#ifndef XCLEAN_INDEX_INDEX_IO_H_
#define XCLEAN_INDEX_INDEX_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.h"
#include "index/xml_index.h"

namespace xclean {

/// Binary index persistence. Indexing a large corpus costs parsing +
/// tokenization + FastSS construction; a saved index loads in one
/// sequential read, so a search service can restart without rebuilding
/// (offline build / online serve, the deployment the paper assumes).
///
/// Format: "XCLIDX" magic, a format version, a little-endian payload of
/// length-prefixed sections (tree, vocabulary, postings, type lists,
/// statistics, FastSS postings), and a trailing FNV-1a checksum of the
/// payload. Loads verify magic, version and checksum and never trust
/// lengths blindly (truncated/corrupted files produce ParseError, not
/// crashes). The format is an implementation detail and may change between
/// versions; it is not a cross-machine interchange format (host
/// endianness).
Status SaveIndex(const XmlIndex& index, const std::string& path);

/// Serializes to an arbitrary stream (used by tests).
Status SaveIndex(const XmlIndex& index, std::ostream& out);

/// Loads an index previously written by SaveIndex.
Result<std::unique_ptr<XmlIndex>> LoadIndex(const std::string& path);

/// Deserializes from an arbitrary stream.
Result<std::unique_ptr<XmlIndex>> LoadIndex(std::istream& in);

}  // namespace xclean

#endif  // XCLEAN_INDEX_INDEX_IO_H_
