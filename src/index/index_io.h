#ifndef XCLEAN_INDEX_INDEX_IO_H_
#define XCLEAN_INDEX_INDEX_IO_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.h"
#include "index/xml_index.h"

namespace xclean {

/// Binary index persistence. Indexing a large corpus costs parsing +
/// tokenization + FastSS construction; a saved index loads in one
/// sequential read, so a search service can restart without rebuilding
/// (offline build / online serve, the deployment the paper assumes), and
/// serve/ServingEngine::SwapIndexFromFile hot-swaps a running service onto
/// a freshly built snapshot file.
///
/// Format v2 (current): "XCLIDX" magic, a format version, then a fixed
/// sequence of tagged sections (tree, options, vocabulary, postings, type
/// lists, statistics, FastSS postings), each length-prefixed and carrying
/// its own trailing FNV-1a checksum so corruption is reported per section.
/// Monotonic payloads — posting node ids, type-list paths, FastSS hashes,
/// Dewey components, per-node counters — are delta + varint encoded, which
/// shrinks snapshots by well over 30% versus v1's raw structs.
///
/// Format v1 (legacy): one monolithic little-endian payload with a single
/// trailing checksum and fixed-width fields. Loads of v1 files keep
/// working; writes default to v2 (IndexSaveOptions::format_version selects
/// v1 explicitly, used by compatibility tests).
///
/// Loads verify magic, version and checksums and never trust lengths
/// blindly (truncated/corrupted files produce ParseError, not crashes).
/// The format is an implementation detail and may change between versions;
/// it is not a cross-machine interchange format (host endianness).

/// Legacy monolithic format.
inline constexpr uint32_t kIndexFormatV1 = 1;
/// Current sectioned, varint+delta compressed format.
inline constexpr uint32_t kIndexFormatLatest = 2;

struct IndexSaveOptions {
  /// Format version to write; loading supports every version ever written.
  uint32_t format_version = kIndexFormatLatest;
  /// fsync the snapshot file and its directory after the atomic rename so
  /// the publish survives power loss, not just process death. Off keeps
  /// saves cheap for tests and scratch files; the manifest publisher
  /// (index/manifest.h) turns it on.
  bool sync = false;
};

/// Writes atomically: the payload lands in `<path>.tmp.<nonce>` and is
/// renamed into place, so a crash or full disk mid-write can never tear an
/// existing snapshot at `path` (common/durable_file.h).
Status SaveIndex(const XmlIndex& index, const std::string& path,
                 IndexSaveOptions options = IndexSaveOptions());

/// Serializes to an arbitrary stream (used by tests).
Status SaveIndex(const XmlIndex& index, std::ostream& out,
                 IndexSaveOptions options = IndexSaveOptions());

/// Loads an index previously written by SaveIndex (any format version).
Result<std::unique_ptr<XmlIndex>> LoadIndex(const std::string& path);

/// Deserializes from an arbitrary stream.
Result<std::unique_ptr<XmlIndex>> LoadIndex(std::istream& in);

}  // namespace xclean

#endif  // XCLEAN_INDEX_INDEX_IO_H_
