#include "index/manifest.h"

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <system_error>
#include <utility>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace xclean {

namespace {

namespace fs = std::filesystem;

constexpr char kManifestName[] = "MANIFEST";
constexpr uint64_t kManifestVersion = 1;

std::string ManifestPath(const std::string& dir) {
  return (fs::path(dir) / kManifestName).string();
}

std::string SnapshotFileName(uint64_t generation) {
  return StrFormat("snap-%06llu.idx",
                   static_cast<unsigned long long>(generation));
}

/// One journal line: `<body> #<fnv64-of-body, 16 hex digits>\n`.
std::string SealRecord(const std::string& body) {
  return StrFormat("%s #%016llx\n", body.c_str(),
                   static_cast<unsigned long long>(
                       Fnv1a(body.data(), body.size())));
}

/// Splits a sealed line back into its body, verifying the trailing
/// checksum. False = torn or corrupted.
bool UnsealRecord(std::string_view line, std::string& body) {
  const size_t mark = line.rfind(" #");
  if (mark == std::string_view::npos) return false;
  const std::string_view crc = line.substr(mark + 2);
  if (crc.size() != 16) return false;
  uint64_t stored = 0;
  for (char c : crc) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    stored = (stored << 4) | digit;
  }
  if (Fnv1a(line.data(), mark) != stored) return false;
  body.assign(line.substr(0, mark));
  return true;
}

bool ParseU64(const std::string& s, uint64_t& out, int base = 10) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, base);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = static_cast<uint64_t>(v);
  return true;
}

Status ManifestError(const std::string& what) {
  return Status::ParseError("snapshot manifest: " + what);
}

/// Applies one verified record body to the replay state. Unknown verbs are
/// an error: the journal is local and versioned, so an unrecognized record
/// means a newer writer — refusing beats silently dropping a retirement.
Status ApplyRecord(const std::string& body, ManifestState& state) {
  const std::vector<std::string> f = SplitChar(body, ' ');
  if (f.empty()) return ManifestError("empty record");
  if (f[0] == "version") {
    uint64_t v = 0;
    if (f.size() != 2 || !ParseU64(f[1], v)) {
      return ManifestError("malformed version record");
    }
    if (v != kManifestVersion) {
      return ManifestError(StrFormat("unsupported journal version %llu",
                                     static_cast<unsigned long long>(v)));
    }
    return Status::Ok();
  }
  if (f[0] == "publish") {
    ManifestEntry e;
    if (f.size() != 5 || !ParseU64(f[1], e.generation) ||
        !ParseU64(f[3], e.bytes) || !ParseU64(f[4], e.checksum, 16)) {
      return ManifestError("malformed publish record");
    }
    e.file = f[2];
    if (!state.live.empty() &&
        e.generation <= state.live.back().generation) {
      return ManifestError("non-increasing publish generation");
    }
    if (e.generation >= state.next_generation) {
      state.next_generation = e.generation + 1;
    }
    state.live.push_back(std::move(e));
    return Status::Ok();
  }
  if (f[0] == "retire") {
    uint64_t generation = 0;
    if (f.size() != 2 || !ParseU64(f[1], generation)) {
      return ManifestError("malformed retire record");
    }
    for (size_t i = 0; i < state.live.size(); ++i) {
      if (state.live[i].generation == generation) {
        state.live.erase(state.live.begin() + static_cast<long>(i));
        break;
      }
    }
    // Retiring an unknown generation is tolerated: a crash between the
    // RETIRE append and the unlink may be retried by an operator script.
    if (generation >= state.next_generation) {
      state.next_generation = generation + 1;
    }
    return Status::Ok();
  }
  return ManifestError("unknown record '" + f[0] + "'");
}

}  // namespace

Result<ManifestState> ReplayManifest(const std::string& dir) {
  XCLEAN_FAULT_STATUS("manifest.replay");
  ManifestState state;
  Result<std::string> contents = ReadFileToString(ManifestPath(dir));
  if (!contents.ok()) {
    if (contents.status().code() == StatusCode::kNotFound) {
      return state;  // fresh directory
    }
    return contents.status();
  }
  const std::string& data = contents.value();

  size_t pos = 0;
  while (pos < data.size()) {
    const size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      // No terminating newline: a torn final append. Discard the tail.
      state.valid_bytes = pos;
      state.torn_bytes = data.size() - pos;
      return state;
    }
    std::string body;
    if (!UnsealRecord(std::string_view(data).substr(pos, nl - pos), body)) {
      // A record that fails its checksum poisons everything after it:
      // the journal is append-only, so later records were written after
      // the corruption and cannot be ordered against it safely.
      state.valid_bytes = pos;
      state.torn_bytes = data.size() - pos;
      return state;
    }
    Status s = ApplyRecord(body, state);
    if (!s.ok()) return s;
    ++state.records;
    pos = nl + 1;
  }
  state.valid_bytes = pos;
  return state;
}

SnapshotLifecycle::SnapshotLifecycle(std::string dir)
    : dir_(std::move(dir)) {}

Status SnapshotLifecycle::Open() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot directory: " + dir_);
  }
  Result<ManifestState> replayed = ReplayManifest(dir_);
  if (!replayed.ok()) return replayed.status();
  state_ = std::move(replayed).value();
  if (state_.torn_bytes > 0) {
    // Repair the tail before accepting appends. Appends use O_APPEND, so
    // a corrupt tail left in place would have every future record
    // concatenated after bytes replay can never get past — publishes made
    // after a crash would be invisible to recovery, while retirements
    // (trusting this in-memory state) still delete the old files that
    // recovery *can* see.
    Status s = TruncateFile(ManifestPath(dir_), state_.valid_bytes);
    if (!s.ok()) return s;
    state_.torn_bytes = 0;
  }
  open_ = true;
  if (state_.records == 0) {
    // Fresh journal — or one whose tail repair removed even the version
    // record; either way the next record must be the version header.
    return AppendRecord(StrFormat("version %llu",
                                  static_cast<unsigned long long>(
                                      kManifestVersion)),
                        /*sync=*/true);
  }
  return Status::Ok();
}

Status SnapshotLifecycle::AppendRecord(const std::string& body, bool sync) {
  DurableWriteOptions d;
  d.sync = sync;
  Status s = AppendDurable(ManifestPath(dir_), SealRecord(body), d);
  if (s.ok()) {
    ++state_.records;
  } else {
    // The append may have left partial bytes in the journal, so the file
    // and this in-memory state can no longer be assumed to agree. Force
    // the next operation back through Open(), which replays the journal
    // and truncates any torn tail before appending again.
    open_ = false;
  }
  return s;
}

Result<PublishedSnapshot> SnapshotLifecycle::Publish(const XmlIndex& index,
                                                     PublishOptions options) {
  XCLEAN_FAULT_STATUS("manifest.publish");
  if (!open_) {
    Status s = Open();
    if (!s.ok()) return s;
  }

  PublishedSnapshot out;
  out.generation = state_.next_generation;
  const std::string file = SnapshotFileName(out.generation);
  out.path = (fs::path(dir_) / file).string();

  std::ostringstream payload_stream;
  Status s = SaveIndex(index, payload_stream, options.save);
  if (!s.ok()) return s;
  const std::string payload = payload_stream.str();
  out.bytes = payload.size();
  out.checksum = Fnv1a(payload.data(), payload.size());

  // File first, journal second: the PUBLISH record is the commit point,
  // and it must never reference bytes that could still be torn.
  DurableWriteOptions d;
  d.sync = options.sync;
  s = AtomicWriteFile(out.path, payload, d);
  if (!s.ok()) return s;

  s = AppendRecord(
      StrFormat("publish %llu %s %llu %016llx",
                static_cast<unsigned long long>(out.generation), file.c_str(),
                static_cast<unsigned long long>(out.bytes),
                static_cast<unsigned long long>(out.checksum)),
      options.sync);
  if (!s.ok()) return s;

  ManifestEntry e;
  e.generation = out.generation;
  e.file = file;
  e.bytes = out.bytes;
  e.checksum = out.checksum;
  state_.live.push_back(std::move(e));
  state_.next_generation = out.generation + 1;
  return out;
}

Status SnapshotLifecycle::RetireOldGenerations(size_t keep_latest) {
  XCLEAN_FAULT_STATUS("manifest.retire");
  if (!open_) {
    Status s = Open();
    if (!s.ok()) return s;
  }
  if (keep_latest < 1) keep_latest = 1;
  if (state_.live.size() <= keep_latest) return Status::Ok();

  const size_t retire_count = state_.live.size() - keep_latest;
  for (size_t i = 0; i < retire_count; ++i) {
    // Always the oldest first; the journal entry lands before the unlink
    // so recovery never tries a generation whose file may be half-gone.
    const ManifestEntry entry = state_.live.front();
    Status s = AppendRecord(
        StrFormat("retire %llu",
                  static_cast<unsigned long long>(entry.generation)),
        /*sync=*/true);
    if (!s.ok()) return s;
    state_.live.erase(state_.live.begin());
    std::error_code ec;
    fs::remove(fs::path(dir_) / entry.file, ec);
    // A failed unlink leaves an orphan file, not an inconsistency.
  }
  return SyncDirectory(dir_);
}

Result<RecoveredSnapshot> RecoverLatestSnapshot(const std::string& dir) {
  XCLEAN_FAULT_STATUS("manifest.recover");
  Result<ManifestState> replayed = ReplayManifest(dir);
  if (!replayed.ok()) return replayed.status();
  const ManifestState& state = replayed.value();

  RecoveredSnapshot out;
  for (auto it = state.live.rbegin(); it != state.live.rend(); ++it) {
    const std::string path = (fs::path(dir) / it->file).string();
    // Cheap whole-file identity check first, then the per-section checks
    // inside LoadIndex — a file can hash correctly yet still fail to load
    // only if the publisher recorded garbage, which also counts as a bad
    // generation.
    Status verified = VerifyFileChecksum(path, it->bytes, it->checksum);
    if (verified.ok()) {
      Result<std::unique_ptr<XmlIndex>> index = LoadIndex(path);
      if (index.ok()) {
        out.generation = it->generation;
        out.path = path;
        out.index = std::move(index).value();
        return out;
      }
    }
    ++out.generations_skipped;
  }
  return Status::NotFound(
      StrFormat("no recoverable snapshot generation in '%s' "
                "(%zu live entries, %llu failed verification)",
                dir.c_str(), state.live.size(),
                static_cast<unsigned long long>(out.generations_skipped)));
}

}  // namespace xclean
