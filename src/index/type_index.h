#ifndef XCLEAN_INDEX_TYPE_INDEX_H_
#define XCLEAN_INDEX_TYPE_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "index/vocabulary.h"
#include "xml/tree.h"

namespace xclean {

/// One entry of a token's type list: f_w^p = number of nodes whose label
/// path is `path` and that contain the token w anywhere in their subtree
/// (Eq. 7 of the paper).
struct PathFreq {
  PathId path;
  uint32_t freq;
};

/// The index of Sec. V-B: "for each keyword w, returns a list P_w of types
/// and their f_w^p values". Lists are sorted by PathId so FindResultType can
/// intersect them with a multi-way merge.
class TypeIndex {
 public:
  TypeIndex() = default;

  /// Type list of a token (empty span for out-of-range tokens).
  std::span<const PathFreq> list(TokenId token) const {
    if (token >= lists_.size()) return {};
    return lists_[token];
  }

  size_t token_count() const { return lists_.size(); }

 private:
  friend class XmlIndex;
  friend class IndexBuilder;          // index_builder.cc
  friend struct SerializationAccess;  // index_io.cc
  std::vector<std::vector<PathFreq>> lists_;
};

}  // namespace xclean

#endif  // XCLEAN_INDEX_TYPE_INDEX_H_
