#ifndef XCLEAN_INDEX_INDEX_BUILDER_H_
#define XCLEAN_INDEX_INDEX_BUILDER_H_

#include <memory>

#include "index/xml_index.h"

namespace xclean {

/// Pipelined, optionally parallel construction of an XmlIndex
/// (IndexOptions::build_threads picks the degree). The pipeline:
///
///   1. tokenize     — parallel over chunks of text-bearing nodes,
///   2. intern       — serial scan in node order (vocabulary ids must come
///                     out in first-seen preorder, exactly as a serial
///                     build assigns them),
///   3. postings     — parallel over vocabulary shards: each shard scans
///                     the flat occurrence table once and appends postings
///                     for its own token range (node order is preserved
///                     because the table is in node order),
///   4. subtree sums — serial reverse-preorder accumulation (O(n)),
///   5. type lists   — parallel over tokens (independent per token),
///   6. FastSS       — parallel neighborhood generation per vocabulary
///                     shard with a deterministic sorted merge.
///
/// Every merge point is deterministic, so a build with any thread count
/// serializes to byte-identical snapshots (asserted by
/// parallel_build_test). XmlIndex::Build delegates here; this header only
/// exists so tests and tools can name the builder directly.
class IndexBuilder {
 public:
  static std::unique_ptr<XmlIndex> Build(XmlTree tree, IndexOptions options);
};

}  // namespace xclean

#endif  // XCLEAN_INDEX_INDEX_BUILDER_H_
