#ifndef XCLEAN_INDEX_XML_INDEX_H_
#define XCLEAN_INDEX_XML_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/postings.h"
#include "index/type_index.h"
#include "index/vocabulary.h"
#include "text/fastss.h"
#include "xml/tokenizer.h"
#include "xml/tree.h"

namespace xclean {

/// Index construction knobs.
struct IndexOptions {
  /// Tokenization policy (paper defaults: drop stopwords, numbers, <3 chars).
  TokenizerOptions tokenizer;
  /// Maximum edit distance the FastSS variant index can answer. Workloads
  /// whose misspellings go further (e.g. RULE) should raise this.
  uint32_t fastss_max_ed = 2;
  /// Token length from which FastSS switches to the partitioned layout.
  size_t fastss_partition_min_length = 13;
  /// Threads used by Build (0 = hardware concurrency). Any value yields the
  /// same index — parallel and serial builds serialize to identical bytes —
  /// so this is purely a build-latency knob and is not persisted in
  /// snapshots.
  size_t build_threads = 1;
};

/// Summary statistics in the shape of the paper's Table I.
struct IndexStats {
  uint64_t node_count = 0;
  uint64_t text_node_count = 0;   // nodes with direct text (PY08's "tuples")
  uint64_t token_occurrences = 0; // total indexed token occurrences
  uint64_t vocabulary_size = 0;
  uint64_t path_count = 0;        // distinct label paths (node types)
  uint32_t max_depth = 0;
  double avg_depth = 0.0;
  uint64_t xml_bytes = 0;         // size of the serialized source, if known
};

/// All per-document structures the query-cleaning algorithms need, built in
/// one pass over the tree (Sec. V-B/V-C):
///
///  - vocabulary V and FastSS variant index over it,
///  - one inverted list per token: sorted (node, tf) postings,
///  - one type list per token: (path, f_w^p) for FindResultType,
///  - collection frequency cf(w) and total token count (background language
///    model P(w|B) = cf(w) / total),
///  - document frequency df(w) over text-bearing nodes and per-node direct
///    token counts (the PY08 baseline's TF/IDF ingredients),
///  - per-node subtree token counts: |D(r)| of the entity virtual document.
///
/// The index owns its XmlTree. Immutable after Build.
class XmlIndex {
 public:
  /// Builds the index over `tree` (which it takes ownership of).
  static std::unique_ptr<XmlIndex> Build(XmlTree tree,
                                         IndexOptions options = IndexOptions());

  XmlIndex(const XmlIndex&) = delete;
  XmlIndex& operator=(const XmlIndex&) = delete;

  const XmlTree& tree() const { return tree_; }
  const Vocabulary& vocabulary() const { return vocabulary_; }
  const TypeIndex& type_index() const { return type_index_; }
  const FastSsIndex& fastss() const { return fastss_; }
  const Tokenizer& tokenizer() const { return tokenizer_; }
  const IndexOptions& options() const { return options_; }

  const PostingList& postings(TokenId token) const {
    return inverted_lists_[token];
  }

  /// Collection frequency of a token (total occurrences).
  uint64_t collection_freq(TokenId token) const { return cf_[token]; }
  /// Number of text-bearing nodes containing the token directly.
  uint32_t doc_freq(TokenId token) const { return df_[token]; }
  /// Total indexed token occurrences in the document.
  uint64_t total_tokens() const { return total_tokens_; }
  /// Number of text-bearing nodes (PY08's N).
  uint32_t text_node_count() const { return text_node_count_; }

  /// Background unigram probability P(w|B) = cf(w) / total.
  double BackgroundProb(TokenId token) const {
    return static_cast<double>(cf_[token]) /
           static_cast<double>(total_tokens_);
  }

  /// Tokens directly in node n (the |t| of PY08's tfidf).
  uint32_t node_token_count(NodeId n) const { return node_tokens_[n]; }
  /// Tokens in the subtree of n — |D(r)| of the virtual document D(r).
  uint64_t subtree_token_count(NodeId n) const { return subtree_tokens_[n]; }

  IndexStats stats() const;

  /// Approximate resident bytes of all index structures (tree, postings,
  /// type lists, statistics vectors, FastSS). The paper's Table I context
  /// reports index sizes (1.8 GB INEX / 400 MB DBLP); this is our analog.
  uint64_t ApproxMemoryBytes() const;

  /// Records the byte size of the XML source (for Table I reporting).
  void set_source_bytes(uint64_t bytes) { source_bytes_ = bytes; }

 private:
  friend class IndexBuilder;
  friend struct SerializationAccess;  // index_io.cc
  XmlIndex(XmlTree tree, IndexOptions options)
      : tree_(std::move(tree)),
        options_(options),
        tokenizer_(options.tokenizer) {}

  XmlTree tree_;
  IndexOptions options_;
  Tokenizer tokenizer_;
  Vocabulary vocabulary_;
  TypeIndex type_index_;
  FastSsIndex fastss_;
  std::vector<PostingList> inverted_lists_;
  std::vector<uint64_t> cf_;
  std::vector<uint32_t> df_;
  std::vector<uint32_t> node_tokens_;
  std::vector<uint64_t> subtree_tokens_;
  uint64_t total_tokens_ = 0;
  uint32_t text_node_count_ = 0;
  uint64_t source_bytes_ = 0;
};

}  // namespace xclean

#endif  // XCLEAN_INDEX_XML_INDEX_H_
