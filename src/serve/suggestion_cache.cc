#include "serve/suggestion_cache.h"

#include <algorithm>

namespace xclean::serve {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SuggestionCache::SuggestionCache(CacheOptions options)
    : capacity_(options.capacity) {
  size_t shard_count = RoundUpPow2(std::max<size_t>(1, options.shards));
  // No point in more shards than capacity.
  if (capacity_ > 0) {
    while (shard_count > 1 && shard_count > capacity_) shard_count >>= 1;
  }
  shard_mask_ = shard_count - 1;
  per_shard_capacity_ =
      capacity_ == 0 ? 0 : std::max<size_t>(1, capacity_ / shard_count);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool SuggestionCache::Get(const std::string& key,
                          std::vector<Suggestion>* out) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      if (out != nullptr) *out = it->second->value;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void SuggestionCache::Put(const std::string& key,
                          std::vector<Suggestion> value) {
  if (capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->value = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(value)});
      shard.map.emplace(key, shard.lru.begin());
      while (shard.lru.size() > per_shard_capacity_) {
        shard.map.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

void SuggestionCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
  }
}

SuggestionCache::Stats SuggestionCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->map.size();
  }
  return s;
}

}  // namespace xclean::serve
