#ifndef XCLEAN_SERVE_METRICS_H_
#define XCLEAN_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace xclean::serve {

/// Lock-free latency histogram with geometric (power-of-two) microsecond
/// buckets: bucket i counts samples with bit_width(usec) == i, i.e. the
/// range [2^(i-1), 2^i). 40 buckets cover up to ~18 minutes, far beyond
/// any request deadline. Recording is a single relaxed fetch_add; quantile
/// estimates are read from a racy but monotonically-consistent scan (fine
/// for monitoring).
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(uint64_t micros) {
    size_t b = Bucket(micros);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Mean latency in milliseconds (0 when empty).
  double MeanMillis() const;

  /// Quantile estimate in milliseconds: the upper bound of the bucket in
  /// which the q-quantile sample falls (q in [0,1]). Overestimates by at
  /// most 2x, which is the standard trade-off of log-bucketed histograms.
  double QuantileMillis(double q) const;

  void Reset();

 private:
  static size_t Bucket(uint64_t micros) {
    size_t width = 0;
    while (micros > 0 && width + 1 < kBuckets) {
      micros >>= 1;
      ++width;
    }
    return width;
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

/// Point-in-time copy of every serving counter, cheap to pass around.
struct MetricsSnapshot {
  uint64_t requests = 0;            ///< accepted into the engine
  uint64_t completed = 0;           ///< produced a suggestion list
  uint64_t rejected = 0;            ///< backpressure: queue was full
  uint64_t deadline_exceeded = 0;   ///< expired in queue or mid-algorithm
  uint64_t shed_overload = 0;       ///< shed by the degradation ladder
  uint64_t truncated_results = 0;   ///< served a partial (budgeted) top-k
  uint64_t invalid_arguments = 0;   ///< rejected by input bounds
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t snapshot_swaps = 0;      ///< index hot-swaps
  uint64_t latency_count = 0;       ///< samples behind the quantiles
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;

  /// Degradation-ladder state, folded in by the engine at snapshot time
  /// (the controller keeps its own atomics): requests admitted per tier
  /// (0=full 1=reduced 2=cache_only 3=shed), the tier in effect now, and
  /// the controller's own p95 EWMA estimate.
  std::array<uint64_t, 4> tier_requests{};
  int current_tier = 0;
  double overload_p95_ms = 0.0;

  /// Incremental-indexing state, folded in by the engine at snapshot time
  /// from the live delta stack's own counters (delta/live_index.h); all
  /// zero unless EnableLiveUpdates is on.
  bool live_enabled = false;
  uint64_t live_adds = 0;
  uint64_t live_deletes = 0;
  uint64_t live_compactions = 0;
  uint64_t live_docs = 0;     ///< documents served (base + deltas - dead)
  uint64_t delta_layers = 0;  ///< base + frozen deltas + built memtable
  double last_compact_ms = 0.0;  ///< wall time of the last compaction
  double last_publish_ms = 0.0;  ///< durable-publish share of the above

  /// One-line text dump, e.g. for periodic logging:
  ///   req=1000 done=990 rej=10 dead=0 shed=0 trunc=0 inval=0 hit=700
  ///   miss=290 evict=12 swap=1 p50=0.8ms p95=2.1ms p99=4.5ms mean=1.0ms
  ///   tier=full tiers=990/0/0/0
  /// With live updates enabled, a live section is appended:
  ///   ... live=52/3/2 live_docs=250 layers=1 compact=18.40ms
  ///   publish=6.10ms  (adds/deletes/compactions)
  std::string ToString() const;
};

/// The serving engine's counters. All increments are relaxed atomics —
/// metrics never order anything — so the registry adds no contention to
/// the request path beyond cache-line traffic.
class MetricsRegistry {
 public:
  void IncrRequests() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void IncrCompleted() { completed_.fetch_add(1, std::memory_order_relaxed); }
  void IncrRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void IncrDeadlineExceeded() {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  void IncrShedOverload() {
    shed_overload_.fetch_add(1, std::memory_order_relaxed);
  }
  void IncrTruncated() {
    truncated_.fetch_add(1, std::memory_order_relaxed);
  }
  void IncrInvalidArgument() {
    invalid_.fetch_add(1, std::memory_order_relaxed);
  }
  void IncrSwaps() { swaps_.fetch_add(1, std::memory_order_relaxed); }

  void RecordLatencyMicros(uint64_t micros) { latency_.Record(micros); }

  /// Cache counters are folded in by the engine at snapshot time (the
  /// cache keeps its own atomics so it stays usable standalone).
  MetricsSnapshot Snapshot(uint64_t cache_hits = 0, uint64_t cache_misses = 0,
                           uint64_t cache_evictions = 0) const;

  void Reset();

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> shed_overload_{0};
  std::atomic<uint64_t> truncated_{0};
  std::atomic<uint64_t> invalid_{0};
  std::atomic<uint64_t> swaps_{0};
  LatencyHistogram latency_;
};

}  // namespace xclean::serve

#endif  // XCLEAN_SERVE_METRICS_H_
