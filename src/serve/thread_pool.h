#ifndef XCLEAN_SERVE_THREAD_POOL_H_
#define XCLEAN_SERVE_THREAD_POOL_H_

// The pool moved to common/ so the index builder can run ParallelFor over
// it without a serve -> index -> serve layering cycle. Serving code keeps
// using the xclean::serve names below.
#include "common/thread_pool.h"

namespace xclean::serve {

using ThreadPool = ::xclean::ThreadPool;
using ThreadPoolOptions = ::xclean::ThreadPoolOptions;

}  // namespace xclean::serve

#endif  // XCLEAN_SERVE_THREAD_POOL_H_
