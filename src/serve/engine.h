#ifndef XCLEAN_SERVE_ENGINE_H_
#define XCLEAN_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/suggester.h"
#include "delta/live_index.h"
#include "index/manifest.h"
#include "serve/metrics.h"
#include "serve/overload.h"
#include "serve/suggestion_cache.h"

namespace xclean::serve {

struct EngineOptions {
  /// Worker pool sizing and queue bound (backpressure knob).
  ThreadPoolOptions pool;
  /// Suggestion cache sizing; set `cache.capacity = 0` to serve uncached.
  CacheOptions cache;
  /// Deadline applied to requests submitted without an explicit one;
  /// zero means "no deadline".
  std::chrono::milliseconds default_deadline{0};
  /// Input bounds enforced on every request before any candidate work
  /// (oversized input answers InvalidArgument).
  QueryParseLimits query_limits;
  /// Per-request in-algorithm work caps, charged alongside the deadline
  /// through the CancelToken (0 = unlimited). Machine-speed independent:
  /// they bound postings drained and Cartesian candidates scored.
  uint64_t max_postings_per_query = 0;
  uint64_t max_candidates_per_query = 0;
  /// Degradation-ladder thresholds; deadline_ms is derived from
  /// default_deadline when left 0.
  OverloadControllerOptions overload;
  /// SwapIndexFromFile: attempts per call (transient read/parse errors are
  /// retried with exponential backoff starting at swap_retry_backoff); a
  /// file still corrupt after the last attempt is quarantined until its
  /// *content* changes (whole-file checksum — size/mtime would miss a
  /// same-second in-place rewrite). NotFound never retries or quarantines.
  int swap_load_attempts = 3;
  std::chrono::milliseconds swap_retry_backoff{10};
};

/// Outcome of one served request.
struct ServeResult {
  Status status;
  std::vector<Suggestion> suggestions;
  /// True when the list came out of the suggestion cache.
  bool cache_hit = false;
  /// Queue wait + compute time, as observed by the engine.
  double latency_ms = 0.0;
  /// Time spent inside Suggest() proper (0 for cache hits and non-served
  /// outcomes). The overload bench asserts compute_ms never exceeds 2x the
  /// request deadline — the cancellation guarantee.
  double compute_ms = 0.0;
  /// Version of the index snapshot that served the request.
  uint64_t snapshot_version = 0;
  /// True when the suggestions are a best-effort partial top-k (the
  /// in-algorithm budget tripped mid-evaluation). Never set on cache hits;
  /// truncated lists are not cached.
  bool truncated = false;
  /// Degradation tier the request was admitted at.
  ServiceTier tier = ServiceTier::kFull;
};

using ServeCallback = std::function<void(ServeResult)>;
using BatchServeCallback = std::function<void(std::vector<ServeResult>)>;

/// In-process concurrent query-serving engine over an immutable
/// XCleanSuggester snapshot:
///
///   - a fixed-size thread pool with a *bounded* queue: when the queue is
///     full, SubmitSuggest returns Unavailable immediately (backpressure)
///     instead of blocking the caller;
///   - per-request deadlines, checked when a worker picks the request up
///     (an expired request is answered DeadlineExceeded without paying for
///     candidate generation);
///   - a sharded LRU suggestion cache keyed on the normalized query, the
///     suggester's options fingerprint and the snapshot version — so a
///     hot-swap can never serve stale suggestions;
///   - atomically hot-swappable index snapshots: SwapIndex installs a new
///     suggester while in-flight requests finish on the snapshot they
///     started with (shared_ptr keeps it alive);
///   - a metrics registry (counters + latency histogram with p50/p95/p99);
///   - optional incremental indexing (EnableLiveUpdates): a delta stack
///     (src/delta/) layered over the snapshot so documents can be added and
///     deleted online, with crash-safe background compaction.
///
/// Usage:
///   auto engine = ServingEngine(std::make_shared<const XCleanSuggester>(
///       std::move(suggester)));
///   engine.SubmitSuggest("tree icdt", [](serve::ServeResult r) { ... });
///   ...
///   engine.SwapIndex(rebuilt);          // readers migrate atomically
///   puts(engine.Metrics().ToString().c_str());
class ServingEngine {
 public:
  ServingEngine(std::shared_ptr<const XCleanSuggester> suggester,
                EngineOptions options = EngineOptions());

  /// Drains queued requests, then joins the workers.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Asynchronous entry point: enqueue `query_text` and invoke `done`
  /// (on a worker thread) with the outcome. Returns immediately:
  /// Ok when accepted, Unavailable when the queue is full (the callback
  /// is then never invoked). The request inherits
  /// EngineOptions::default_deadline.
  Status SubmitSuggest(std::string query_text, ServeCallback done);

  /// Same, with an explicit absolute deadline (steady clock).
  Status SubmitSuggest(std::string query_text,
                       std::chrono::steady_clock::time_point deadline,
                       ServeCallback done);

  /// Synchronous convenience: serves on the calling thread through the
  /// same cache/metrics path (no queue, so never rejected). Safe to call
  /// from any number of threads.
  ServeResult Suggest(const std::string& query_text);

  /// Synchronous batch entry point: pins ONE snapshot for the whole batch
  /// (all results carry the same snapshot_version) and serves every query
  /// through the calling thread's scratch arena, so the batch pays one
  /// warm-up instead of one per query. Each query still goes through the
  /// cache/metrics path individually. Results are positional.
  std::vector<ServeResult> SuggestBatch(
      const std::vector<std::string>& query_texts);

  /// Asynchronous batch: enqueues the whole batch as one pool task (one
  /// queue slot, one snapshot pin, one scratch warm-up) and invokes `done`
  /// (on a worker thread) with the positional results. Returns Unavailable
  /// when the queue is full — the batch is all-or-nothing. Every query in
  /// the batch inherits EngineOptions::default_deadline, measured from
  /// submission.
  Status SubmitSuggestBatch(std::vector<std::string> query_texts,
                            BatchServeCallback done);

  /// Installs `next` as the serving snapshot. In-flight and queued
  /// requests that already grabbed the old snapshot complete against it;
  /// requests picked up afterwards see `next`. Old cache entries die with
  /// their version key (they stop being hit and age out via LRU).
  void SwapIndex(std::shared_ptr<const XCleanSuggester> next);

  /// Loads an index snapshot file written by SaveIndex (index/index_io.h)
  /// and hot-swaps the engine onto it — the offline-build / online-serve
  /// deployment: a builder process writes the snapshot, the server picks it
  /// up without restarting or re-indexing. The load and suggester
  /// construction happen on the calling thread with serving undisturbed;
  /// on any load error the current snapshot keeps serving and the error is
  /// returned.
  Status SwapIndexFromFile(const std::string& path,
                           SuggesterOptions options = SuggesterOptions());

  /// Startup/restart recovery against a durable snapshot directory
  /// (index/manifest.h): replays the recovery journal, loads the newest
  /// generation that passes checksum verification (falling back one
  /// generation at a time past torn or corrupt files), and hot-swaps the
  /// engine onto it. Returns the recovered generation. The caller decides
  /// when to retire older generations — only after this returned Ok, so a
  /// fallback target always exists (SnapshotLifecycle::
  /// RetireOldGenerations).
  Result<uint64_t> RecoverFrom(const std::string& dir,
                               SuggesterOptions options = SuggesterOptions());

  /// Turns on incremental indexing (src/delta/): an LSM-style delta stack
  /// is layered over the current snapshot's index, and AddDocument /
  /// DeleteDocument / CompactLive become available. Queries are then served
  /// through the layered read path (delta::LiveSnapshot), whose scores are
  /// provably identical to a from-scratch rebuild over the live documents
  /// (tests/differential_test.cc). A document is visible to every Suggest
  /// issued after AddDocument returns; the suggestion cache keys on the
  /// live mutation sequence, so it can never serve a pre-mutation answer.
  ///
  /// `compact_after_docs` > 0 arms auto-compaction: when the memtable
  /// reaches that many documents after an Add, a background compaction
  /// folds the stack into the next base generation. `snapshot_dir`, when
  /// non-empty, makes every compaction durably publish the new generation
  /// through the crash-safe MANIFEST journal (index/manifest.h).
  ///
  /// Preconditions (InvalidArgument otherwise): the layered read path
  /// requires space_tau == 0, no entity_prior and min_depth >= 2.
  /// InvalidArgument when already enabled. SwapIndex / SwapIndexFromFile
  /// / RecoverFrom disable live updates (the delta stack belongs to the
  /// index it was layered over).
  Status EnableLiveUpdates(size_t compact_after_docs = 0,
                           const std::string& snapshot_dir = "");

  /// Parses and indexes one XML document into the live delta stack. On Ok
  /// the document is served by every subsequent Suggest. InvalidArgument
  /// unless EnableLiveUpdates was called.
  Result<delta::DocId> AddDocument(std::string_view document_xml);

  /// Deletes a live document by the id AddDocument returned (base-index
  /// documents cannot be addressed). Idempotent.
  Status DeleteDocument(delta::DocId id);

  /// Synchronously folds the delta stack into the next base generation
  /// (durably published when EnableLiveUpdates was given a snapshot_dir;
  /// the returned value is then the published generation, else 0). Queries
  /// keep serving throughout.
  Result<uint64_t> CompactLive(bool sync = true);

  /// Starts a background compaction; Unavailable if one is running.
  Status CompactLiveInBackground();

  /// Joins any in-flight background compaction.
  void WaitForLiveCompaction();

  /// The live delta stack, or null when live updates are not enabled.
  std::shared_ptr<delta::LiveIndex> live_index() const;

  /// The current snapshot (never null). Callers may hold it for direct,
  /// engine-free reads; it stays valid across swaps.
  std::shared_ptr<const XCleanSuggester> snapshot() const;
  uint64_t snapshot_version() const {
    return version_.load(std::memory_order_relaxed);
  }

  /// Counters + latency quantiles, with cache stats and degradation-ladder
  /// state folded in.
  MetricsSnapshot Metrics() const;
  SuggestionCache::Stats CacheStats() const { return cache_.stats(); }

  /// The degradation tier currently in effect (see serve/overload.h).
  ServiceTier current_tier() const { return overload_.current_tier(); }

  /// Stops accepting work and drains the queue. Called by the destructor.
  void Shutdown() { pool_.Shutdown(); }

  size_t num_threads() const { return pool_.num_threads(); }
  size_t queue_depth() const { return pool_.queue_depth(); }

 private:
  /// The unit swapped atomically: the suggester plus everything derived
  /// from it that must stay consistent with it (version, cache-key prefix).
  struct Snapshot {
    std::shared_ptr<const XCleanSuggester> suggester;
    /// Live delta stack layered over `suggester`'s index; null unless
    /// EnableLiveUpdates installed one. When set, requests are served
    /// through live->snapshot() and cache keys gain the mutation sequence.
    std::shared_ptr<delta::LiveIndex> live;
    uint64_t version = 0;
    /// "v<version>|<options fingerprint>|" — prepended to the normalized
    /// query to form the cache key.
    std::string key_prefix;
  };

  /// Pins the live snapshot. The lock covers only a shared_ptr copy (two
  /// refcount ops, ~tens of ns); snapshot construction and index builds
  /// always happen outside it. A mutex-guarded pointer instead of
  /// std::atomic<std::shared_ptr> because libstdc++-12's _Sp_atomic
  /// lock-bit protocol is invisible to ThreadSanitizer (false-positive
  /// races), and the TSan-clean stress test is a hard requirement.
  std::shared_ptr<const Snapshot> CurrentSnapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return snapshot_;
  }

  /// The request path shared by sync and async serving: pins the current
  /// snapshot and delegates.
  ServeResult Execute(const std::string& query_text,
                      std::chrono::steady_clock::time_point enqueue_time,
                      std::chrono::steady_clock::time_point deadline);

  /// Serves one query against an already-pinned snapshot; batch entry
  /// points pin once and call this per query.
  ServeResult ExecuteOnSnapshot(
      const std::shared_ptr<const Snapshot>& snap,
      const std::string& query_text,
      std::chrono::steady_clock::time_point enqueue_time,
      std::chrono::steady_clock::time_point deadline);

  static std::shared_ptr<const Snapshot> MakeSnapshot(
      std::shared_ptr<const XCleanSuggester> suggester, uint64_t version,
      std::shared_ptr<delta::LiveIndex> live = nullptr);

  /// Identity of a snapshot file that failed to load after every retry.
  /// While the file's contents still hash the same, further
  /// SwapIndexFromFile calls fail fast instead of re-parsing a known-bad
  /// file; any content change (a re-published snapshot, even one landing
  /// within the same second at the same size) clears the quarantine. The
  /// hash is computed lazily — only when an entry exists for the path, or
  /// when inserting one after the final failed attempt — so successful
  /// swaps never pay the extra whole-file read.
  struct QuarantineEntry {
    uint64_t checksum = 0;
  };

  EngineOptions options_;
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_;  ///< guarded by snapshot_mu_
  std::atomic<uint64_t> version_{1};
  SuggestionCache cache_;
  MetricsRegistry metrics_;
  OverloadController overload_;
  mutable std::mutex quarantine_mu_;
  std::map<std::string, QuarantineEntry> quarantine_;  ///< by path

  /// Live-update state. `live_mu_` guards the two pointers below and is
  /// acquired before snapshot_mu_ when both are needed. Operations copy the
  /// shared_ptrs out and release the lock before touching the LiveIndex
  /// (which serializes internally), so mutations never block readers here.
  /// Background compactions capture the lifecycle shared_ptr in their done
  /// callback, keeping the journal handle alive for as long as the
  /// compactor thread may use it — even across a SwapIndex that detaches
  /// the live stack mid-flight.
  mutable std::mutex live_mu_;
  std::shared_ptr<delta::LiveIndex> live_;        ///< guarded by live_mu_
  std::shared_ptr<SnapshotLifecycle> lifecycle_;  ///< guarded by live_mu_

  ThreadPool pool_;  ///< last member: workers die before the rest
};

/// Stable fingerprint of every option that changes Suggest() output, used
/// in cache keys; exposed for tests.
std::string OptionsFingerprint(const SuggesterOptions& options);

}  // namespace xclean::serve

#endif  // XCLEAN_SERVE_ENGINE_H_
