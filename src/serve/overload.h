#ifndef XCLEAN_SERVE_OVERLOAD_H_
#define XCLEAN_SERVE_OVERLOAD_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "common/clock.h"
#include "core/xclean.h"

namespace xclean {

/// The degradation ladder, in order of increasing pressure. Each step
/// trades suggestion quality for latency headroom, following the paper's
/// own knobs (epsilon/gamma/top-k, Sec. V) rather than failing outright —
/// the staged-degradation philosophy of SEDA-style overload control.
enum class ServiceTier : int {
  /// Normal service: full options, full budget.
  kFull = 0,
  /// Reduced quality: per-query caps on max_ed/gamma/top_k (see
  /// OverloadOptions::reduced_tuning) shrink the candidate space.
  kReduced = 1,
  /// Cache hits only; misses are shed with Unavailable instead of running
  /// the algorithm.
  kCacheOnly = 2,
  /// Everything is shed with Unavailable.
  kShed = 3,
};

inline const char* TierName(ServiceTier tier) {
  switch (tier) {
    case ServiceTier::kFull:
      return "full";
    case ServiceTier::kReduced:
      return "reduced";
    case ServiceTier::kCacheOnly:
      return "cache_only";
    default:
      return "shed";
  }
}

/// Knobs of the overload controller. Pressure is measured two ways — queue
/// fill (queued requests / capacity) and a p95-latency estimate relative to
/// the default deadline — and the ladder escalates on whichever trips
/// first. Queue fill reacts within one request to a burst; the latency
/// estimate catches the slow-poison case where few-but-pathological
/// queries stretch service times before any queue forms.
struct OverloadControllerOptions {
  /// Queue-fill fractions at which each tier engages.
  double reduce_fill = 0.50;
  double cache_only_fill = 0.75;
  double shed_fill = 0.95;

  /// p95 latency as a fraction of the default deadline at which the tiers
  /// engage (0 disables latency-based escalation for that tier). kShed is
  /// deliberately queue-only: high latency with an empty queue means slow
  /// queries, not more offered load than capacity.
  double reduce_latency = 0.60;
  double cache_only_latency = 0.90;

  /// The deadline (ms) the latency fractions are relative to; the engine
  /// fills this in from its default_deadline. 0 disables latency-based
  /// escalation entirely.
  double deadline_ms = 0.0;

  /// Asymmetric EWMA step for the p95 estimator: the estimate moves up by
  /// `ewma_alpha` of the gap on a sample above it and down by
  /// `ewma_alpha / 19` on one below, so it converges on the quantile with
  /// 19:1 asymmetry (p95) while staying O(1) and lock-free.
  double ewma_alpha = 0.05;

  /// Hysteresis: escalation is immediate, but stepping DOWN one tier
  /// requires the measured pressure to have stayed below the current tier
  /// for this long. Prevents flapping at a threshold boundary.
  uint64_t step_down_hold_ms = 250;

  /// Per-query caps applied in the kReduced tier.
  QueryTuning reduced_tuning{/*max_ed=*/1, /*gamma=*/256, /*top_k=*/5};

  /// Test backdoor: >= 0 pins the controller to that tier (0..3).
  int forced_tier = -1;

  /// Time source for the hysteresis hold and latency measurement (null =
  /// the real steady clock). Tests inject a ManualClock so step-down-hold
  /// assertions advance virtual time instead of sleeping.
  const Clock* clock = nullptr;
};

/// Walks the degradation ladder from queue-depth and latency signals.
/// All state is relaxed atomics: Evaluate() and RecordLatency() are called
/// on every request from every worker, and a lost update costs at most one
/// request served at a neighbouring tier — monitoring-grade accuracy, by
/// design, in exchange for staying off the request-path locks.
class OverloadController {
 public:
  explicit OverloadController(
      OverloadControllerOptions options = OverloadControllerOptions());

  /// Re-evaluates the tier from the instantaneous queue fill and the p95
  /// estimate, applies hysteresis, counts the request against the
  /// resulting tier, and returns it. Called once per request at admission.
  ServiceTier Evaluate(size_t queue_depth, size_t queue_capacity);

  /// Feeds one completed request's total latency into the p95 estimator.
  void RecordLatency(double latency_ms);

  /// Zeroes the p95 estimate (and its hysteresis clock). Called on index
  /// swap: the estimate characterizes query cost against the *old* index,
  /// and carrying it across the swap feeds stale pressure into the ladder
  /// — a slow-index p95 could pin a freshly swapped fast index at kReduced
  /// until the asymmetric EWMA decays, which takes ~19 samples per alpha
  /// step down. The tier itself is left alone; with the latency signal
  /// cleared, the next Evaluate() steps it down through the normal
  /// hysteresis path if queue pressure agrees.
  void ResetLatencySignal();

  ServiceTier current_tier() const {
    return static_cast<ServiceTier>(tier_.load(std::memory_order_relaxed));
  }

  /// Current p95-latency estimate (ms).
  double p95_ms() const;

  /// Requests admitted at each tier (indexed by ServiceTier).
  std::array<uint64_t, 4> tier_requests() const;

  const OverloadControllerOptions& options() const { return options_; }

  /// The resolved time source (options().clock or the real clock). Shared
  /// with callers that must measure time consistently with the ladder's
  /// hysteresis (ShardServer's admission deadline check).
  const Clock& clock() const { return *clock_; }

 private:
  int64_t NowNs() const;

  OverloadControllerOptions options_;
  const Clock* clock_;
  std::atomic<int> tier_{0};
  /// steady_clock nanoseconds of the last tier change (for hysteresis).
  std::atomic<int64_t> last_change_ns_{0};
  /// Bit pattern of the p95 EWMA double (atomic<double> is not lock-free
  /// everywhere; the bit-cast dance is).
  std::atomic<uint64_t> p95_bits_;
  std::array<std::atomic<uint64_t>, 4> tier_requests_{};
};

}  // namespace xclean

#endif  // XCLEAN_SERVE_OVERLOAD_H_
