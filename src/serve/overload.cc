#include "serve/overload.h"

#include <bit>
#include <chrono>

namespace xclean {

OverloadController::OverloadController(OverloadControllerOptions options)
    : options_(options),
      clock_(ResolveClock(options.clock)),
      p95_bits_(std::bit_cast<uint64_t>(0.0)) {}

int64_t OverloadController::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             clock_->Now().time_since_epoch())
      .count();
}

double OverloadController::p95_ms() const {
  return std::bit_cast<double>(p95_bits_.load(std::memory_order_relaxed));
}

void OverloadController::RecordLatency(double latency_ms) {
  // Stochastic quantile estimation: step up by alpha on a sample above the
  // estimate, down by alpha/19 on one below. At equilibrium the up and
  // down drifts cancel when 5% of samples land above — i.e. the estimate
  // sits at the p95. A racing update may be lost; the next sample re-pulls
  // the estimate, which is all monitoring needs.
  const double est = p95_ms();
  double next;
  if (latency_ms > est) {
    next = est + options_.ewma_alpha * (latency_ms - est);
  } else {
    next = est - (options_.ewma_alpha / 19.0) * (est - latency_ms);
  }
  p95_bits_.store(std::bit_cast<uint64_t>(next), std::memory_order_relaxed);
}

void OverloadController::ResetLatencySignal() {
  p95_bits_.store(std::bit_cast<uint64_t>(0.0), std::memory_order_relaxed);
  last_change_ns_.store(NowNs(), std::memory_order_relaxed);
}

ServiceTier OverloadController::Evaluate(size_t queue_depth,
                                         size_t queue_capacity) {
  int tier;
  if (options_.forced_tier >= 0) {
    tier = options_.forced_tier > 3 ? 3 : options_.forced_tier;
    tier_.store(tier, std::memory_order_relaxed);
  } else {
    const double fill =
        queue_capacity == 0
            ? 0.0
            : static_cast<double>(queue_depth) /
                  static_cast<double>(queue_capacity);
    const double latency_ratio =
        options_.deadline_ms > 0.0 ? p95_ms() / options_.deadline_ms : 0.0;

    int pressure = static_cast<int>(ServiceTier::kFull);
    if (fill >= options_.shed_fill) {
      pressure = static_cast<int>(ServiceTier::kShed);
    } else if (fill >= options_.cache_only_fill ||
               (options_.cache_only_latency > 0.0 &&
                latency_ratio >= options_.cache_only_latency)) {
      pressure = static_cast<int>(ServiceTier::kCacheOnly);
    } else if (fill >= options_.reduce_fill ||
               (options_.reduce_latency > 0.0 &&
                latency_ratio >= options_.reduce_latency)) {
      pressure = static_cast<int>(ServiceTier::kReduced);
    }

    tier = tier_.load(std::memory_order_relaxed);
    const int64_t now = NowNs();
    if (pressure > tier) {
      // Escalate immediately: overload compounds while you hesitate.
      tier_.store(pressure, std::memory_order_relaxed);
      last_change_ns_.store(now, std::memory_order_relaxed);
      tier = pressure;
    } else if (pressure < tier) {
      // Step down ONE level after a calm hold period, re-entering load
      // gradually instead of slamming back to full service (which would
      // re-trigger the overload that degraded us).
      const int64_t hold_ns =
          static_cast<int64_t>(options_.step_down_hold_ms) * 1000000;
      if (now - last_change_ns_.load(std::memory_order_relaxed) >= hold_ns) {
        --tier;
        tier_.store(tier, std::memory_order_relaxed);
        last_change_ns_.store(now, std::memory_order_relaxed);
      }
    }
  }
  tier_requests_[static_cast<size_t>(tier)].fetch_add(
      1, std::memory_order_relaxed);
  return static_cast<ServiceTier>(tier);
}

std::array<uint64_t, 4> OverloadController::tier_requests() const {
  std::array<uint64_t, 4> out;
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = tier_requests_[i].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace xclean
