#include "serve/engine.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "index/index_io.h"

namespace xclean::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr SteadyClock::time_point kNoDeadline = SteadyClock::time_point::max();

/// Per-worker scratch arena: each serving thread reuses one QueryScratch
/// across every request it handles, which is what makes steady-state
/// serving allocation-free in the algorithm. Epoch binding inside the
/// scratch drops its memo tables automatically when a hot-swap installs a
/// new suggester, so a long-lived thread can never serve statistics from a
/// retired index.
QueryScratch& ThreadScratch() {
  static thread_local QueryScratch scratch;
  return scratch;
}

}  // namespace

std::string OptionsFingerprint(const SuggesterOptions& options) {
  const XCleanOptions& x = options.xclean;
  char buf[192];
  // entity_prior is a std::function and cannot be fingerprinted by value;
  // it is pinned per snapshot (options are immutable once a suggester is
  // built), and the snapshot version in the cache-key prefix disambiguates
  // across swaps, so flagging its presence suffices.
  std::snprintf(buf, sizeof(buf),
                "ed%u,b%.6g,mu%.6g,r%.6g,d%u,k%zu,g%zu,s%d,sx%d,pr%d,"
                "st%u,sb%.6g",
                x.max_ed, x.beta, x.mu, x.reduction, x.min_depth, x.top_k,
                x.gamma, static_cast<int>(x.semantics),
                x.include_soundex ? 1 : 0, x.entity_prior ? 1 : 0,
                options.space_tau, options.space_penalty_beta);
  return buf;
}

ServingEngine::ServingEngine(std::shared_ptr<const XCleanSuggester> suggester,
                             EngineOptions options)
    : options_(options),
      snapshot_(MakeSnapshot(std::move(suggester), 1)),
      cache_(options.cache),
      pool_(options.pool) {
  XCLEAN_CHECK(snapshot_->suggester != nullptr);
}

ServingEngine::~ServingEngine() { Shutdown(); }

std::shared_ptr<const ServingEngine::Snapshot> ServingEngine::MakeSnapshot(
    std::shared_ptr<const XCleanSuggester> suggester, uint64_t version) {
  auto snap = std::make_shared<Snapshot>();
  snap->version = version;
  snap->key_prefix = "v" + std::to_string(version) + "|" +
                     OptionsFingerprint(suggester->options()) + "|";
  snap->suggester = std::move(suggester);
  return snap;
}

Status ServingEngine::SubmitSuggest(std::string query_text,
                                    ServeCallback done) {
  SteadyClock::time_point deadline = kNoDeadline;
  if (options_.default_deadline.count() > 0) {
    deadline = SteadyClock::now() + options_.default_deadline;
  }
  return SubmitSuggest(std::move(query_text), deadline, std::move(done));
}

Status ServingEngine::SubmitSuggest(std::string query_text,
                                    SteadyClock::time_point deadline,
                                    ServeCallback done) {
  SteadyClock::time_point enqueued = SteadyClock::now();
  Status submitted = pool_.TrySubmit(
      [this, query_text = std::move(query_text), enqueued, deadline,
       done = std::move(done)] {
        ServeResult result = Execute(query_text, enqueued, deadline);
        if (done) done(std::move(result));
      });
  if (submitted.ok()) {
    metrics_.IncrRequests();
  } else {
    metrics_.IncrRejected();
  }
  return submitted;
}

ServeResult ServingEngine::Suggest(const std::string& query_text) {
  metrics_.IncrRequests();
  SteadyClock::time_point now = SteadyClock::now();
  SteadyClock::time_point deadline = kNoDeadline;
  if (options_.default_deadline.count() > 0) {
    deadline = now + options_.default_deadline;
  }
  return Execute(query_text, now, deadline);
}

std::vector<ServeResult> ServingEngine::SuggestBatch(
    const std::vector<std::string>& query_texts) {
  SteadyClock::time_point now = SteadyClock::now();
  SteadyClock::time_point deadline = kNoDeadline;
  if (options_.default_deadline.count() > 0) {
    deadline = now + options_.default_deadline;
  }
  // One snapshot pin for the whole batch: every result reports the same
  // version even if a swap lands mid-batch.
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  std::vector<ServeResult> results;
  results.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    metrics_.IncrRequests();
    results.push_back(ExecuteOnSnapshot(snap, text, now, deadline));
  }
  return results;
}

Status ServingEngine::SubmitSuggestBatch(std::vector<std::string> query_texts,
                                         BatchServeCallback done) {
  SteadyClock::time_point enqueued = SteadyClock::now();
  SteadyClock::time_point deadline = kNoDeadline;
  if (options_.default_deadline.count() > 0) {
    deadline = enqueued + options_.default_deadline;
  }
  const size_t batch_size = query_texts.size();
  Status submitted = pool_.TrySubmit(
      [this, queries = std::move(query_texts), enqueued, deadline,
       done = std::move(done)] {
        std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
        std::vector<ServeResult> results;
        results.reserve(queries.size());
        for (const std::string& text : queries) {
          results.push_back(ExecuteOnSnapshot(snap, text, enqueued, deadline));
        }
        if (done) done(std::move(results));
      });
  for (size_t i = 0; i < batch_size; ++i) {
    if (submitted.ok()) {
      metrics_.IncrRequests();
    } else {
      metrics_.IncrRejected();
    }
  }
  return submitted;
}

ServeResult ServingEngine::Execute(const std::string& query_text,
                                   SteadyClock::time_point enqueue_time,
                                   SteadyClock::time_point deadline) {
  // Pin the snapshot for the whole request: a concurrent SwapIndex cannot
  // free it (shared_ptr) and cannot change what this request reads.
  return ExecuteOnSnapshot(CurrentSnapshot(), query_text, enqueue_time,
                           deadline);
}

ServeResult ServingEngine::ExecuteOnSnapshot(
    const std::shared_ptr<const Snapshot>& snap, const std::string& query_text,
    SteadyClock::time_point enqueue_time, SteadyClock::time_point deadline) {
  ServeResult result;
  // Deadline is checked when a worker picks the request up: a request that
  // sat in the queue past its deadline is answered without paying for
  // candidate generation — under overload this sheds exactly the work
  // whose answer nobody is waiting for anymore.
  if (SteadyClock::now() >= deadline) {
    metrics_.IncrDeadlineExceeded();
    result.status = Status::DeadlineExceeded("expired in queue");
    result.latency_ms = std::chrono::duration<double, std::milli>(
                            SteadyClock::now() - enqueue_time)
                            .count();
    return result;
  }

  result.snapshot_version = snap->version;

  Query query =
      ParseQuery(query_text, snap->suggester->index().tokenizer());
  std::string key = snap->key_prefix + query.ToString();

  if (cache_.Get(key, &result.suggestions)) {
    result.cache_hit = true;
  } else {
    result.suggestions = snap->suggester->Suggest(query, &ThreadScratch());
    cache_.Put(key, result.suggestions);
  }

  auto elapsed = SteadyClock::now() - enqueue_time;
  result.latency_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  metrics_.RecordLatencyMicros(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count()));
  metrics_.IncrCompleted();
  return result;
}

void ServingEngine::SwapIndex(std::shared_ptr<const XCleanSuggester> next) {
  uint64_t version = version_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::shared_ptr<const Snapshot> snap = MakeSnapshot(std::move(next), version);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_.swap(snap);
  }
  // `snap` now holds the old snapshot; if this was its last reference it
  // is destroyed here, outside the lock, not under it.
  metrics_.IncrSwaps();
}

Status ServingEngine::SwapIndexFromFile(const std::string& path,
                                        SuggesterOptions options) {
  Result<std::unique_ptr<XmlIndex>> index = LoadIndex(path);
  if (!index.ok()) return index.status();
  auto suggester = std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromIndex(std::move(index).value(), options));
  SwapIndex(std::move(suggester));
  return Status::Ok();
}

std::shared_ptr<const XCleanSuggester> ServingEngine::snapshot() const {
  return CurrentSnapshot()->suggester;
}

MetricsSnapshot ServingEngine::Metrics() const {
  SuggestionCache::Stats cs = cache_.stats();
  return metrics_.Snapshot(cs.hits, cs.misses, cs.evictions);
}

}  // namespace xclean::serve
