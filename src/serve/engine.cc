#include "serve/engine.h"

#include <cstdio>
#include <thread>
#include <utility>

#include "common/cancel.h"
#include "common/check.h"
#include "common/durable_file.h"
#include "common/fault_injection.h"
#include "core/query.h"
#include "index/index_io.h"
#include "index/manifest.h"

namespace xclean::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr SteadyClock::time_point kNoDeadline = SteadyClock::time_point::max();

double MillisSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

/// The engine's controller thresholds are expressed relative to the
/// default deadline; fill that in unless the caller already set it.
OverloadControllerOptions ResolveOverloadOptions(const EngineOptions& o) {
  OverloadControllerOptions r = o.overload;
  if (r.deadline_ms <= 0.0 && o.default_deadline.count() > 0) {
    r.deadline_ms = static_cast<double>(o.default_deadline.count());
  }
  return r;
}

/// Per-worker scratch arena: each serving thread reuses one QueryScratch
/// across every request it handles, which is what makes steady-state
/// serving allocation-free in the algorithm. Epoch binding inside the
/// scratch drops its memo tables automatically when a hot-swap installs a
/// new suggester, so a long-lived thread can never serve statistics from a
/// retired index.
QueryScratch& ThreadScratch() {
  static thread_local QueryScratch scratch;
  return scratch;
}

}  // namespace

std::string OptionsFingerprint(const SuggesterOptions& options) {
  const XCleanOptions& x = options.xclean;
  char buf[192];
  // entity_prior is a std::function and cannot be fingerprinted by value;
  // it is pinned per snapshot (options are immutable once a suggester is
  // built), and the snapshot version in the cache-key prefix disambiguates
  // across swaps, so flagging its presence suffices.
  std::snprintf(buf, sizeof(buf),
                "ed%u,b%.6g,mu%.6g,r%.6g,d%u,k%zu,g%zu,s%d,sx%d,pr%d,"
                "st%u,sb%.6g",
                x.max_ed, x.beta, x.mu, x.reduction, x.min_depth, x.top_k,
                x.gamma, static_cast<int>(x.semantics),
                x.include_soundex ? 1 : 0, x.entity_prior ? 1 : 0,
                options.space_tau, options.space_penalty_beta);
  return buf;
}

ServingEngine::ServingEngine(std::shared_ptr<const XCleanSuggester> suggester,
                             EngineOptions options)
    : options_(options),
      snapshot_(MakeSnapshot(std::move(suggester), 1)),
      cache_(options.cache),
      overload_(ResolveOverloadOptions(options)),
      pool_(options.pool) {
  XCLEAN_CHECK(snapshot_->suggester != nullptr);
}

ServingEngine::~ServingEngine() {
  // Any background compaction still references the live stack and the
  // lifecycle; drain it before members start dying.
  WaitForLiveCompaction();
  Shutdown();
}

std::shared_ptr<const ServingEngine::Snapshot> ServingEngine::MakeSnapshot(
    std::shared_ptr<const XCleanSuggester> suggester, uint64_t version,
    std::shared_ptr<delta::LiveIndex> live) {
  auto snap = std::make_shared<Snapshot>();
  snap->version = version;
  snap->key_prefix = "v" + std::to_string(version) + "|" +
                     OptionsFingerprint(suggester->options()) + "|";
  snap->suggester = std::move(suggester);
  snap->live = std::move(live);
  return snap;
}

Status ServingEngine::SubmitSuggest(std::string query_text,
                                    ServeCallback done) {
  SteadyClock::time_point deadline = kNoDeadline;
  if (options_.default_deadline.count() > 0) {
    deadline = SteadyClock::now() + options_.default_deadline;
  }
  return SubmitSuggest(std::move(query_text), deadline, std::move(done));
}

Status ServingEngine::SubmitSuggest(std::string query_text,
                                    SteadyClock::time_point deadline,
                                    ServeCallback done) {
  SteadyClock::time_point enqueued = SteadyClock::now();
  // The callback is shared between the task and the expiry path: exactly
  // one of them runs (the pool guarantees it), but both need to own it.
  auto cb = std::make_shared<ServeCallback>(std::move(done));
  Status submitted = pool_.TrySubmit(
      [this, query_text = std::move(query_text), enqueued, deadline, cb] {
        ServeResult result = Execute(query_text, enqueued, deadline);
        if (*cb) (*cb)(std::move(result));
      },
      deadline,
      [this, enqueued, cb] {
        // Evicted from the queue past its deadline: the queue slot was
        // already released, so this answer never blocks an admissible
        // request behind it.
        metrics_.IncrDeadlineExceeded();
        ServeResult result;
        result.status = Status::DeadlineExceeded("expired in queue");
        result.latency_ms = MillisSince(enqueued);
        if (*cb) (*cb)(std::move(result));
      });
  if (submitted.ok()) {
    metrics_.IncrRequests();
  } else {
    metrics_.IncrRejected();
  }
  return submitted;
}

ServeResult ServingEngine::Suggest(const std::string& query_text) {
  metrics_.IncrRequests();
  SteadyClock::time_point now = SteadyClock::now();
  SteadyClock::time_point deadline = kNoDeadline;
  if (options_.default_deadline.count() > 0) {
    deadline = now + options_.default_deadline;
  }
  return Execute(query_text, now, deadline);
}

std::vector<ServeResult> ServingEngine::SuggestBatch(
    const std::vector<std::string>& query_texts) {
  SteadyClock::time_point now = SteadyClock::now();
  SteadyClock::time_point deadline = kNoDeadline;
  if (options_.default_deadline.count() > 0) {
    deadline = now + options_.default_deadline;
  }
  // One snapshot pin for the whole batch: every result reports the same
  // version even if a swap lands mid-batch.
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  std::vector<ServeResult> results;
  results.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    metrics_.IncrRequests();
    results.push_back(ExecuteOnSnapshot(snap, text, now, deadline));
  }
  return results;
}

Status ServingEngine::SubmitSuggestBatch(std::vector<std::string> query_texts,
                                         BatchServeCallback done) {
  SteadyClock::time_point enqueued = SteadyClock::now();
  SteadyClock::time_point deadline = kNoDeadline;
  if (options_.default_deadline.count() > 0) {
    deadline = enqueued + options_.default_deadline;
  }
  const size_t batch_size = query_texts.size();
  auto cb = std::make_shared<BatchServeCallback>(std::move(done));
  Status submitted = pool_.TrySubmit(
      [this, queries = std::move(query_texts), enqueued, deadline, cb] {
        std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
        std::vector<ServeResult> results;
        results.reserve(queries.size());
        for (const std::string& text : queries) {
          results.push_back(ExecuteOnSnapshot(snap, text, enqueued, deadline));
        }
        if (*cb) (*cb)(std::move(results));
      },
      deadline,
      [this, enqueued, batch_size, cb] {
        ServeResult expired;
        expired.status = Status::DeadlineExceeded("expired in queue");
        expired.latency_ms = MillisSince(enqueued);
        std::vector<ServeResult> results(batch_size, expired);
        for (size_t i = 0; i < batch_size; ++i) {
          metrics_.IncrDeadlineExceeded();
        }
        if (*cb) (*cb)(std::move(results));
      });
  for (size_t i = 0; i < batch_size; ++i) {
    if (submitted.ok()) {
      metrics_.IncrRequests();
    } else {
      metrics_.IncrRejected();
    }
  }
  return submitted;
}

ServeResult ServingEngine::Execute(const std::string& query_text,
                                   SteadyClock::time_point enqueue_time,
                                   SteadyClock::time_point deadline) {
  // Pin the snapshot for the whole request: a concurrent SwapIndex cannot
  // free it (shared_ptr) and cannot change what this request reads.
  return ExecuteOnSnapshot(CurrentSnapshot(), query_text, enqueue_time,
                           deadline);
}

ServeResult ServingEngine::ExecuteOnSnapshot(
    const std::shared_ptr<const Snapshot>& snap, const std::string& query_text,
    SteadyClock::time_point enqueue_time, SteadyClock::time_point deadline) {
  ServeResult result;
  // Deadline is checked when a worker picks the request up: a request that
  // sat in the queue past its deadline is answered without paying for
  // candidate generation — under overload this sheds exactly the work
  // whose answer nobody is waiting for anymore.
  if (SteadyClock::now() >= deadline) {
    metrics_.IncrDeadlineExceeded();
    result.status = Status::DeadlineExceeded("expired in queue");
    result.latency_ms = std::chrono::duration<double, std::milli>(
                            SteadyClock::now() - enqueue_time)
                            .count();
    return result;
  }

  result.snapshot_version = snap->version;

  // Admission: one walk of the degradation ladder per request. Everything
  // below the shed tier still produces an answer; the tiers only shrink
  // how much work that answer is allowed to cost.
  const ServiceTier tier =
      overload_.Evaluate(pool_.queue_depth(), pool_.queue_capacity());
  result.tier = tier;
  if (tier == ServiceTier::kShed) {
    metrics_.IncrShedOverload();
    result.status = Status::Unavailable("overloaded: shedding all requests");
    result.latency_ms = MillisSince(enqueue_time);
    return result;
  }

  // Input bounds come before tokenization of a pathological payload can
  // cost anything: a megabyte of "query" is an error, not a workload.
  Result<Query> parsed = ParseQueryBounded(
      query_text, snap->suggester->index().tokenizer(), options_.query_limits);
  if (!parsed.ok()) {
    metrics_.IncrInvalidArgument();
    result.status = parsed.status();
    result.latency_ms = MillisSince(enqueue_time);
    return result;
  }
  const Query& query = parsed.value();

  // With live updates on, pin one delta read snapshot for the whole
  // request and fold its mutation sequence into the cache key: a cached
  // answer can then never predate a visible Add/Delete (the key simply
  // stops matching), and the request reads one frozen layer stack even if
  // writers install successors mid-flight.
  std::shared_ptr<const delta::LiveSnapshot> live_snap;
  if (snap->live != nullptr) live_snap = snap->live->snapshot();

  // Tier-aware cache keys: reduced-tier answers are cached under a "t1|"
  // prefix so they can never masquerade as full-quality answers once the
  // engine recovers. Degraded tiers may read full-tier entries (a better
  // answer for free), never the other way around.
  std::string full_key = snap->key_prefix;
  if (live_snap != nullptr) {
    full_key += "q" + std::to_string(live_snap->sequence()) + "|";
  }
  full_key += query.ToString();
  const std::string reduced_key = "t1|" + full_key;

  XCLEAN_FAULT_HIT("serve.cache.lookup");
  bool hit = cache_.Get(full_key, &result.suggestions);
  if (!hit && tier != ServiceTier::kFull) {
    hit = cache_.Get(reduced_key, &result.suggestions);
  }
  if (hit) {
    result.cache_hit = true;
  } else if (tier == ServiceTier::kCacheOnly) {
    metrics_.IncrShedOverload();
    result.status = Status::Unavailable("overloaded: serving cache hits only");
    result.latency_ms = MillisSince(enqueue_time);
    return result;
  } else {
    QueryBudget budget;
    budget.deadline = deadline;
    budget.max_postings = options_.max_postings_per_query;
    budget.max_candidates = options_.max_candidates_per_query;
    CancelToken token(budget);
    const QueryTuning* tuning = tier == ServiceTier::kReduced
                                    ? &overload_.options().reduced_tuning
                                    : nullptr;
    XCleanRunStats run_stats;
    const SteadyClock::time_point compute_start = SteadyClock::now();
    result.suggestions =
        live_snap != nullptr
            ? live_snap->Suggest(query, &ThreadScratch(), &token, tuning,
                                 &run_stats)
            : snap->suggester->Suggest(query, &ThreadScratch(), &token,
                                       tuning, &run_stats);
    result.compute_ms = MillisSince(compute_start);
    if (run_stats.truncated) {
      // The in-algorithm budget tripped. A partial top-k is still an
      // answer (marked so the caller knows); an empty one is not.
      metrics_.IncrTruncated();
      result.truncated = true;
      if (result.suggestions.empty()) {
        metrics_.IncrDeadlineExceeded();
        result.status = Status::DeadlineExceeded(
            std::string("budget exhausted mid-query: ") +
            CancelCauseName(run_stats.cancel_cause));
        result.latency_ms = MillisSince(enqueue_time);
        overload_.RecordLatency(result.latency_ms);
        return result;
      }
      // Truncated lists are never cached: they would freeze a degraded
      // answer past the overload that caused it.
    } else {
      cache_.Put(tuning ? reduced_key : full_key, result.suggestions);
    }
  }

  auto elapsed = SteadyClock::now() - enqueue_time;
  result.latency_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  metrics_.RecordLatencyMicros(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count()));
  metrics_.IncrCompleted();
  overload_.RecordLatency(result.latency_ms);
  return result;
}

void ServingEngine::SwapIndex(std::shared_ptr<const XCleanSuggester> next) {
  uint64_t version = version_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::shared_ptr<const Snapshot> snap = MakeSnapshot(std::move(next), version);
  std::shared_ptr<delta::LiveIndex> old_live;
  {
    // A delta stack is layered over one specific base index: swapping the
    // base detaches it. Documents added since EnableLiveUpdates live only
    // in the stack, so a caller who wants them must compact into a durable
    // generation (or swap onto the compacted index) first.
    std::lock_guard<std::mutex> live_lock(live_mu_);
    old_live = std::move(live_);
    lifecycle_.reset();  // in-flight compactions hold their own reference
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_.swap(snap);
  }
  // `snap` now holds the old snapshot; if this was its last reference it
  // is destroyed here, outside the lock, not under it. A detached live
  // stack stays alive while older snapshots pin it and dies inert.
  if (old_live != nullptr) old_live->WaitForCompaction();
  // The p95 estimate measured the old index; against the new one it is
  // stale load signal that would keep the degradation ladder escalated
  // (or, swapping slow-for-fast, admit overload) for the ~19/alpha samples
  // the asymmetric EWMA needs to converge. Start the estimator fresh.
  overload_.ResetLatencySignal();
  metrics_.IncrSwaps();
}

Status ServingEngine::SwapIndexFromFile(const std::string& path,
                                        SuggesterOptions options) {
  // Quarantine identity is a whole-file content checksum: size/mtime
  // would miss an in-place rewrite landing within the filesystem's
  // timestamp granularity at the same length. Hashing costs a full read
  // of the file, though, so it runs only when an entry exists for this
  // path — the common path (no prior failure) pays nothing extra.
  bool was_quarantined = false;
  uint64_t quarantined_checksum = 0;
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    auto it = quarantine_.find(path);
    if (it != quarantine_.end()) {
      was_quarantined = true;
      quarantined_checksum = it->second.checksum;
    }
  }
  if (was_quarantined) {
    const Result<uint64_t> content_hash = HashFileContents(path);
    if (content_hash.ok() &&
        content_hash.value() == quarantined_checksum) {
      return Status::Unavailable(
          "snapshot file quarantined after repeated load failures "
          "(republish to clear): " +
          path);
    }
    // Different bytes (or unreadable): the entry no longer describes the
    // file on disk, so drop it and re-examine.
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    quarantine_.erase(path);
  }

  const int attempts =
      options_.swap_load_attempts < 1 ? 1 : options_.swap_load_attempts;
  Status last = Status::Ok();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff: a snapshot caught mid-publish often becomes
      // readable a few milliseconds later.
      std::this_thread::sleep_for(options_.swap_retry_backoff *
                                  (1 << (attempt - 1)));
    }
    Result<std::unique_ptr<XmlIndex>> index = LoadIndex(path);
    if (index.ok()) {
      {
        std::lock_guard<std::mutex> lock(quarantine_mu_);
        quarantine_.erase(path);
      }
      auto suggester = std::make_shared<const XCleanSuggester>(
          XCleanSuggester::FromIndex(std::move(index).value(), options));
      SwapIndex(std::move(suggester));
      return Status::Ok();
    }
    last = index.status();
    // A missing file is an operator error, not a torn write: retrying or
    // quarantining it would only mask the misconfiguration.
    if (last.code() == StatusCode::kNotFound) return last;
  }

  // Key the quarantine on the bytes present right after the final failed
  // attempt — the closest observable stand-in for the content that failed
  // to load. If the file is republished between the failure and this hash
  // the stale key simply never matches again, so the next call re-reads
  // instead of fast-failing — safe in both directions.
  const Result<uint64_t> content_hash = HashFileContents(path);
  if (content_hash.ok()) {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    quarantine_[path] = QuarantineEntry{content_hash.value()};
  }
  // The previous snapshot keeps serving; the caller learns why the swap
  // did not happen.
  return last;
}

Result<uint64_t> ServingEngine::RecoverFrom(const std::string& dir,
                                            SuggesterOptions options) {
  Result<RecoveredSnapshot> recovered = RecoverLatestSnapshot(dir);
  if (!recovered.ok()) return recovered.status();
  auto suggester = std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromIndex(std::move(recovered.value().index),
                                 options));
  SwapIndex(std::move(suggester));
  return recovered.value().generation;
}

Status ServingEngine::EnableLiveUpdates(size_t compact_after_docs,
                                        const std::string& snapshot_dir) {
  std::lock_guard<std::mutex> live_lock(live_mu_);
  if (live_ != nullptr) {
    return Status::InvalidArgument("live updates already enabled");
  }
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  const SuggesterOptions& so = snap->suggester->options();
  // The layered read path is exact only under these preconditions (see
  // delta/layered_xclean.h); refuse configurations it cannot reproduce.
  if (so.space_tau != 0) {
    return Status::InvalidArgument(
        "live updates require space_tau == 0 (space-edit segmentation is "
        "not layered)");
  }
  if (so.xclean.entity_prior) {
    return Status::InvalidArgument(
        "live updates do not support a custom entity_prior");
  }
  if (so.xclean.min_depth < 2) {
    return Status::InvalidArgument("live updates require min_depth >= 2");
  }
  std::shared_ptr<SnapshotLifecycle> lifecycle;
  if (!snapshot_dir.empty()) {
    lifecycle = std::make_shared<SnapshotLifecycle>(snapshot_dir);
    Status opened = lifecycle->Open();
    if (!opened.ok()) return opened;
  }
  delta::LiveIndexOptions lopts;
  lopts.xclean = so.xclean;
  lopts.compact_after_docs = compact_after_docs;
  auto live = std::make_shared<delta::LiveIndex>(
      snap->suggester->index(), snap->suggester, std::move(lopts));
  const uint64_t version =
      version_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::shared_ptr<const Snapshot> next =
      MakeSnapshot(snap->suggester, version, live);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (snapshot_->suggester != snap->suggester) {
      // A concurrent SwapIndex landed between the read above and now; the
      // stack we built belongs to a retired base.
      return Status::Unavailable("index swapped during EnableLiveUpdates");
    }
    snapshot_.swap(next);
  }
  live_ = std::move(live);
  lifecycle_ = std::move(lifecycle);
  return Status::Ok();
}

Result<delta::DocId> ServingEngine::AddDocument(
    std::string_view document_xml) {
  std::shared_ptr<delta::LiveIndex> live;
  std::shared_ptr<SnapshotLifecycle> lifecycle;
  {
    std::lock_guard<std::mutex> live_lock(live_mu_);
    live = live_;
    lifecycle = lifecycle_;
  }
  if (live == nullptr) {
    return Status::InvalidArgument("live updates not enabled");
  }
  Result<delta::DocId> id = live->Add(document_xml);
  if (!id.ok()) return id;
  const size_t threshold = live->options().compact_after_docs;
  if (threshold > 0 && !live->compacting() &&
      live->counters().memtable_docs >= threshold) {
    // Best effort: Unavailable just means a compaction is already running
    // and will pick this document up.
    (void)live->CompactInBackground(lifecycle.get(),
                                    [lifecycle](Result<uint64_t>) {});
  }
  return id;
}

Status ServingEngine::DeleteDocument(delta::DocId id) {
  std::shared_ptr<delta::LiveIndex> live;
  {
    std::lock_guard<std::mutex> live_lock(live_mu_);
    live = live_;
  }
  if (live == nullptr) {
    return Status::InvalidArgument("live updates not enabled");
  }
  return live->Delete(id);
}

Result<uint64_t> ServingEngine::CompactLive(bool sync) {
  std::shared_ptr<delta::LiveIndex> live;
  std::shared_ptr<SnapshotLifecycle> lifecycle;
  {
    std::lock_guard<std::mutex> live_lock(live_mu_);
    live = live_;
    lifecycle = lifecycle_;
  }
  if (live == nullptr) {
    return Status::InvalidArgument("live updates not enabled");
  }
  return live->Compact(lifecycle.get(), sync);
}

Status ServingEngine::CompactLiveInBackground() {
  std::shared_ptr<delta::LiveIndex> live;
  std::shared_ptr<SnapshotLifecycle> lifecycle;
  {
    std::lock_guard<std::mutex> live_lock(live_mu_);
    live = live_;
    lifecycle = lifecycle_;
  }
  if (live == nullptr) {
    return Status::InvalidArgument("live updates not enabled");
  }
  return live->CompactInBackground(lifecycle.get(),
                                   [lifecycle](Result<uint64_t>) {});
}

void ServingEngine::WaitForLiveCompaction() {
  std::shared_ptr<delta::LiveIndex> live;
  {
    std::lock_guard<std::mutex> live_lock(live_mu_);
    live = live_;
  }
  if (live != nullptr) live->WaitForCompaction();
}

std::shared_ptr<delta::LiveIndex> ServingEngine::live_index() const {
  std::lock_guard<std::mutex> live_lock(live_mu_);
  return live_;
}

std::shared_ptr<const XCleanSuggester> ServingEngine::snapshot() const {
  return CurrentSnapshot()->suggester;
}

MetricsSnapshot ServingEngine::Metrics() const {
  SuggestionCache::Stats cs = cache_.stats();
  MetricsSnapshot s = metrics_.Snapshot(cs.hits, cs.misses, cs.evictions);
  s.tier_requests = overload_.tier_requests();
  s.current_tier = static_cast<int>(overload_.current_tier());
  s.overload_p95_ms = overload_.p95_ms();
  std::shared_ptr<delta::LiveIndex> live = live_index();
  if (live != nullptr) {
    const delta::LiveCounters lc = live->counters();
    s.live_enabled = true;
    s.live_adds = lc.adds;
    s.live_deletes = lc.deletes;
    s.live_compactions = lc.compactions;
    s.live_docs = lc.live_docs;
    s.delta_layers = lc.layer_count;
    s.last_compact_ms = static_cast<double>(lc.last_compact_micros) / 1e3;
    s.last_publish_ms = static_cast<double>(lc.last_publish_micros) / 1e3;
  }
  return s;
}

}  // namespace xclean::serve
