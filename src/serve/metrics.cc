#include "serve/metrics.h"

#include <cstdio>

namespace xclean::serve {

double LatencyHistogram::MeanMillis() const {
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  uint64_t sum = sum_micros_.load(std::memory_order_relaxed);
  return static_cast<double>(sum) / static_cast<double>(n) / 1e3;
}

double LatencyHistogram::QuantileMillis(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Read a racy copy of the buckets; sum first so the target rank is
  // consistent with the copy.
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative > rank) {
      // Upper bound of bucket i is 2^i microseconds (bucket 0 is [0,1]).
      double upper_micros = static_cast<double>(uint64_t{1} << i);
      return upper_micros / 1e3;
    }
  }
  return static_cast<double>(uint64_t{1} << (kBuckets - 1)) / 1e3;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToString() const {
  static const char* kTierNames[4] = {"full", "reduced", "cache_only",
                                      "shed"};
  const char* tier_name =
      kTierNames[current_tier < 0 || current_tier > 3 ? 3 : current_tier];
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "req=%llu done=%llu rej=%llu dead=%llu shed=%llu trunc=%llu "
      "inval=%llu hit=%llu miss=%llu evict=%llu swap=%llu p50=%.2fms "
      "p95=%.2fms p99=%.2fms mean=%.2fms tier=%s tiers=%llu/%llu/%llu/%llu",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(shed_overload),
      static_cast<unsigned long long>(truncated_results),
      static_cast<unsigned long long>(invalid_arguments),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_evictions),
      static_cast<unsigned long long>(snapshot_swaps), latency_p50_ms,
      latency_p95_ms, latency_p99_ms, latency_mean_ms, tier_name,
      static_cast<unsigned long long>(tier_requests[0]),
      static_cast<unsigned long long>(tier_requests[1]),
      static_cast<unsigned long long>(tier_requests[2]),
      static_cast<unsigned long long>(tier_requests[3]));
  std::string out = buf;
  if (live_enabled) {
    std::snprintf(buf, sizeof(buf),
                  " live=%llu/%llu/%llu live_docs=%llu layers=%llu "
                  "compact=%.2fms publish=%.2fms",
                  static_cast<unsigned long long>(live_adds),
                  static_cast<unsigned long long>(live_deletes),
                  static_cast<unsigned long long>(live_compactions),
                  static_cast<unsigned long long>(live_docs),
                  static_cast<unsigned long long>(delta_layers),
                  last_compact_ms, last_publish_ms);
    out += buf;
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot(uint64_t cache_hits,
                                          uint64_t cache_misses,
                                          uint64_t cache_evictions) const {
  MetricsSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  s.truncated_results = truncated_.load(std::memory_order_relaxed);
  s.invalid_arguments = invalid_.load(std::memory_order_relaxed);
  s.snapshot_swaps = swaps_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits;
  s.cache_misses = cache_misses;
  s.cache_evictions = cache_evictions;
  s.latency_count = latency_.count();
  s.latency_mean_ms = latency_.MeanMillis();
  s.latency_p50_ms = latency_.QuantileMillis(0.50);
  s.latency_p95_ms = latency_.QuantileMillis(0.95);
  s.latency_p99_ms = latency_.QuantileMillis(0.99);
  return s;
}

void MetricsRegistry::Reset() {
  requests_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  deadline_exceeded_.store(0, std::memory_order_relaxed);
  shed_overload_.store(0, std::memory_order_relaxed);
  truncated_.store(0, std::memory_order_relaxed);
  invalid_.store(0, std::memory_order_relaxed);
  swaps_.store(0, std::memory_order_relaxed);
  latency_.Reset();
}

}  // namespace xclean::serve
