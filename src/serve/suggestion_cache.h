#ifndef XCLEAN_SERVE_SUGGESTION_CACHE_H_
#define XCLEAN_SERVE_SUGGESTION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query.h"

namespace xclean::serve {

struct CacheOptions {
  /// Total number of cached suggestion lists across all shards; 0 disables
  /// the cache (Get always misses, Put is a no-op).
  size_t capacity = 8192;
  /// Number of independently-locked shards; rounded up to a power of two.
  /// More shards = less lock contention, slightly worse LRU fidelity
  /// (eviction is per-shard).
  size_t shards = 16;
};

/// Sharded LRU cache from a request fingerprint (normalized query text +
/// options fingerprint + index snapshot version, built by the engine) to a
/// suggestion list. Each shard is a classic mutex-protected
/// list+unordered_map LRU; a key is pinned to its shard by hash, so the
/// shard mutexes never nest and two requests contend only when they hash
/// to the same shard. Hit/miss/eviction counters are lock-free atomics.
class SuggestionCache {
 public:
  explicit SuggestionCache(CacheOptions options = CacheOptions());

  SuggestionCache(const SuggestionCache&) = delete;
  SuggestionCache& operator=(const SuggestionCache&) = delete;

  /// Returns true and copies the cached list into `*out` on a hit; the
  /// entry becomes most-recently-used.
  bool Get(const std::string& key, std::vector<Suggestion>* out);

  /// Inserts (or refreshes) `key`, evicting the shard's least-recently-used
  /// entry when the shard is at capacity.
  void Put(const std::string& key, std::vector<Suggestion> value);

  /// Drops every entry (counters are kept).
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  Stats stats() const;

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    std::vector<Suggestion> value;
  };
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) & shard_mask_];
  }

  size_t capacity_;
  size_t per_shard_capacity_;
  size_t shard_mask_;
  /// unique_ptr because Shard (mutex) is immovable and the count is runtime.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace xclean::serve

#endif  // XCLEAN_SERVE_SUGGESTION_CACHE_H_
