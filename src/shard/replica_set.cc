#include "shard/replica_set.h"

#include <algorithm>
#include <bit>
#include <condition_variable>
#include <string>
#include <utility>

#include "common/check.h"

namespace xclean::shard {

namespace {

/// Asymmetric p95 EWMA step, same estimator as the overload ladder's.
constexpr double kP95Alpha = 0.05;

/// How much a fallback of each class is worth: a truncated partial at the
/// expected generation beats a polite refusal beats a stale answer beats
/// nothing. (Refusal over stale: both contribute no mergeable candidates —
/// the coordinator drops stale responses wholesale — but the refusal is
/// honest about the expected generation.)
int FallbackRank(AttemptClass cls) {
  switch (cls) {
    case AttemptClass::kUsablePartial:
      return 3;
    case AttemptClass::kRefused:
      return 2;
    case AttemptClass::kStale:
      return 1;
    default:
      return 0;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CircuitBreaker

bool CircuitBreaker::WouldAllow(
    std::chrono::steady_clock::time_point now) const {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return now - opened_at_ >= options_.open_cooldown;
    default:
      return !probe_in_flight_;
  }
}

bool CircuitBreaker::Allow(std::chrono::steady_clock::time_point now,
                           bool* is_probe) {
  if (is_probe != nullptr) *is_probe = false;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now - opened_at_ < options_.open_cooldown) return false;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      if (is_probe != nullptr) *is_probe = true;
      return true;
    default:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      if (is_probe != nullptr) *is_probe = true;
      return true;
  }
}

void CircuitBreaker::ReleaseProbe() {
  std::lock_guard<std::mutex> lock(mu_);
  // If a late loser's OnFailure already tripped the breaker back open,
  // TripLocked cleared the probe and there is nothing left to release.
  if (state_ == BreakerState::kHalfOpen) probe_in_flight_ = false;
}

void CircuitBreaker::OnSuccess(std::chrono::steady_clock::time_point now,
                               double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_ewma_ += options_.latency_alpha * (latency_ms - latency_ewma_);
  if (state_ == BreakerState::kHalfOpen) {
    // The probe came back: the replica has recovered. Forget the failure
    // history — it describes the outage, not the recovered replica.
    state_ = BreakerState::kClosed;
    probe_in_flight_ = false;
    error_ewma_ = 0.0;
    samples_ = 0;
    return;
  }
  error_ewma_ += options_.error_alpha * (0.0 - error_ewma_);
  ++samples_;
  if (state_ == BreakerState::kClosed && options_.trip_latency_ms > 0.0 &&
      samples_ >= options_.min_samples &&
      latency_ewma_ >= options_.trip_latency_ms) {
    TripLocked(now);
  }
}

void CircuitBreaker::OnFailure(std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    // Probe failed: straight back to open, cooldown restarts.
    probe_in_flight_ = false;
    TripLocked(now);
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // late loser; already open
  error_ewma_ += options_.error_alpha * (1.0 - error_ewma_);
  ++samples_;
  if (samples_ >= options_.min_samples &&
      error_ewma_ >= options_.trip_error_rate) {
    TripLocked(now);
  }
}

void CircuitBreaker::TripLocked(std::chrono::steady_clock::time_point now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  probe_in_flight_ = false;
  ++opens_;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

double CircuitBreaker::error_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_ewma_;
}

double CircuitBreaker::latency_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latency_ewma_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

// ---------------------------------------------------------------------------
// Classification

AttemptClass ClassifyAttempt(const ShardResponse& response,
                             uint64_t expected_generation) {
  if (!response.status.ok()) {
    if (response.tier == ServiceTier::kShed ||
        response.tier == ServiceTier::kCacheOnly) {
      return AttemptClass::kShed;
    }
    return AttemptClass::kTransport;
  }
  if (response.truncated &&
      (response.cancel_cause == CancelCause::kDeadline ||
       response.cancel_cause == CancelCause::kExternal) &&
      response.partials.empty()) {
    return AttemptClass::kRefused;
  }
  if (expected_generation != 0 &&
      response.generation != expected_generation) {
    return AttemptClass::kStale;
  }
  if (response.truncated &&
      (response.cancel_cause == CancelCause::kDeadline ||
       response.cancel_cause == CancelCause::kExternal)) {
    return AttemptClass::kUsablePartial;
  }
  return AttemptClass::kUsable;
}

// ---------------------------------------------------------------------------
// ReplicaSet

struct ReplicaSet::Replica {
  Replica(ShardBackend* b, const CircuitBreakerOptions& breaker_options)
      : backend(b), breaker(breaker_options) {}

  ShardBackend* backend;
  CircuitBreaker breaker;
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> successes{0};
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> data_loss{0};
  std::atomic<uint64_t> sheds{0};
  std::atomic<uint64_t> stale{0};
  std::atomic<uint64_t> refusals{0};
  std::atomic<uint64_t> last_generation{0};
};

/// Shared state of one hedged leg. Held by shared_ptr so a loser that
/// completes after the winner returned writes into live storage.
struct ReplicaSet::LegState {
  std::mutex mu;
  std::condition_variable cv;
  ShardResponse responses[2];
  bool done[2] = {false, false};
  std::atomic<bool> cancel[2] = {{false}, {false}};
};

/// State of one leg's sequential routing loop (fresh per leg; also seeded
/// from a hedged pair's leftovers for the continuation path).
struct ReplicaSet::SeqState {
  SeqState(size_t num_replicas, uint32_t retries, uint32_t failovers,
           uint32_t attempts, const BackoffOptions& backoff_options,
           uint64_t backoff_seed)
      : tried(num_replicas, false),
        retries_left(retries),
        failovers_left(failovers),
        attempts_left(attempts),
        backoff(backoff_options, backoff_seed) {}

  std::vector<bool> tried;
  uint32_t retries_left;
  uint32_t failovers_left;
  uint32_t attempts_left;
  Backoff backoff;
  /// Class of the previous completed attempt; the next attempt is charged
  /// to the budget this class names.
  AttemptClass prev = AttemptClass::kNone;
  ShardResponse fallback;
  int fallback_rank = 0;

  size_t untried() const {
    size_t n = 0;
    for (bool t : tried) {
      if (!t) ++n;
    }
    return n;
  }
  void KeepFallback(ShardResponse response, AttemptClass cls) {
    const int rank = FallbackRank(cls);
    if (rank > fallback_rank) {
      fallback = std::move(response);
      fallback_rank = rank;
    }
  }
};

ReplicaSet::ReplicaSet(uint32_t shard_id, std::vector<ShardBackend*> replicas,
                       ReplicaSetOptions options)
    : shard_id_(shard_id),
      options_(options),
      clock_(ResolveClock(options.clock)),
      p95_bits_(std::bit_cast<uint64_t>(0.0)) {
  XCLEAN_CHECK(!replicas.empty());
  // SelectReplica tracks race-loser exclusions in a 64-bit mask; an
  // oversized configuration is rejected here, at construction, not on the
  // query-serving path.
  XCLEAN_CHECK(replicas.size() <= 64);
  replicas_.reserve(replicas.size());
  for (ShardBackend* backend : replicas) {
    XCLEAN_CHECK(backend != nullptr);
    replicas_.push_back(std::make_unique<Replica>(backend, options_.breaker));
  }
}

ReplicaSet::~ReplicaSet() {
  // A hedged loser may still be running on the pool after its leg already
  // returned (first usable answer wins; the loser is cancelled, not
  // joined). Those tasks touch this object's counters and breakers, so
  // destruction must wait for the last of them to finish.
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return inflight_pool_tasks_ == 0; });
}

std::chrono::nanoseconds ReplicaSet::HedgeDelay() const {
  const double p95_ms =
      std::bit_cast<double>(p95_bits_.load(std::memory_order_relaxed));
  const auto derived = std::chrono::nanoseconds(
      static_cast<int64_t>(p95_ms * options_.hedge_p95_factor * 1e6));
  return std::clamp(
      derived,
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.hedge_delay_floor),
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.hedge_delay_cap));
}

void ReplicaSet::RecordUsableLatency(double latency_ms) {
  const double est =
      std::bit_cast<double>(p95_bits_.load(std::memory_order_relaxed));
  double next;
  if (latency_ms > est) {
    next = est + kP95Alpha * (latency_ms - est);
  } else {
    next = est - (kP95Alpha / 19.0) * (est - latency_ms);
  }
  p95_bits_.store(std::bit_cast<uint64_t>(next), std::memory_order_relaxed);
}

bool ReplicaSet::TryReserveHedge() {
  if (options_.hedge_rate_cap <= 0.0) return false;
  uint64_t h = hedges_.load(std::memory_order_relaxed);
  const uint64_t legs = legs_.load(std::memory_order_relaxed);
  while (static_cast<double>(h) <
         options_.hedge_rate_cap * static_cast<double>(legs) + 1.0) {
    if (hedges_.compare_exchange_weak(h, h + 1,
                                      std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

int ReplicaSet::SelectReplica(const std::vector<bool>& tried,
                              bool allow_tried, uint64_t expected_generation,
                              std::chrono::steady_clock::time_point now,
                              bool* probe) {
  // Deterministic ranking: fresh-generation before known-stale, untried
  // before tried, then replica index. Breaker-inadmissible replicas are
  // skipped entirely; a half-open probe ranks like a closed replica, so a
  // cooled-down breaker gets its probe at the next selection that reaches
  // it (rather than never, which ranking probes below healthy siblings
  // would cause). Allow() races with concurrent legs over the single
  // half-open probe, so the loser of that race rescans without the loser
  // replica.
  *probe = false;
  uint64_t excluded = 0;
  while (true) {
    int best = -1;
    int best_key = 0;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if ((excluded >> i) & 1) continue;
      if (tried[i] && !allow_tried) continue;
      Replica& replica = *replicas_[i];
      if (!replica.breaker.WouldAllow(now)) continue;
      int key = 0;
      const uint64_t last_gen =
          replica.last_generation.load(std::memory_order_relaxed);
      if (expected_generation != 0 && last_gen != 0 &&
          last_gen != expected_generation) {
        key += 4;  // known stale: last resort
      }
      if (tried[i]) key += 2;  // prefer fresh targets even when retrying
      if (best < 0 || key < best_key) {
        best = static_cast<int>(i);
        best_key = key;
      }
    }
    if (best < 0) return -1;
    if (replicas_[best]->breaker.Allow(now, probe)) return best;
    excluded |= uint64_t{1} << best;
  }
}

ShardResponse ReplicaSet::Attempt(size_t replica_index,
                                  const ShardRequest& request,
                                  std::chrono::steady_clock::time_point
                                      deadline,
                                  const std::atomic<bool>* external_cancel) {
  attempts_.fetch_add(1, std::memory_order_relaxed);
  Replica& replica = *replicas_[replica_index];
  replica.attempts.fetch_add(1, std::memory_order_relaxed);
  ShardRequest sub = request;
  sub.deadline = deadline;
  if (external_cancel != nullptr) sub.external_cancel = external_cancel;
  return replica.backend->Evaluate(sub);
}

void ReplicaSet::Account(size_t replica_index, const ShardResponse& response,
                         AttemptClass cls,
                         std::chrono::steady_clock::time_point now,
                         double latency_ms, bool overall_expired,
                         bool probe) {
  Replica& replica = *replicas_[replica_index];
  if (response.status.ok()) {
    replica.last_generation.store(response.generation,
                                  std::memory_order_relaxed);
  }
  switch (cls) {
    case AttemptClass::kUsable:
      replica.successes.fetch_add(1, std::memory_order_relaxed);
      replica.breaker.OnSuccess(now, latency_ms);
      RecordUsableLatency(latency_ms);
      break;
    case AttemptClass::kUsablePartial:
      // Alive and honest, just slow/cut — a success for the breaker, but
      // its latency (== the slice it was given) must not feed the p95.
      replica.successes.fetch_add(1, std::memory_order_relaxed);
      replica.breaker.OnSuccess(now, latency_ms);
      break;
    case AttemptClass::kStale:
      // The replica is healthy, merely behind on snapshots; staleness is
      // routed around via last_generation, not punished via the breaker.
      replica.stale.fetch_add(1, std::memory_order_relaxed);
      replica.breaker.OnSuccess(now, latency_ms);
      break;
    case AttemptClass::kRefused: {
      replica.refusals.fetch_add(1, std::memory_order_relaxed);
      // A deadline refusal while the overall deadline still had room means
      // the replica burned its whole slice — a slow-replica signal. A
      // refusal of an already-dead request, or of one cancelled from
      // outside (a hedge loser whose sibling won, a client gone), says
      // nothing about the replica.
      const bool cancelled =
          response.cancel_cause == CancelCause::kExternal;
      if (!overall_expired && !cancelled) {
        replica.breaker.OnFailure(now);
      } else if (probe) {
        replica.breaker.ReleaseProbe();
      }
      break;
    }
    case AttemptClass::kShed:
      // Load, not fault: tripping the breaker on sheds would amplify an
      // overload into an outage. The shed resolves neither way, so a probe
      // admission is handed back rather than stranded.
      replica.sheds.fetch_add(1, std::memory_order_relaxed);
      if (probe) replica.breaker.ReleaseProbe();
      break;
    case AttemptClass::kTransport:
      replica.transport_errors.fetch_add(1, std::memory_order_relaxed);
      // Corrupt frames (checksum/decode failures) are transport failures
      // for retry and breaker purposes, but counted apart: DataLoss means
      // the replica is reachable and answering garbage, which is a
      // different operational problem than being unreachable.
      if (response.status.code() == StatusCode::kDataLoss) {
        replica.data_loss.fetch_add(1, std::memory_order_relaxed);
      }
      replica.breaker.OnFailure(now);
      break;
    case AttemptClass::kNone:
      break;
  }
}

ShardResponse ReplicaSet::RunLoop(const ShardRequest& request, SeqState& st) {
  const uint64_t expected = request.expected_generation;
  while (true) {
    // Charge the continuation to the budget the previous failure names.
    // The very first attempt (prev == kNone) is free.
    if (st.prev == AttemptClass::kTransport) {
      if (st.retries_left == 0) break;
      --st.retries_left;
      retries_.fetch_add(1, std::memory_order_relaxed);
      auto delay = st.backoff.Next();
      const auto remaining = request.deadline - clock_->Now();
      if (remaining <= std::chrono::nanoseconds::zero()) break;
      if (delay > remaining) {
        delay =
            std::chrono::duration_cast<std::chrono::nanoseconds>(remaining);
      }
      clock_->SleepFor(delay);
    } else if (st.prev != AttemptClass::kNone) {
      // Failover classes: shed / stale / refusal / truncated partial.
      // No backoff — the sibling is presumed healthy and the clock is
      // already running against the caller's deadline.
      if (st.failovers_left == 0) break;
      --st.failovers_left;
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }
    if (st.attempts_left == 0) break;

    const auto now = clock_->Now();
    // A request that is dead on arrival still makes one attempt, so the
    // primary can refuse it politely (and count it); once any attempt has
    // run, an expired deadline ends the leg.
    if (st.prev != AttemptClass::kNone && now >= request.deadline) break;

    bool probe = false;
    int idx = SelectReplica(st.tried, /*allow_tried=*/false, expected, now,
                            &probe);
    if (idx < 0 && st.prev == AttemptClass::kTransport) {
      // Nothing fresh left: a transport retry may re-send to an already-
      // tried replica (the classic single-replica retry).
      idx = SelectReplica(st.tried, /*allow_tried=*/true, expected, now,
                          &probe);
    }
    if (idx < 0) break;
    st.tried[idx] = true;
    --st.attempts_left;

    // Backup-request pacing: while failover budget and a fresh sibling
    // remain, this attempt gets only a hedge-delay slice of the deadline —
    // a slow replica burns one slice, not the whole budget, and the
    // sibling still has room to answer in full. The last resort runs with
    // whatever deadline remains.
    auto attempt_deadline = request.deadline;
    if (st.failovers_left > 0 && st.untried() > 0) {
      const auto slice = now + HedgeDelay();
      if (slice < attempt_deadline) attempt_deadline = slice;
    }

    ShardResponse response =
        Attempt(idx, request, attempt_deadline, /*external_cancel=*/nullptr);
    const auto after = clock_->Now();
    const double latency_ms =
        std::chrono::duration<double, std::milli>(after - now).count();
    const AttemptClass cls = ClassifyAttempt(response, expected);
    Account(idx, response, cls, after, latency_ms,
            /*overall_expired=*/after >= request.deadline, probe);

    if (cls == AttemptClass::kUsable) return response;
    st.KeepFallback(std::move(response), cls);
    st.prev = cls;
  }

  if (st.fallback_rank > 0) {
    if (st.fallback_rank == FallbackRank(AttemptClass::kStale)) {
      stale_served_.fetch_add(1, std::memory_order_relaxed);
    }
    return st.fallback;
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  ShardResponse out;
  out.shard_id = shard_id_;
  out.status = Status::Unavailable("replica set exhausted for shard " +
                                   std::to_string(shard_id_));
  return out;
}

ShardResponse ReplicaSet::Evaluate(const ShardRequest& request) {
  const uint64_t leg = legs_.fetch_add(1, std::memory_order_relaxed);
  if (options_.hedge_pool != nullptr) return EvaluateHedged(request, leg);
  SeqState st(replicas_.size(), options_.max_retries, options_.max_failovers,
              max_attempts_per_leg(), options_.backoff,
              options_.seed ^ (leg * 0x9E3779B97F4A7C15ull));
  return RunLoop(request, st);
}

ShardResponse ReplicaSet::EvaluateHedged(const ShardRequest& request,
                                         uint64_t leg) {
  const uint64_t expected = request.expected_generation;
  SeqState st(replicas_.size(), options_.max_retries, options_.max_failovers,
              max_attempts_per_leg(), options_.backoff,
              options_.seed ^ (leg * 0x9E3779B97F4A7C15ull));

  const auto start = clock_->Now();
  bool primary_probe = false;
  const int primary = SelectReplica(st.tried, /*allow_tried=*/false,
                                    expected, start, &primary_probe);
  if (primary < 0) return RunLoop(request, st);
  st.tried[primary] = true;
  --st.attempts_left;

  auto state = std::make_shared<LegState>();
  auto submit = [&](int slot, int replica_index, bool probe) {
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      ++inflight_pool_tasks_;
    }
    const bool submitted =
        options_.hedge_pool
            ->TrySubmit([this, state, request, slot, replica_index,
                         expected, probe] {
              const auto begin = clock_->Now();
              ShardResponse response =
                  Attempt(static_cast<size_t>(replica_index), request,
                          request.deadline, &state->cancel[slot]);
              const auto end = clock_->Now();
              const AttemptClass cls = ClassifyAttempt(response, expected);
              Account(static_cast<size_t>(replica_index), response, cls, end,
                      std::chrono::duration<double, std::milli>(end - begin)
                          .count(),
                      /*overall_expired=*/end >= request.deadline, probe);
              {
                std::lock_guard<std::mutex> lock(state->mu);
                state->responses[slot] = std::move(response);
                state->done[slot] = true;
                state->cv.notify_all();
              }
              // Last touch of `this`: release the destructor drain while
              // still holding drain_mu_, so the notify can't race object
              // teardown.
              std::lock_guard<std::mutex> lock(drain_mu_);
              --inflight_pool_tasks_;
              drain_cv_.notify_all();
            })
            .ok();
    if (!submitted) {
      std::lock_guard<std::mutex> lock(drain_mu_);
      --inflight_pool_tasks_;
      drain_cv_.notify_all();
    }
    return submitted;
  };

  // Pool saturated: run the whole leg inline instead of hedging. The
  // attempt slot — and the breaker probe, if the admission was one — is
  // handed back first, so the inline loop can re-select the primary.
  if (!submit(0, primary, primary_probe)) {
    st.tried[primary] = false;
    ++st.attempts_left;
    if (primary_probe) replicas_[primary]->breaker.ReleaseProbe();
    return RunLoop(request, st);
  }

  // Phase 1: give the primary one hedge delay to answer.
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait_for(
        lock,
        std::chrono::duration_cast<std::chrono::nanoseconds>(HedgeDelay()),
        [&] { return state->done[0]; });
  }

  // Phase 2: primary still out — fire the hedge if the rate cap and a
  // fresh, admissible sibling allow. The hedge is charged to the failover
  // budget, so threading never exceeds the sequential attempt bound.
  bool have_hedge = false;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    const bool primary_done = state->done[0];
    lock.unlock();
    if (!primary_done && st.failovers_left > 0 && st.attempts_left > 0) {
      const auto now = clock_->Now();
      if (now < request.deadline) {
        // Reserve the hedge-rate slot *before* selecting: selection
        // consumes a breaker admission, and a cap refusal afterwards
        // would strand a half-open probe with no attempt to resolve it.
        if (TryReserveHedge()) {
          bool sibling_probe = false;
          const int sibling = SelectReplica(
              st.tried, /*allow_tried=*/false, expected, now,
              &sibling_probe);
          if (sibling >= 0) {
            st.tried[sibling] = true;
            --st.attempts_left;
            --st.failovers_left;
            if (submit(1, sibling, sibling_probe)) {
              have_hedge = true;
            } else {
              // Hand back everything the failed hedge reserved: the
              // budgets, the rate-cap slot, and the probe admission.
              st.tried[sibling] = false;
              ++st.attempts_left;
              ++st.failovers_left;
              if (sibling_probe) {
                replicas_[sibling]->breaker.ReleaseProbe();
              }
              hedges_.fetch_sub(1, std::memory_order_relaxed);
            }
          } else {
            hedges_.fetch_sub(1, std::memory_order_relaxed);
          }
        } else {
          hedge_suppressed_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  // Phase 3: first usable answer wins; the loser is cancelled through its
  // external-cancel hook and its late write lands in shared state.
  int winner = -1;
  bool consumed[2] = {false, false};
  bool timed_out = false;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    while (true) {
      for (int slot = 0; slot < 2; ++slot) {
        if (slot == 1 && !have_hedge) continue;
        if (!state->done[slot] || consumed[slot]) continue;
        consumed[slot] = true;
        const AttemptClass cls =
            ClassifyAttempt(state->responses[slot], expected);
        if (cls == AttemptClass::kUsable) {
          winner = slot;
          break;
        }
        st.KeepFallback(state->responses[slot], cls);
        st.prev = cls;
      }
      if (winner >= 0 || timed_out) break;
      const bool all_done = state->done[0] && (!have_hedge || state->done[1]);
      if (all_done) break;
      const auto waker = [&] {
        return (state->done[0] && !consumed[0]) ||
               (have_hedge && state->done[1] && !consumed[1]);
      };
      if (request.deadline ==
          std::chrono::steady_clock::time_point::max()) {
        state->cv.wait(lock, waker);
      } else if (!state->cv.wait_until(lock, request.deadline, waker)) {
        timed_out = true;
      }
    }
    // Cancel whatever is still in flight: the loser of a won race, or
    // both on timeout.
    for (int slot = 0; slot < 2; ++slot) {
      if (slot == 1 && !have_hedge) continue;
      if (slot == winner || state->done[slot]) continue;
      state->cancel[slot].store(true, std::memory_order_release);
      losers_cancelled_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (winner >= 0) {
    if (winner == 1) hedge_wins_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state->mu);
    return state->responses[winner];
  }
  if (timed_out) {
    // Nothing usable and the deadline has passed; RunLoop's own deadline
    // check will fall through to the best fallback immediately.
    st.prev = st.prev == AttemptClass::kNone ? AttemptClass::kRefused
                                             : st.prev;
  }
  // Continuation: neither the primary nor the hedge produced a usable
  // answer. Budgets and tried-marks already reflect both attempts, so the
  // sequential loop picks up exactly where the hedged pair left off.
  return RunLoop(request, st);
}

BreakerState ReplicaSet::breaker_state(size_t replica) const {
  XCLEAN_CHECK(replica < replicas_.size());
  return replicas_[replica]->breaker.state();
}

ReplicaSetStats ReplicaSet::stats() const {
  ReplicaSetStats s;
  s.legs = legs_.load(std::memory_order_relaxed);
  s.attempts = attempts_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.hedges = hedges_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  s.losers_cancelled = losers_cancelled_.load(std::memory_order_relaxed);
  s.hedge_suppressed = hedge_suppressed_.load(std::memory_order_relaxed);
  s.stale_served = stale_served_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  s.p95_ms = std::bit_cast<double>(p95_bits_.load(std::memory_order_relaxed));
  s.replicas.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    ReplicaStats r;
    r.attempts = replica->attempts.load(std::memory_order_relaxed);
    r.successes = replica->successes.load(std::memory_order_relaxed);
    r.transport_errors =
        replica->transport_errors.load(std::memory_order_relaxed);
    r.data_loss = replica->data_loss.load(std::memory_order_relaxed);
    r.sheds = replica->sheds.load(std::memory_order_relaxed);
    r.stale = replica->stale.load(std::memory_order_relaxed);
    r.refusals = replica->refusals.load(std::memory_order_relaxed);
    r.breaker_opens = replica->breaker.opens();
    r.breaker_state = replica->breaker.state();
    r.last_generation =
        replica->last_generation.load(std::memory_order_relaxed);
    s.replicas.push_back(r);
  }
  return s;
}

}  // namespace xclean::shard
