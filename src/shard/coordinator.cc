#include "shard/coordinator.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "core/accumulator.h"
#include "core/candidate_map.h"

namespace xclean::shard {

namespace {

/// Gather state shared between the fan-out legs and the waiting
/// coordinator thread. Held by shared_ptr so a leg that completes after
/// the fan-out deadline writes into still-live (but no longer read)
/// storage instead of a dangling frame.
struct FanoutState {
  explicit FanoutState(size_t n) : outcomes(n), arrived(n, false), pending(n) {}

  std::mutex mu;
  std::condition_variable cv;
  std::vector<ShardOutcome> outcomes;
  std::vector<bool> arrived;
  size_t pending;

  void Deliver(size_t i, ShardOutcome outcome) {
    std::lock_guard<std::mutex> lock(mu);
    if (!arrived[i]) {
      outcomes[i] = std::move(outcome);
      arrived[i] = true;
      if (--pending == 0) cv.notify_all();
    }
  }
};

}  // namespace

Coordinator::Coordinator(std::vector<ShardBackend*> shards,
                         std::shared_ptr<const delta::MergedStats> stats,
                         XCleanOptions xclean, CoordinatorOptions options)
    : shards_(std::move(shards)),
      stats_(std::move(stats)),
      xclean_(xclean),
      options_(options),
      pool_(ThreadPoolOptions{/*num_threads=*/shards_.size(),
                              /*queue_capacity=*/shards_.size() * 64}) {
  XCLEAN_CHECK(!shards_.empty());
}

CoordinatorResult Coordinator::Suggest(const Query& query,
                                       uint64_t expected_generation) {
  const size_t n = shards_.size();
  const auto deadline =
      std::chrono::steady_clock::now() + options_.fanout_timeout;

  ShardRequest request;
  request.query = query;
  request.deadline = deadline;
  request.queue_depth = pool_.queue_depth();
  request.queue_capacity = pool_.queue_capacity();
  request.expected_generation = expected_generation;

  auto state = std::make_shared<FanoutState>(n);
  for (size_t i = 0; i < n; ++i) {
    ShardBackend* backend = shards_[i];
    Status submitted = pool_.TrySubmit(
        [state, i, backend, request] {
          ShardOutcome outcome;
          outcome.kind = ShardOutcomeKind::kOk;
          outcome.response = backend->Evaluate(request);
          state->Deliver(i, std::move(outcome));
        },
        deadline,
        /*on_expired=*/[state, i] {
          state->Deliver(i, ShardOutcome{ShardOutcomeKind::kTimeout, {}});
        });
    if (!submitted.ok()) {
      ShardOutcome outcome;
      outcome.kind = ShardOutcomeKind::kError;
      outcome.response.status = submitted;
      state->Deliver(i, std::move(outcome));
    }
  }

  std::vector<ShardOutcome> outcomes;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait_until(lock, deadline, [&] { return state->pending == 0; });
    // Legs still running past the deadline become timeouts; if they later
    // deliver, Deliver() sees arrived[i] and discards the late answer.
    for (size_t i = 0; i < n; ++i) {
      if (!state->arrived[i]) {
        state->outcomes[i] = ShardOutcome{ShardOutcomeKind::kTimeout, {}};
        state->arrived[i] = true;
        --state->pending;
      }
    }
    outcomes = state->outcomes;
  }
  return Merge(*stats_, xclean_, options_, expected_generation, outcomes);
}

CoordinatorResult Coordinator::Merge(const delta::MergedStats& stats,
                                     const XCleanOptions& xclean,
                                     const CoordinatorOptions& options,
                                     uint64_t expected_generation,
                                     const std::vector<ShardOutcome>& outcomes) {
  CoordinatorResult result;
  result.generation = expected_generation;

  // Unbounded table: the coordinator merges already-pruned per-shard
  // lists; re-pruning here would discard exact mass for no memory win.
  AccumulatorTable accumulators(/*gamma=*/0);
  CandidateMap<uint32_t> lca_totals;
  CandidateMap<PathId> result_types;

  // Wire hardening: with a real RPC transport behind ShardBackend, a
  // response is untrusted bytes until proven otherwise. The frame and
  // payload checksums catch random corruption, but a buggy or hostile
  // shard can still emit structurally valid nonsense — non-finite or
  // negative probability masses would poison every merged score, and an
  // out-of-range shard id means the response cannot be the shard it
  // claims. Such responses are dropped wholesale (a partial that lies
  // once is not trusted twice), counted as failed legs.
  const auto malformed = [&outcomes](const ShardResponse& response) {
    if (response.shard_id >= outcomes.size()) return true;
    for (const PartialCandidate& partial : response.partials) {
      if (partial.tokens.empty()) return true;
      if (!std::isfinite(partial.error_weight) || partial.error_weight < 0.0 ||
          !std::isfinite(partial.sum) || partial.sum < 0.0) {
        return true;
      }
    }
    return false;
  };

  for (const ShardOutcome& outcome : outcomes) {
    if (outcome.kind != ShardOutcomeKind::kOk ||
        !outcome.response.status.ok() || malformed(outcome.response)) {
      ++result.shards_failed;
      result.truncated = true;
      continue;
    }
    const ShardResponse& response = outcome.response;
    // Generation gate: merging a stale shard would blend two corpus
    // versions into one ranking — the one inconsistency no degradation
    // policy may admit. Stale partials are dropped wholesale.
    if (response.generation != expected_generation) {
      ++result.shards_stale;
      result.truncated = true;
      continue;
    }
    for (const PartialCandidate& partial : response.partials) {
      accumulators.MergePartial(partial.tokens.data(), partial.tokens.size(),
                                partial.error_weight, partial.sum,
                                partial.entity_count);
      if (xclean.semantics == Semantics::kNodeType) {
        *result_types.GetOrCreate(partial.tokens.data(),
                                  partial.tokens.size()) = partial.result_type;
      } else {
        bool created = false;
        uint32_t* total = lca_totals.GetOrCreate(
            partial.tokens.data(), partial.tokens.size(), &created);
        if (created) *total = 0;
        *total += partial.lca_total;
      }
    }
    if (response.truncated) {
      ++result.shards_truncated;
      result.truncated = true;
    } else {
      ++result.shards_ok;
    }
  }

  const size_t healthy = result.shards_ok + result.shards_truncated;
  if (healthy < options.min_healthy_shards) {
    result.status = Status::Unavailable(
        std::to_string(healthy) + " of " + std::to_string(outcomes.size()) +
        " shards healthy (need " + std::to_string(options.min_healthy_shards) +
        ")");
    return result;
  }

  // Final scoring (Eq. 10) over the merged accumulators — the same
  // arithmetic and tie-break as the unsharded evaluation, against the
  // global normalizers.
  struct FinalEntry {
    const TokenId* key;
    uint32_t key_len;
    double score;
    double error_weight;
    uint32_t entity_count;
    PathId result_type;
  };
  std::vector<FinalEntry> finals;
  finals.reserve(accumulators.size());
  accumulators.ForEach([&](const TokenId* key, size_t key_len,
                           const CandidateState& state) {
    FinalEntry e;
    e.key = key;
    e.key_len = static_cast<uint32_t>(key_len);
    e.error_weight = state.error_weight;
    e.entity_count = state.entity_count;
    e.result_type = XmlTree::kInvalidPath;
    double n_entities = 1.0;
    if (xclean.semantics == Semantics::kNodeType) {
      const PathId* type = result_types.Find(key, key_len);
      XCLEAN_CHECK(type != nullptr);
      e.result_type = *type;
      n_entities = stats.path_node_count(*type);
    } else {
      const uint32_t* total = lca_totals.Find(key, key_len);
      XCLEAN_CHECK(total != nullptr);
      n_entities = *total;
    }
    // A node type (or LCA normalizer) with zero global count can reach the
    // merge — e.g. every matching entity was tombstoned in a delta layer
    // while the type itself survives in the statistics broadcast. Score it
    // zero instead of dividing into inf/nan, which would poison the sort.
    e.score =
        n_entities > 0.0 ? state.error_weight * state.sum / n_entities : 0.0;
    finals.push_back(e);
  });

  std::sort(finals.begin(), finals.end(),
            [&](const FinalEntry& a, const FinalEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              size_t n = std::min(a.key_len, b.key_len);
              for (size_t i = 0; i < n; ++i) {
                if (a.key[i] == b.key[i]) continue;
                return stats.token(a.key[i]) < stats.token(b.key[i]);
              }
              return a.key_len < b.key_len;
            });

  const size_t k = std::min(finals.size(), options.top_k);
  result.suggestions.resize(k);
  for (size_t r = 0; r < k; ++r) {
    const FinalEntry& e = finals[r];
    Suggestion& s = result.suggestions[r];
    s.words.resize(e.key_len);
    for (size_t i = 0; i < e.key_len; ++i) s.words[i] = stats.token(e.key[i]);
    s.score = e.score;
    s.error_weight = e.error_weight;
    s.entity_count = e.entity_count;
    s.result_type = e.result_type;
  }
  return result;
}

}  // namespace xclean::shard
