#ifndef XCLEAN_SHARD_SHARD_SERVER_H_
#define XCLEAN_SHARD_SHARD_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/accumulator.h"
#include "core/query.h"
#include "core/query_scratch.h"
#include "core/xclean.h"
#include "delta/layered_xclean.h"
#include "serve/overload.h"

namespace xclean::shard {

/// One query's fan-out leg to a single shard.
struct ShardRequest {
  Query query;
  /// Wall-clock budget for this leg; the shard truncates (partial results,
  /// `truncated` set) rather than overrun it.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Host-reported queue pressure the degradation ladder runs on (the
  /// shard evaluation itself is synchronous; queueing happens in whatever
  /// transports the request — the coordinator pool here, an RPC server in
  /// a real deployment).
  size_t queue_depth = 0;
  size_t queue_capacity = 1;
  /// Generation the coordinator will merge against. The shard itself
  /// evaluates whatever snapshot it holds (the response carries its actual
  /// generation); this field exists for the routing layer between
  /// coordinator and shard — ReplicaSet prefers replicas whose published
  /// generation matches it. 0 means "no expectation".
  uint64_t expected_generation = 0;
  /// Optional external kill switch, wired into the evaluation's
  /// QueryBudget: raising it cancels the leg cooperatively mid-algorithm.
  /// This is how a hedged leg's loser is cancelled. Must outlive the call.
  const std::atomic<bool>* external_cancel = nullptr;
};

/// A shard's answer: its partial accumulators plus everything the
/// coordinator needs to decide whether they are mergeable (generation) and
/// whether the merged answer must be flagged partial (tier, truncated).
struct ShardResponse {
  /// Ok, Unavailable (ladder shed the request), or an injected/transport
  /// error. Partials are only meaningful when ok().
  Status status;
  uint32_t shard_id = 0;
  /// Generation of the snapshot the partials were computed against. The
  /// coordinator drops responses whose generation differs from the one it
  /// expects — a swap that lands mid-evaluation makes the shard re-read
  /// its generation afterwards, so a torn evaluation can never masquerade
  /// as either generation (see Evaluate()).
  uint64_t generation = 0;
  ServiceTier tier = ServiceTier::kFull;
  /// True when the evaluation stopped early (deadline/budget) or ran at a
  /// reduced tier: the partials underestimate this shard's contribution.
  bool truncated = false;
  CancelCause cancel_cause = CancelCause::kNone;
  std::vector<PartialCandidate> partials;
  XCleanRunStats run_stats;
};

/// Abstract fan-out target so the coordinator and the simulation harness
/// speak one interface: production wraps ShardServer, the simulator wraps
/// scripted fault schedules around it.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;
  virtual ShardResponse Evaluate(const ShardRequest& request) = 0;
};

/// Monotonic per-shard counters (relaxed atomics, monitoring-grade).
struct ShardServerStats {
  uint64_t requests = 0;
  uint64_t shed = 0;
  uint64_t refused = 0;  ///< expired-on-arrival: never started evaluating
  uint64_t truncated = 0;
  uint64_t stale_risk = 0;  ///< evaluations overlapped by a generation swap
};

/// Serving wrapper for one shard: the per-shard half of scatter-gather.
/// Holds a slot in the shared LayeredXClean engine (its postings are the
/// shard's, its statistics the global broadcast), runs PR 4's degradation
/// ladder per shard, pins every evaluation to a generation, and exposes
/// fault-injection points for the simulation harness:
///
///   shard.evaluate        every Evaluate(), any shard (status/delay/cb)
///   shard.evaluate.<id>   same, one shard only
///
/// Thread-safe: concurrent Evaluate() calls draw scratches from a pool;
/// PublishGeneration may race evaluations (that race is the hazard the
/// generation re-read closes).
class ShardServer final : public ShardBackend {
 public:
  ShardServer(uint32_t shard_id,
              std::shared_ptr<const delta::LayeredXClean> engine,
              uint64_t generation,
              OverloadControllerOptions overload = OverloadControllerOptions());

  /// Evaluates the request against this shard's postings. Never blocks on
  /// other requests; honours request.deadline cooperatively via a
  /// CancelToken, and refuses outright (truncated, empty partials,
  /// kDeadline) when the deadline has already passed at admission — work
  /// the coordinator has given up on is never started. Ladder behaviour:
  /// kReduced caps the per-query knobs
  /// (reduced_tuning) and marks the response truncated; kCacheOnly and
  /// kShed return Unavailable without evaluating (a shard holds no
  /// response cache — cache-only service is a coordinator concern).
  ShardResponse Evaluate(const ShardRequest& request) override;

  /// Simulates a snapshot swap landing on this shard (the in-process
  /// engine is immutable; what changes is the generation tag a real swap
  /// would change). Evaluations in flight re-read the generation after
  /// computing, see the mismatch with their admission read, and mark the
  /// response with the *new* generation plus truncated — the coordinator
  /// then discards it as stale instead of merging bytes of unknown vintage.
  void PublishGeneration(uint64_t generation) {
    generation_.store(generation, std::memory_order_release);
  }
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  uint32_t shard_id() const { return shard_id_; }
  OverloadController& overload() { return overload_; }
  ShardServerStats stats() const;

 private:
  struct ScratchLease;
  std::unique_ptr<QueryScratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<QueryScratch> scratch);

  const uint32_t shard_id_;
  const std::string fault_point_;  ///< "shard.evaluate.<id>"
  std::shared_ptr<const delta::LayeredXClean> engine_;
  std::atomic<uint64_t> generation_;
  OverloadController overload_;

  std::mutex scratch_mu_;
  std::vector<std::unique_ptr<QueryScratch>> scratch_pool_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> truncated_{0};
  std::atomic<uint64_t> stale_risk_{0};
};

}  // namespace xclean::shard

#endif  // XCLEAN_SHARD_SHARD_SERVER_H_
