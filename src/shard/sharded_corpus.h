#ifndef XCLEAN_SHARD_SHARDED_CORPUS_H_
#define XCLEAN_SHARD_SHARDED_CORPUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/xclean.h"
#include "delta/layer.h"
#include "delta/layered_xclean.h"
#include "delta/merged_stats.h"
#include "index/shard_manifest.h"
#include "xml/tree.h"

namespace xclean::shard {

/// One shard's contiguous slice of document ordinals, [doc_begin, doc_end).
/// Documents are the depth-2 children of the corpus root in document
/// order, so a contiguous ordinal range is a contiguous preorder/Dewey
/// range — SLCA/ELCA anchors of any entity stay inside one shard (every
/// entity sits below one document at min_depth >= 2) and Dewey locality is
/// preserved shard-locally.
struct ShardRange {
  uint32_t doc_begin = 0;
  uint32_t doc_end = 0;

  bool empty() const { return doc_begin == doc_end; }
  bool Contains(uint32_t doc) const {
    return doc >= doc_begin && doc < doc_end;
  }
};

/// Preorder node ids of the corpus root's children — the document roots
/// the partitioner assigns to shards. Ordinal i in every ShardRange refers
/// to docs[i] of this vector.
std::vector<NodeId> DocumentRoots(const XmlTree& corpus);

/// Ordinal of the document containing `n` (any node below the root):
/// index into DocumentRoots(corpus) of its depth-2 ancestor. The root
/// itself belongs to no document; passing it is an error.
uint32_t DocumentOrdinal(const XmlTree& corpus, NodeId n);

/// Splits `num_docs` documents into `num_shards` contiguous ranges,
/// balanced by per-document weight (linear greedy sweep against the ideal
/// cumulative boundary — each boundary lands where the running weight
/// first reaches i/N of the total). Deterministic; tail ranges may be
/// empty when there are fewer documents than shards. `weights[i]` is the
/// cost proxy of document i (we use subtree node count).
std::vector<ShardRange> PartitionByWeight(const std::vector<uint64_t>& weights,
                                          size_t num_shards);

/// Shard for a document ordinal under `ranges` (which must tile the
/// document space); kInvalidNode-like sentinel UINT32_MAX if out of range.
uint32_t ShardForDocument(const std::vector<ShardRange>& ranges, uint32_t doc);

struct ShardedCorpusOptions {
  size_t num_shards = 4;
  IndexOptions index;
  XCleanOptions xclean;
};

/// A corpus range-partitioned into N single-layer indexes plus the global
/// statistics every shard evaluates against.
///
/// The partition reuses the delta machinery with shards as layers: shard
/// s's tree is the corpus root's label (root text goes to shard 0, the
/// "base" layer) plus the documents of range s replayed in document order,
/// indexed independently through the normal build pipeline. The LayerSet
/// of all shard indexes then feeds delta::MergedStats, which computes the
/// *global* vocabulary, path table, Dirichlet smoothing masses and merged
/// type lists — the statistics a distributed deployment would broadcast to
/// every shard at publish time. Each shard evaluates Algorithm 1 over its
/// own postings only (LayeredXClean::CollectLayerPartials), but against
/// the global background model, which is what makes per-shard partial sums
/// combine exactly: P(C|T) is a sum over entities (Eq. 8), every entity
/// lives in exactly one shard, and each per-entity term depends only on
/// shard-local postings plus the shared global statistics.
struct ShardedCorpus {
  uint64_t generation = 0;
  std::vector<ShardRange> ranges;
  /// layers->layers[s].index is shard s's index; tombstones are empty.
  std::shared_ptr<const delta::LayerSet> layers;
  std::shared_ptr<const delta::MergedStats> stats;
  /// The shared per-shard evaluation engine (immutable, thread-safe).
  std::shared_ptr<const delta::LayeredXClean> engine;

  size_t num_shards() const { return ranges.size(); }
};

/// Range-partitions `corpus` into `options.num_shards` shard indexes and
/// builds the global statistics. Requires options.xclean.min_depth >= 2
/// and no entity_prior (the shard-locality preconditions). `generation`
/// tags the build for staleness detection at the coordinator.
Result<ShardedCorpus> BuildShardedCorpus(const XmlTree& corpus,
                                         const ShardedCorpusOptions& options,
                                         uint64_t generation = 1);

/// Persists every shard snapshot plus the SHARDSET manifest into `dir`
/// (created by the caller). Snapshot files are named shard-%04u.idx.
Status SaveShardedCorpus(const ShardedCorpus& corpus, const std::string& dir);

/// Loads a shard set previously written by SaveShardedCorpus, verifying
/// the manifest and every per-shard checksum before rebuilding the global
/// statistics. `options.num_shards` is taken from the manifest.
Result<ShardedCorpus> LoadShardedCorpus(const std::string& dir,
                                        const XCleanOptions& xclean);

}  // namespace xclean::shard

#endif  // XCLEAN_SHARD_SHARDED_CORPUS_H_
