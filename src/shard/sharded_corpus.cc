#include "shard/sharded_corpus.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/check.h"
#include "common/durable_file.h"
#include "index/index_io.h"

namespace xclean::shard {

namespace {

std::string ShardFileName(uint32_t shard_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04u.idx", shard_id);
  return name;
}

/// Materializes shard `range` of `corpus` as its own tree: the corpus
/// root's label, the root's direct text on shard 0 only (mirroring
/// JoinLiveTree, where root text belongs to the base layer), then the
/// range's documents replayed in document order. The concatenation of all
/// shard trees in shard order is therefore exactly the JoinLiveTree of the
/// resulting LayerSet — the partition and the join are inverses.
Result<XmlTree> BuildShardTree(const XmlTree& corpus,
                               const std::vector<NodeId>& docs,
                               const ShardRange& range, bool is_base) {
  XmlTreeBuilder builder;
  Status s = builder.BeginElement(corpus.label(corpus.root()));
  if (!s.ok()) return s;
  if (is_base && corpus.has_text(corpus.root())) {
    s = builder.AddText(corpus.text(corpus.root()));
    if (!s.ok()) return s;
  }
  for (uint32_t doc = range.doc_begin; doc < range.doc_end; ++doc) {
    s = delta::ReplaySubtree(corpus, docs[doc], builder);
    if (!s.ok()) return s;
  }
  s = builder.EndElement();
  if (!s.ok()) return s;
  return std::move(builder).Finish();
}

Result<ShardedCorpus> AssembleFromIndexes(
    std::vector<std::shared_ptr<const XmlIndex>> indexes,
    std::vector<ShardRange> ranges, const XCleanOptions& xclean,
    uint64_t generation) {
  if (xclean.min_depth < 2) {
    return Status::InvalidArgument(
        "sharded serving requires min_depth >= 2 (document locality)");
  }
  if (xclean.entity_prior) {
    return Status::InvalidArgument(
        "sharded serving does not support entity priors");
  }
  auto layers = std::make_shared<delta::LayerSet>();
  layers->layers.reserve(indexes.size());
  for (std::shared_ptr<const XmlIndex>& index : indexes) {
    layers->layers.push_back(delta::Layer{std::move(index), {}});
  }
  ShardedCorpus corpus;
  corpus.generation = generation;
  corpus.ranges = std::move(ranges);
  corpus.layers = layers;
  corpus.stats = delta::MergedStats::Build(*layers, xclean);
  corpus.engine =
      std::make_shared<const delta::LayeredXClean>(layers, corpus.stats, xclean);
  return corpus;
}

}  // namespace

std::vector<NodeId> DocumentRoots(const XmlTree& corpus) {
  std::vector<NodeId> docs;
  for (NodeId c = corpus.FirstChild(corpus.root()); c != kInvalidNode;
       c = corpus.NextSibling(c)) {
    docs.push_back(c);
  }
  return docs;
}

uint32_t DocumentOrdinal(const XmlTree& corpus, NodeId n) {
  XCLEAN_CHECK(n != corpus.root() && n < corpus.size());
  const NodeId doc_root = corpus.AncestorAtDepth(n, 2);
  uint32_t ordinal = 0;
  for (NodeId c = corpus.FirstChild(corpus.root()); c != kInvalidNode;
       c = corpus.NextSibling(c)) {
    if (c == doc_root) return ordinal;
    ++ordinal;
  }
  XCLEAN_CHECK(false);  // every non-root node lies under some root child
  return UINT32_MAX;
}

std::vector<ShardRange> PartitionByWeight(const std::vector<uint64_t>& weights,
                                          size_t num_shards) {
  XCLEAN_CHECK(num_shards > 0);
  const size_t num_docs = weights.size();
  uint64_t total = 0;
  for (uint64_t w : weights) total += w;

  std::vector<ShardRange> ranges(num_shards);
  size_t doc = 0;
  uint64_t cum = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    ranges[s].doc_begin = static_cast<uint32_t>(doc);
    if (s + 1 == num_shards) {
      doc = num_docs;  // last shard absorbs the remainder
    } else if (total == 0) {
      doc = (s + 1) * num_docs / num_shards;  // count-balanced fallback
    } else {
      // A document joins shard s while its weight midpoint lies before the
      // ideal cumulative boundary total*(s+1)/num_shards; comparing
      // midpoints splits an oversized document's pull between neighbours
      // instead of always rounding it down. (Fits in uint64: weights are
      // node counts of one tree, bounded by NodeId range.)
      const uint64_t boundary = 2 * total * (s + 1);
      while (doc < num_docs &&
             (2 * cum + weights[doc]) * num_shards < boundary) {
        cum += weights[doc++];
      }
    }
    ranges[s].doc_end = static_cast<uint32_t>(doc);
  }
  return ranges;
}

uint32_t ShardForDocument(const std::vector<ShardRange>& ranges,
                          uint32_t doc) {
  for (size_t s = 0; s < ranges.size(); ++s) {
    if (ranges[s].Contains(doc)) return static_cast<uint32_t>(s);
  }
  return UINT32_MAX;
}

Result<ShardedCorpus> BuildShardedCorpus(const XmlTree& corpus,
                                         const ShardedCorpusOptions& options,
                                         uint64_t generation) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  const std::vector<NodeId> docs = DocumentRoots(corpus);
  std::vector<uint64_t> weights;
  weights.reserve(docs.size());
  for (NodeId doc : docs) {
    weights.push_back(corpus.subtree_end(doc) - doc + 1);
  }
  std::vector<ShardRange> ranges =
      PartitionByWeight(weights, options.num_shards);

  std::vector<std::shared_ptr<const XmlIndex>> indexes;
  indexes.reserve(ranges.size());
  for (size_t s = 0; s < ranges.size(); ++s) {
    Result<XmlTree> tree = BuildShardTree(corpus, docs, ranges[s], s == 0);
    if (!tree.ok()) return tree.status();
    indexes.push_back(XmlIndex::Build(std::move(tree).value(), options.index));
  }
  return AssembleFromIndexes(std::move(indexes), std::move(ranges),
                             options.xclean, generation);
}

Status SaveShardedCorpus(const ShardedCorpus& corpus, const std::string& dir) {
  ShardSetManifest manifest;
  manifest.generation = corpus.generation;
  for (size_t s = 0; s < corpus.num_shards(); ++s) {
    ShardManifestEntry entry;
    entry.shard_id = static_cast<uint32_t>(s);
    entry.doc_begin = corpus.ranges[s].doc_begin;
    entry.doc_end = corpus.ranges[s].doc_end;
    entry.file = ShardFileName(entry.shard_id);
    const std::string path = dir + "/" + entry.file;
    Status status = SaveIndex(*corpus.layers->layers[s].index, path);
    if (!status.ok()) return status;
    std::error_code ec;
    entry.bytes = std::filesystem::file_size(path, ec);
    if (ec) return Status::Internal("stat " + path + ": " + ec.message());
    Result<uint64_t> checksum = HashFileContents(path);
    if (!checksum.ok()) return checksum.status();
    entry.checksum = checksum.value();
    manifest.shards.push_back(std::move(entry));
  }
  // The manifest lands last, atomically: a crash mid-save leaves either no
  // manifest (shard files are garbage to be rewritten) or a manifest whose
  // every referenced snapshot is already complete and checksummed.
  return SaveShardSetManifest(dir, manifest);
}

Result<ShardedCorpus> LoadShardedCorpus(const std::string& dir,
                                        const XCleanOptions& xclean) {
  Result<ShardSetManifest> manifest = LoadShardSetManifest(dir);
  if (!manifest.ok()) return manifest.status();

  std::vector<std::shared_ptr<const XmlIndex>> indexes;
  std::vector<ShardRange> ranges;
  for (const ShardManifestEntry& entry : manifest->shards) {
    const std::string path = dir + "/" + entry.file;
    Status status = VerifyFileChecksum(path, entry.bytes, entry.checksum);
    if (!status.ok()) return status;
    Result<std::unique_ptr<XmlIndex>> index = LoadIndex(path);
    if (!index.ok()) return index.status();
    indexes.push_back(std::move(index).value());
    ranges.push_back(ShardRange{entry.doc_begin, entry.doc_end});
  }
  return AssembleFromIndexes(std::move(indexes), std::move(ranges), xclean,
                             manifest->generation);
}

}  // namespace xclean::shard
