#include "shard/shard_server.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/clock.h"
#include "common/fault_injection.h"

namespace xclean::shard {

namespace {

/// Funnels the two injection points through a Status-returning frame (the
/// XCLEAN_FAULT_STATUS macro returns from its enclosing function).
Status HitEvaluatePoints(const char* per_shard_point) {
  XCLEAN_FAULT_STATUS("shard.evaluate");
  XCLEAN_FAULT_STATUS(per_shard_point);
  return Status::Ok();
}

}  // namespace

ShardServer::ShardServer(uint32_t shard_id,
                         std::shared_ptr<const delta::LayeredXClean> engine,
                         uint64_t generation,
                         OverloadControllerOptions overload)
    : shard_id_(shard_id),
      fault_point_("shard.evaluate." + std::to_string(shard_id)),
      engine_(std::move(engine)),
      generation_(generation),
      overload_(overload) {
  XCLEAN_CHECK(shard_id_ < engine_->layer_count());
}

std::unique_ptr<QueryScratch> ShardServer::AcquireScratch() {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  if (scratch_pool_.empty()) return std::make_unique<QueryScratch>();
  std::unique_ptr<QueryScratch> scratch = std::move(scratch_pool_.back());
  scratch_pool_.pop_back();
  return scratch;
}

void ShardServer::ReleaseScratch(std::unique_ptr<QueryScratch> scratch) {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  scratch_pool_.push_back(std::move(scratch));
}

ShardResponse ShardServer::Evaluate(const ShardRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  ShardResponse response;
  response.shard_id = shard_id_;

  // Injection points first: an armed delay here models a slow shard, an
  // armed status a crashed/unreachable one, an armed callback a snapshot
  // swap racing the admission below.
  response.status = HitEvaluatePoints(fault_point_.c_str());
  response.generation = generation_.load(std::memory_order_acquire);
  if (!response.status.ok()) return response;

  // Expired-on-arrival: don't start work the coordinator has already given
  // up on. (Mid-flight expiry is handled cooperatively by the CancelToken
  // below, but its amortized clock checks — every kClockCheckStride work
  // units — can let a small shard run to completion; a completed answer is
  // simply correct. An answer we never started is not, so it must carry
  // the truncated flag.) Counted as `refused`, not `truncated`: the caller
  // distinguishes "shard was too slow" from "request arrived dead".
  const Clock& clock = overload_.clock();
  if (request.deadline <= clock.Now()) {
    refused_.fetch_add(1, std::memory_order_relaxed);
    response.truncated = true;
    response.cancel_cause = CancelCause::kDeadline;
    return response;
  }

  response.tier =
      overload_.Evaluate(request.queue_depth, request.queue_capacity);
  if (response.tier == ServiceTier::kCacheOnly ||
      response.tier == ServiceTier::kShed) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    response.status =
        Status::Unavailable(std::string("shard overloaded (tier ") +
                            TierName(response.tier) + ")");
    return response;
  }

  QueryBudget budget;
  budget.deadline = request.deadline;
  budget.external_cancel = request.external_cancel;
  CancelToken cancel(budget);
  const QueryTuning* tuning = response.tier == ServiceTier::kReduced
                                  ? &overload_.options().reduced_tuning
                                  : nullptr;

  const auto start = clock.Now();
  std::unique_ptr<QueryScratch> scratch = AcquireScratch();
  engine_->CollectLayerPartials(request.query, shard_id_, *scratch,
                                &response.partials, &response.run_stats,
                                &cancel, tuning);
  ReleaseScratch(std::move(scratch));
  overload_.RecordLatency(
      std::chrono::duration<double, std::milli>(clock.Now() - start).count());

  response.truncated =
      response.run_stats.truncated || response.tier == ServiceTier::kReduced;
  response.cancel_cause = response.run_stats.cancel_cause;

  // Generation re-read: if a swap landed between admission and here, the
  // evaluation may span two snapshots. Report the new generation and
  // truncated — against the coordinator's expectation the response is
  // either stale (expectation = old) or partial (expectation = new), and
  // in both cases it is barred from contributing as a clean, full answer.
  const uint64_t now_gen = generation_.load(std::memory_order_acquire);
  if (now_gen != response.generation) {
    stale_risk_.fetch_add(1, std::memory_order_relaxed);
    response.generation = now_gen;
    response.truncated = true;
  }
  if (response.truncated) {
    truncated_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

ShardServerStats ShardServer::stats() const {
  ShardServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.refused = refused_.load(std::memory_order_relaxed);
  s.truncated = truncated_.load(std::memory_order_relaxed);
  s.stale_risk = stale_risk_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace xclean::shard
