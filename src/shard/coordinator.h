#ifndef XCLEAN_SHARD_COORDINATOR_H_
#define XCLEAN_SHARD_COORDINATOR_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/query.h"
#include "core/xclean.h"
#include "delta/merged_stats.h"
#include "shard/shard_server.h"

namespace xclean::shard {

/// How one fan-out leg concluded, as seen from the coordinator.
enum class ShardOutcomeKind : uint8_t {
  /// The shard answered within the deadline; `response` is populated
  /// (its status may still be an error — shed, injected fault).
  kOk = 0,
  /// No answer by the fan-out deadline (slow or hung shard).
  kTimeout,
  /// The leg could not be dispatched (pool saturated) or the transport
  /// failed outright (crashed shard).
  kError,
};

struct ShardOutcome {
  ShardOutcomeKind kind = ShardOutcomeKind::kError;
  ShardResponse response;
};

struct CoordinatorOptions {
  /// Suggestions returned after the merge.
  size_t top_k = 10;
  /// Wall-clock budget for the whole fan-out; shards silent past it are
  /// treated as kTimeout and the answer is served partial.
  std::chrono::milliseconds fanout_timeout{100};
  /// Fewer healthy (ok, generation-matching) shards than this fails the
  /// query with Unavailable instead of serving a partial answer. 1 keeps a
  /// mostly-dead fleet limping; require num_shards for all-or-nothing.
  size_t min_healthy_shards = 1;
};

/// The merged answer plus its provenance: exactly which degradations, if
/// any, it absorbed. `truncated == false` is a strong claim — every shard
/// answered in full at the expected generation, so the scores equal an
/// unsharded evaluation's (same real-valued sums; see Merge for the
/// floating-point caveat).
struct CoordinatorResult {
  Status status;
  std::vector<Suggestion> suggestions;
  /// True when any shard's contribution is missing or partial: the
  /// suggestions underestimate (never fabricate) candidate scores.
  bool truncated = false;
  /// The generation every merged partial was computed against.
  uint64_t generation = 0;
  uint32_t shards_ok = 0;         ///< merged in full
  uint32_t shards_truncated = 0;  ///< merged, but partial (deadline/tier)
  uint32_t shards_stale = 0;      ///< dropped: wrong generation
  uint32_t shards_failed = 0;     ///< dropped: timeout/error/shed
};

/// Scatter-gather front end over N shard backends.
///
/// Scoring correctness (the exact-renormalisation argument, DESIGN.md
/// §10): P(C|T) = err(C) * Σ_j Π_w P(w|D(r_j)) / N where the sum ranges
/// over entities. Every entity lies in exactly one shard (documents are
/// depth-2 subtrees, min_depth >= 2) and each term depends only on
/// shard-local postings plus the global statistics every shard shares, so
/// the per-shard partial sums — and the SLCA/ELCA normalizer counts —
/// combine by plain addition, after which one renormalisation by the
/// *global* N yields the unsharded score. The combination is exact in
/// real arithmetic; in floats the shard-major addition order can differ
/// from the unsharded entity order by ulps, which is why the differential
/// tests compare scores to 1e-9 while integer fields (entity counts,
/// result types, normalizers, the suggestion words themselves) must match
/// exactly. Pruning caveat: a shard running gamma-bounded accumulator
/// eviction prunes on *local* partial scores, which need not match the
/// global eviction choice — exactness claims therefore hold for gamma = 0
/// (unbounded), the configuration the differential oracle pins.
///
/// Degradation policy: a slow, crashed, shed or stale shard never stalls
/// or poisons the answer — its contribution is dropped (or merged partial,
/// if it truncated itself), the result is marked `truncated`, and per-kind
/// counters say why. Generation consistency is absolute: partials are
/// merged only from responses matching `expected_generation`, so a
/// mid-query snapshot swap can delay or degrade an answer but never mix
/// two corpus versions in one ranking.
class Coordinator {
 public:
  /// Backends are borrowed and must outlive the coordinator; backend i
  /// must serve shard i of the sharded corpus `stats` was built from.
  Coordinator(std::vector<ShardBackend*> shards,
              std::shared_ptr<const delta::MergedStats> stats,
              XCleanOptions xclean, CoordinatorOptions options);

  /// Fans `query` out to every shard (bounded pool, one leg per shard),
  /// gathers responses until all arrive or the fan-out deadline passes,
  /// and merges. Thread-safe.
  CoordinatorResult Suggest(const Query& query, uint64_t expected_generation);

  /// The gather half, exposed as a pure function of the outcome vector so
  /// the deterministic simulation harness can drive it directly with
  /// scripted outcomes — everything the fan-out's concurrency can produce
  /// is representable as an outcome vector, and Merge's output depends on
  /// nothing else. outcomes[i] is shard i's; merged in shard-id order, so
  /// the floating-point result is reproducible run to run.
  static CoordinatorResult Merge(const delta::MergedStats& stats,
                                 const XCleanOptions& xclean,
                                 const CoordinatorOptions& options,
                                 uint64_t expected_generation,
                                 const std::vector<ShardOutcome>& outcomes);

  const CoordinatorOptions& options() const { return options_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  std::vector<ShardBackend*> shards_;
  std::shared_ptr<const delta::MergedStats> stats_;
  XCleanOptions xclean_;
  CoordinatorOptions options_;
  ThreadPool pool_;
};

}  // namespace xclean::shard

#endif  // XCLEAN_SHARD_COORDINATOR_H_
