#ifndef XCLEAN_SHARD_REPLICA_SET_H_
#define XCLEAN_SHARD_REPLICA_SET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "shard/shard_server.h"

namespace xclean::shard {

/// Circuit-breaker state machine, classic three-state form.
enum class BreakerState : uint8_t {
  kClosed = 0,  ///< normal: requests flow, failures feed the error EWMA
  kOpen,        ///< tripped: requests rejected until the cooldown elapses
  kHalfOpen,    ///< cooled down: exactly one probe in flight decides
};

inline const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    default:
      return "half_open";
  }
}

struct CircuitBreakerOptions {
  /// EWMA step for the error-rate estimate (1 on failure, 0 on success).
  double error_alpha = 0.2;
  /// Error-rate estimate at which a closed breaker trips open.
  double trip_error_rate = 0.5;
  /// Samples required before the estimates are trusted to trip (a single
  /// failure after construction would otherwise open a healthy replica).
  uint32_t min_samples = 4;
  /// EWMA step for the success-latency estimate (ms).
  double latency_alpha = 0.1;
  /// Latency estimate (ms) at which a closed breaker trips; 0 disables
  /// latency-based tripping (errors usually arrive first).
  double trip_latency_ms = 0.0;
  /// How long an open breaker rejects before offering a half-open probe.
  std::chrono::milliseconds open_cooldown{200};
};

/// Per-replica circuit breaker driven by error/latency EWMAs. All time
/// flows through caller-supplied `now` instants (from the injected Clock),
/// so transitions are exactly reproducible under virtual time — the
/// breaker itself never reads a clock. Internally mutexed: it sits on the
/// per-attempt path (per leg, not per posting), where a mutex is noise.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {})
      : options_(options) {}

  /// Whether an attempt *would* be admitted now, without consuming the
  /// half-open probe. Used to rank replicas before committing to one.
  bool WouldAllow(std::chrono::steady_clock::time_point now) const;

  /// Admits or rejects an attempt. An open breaker past its cooldown
  /// transitions to half-open and grants the single probe; a half-open
  /// breaker with a probe already in flight rejects. When the admission
  /// IS the probe, `*is_probe` is set: the caller now owes the breaker a
  /// resolution — OnSuccess, OnFailure, or ReleaseProbe — or the replica
  /// stays half-open with a phantom probe forever.
  bool Allow(std::chrono::steady_clock::time_point now,
             bool* is_probe = nullptr);

  void OnSuccess(std::chrono::steady_clock::time_point now,
                 double latency_ms);
  void OnFailure(std::chrono::steady_clock::time_point now);

  /// Hands back a probe admission that will never resolve through
  /// OnSuccess/OnFailure: the attempt was not made (hedge cap or pool said
  /// no), or its outcome says nothing about the replica's health (a shed,
  /// an expired or externally-cancelled refusal). The breaker returns to
  /// half-open-with-no-probe, so the next selection may probe again.
  void ReleaseProbe();

  BreakerState state() const;
  double error_rate() const;
  double latency_ms() const;
  /// Times the breaker transitioned closed/half-open -> open.
  uint64_t opens() const;

 private:
  void TripLocked(std::chrono::steady_clock::time_point now);

  const CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  double error_ewma_ = 0.0;
  double latency_ewma_ = 0.0;
  uint32_t samples_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point opened_at_{};
  uint64_t opens_ = 0;
};

/// Monitoring counters for one replica inside a ReplicaSet.
struct ReplicaStats {
  uint64_t attempts = 0;
  uint64_t successes = 0;
  uint64_t transport_errors = 0;
  /// Subset of transport_errors whose status was DataLoss: bytes arrived
  /// but failed checksum/decode. A rising data_loss with healthy
  /// transport_errors elsewhere points at corruption (bad NIC, broken
  /// middlebox), not at an unreachable replica.
  uint64_t data_loss = 0;
  uint64_t sheds = 0;
  uint64_t stale = 0;     ///< answered at a non-expected generation
  uint64_t refusals = 0;  ///< deadline refusals (expired / timed out empty)
  uint64_t breaker_opens = 0;
  BreakerState breaker_state = BreakerState::kClosed;
  uint64_t last_generation = 0;  ///< generation of the last answer seen
};

/// Monitoring counters for the whole set. attempts - legs = extra sends
/// (retries + failovers + hedges), the quantity the budgets bound.
struct ReplicaSetStats {
  uint64_t legs = 0;      ///< Evaluate() calls
  uint64_t attempts = 0;  ///< backend Evaluate() calls across all replicas
  uint64_t retries = 0;   ///< transport-class re-sends (backoff applied)
  uint64_t failovers = 0;  ///< shed/stale/refusal switches to a sibling
  uint64_t hedges = 0;     ///< speculative second sends (threaded mode)
  uint64_t hedge_wins = 0;  ///< hedged send answered first and usably
  uint64_t losers_cancelled = 0;  ///< CancelToken fired at a hedge loser
  uint64_t hedge_suppressed = 0;  ///< hedge wanted but rate cap said no
  uint64_t stale_served = 0;  ///< stale fallback returned (last resort)
  uint64_t exhausted = 0;  ///< legs that ran out of budget/replicas
  double p95_ms = 0.0;     ///< usable-attempt latency estimate
  std::vector<ReplicaStats> replicas;
};

struct ReplicaSetOptions {
  /// Transport-class re-sends allowed per leg (errors only — ladder sheds
  /// and deadline expiries never consume this, per the no-retry-storms
  /// contract). Each retry sleeps a capped-exponential jittered backoff.
  uint32_t max_retries = 2;
  /// Failovers allowed per leg: switches to a *different, untried* replica
  /// after a shed, stale answer, or deadline refusal. No backoff — the
  /// sibling is presumed healthy and the clock is already running.
  uint32_t max_failovers = 2;
  BackoffOptions backoff;

  /// Hedge delay = clamp(p95 * hedge_p95_factor, floor, cap). Also the
  /// per-attempt time slice in sequential mode (see Evaluate).
  std::chrono::milliseconds hedge_delay_floor{2};
  std::chrono::milliseconds hedge_delay_cap{50};
  double hedge_p95_factor = 1.0;
  /// Global cap on hedged sends as a fraction of legs; hedging is a
  /// tail-latency tool and must stay a small surcharge (The Tail at Scale
  /// uses ~5%), never a 2x load amplifier under stress.
  double hedge_rate_cap = 0.05;

  CircuitBreakerOptions breaker;

  /// Time source for backoff sleeps, hedge delays, breaker cooldowns and
  /// deadline math. Null = real clock; tests inject ManualClock.
  Clock* clock = nullptr;

  /// Worker pool for hedged (speculative parallel) sends. Null disables
  /// threading: Evaluate runs attempts sequentially with per-attempt time
  /// slices — the deterministic "backup request" equivalent the simulation
  /// harness drives under virtual time. The pool is borrowed and must
  /// outlive the set.
  ThreadPool* hedge_pool = nullptr;

  /// Seed for backoff jitter (mixed with a per-leg counter so concurrent
  /// legs draw decorrelated delays, deterministically).
  uint64_t seed = 0x5851F42D4C957F2Dull;
};

/// How the routing layer classifies one backend attempt. Determines which
/// budget (if any) pays for another attempt and what the fallback is worth.
enum class AttemptClass : uint8_t {
  kNone = 0,  ///< sentinel: no attempt yet
  /// Full (or reduced-tier) answer at the expected generation: return it.
  kUsable,
  /// Truncated by deadline/cancel but with partials: mergeable, yet a
  /// sibling may still produce a full answer — failover-class.
  kUsablePartial,
  /// Answered at the wrong generation: kept only as the last-resort
  /// fallback (the coordinator will drop it, exactly as today) —
  /// failover-class, never retried in place.
  kStale,
  /// Deadline refusal (expired on arrival or timed out empty): failover-
  /// class; never retried in place, never backed off.
  kRefused,
  /// Ladder shed (kShed/kCacheOnly): failover-class; NEVER retried at the
  /// same replica — re-sending to an overloaded server is how overload
  /// spreads.
  kShed,
  /// Transport-class failure (crash, injected fault, unreachable): the
  /// only class that retries, with backoff, against the retry budget.
  kTransport,
};

/// Pure classification of a response against the expected generation.
AttemptClass ClassifyAttempt(const ShardResponse& response,
                             uint64_t expected_generation);

/// N replicas of one shard behind the ShardBackend interface, so the
/// replication layer slots between Coordinator and ShardServer without the
/// coordinator changing shape — Coordinator::Merge stays a pure function
/// of one outcome per shard, and everything here only improves the odds
/// that the outcome is a full, fresh answer.
///
/// Routing policy per leg (DESIGN.md §11):
///   selection  prefer fresh over known-stale replicas, closed breakers
///              over half-open, skip open ones; ties break by replica
///              index so routing is deterministic.
///   retry      transport-class failures only, capped-exponential jittered
///              backoff, at most max_retries re-sends per leg.
///   failover   sheds / stale answers / deadline refusals switch to an
///              untried sibling (no backoff), at most max_failovers.
///   hedging    threaded mode fires a second replica after the p95-derived
///              hedge delay and takes the first usable answer, cancelling
///              the loser through its ShardRequest::external_cancel;
///              sequential mode gets the same effect by capping each
///              non-final attempt's deadline at now + hedge delay.
///   fallback   when the budget runs out, the best partial seen is
///              returned (truncated partial beats stale beats nothing) —
///              never less than the set could honestly answer.
///
/// Total backend sends per leg <= max_attempts_per_leg(), always.
///
/// Thread-safe: concurrent Evaluate() calls share the breakers, counters
/// and the p95 estimate, nothing else.
class ReplicaSet final : public ShardBackend {
 public:
  /// Replicas are borrowed and must outlive the set; each must serve the
  /// same shard id of the same corpus (possibly at different generations —
  /// that is the point).
  ReplicaSet(uint32_t shard_id, std::vector<ShardBackend*> replicas,
             ReplicaSetOptions options = {});
  ~ReplicaSet() override;

  ShardResponse Evaluate(const ShardRequest& request) override;

  /// Hard bound on backend sends per leg: the first attempt plus the retry
  /// and failover budgets (a hedge consumes a failover slot, so threading
  /// cannot exceed the sequential bound).
  uint32_t max_attempts_per_leg() const {
    return 1 + options_.max_retries + options_.max_failovers;
  }

  /// Current hedge delay: clamp(p95 * factor, floor, cap).
  std::chrono::nanoseconds HedgeDelay() const;

  uint32_t shard_id() const { return shard_id_; }
  size_t num_replicas() const { return replicas_.size(); }
  BreakerState breaker_state(size_t replica) const;
  ReplicaSetStats stats() const;

 private:
  struct Replica;
  struct LegState;
  struct SeqState;

  ShardResponse EvaluateHedged(const ShardRequest& request, uint64_t leg);

  /// The sequential routing loop (also the continuation path after a
  /// hedged pair produced nothing usable). Consumes/updates `st`.
  ShardResponse RunLoop(const ShardRequest& request, SeqState& st);

  /// Picks the most attractive admissible replica (see routing policy),
  /// consuming the breaker admission of the winner. Returns -1 when no
  /// replica is admissible. `allow_tried` re-admits already-tried replicas
  /// (retry path, once nothing fresh remains). `*probe` is set when the
  /// winner's admission was its breaker's half-open probe — the caller
  /// must resolve it (Account does, for every attempt that runs) or hand
  /// it back with ReleaseProbe when the attempt never happens.
  int SelectReplica(const std::vector<bool>& tried, bool allow_tried,
                    uint64_t expected_generation,
                    std::chrono::steady_clock::time_point now, bool* probe);

  /// One backend send (attempt counters only; classification-dependent
  /// accounting happens in Account). `external_cancel` overrides the
  /// request's own hook when non-null (the hedged-loser kill switch).
  ShardResponse Attempt(size_t replica_index, const ShardRequest& request,
                        std::chrono::steady_clock::time_point deadline,
                        const std::atomic<bool>* external_cancel);

  /// Breaker + per-replica counter updates for one classified attempt.
  /// `overall_expired` suppresses the breaker failure mark for refusals of
  /// requests that were already dead overall (not the replica's fault).
  /// `probe` says the attempt ran on a half-open probe admission; classes
  /// that feed neither OnSuccess nor OnFailure release it here so the
  /// breaker can probe again.
  void Account(size_t replica_index, const ShardResponse& response,
               AttemptClass cls, std::chrono::steady_clock::time_point now,
               double latency_ms, bool overall_expired, bool probe);

  void RecordUsableLatency(double latency_ms);
  bool TryReserveHedge();

  const uint32_t shard_id_;
  ReplicaSetOptions options_;
  Clock* clock_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  std::atomic<uint64_t> legs_{0};
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> hedges_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> losers_cancelled_{0};
  std::atomic<uint64_t> hedge_suppressed_{0};
  std::atomic<uint64_t> stale_served_{0};
  std::atomic<uint64_t> exhausted_{0};
  /// p95 of usable-attempt latency, same asymmetric-EWMA estimator as the
  /// overload ladder's (bit-cast atomic double).
  std::atomic<uint64_t> p95_bits_;

  /// Hedge tasks still running on the pool (a cancelled loser outlives its
  /// leg). The destructor drains this to zero before members die.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  size_t inflight_pool_tasks_ = 0;  // guarded by drain_mu_
};

}  // namespace xclean::shard

#endif  // XCLEAN_SHARD_REPLICA_SET_H_
