#ifndef XCLEAN_RPC_WIRE_H_
#define XCLEAN_RPC_WIRE_H_

#include <chrono>
#include <string>

#include "common/status.h"
#include "shard/shard_server.h"

namespace xclean::rpc {

/// Wire serialization of the shard RPC payloads. Integers travel as
/// varints, doubles as their exact 8-byte IEEE-754 bit patterns (so
/// partial-accumulator sums and error weights round-trip bit-exactly —
/// the coordinator's differential oracle depends on it), strings as
/// length-prefixed bytes.
///
/// Deadlines cross the wire as *relative* budgets: a steady_clock
/// time_point is process-local, so the encoder converts the request
/// deadline into "nanoseconds from now" (clamped at zero — an already
/// expired deadline stays expired) and the decoder re-anchors it at its
/// own now. Clock skew between client and server therefore costs at most
/// the in-flight network latency, never the absolute clock difference.
/// `ShardRequest::external_cancel` never crosses the wire — cancellation
/// is a cancel *frame* (see frame.h), re-materialised server-side.
///
/// Decoding is defensive: every length and count is validated against the
/// bytes actually present and against hard caps before any allocation is
/// sized from it, so a mangled-but-checksum-colliding or malicious payload
/// yields Status::DataLoss, never a crash or an unbounded allocation.

/// Decode-time caps. Generous multiples of what the engine can produce;
/// anything beyond is a corrupt or hostile payload.
struct WireLimits {
  size_t max_keywords = 64;
  size_t max_keyword_bytes = 1024;
  size_t max_status_message_bytes = 4096;
  size_t max_partials = 1u << 20;
  size_t max_tokens_per_partial = 64;
};

/// Appends the wire encoding of `request` to `out`. `now` anchors the
/// deadline-to-budget conversion (pass the injected clock's Now()).
void EncodeShardRequest(const shard::ShardRequest& request,
                        std::chrono::steady_clock::time_point now,
                        std::string& out);

/// Decodes a request payload. On success `*request` is fully populated
/// (deadline re-anchored at `now`, external_cancel null); on failure
/// returns DataLoss and leaves `*request` unspecified.
Status DecodeShardRequest(const std::string& payload,
                          std::chrono::steady_clock::time_point now,
                          shard::ShardRequest* request,
                          const WireLimits& limits = WireLimits());

/// Appends the wire encoding of `response` to `out`.
void EncodeShardResponse(const shard::ShardResponse& response,
                         std::string& out);

/// Decodes a response payload; DataLoss on any structural violation.
Status DecodeShardResponse(const std::string& payload,
                           shard::ShardResponse* response,
                           const WireLimits& limits = WireLimits());

}  // namespace xclean::rpc

#endif  // XCLEAN_RPC_WIRE_H_
