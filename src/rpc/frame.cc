#include "rpc/frame.h"

#include <cstring>

#include "common/durable_file.h"

namespace xclean::rpc {

namespace {

constexpr uint16_t kMagic = 0x5258;  // "XR"

void PutFixed16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutFixed32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PutFixed64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

uint16_t GetFixed16(const char* p) {
  const uint8_t* u = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint16_t>(u[0] | (u[1] << 8));
}

uint32_t GetFixed32(const char* p) {
  const uint8_t* u = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  const uint8_t* u = reinterpret_cast<const uint8_t*>(p);
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(u[i]) << (8 * i);
  return v;
}

bool KnownType(uint8_t type) {
  return type == static_cast<uint8_t>(FrameType::kRequest) ||
         type == static_cast<uint8_t>(FrameType::kResponse) ||
         type == static_cast<uint8_t>(FrameType::kCancel);
}

}  // namespace

void EncodeFrame(FrameType type, uint64_t request_id,
                 const std::string& payload, std::string& out) {
  const size_t header_at = out.size();
  PutFixed16(out, kMagic);
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(type));
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed64(out, request_id);
  PutFixed64(out, Fnv1a(payload.data(), payload.size()));
  PutFixed64(out, Fnv1a(out.data() + header_at, 24));
  out.append(payload);
}

void FrameDecoder::Feed(const char* data, size_t size) {
  if (fatal_ || size == 0) return;
  Compact();
  buffer_.append(data, size);
}

void FrameDecoder::Compact() {
  // Drop the consumed prefix once it dominates the buffer, so a long-lived
  // connection doesn't accrete every frame it ever saw.
  if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > 65536)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

DecodeEvent FrameDecoder::Next() {
  DecodeEvent event;
  if (fatal_) {
    event.outcome = DecodeOutcome::kFatal;
    event.status = fatal_status_;
    return event;
  }
  const char* base = buffer_.data() + consumed_;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return event;  // kNeedMore

  // Validate the header before trusting a single derived quantity. Order
  // matters: the header checksum subsumes the field checks, but checking
  // magic/version first gives better error messages for honest mismatches
  // (an old-version peer) than "header checksum mismatch".
  const uint16_t magic = GetFixed16(base);
  const uint8_t version = static_cast<uint8_t>(base[2]);
  const uint8_t raw_type = static_cast<uint8_t>(base[3]);
  const uint32_t payload_len = GetFixed32(base + 4);
  const uint64_t request_id = GetFixed64(base + 8);
  const uint64_t payload_fnv = GetFixed64(base + 16);
  const uint64_t header_fnv = GetFixed64(base + 24);

  auto fail_fatal = [&](Status status) {
    fatal_ = true;
    fatal_status_ = status;
    buffer_.clear();
    consumed_ = 0;
    event.outcome = DecodeOutcome::kFatal;
    event.status = fatal_status_;
    return event;
  };

  if (magic != kMagic) {
    return fail_fatal(Status::DataLoss("rpc frame: bad magic"));
  }
  if (header_fnv != Fnv1a(base, 24)) {
    return fail_fatal(Status::DataLoss("rpc frame: header checksum mismatch"));
  }
  // Past this point the header bytes are authentic (up to a 64-bit hash
  // collision), so version/type/length express the sender's intent.
  if (version != kProtocolVersion) {
    return fail_fatal(Status::InvalidArgument(
        "rpc frame: protocol version " + std::to_string(version) +
        " (want " + std::to_string(kProtocolVersion) + ")"));
  }
  if (payload_len > max_payload_) {
    return fail_fatal(Status::DataLoss(
        "rpc frame: payload length " + std::to_string(payload_len) +
        " exceeds cap " + std::to_string(max_payload_)));
  }
  if (available < kFrameHeaderSize + payload_len) return event;  // kNeedMore

  consumed_ += kFrameHeaderSize + payload_len;
  event.frame.request_id = request_id;
  const char* payload = base + kFrameHeaderSize;
  if (payload_fnv != Fnv1a(payload, payload_len)) {
    event.outcome = DecodeOutcome::kCorruptFrame;
    if (KnownType(raw_type)) event.frame.type = static_cast<FrameType>(raw_type);
    event.status = Status::DataLoss("rpc frame: payload checksum mismatch");
    return event;
  }
  if (!KnownType(raw_type)) {
    event.outcome = DecodeOutcome::kCorruptFrame;
    event.status = Status::InvalidArgument(
        "rpc frame: unknown frame type " + std::to_string(raw_type));
    return event;
  }
  event.outcome = DecodeOutcome::kFrame;
  event.frame.type = static_cast<FrameType>(raw_type);
  event.frame.payload.assign(payload, payload_len);
  return event;
}

}  // namespace xclean::rpc
