#include "rpc/rpc_shard_server.h"

#include <sys/socket.h>

#include <utility>

#include "rpc/wire.h"

namespace xclean::rpc {

/// Per-connection state. Shared by the reader task and every evaluation
/// task spawned for its requests; the last owner closes the socket.
struct RpcShardServer::Connection {
  Socket socket;
  /// Serialises response writes — evaluations complete in any order but a
  /// frame must hit the stream atomically.
  std::mutex write_mu;
  /// In-flight request ids -> their external-cancel flags.
  std::mutex inflight_mu;
  std::unordered_map<uint64_t, std::shared_ptr<std::atomic<bool>>> inflight;
  /// Set when the peer is known gone (reader saw EOF/error outside a
  /// graceful drain): evaluations skip the doomed write and cancel early.
  std::atomic<bool> peer_gone{false};
};

RpcShardServer::RpcShardServer(shard::ShardBackend* backend,
                               RpcServerOptions options)
    : backend_(backend),
      options_(options),
      clock_(ResolveClock(options.clock)) {}

RpcShardServer::~RpcShardServer() { Shutdown(); }

Status RpcShardServer::Start() {
  Result<Socket> listener = ListenLoopback(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Result<uint16_t> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  port_ = port.value();

  // One long-lived slot for the accept loop, one per connection reader,
  // plus the evaluation workers — sized so readers can never starve
  // evaluations out of the pool.
  ThreadPoolOptions pool_options;
  pool_options.num_threads =
      1 + options_.max_connections + options_.eval_threads;
  pool_options.queue_capacity = options_.max_connections * 8 + 64;
  pool_ = std::make_unique<ThreadPool>(pool_options);

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    ++live_tasks_;
  }
  Status submitted = pool_->TrySubmit([this] { AcceptLoop(); });
  if (!submitted.ok()) {
    std::lock_guard<std::mutex> lock(conn_mu_);
    --live_tasks_;
    return submitted;
  }
  started_ = true;
  return Status::Ok();
}

void RpcShardServer::Shutdown() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  listener_.ShutdownBoth();
  // Shut the read half of every connection: readers wake with EOF and
  // exit, while in-flight evaluations keep the write half to flush their
  // responses (the graceful part of the drain).
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [ptr, conn] : connections_) {
      if (conn->socket.valid()) ::shutdown(conn->socket.fd(), SHUT_RD);
    }
  }
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait(lock, [this] { return live_tasks_ == 0; });
  }
  // Drains queued evaluations and joins all workers.
  pool_->Shutdown();
  listener_.Close();
  started_ = false;
}

RpcServerStats RpcShardServer::stats() const {
  RpcServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_refused = connections_refused_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    s.connections_open = connections_.size();
  }
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  s.cancels_received = cancels_received_.load(std::memory_order_relaxed);
  s.cancels_applied = cancels_applied_.load(std::memory_order_relaxed);
  s.corrupt_frames = corrupt_frames_.load(std::memory_order_relaxed);
  s.fatal_streams = fatal_streams_.load(std::memory_order_relaxed);
  s.idle_closes = idle_closes_.load(std::memory_order_relaxed);
  return s;
}

void RpcShardServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<Socket> accepted =
        AcceptWithTimeout(listener_, std::chrono::milliseconds(100));
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kNotFound) continue;
      break;  // listener torn down
    }
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(accepted).value();
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (connections_.size() < options_.max_connections &&
          !stopping_.load(std::memory_order_acquire)) {
        connections_.emplace(conn.get(), conn);
        ++live_tasks_;
        admitted = true;
      }
    }
    if (!admitted) {
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      continue;  // conn falls out of scope: refusal == immediate close
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    Status submitted =
        pool_->TrySubmit([this, conn] { ConnectionLoop(conn); });
    if (!submitted.ok()) {
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      RemoveConnection(conn.get());
      std::lock_guard<std::mutex> lock(conn_mu_);
      --live_tasks_;
      conn_cv_.notify_all();
    }
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  --live_tasks_;
  conn_cv_.notify_all();
}

void RpcShardServer::ConnectionLoop(std::shared_ptr<Connection> conn) {
  FrameDecoder decoder(options_.max_payload);
  char buf[16384];
  auto last_activity = clock_->Now();
  bool peer_hangup = false;

  for (;;) {
    // Drain every decodable frame before touching the socket again.
    bool fatal = false;
    for (;;) {
      DecodeEvent event = decoder.Next();
      if (event.outcome == DecodeOutcome::kNeedMore) break;
      last_activity = clock_->Now();
      if (event.outcome == DecodeOutcome::kFrame) {
        switch (event.frame.type) {
          case FrameType::kRequest:
            HandleRequestFrame(conn, std::move(event.frame));
            break;
          case FrameType::kCancel:
            HandleCancelFrame(conn, event.frame.request_id);
            break;
          case FrameType::kResponse:
            // A client has no business sending responses; reject the frame
            // but keep the (still well-framed) connection.
            corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
            WriteErrorResponse(
                conn, event.frame.request_id,
                Status::InvalidArgument("rpc: response frame from client"));
            break;
        }
      } else if (event.outcome == DecodeOutcome::kCorruptFrame) {
        // The stream is still framed: answer this id with DataLoss and
        // keep serving. Healthy requests on this connection are unharmed.
        corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
        WriteErrorResponse(conn, event.frame.request_id, event.status);
      } else {  // kFatal: framing lost, the connection cannot be saved
        fatal_streams_.fetch_add(1, std::memory_order_relaxed);
        fatal = true;
        break;
      }
    }
    if (fatal) {
      peer_hangup = true;
      break;
    }

    Result<size_t> got =
        RecvSome(conn->socket, buf, sizeof(buf), std::chrono::milliseconds(50));
    if (got.ok()) {
      if (got.value() == 0) {  // EOF: peer done sending (or drain)
        peer_hangup = !stopping_.load(std::memory_order_acquire);
        break;
      }
      decoder.Feed(buf, got.value());
      last_activity = clock_->Now();
      continue;
    }
    if (got.status().code() == StatusCode::kNotFound) {  // poll slice idle
      if (clock_->Now() - last_activity >= options_.idle_timeout) {
        idle_closes_.fetch_add(1, std::memory_order_relaxed);
        peer_hangup = true;
        break;
      }
      continue;
    }
    peer_hangup = true;  // hard socket error
    break;
  }

  if (peer_hangup) {
    // The peer is gone (or the stream is lost): responses cannot reach it,
    // so cancel what is still evaluating instead of computing into a void.
    conn->peer_gone.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(conn->inflight_mu);
    for (auto& [id, flag] : conn->inflight) {
      flag->store(true, std::memory_order_release);
    }
  }
  RemoveConnection(conn.get());
  std::lock_guard<std::mutex> lock(conn_mu_);
  --live_tasks_;
  conn_cv_.notify_all();
}

void RpcShardServer::HandleRequestFrame(
    const std::shared_ptr<Connection>& conn, Frame frame) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  shard::ShardRequest request;
  Status decoded = DecodeShardRequest(frame.payload, clock_->Now(), &request);
  if (!decoded.ok()) {
    corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
    WriteErrorResponse(conn, frame.request_id, std::move(decoded));
    return;
  }
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard<std::mutex> lock(conn->inflight_mu);
    conn->inflight.emplace(frame.request_id, cancel);
  }
  const uint64_t request_id = frame.request_id;
  Status submitted = pool_->TrySubmit(
      [this, conn, request_id, request = std::move(request), cancel] {
        EvaluateAndRespond(conn, request_id, request, cancel);
      });
  if (!submitted.ok()) {
    {
      std::lock_guard<std::mutex> lock(conn->inflight_mu);
      conn->inflight.erase(request_id);
    }
    WriteErrorResponse(conn, request_id,
                       Status::Unavailable("rpc server saturated"));
  }
}

void RpcShardServer::HandleCancelFrame(const std::shared_ptr<Connection>& conn,
                                       uint64_t request_id) {
  cancels_received_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(conn->inflight_mu);
  auto it = conn->inflight.find(request_id);
  if (it != conn->inflight.end()) {
    it->second->store(true, std::memory_order_release);
    cancels_applied_.fetch_add(1, std::memory_order_relaxed);
  }
  // Unknown id: the response already went out (cancel raced completion) or
  // the id is garbage. Either way, ignoring is the correct semantics.
}

void RpcShardServer::EvaluateAndRespond(
    const std::shared_ptr<Connection>& conn, uint64_t request_id,
    const shard::ShardRequest& request,
    std::shared_ptr<std::atomic<bool>> cancel) {
  shard::ShardRequest effective = request;
  effective.external_cancel = cancel.get();
  shard::ShardResponse response = backend_->Evaluate(effective);
  {
    std::lock_guard<std::mutex> lock(conn->inflight_mu);
    conn->inflight.erase(request_id);
  }
  if (conn->peer_gone.load(std::memory_order_acquire)) return;
  WriteResponse(conn, request_id, response);
}

void RpcShardServer::WriteResponse(const std::shared_ptr<Connection>& conn,
                                   uint64_t request_id,
                                   const shard::ShardResponse& response) {
  std::string payload;
  EncodeShardResponse(response, payload);
  std::string wire;
  EncodeFrame(FrameType::kResponse, request_id, payload, wire);
  const auto deadline = clock_->Now() + options_.write_timeout;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  Status sent = SendAll(conn->socket, wire.data(), wire.size(), deadline,
                        clock_);
  if (sent.ok()) {
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // A peer that stopped draining forfeits the connection; the reader
    // will observe the shutdown as EOF and tear down.
    conn->peer_gone.store(true, std::memory_order_release);
    conn->socket.ShutdownBoth();
  }
}

void RpcShardServer::WriteErrorResponse(const std::shared_ptr<Connection>& conn,
                                        uint64_t request_id, Status status) {
  shard::ShardResponse response;
  response.status = std::move(status);
  response.shard_id = options_.shard_id;
  WriteResponse(conn, request_id, response);
}

void RpcShardServer::RemoveConnection(Connection* conn) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  connections_.erase(conn);
}

}  // namespace xclean::rpc
