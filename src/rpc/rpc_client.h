#ifndef XCLEAN_RPC_RPC_CLIENT_H_
#define XCLEAN_RPC_RPC_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/backoff.h"
#include "common/clock.h"
#include "rpc/frame.h"
#include "rpc/socket.h"
#include "shard/shard_server.h"

namespace xclean::rpc {

struct RpcClientOptions {
  /// Budget for one dial (non-blocking connect + poll).
  std::chrono::milliseconds connect_timeout{1000};
  /// Response wait when the request carries no deadline of its own; with a
  /// deadline, the request's own budget governs.
  std::chrono::milliseconds default_read_timeout{2000};
  std::chrono::milliseconds write_timeout{1000};
  /// After sending a cancel frame, how long to keep waiting for the
  /// server's (truncated) response before abandoning the connection.
  std::chrono::milliseconds cancel_linger{100};
  /// Dials attempted per Evaluate before giving up, with capped jittered
  /// backoff between attempts (common/backoff.h) — reconnecting through a
  /// restart without hammering a dead port.
  uint32_t max_dial_attempts = 3;
  BackoffOptions dial_backoff;
  /// Idle connections kept for reuse; beyond this they are closed.
  size_t max_pooled_connections = 2;
  size_t max_payload = kDefaultMaxPayload;
  /// Time source for all deadline math and backoff sleeps. Null = real.
  Clock* clock = nullptr;
  /// Jitter seed for the dial backoff.
  uint64_t seed = 0x7C15F42D4C957F2Dull;
};

struct RpcClientStats {
  uint64_t dials = 0;
  uint64_t dial_failures = 0;
  uint64_t pooled_reuses = 0;
  uint64_t requests = 0;
  uint64_t responses = 0;      ///< decoded, matching responses
  uint64_t data_loss = 0;      ///< corrupt frames / undecodable payloads
  uint64_t timeouts = 0;       ///< gave up waiting for a response
  uint64_t cancels_sent = 0;
  uint64_t connections_evicted = 0;  ///< closed on error instead of pooled
};

/// Drop-in ShardBackend that speaks the wire protocol to an RpcShardServer
/// over loopback TCP: ReplicaSet and Coordinator stack on top unchanged,
/// and every byte-level failure mode surfaces as a ShardResponse whose
/// status the existing AttemptClass taxonomy already routes — corrupt
/// frames as DataLoss, vanished/unreachable peers and timeouts as
/// Unavailable (all kTransport: retry with backoff at the layer above),
/// never as a fabricated answer.
///
/// Connection lifecycle: one connection carries one request at a time
/// (concurrent Evaluate calls draw distinct connections), healthy
/// connections return to a small idle pool, and any connection that saw a
/// transport anomaly — timeout, EOF, corrupt frame, torn write — is closed
/// rather than reused, so a poisoned stream can never serve a later leg.
/// `ShardRequest::external_cancel` is propagated as a cancel frame; the
/// server answers with the truncated response, which keeps the stream
/// clean enough to pool.
///
/// Thread-safe; stats are monitoring-grade relaxed atomics.
class RpcShardBackend final : public shard::ShardBackend {
 public:
  /// Connects to 127.0.0.1:`port`. `shard_id` stamps client-side transport
  /// error responses (a server answer carries its own).
  RpcShardBackend(uint16_t port, uint32_t shard_id,
                  RpcClientOptions options = RpcClientOptions());
  ~RpcShardBackend() override;

  shard::ShardResponse Evaluate(const shard::ShardRequest& request) override;

  /// Closes every pooled idle connection (a test hook and a fast way to
  /// drop sockets to a server being retired).
  void CloseIdleConnections();

  size_t pooled_connections() const;
  RpcClientStats stats() const;
  uint16_t port() const { return port_; }

 private:
  Socket PopPooled();
  void PoolOrClose(Socket socket);
  Result<Socket> DialWithRetries(std::chrono::steady_clock::time_point deadline);
  shard::ShardResponse TransportError(Status status);

  /// Sends the request and waits for the matching response on `socket`.
  /// On success, pools the socket. On failure, closes it; *retryable is
  /// set when the failure happened before any byte of this exchange was
  /// accepted (stale pooled connection) and a fresh dial may succeed.
  shard::ShardResponse Exchange(Socket socket,
                                const shard::ShardRequest& request,
                                const std::string& wire, uint64_t request_id,
                                std::chrono::steady_clock::time_point deadline,
                                bool* retryable);

  const uint16_t port_;
  const uint32_t shard_id_;
  const RpcClientOptions options_;
  Clock* const clock_;

  mutable std::mutex pool_mu_;
  std::deque<Socket> pooled_;

  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> dials_{0};
  std::atomic<uint64_t> dial_failures_{0};
  std::atomic<uint64_t> pooled_reuses_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> data_loss_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> cancels_sent_{0};
  std::atomic<uint64_t> connections_evicted_{0};
};

}  // namespace xclean::rpc

#endif  // XCLEAN_RPC_RPC_CLIENT_H_
