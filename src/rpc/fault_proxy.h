#ifndef XCLEAN_RPC_FAULT_PROXY_H_
#define XCLEAN_RPC_FAULT_PROXY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "rpc/socket.h"

namespace xclean::rpc {

/// Byte-level mangling behaviours the proxy can apply to one direction of
/// a proxied connection. Each models a failure a real network produces and
/// the transport must map to a clean outcome — a correct retried answer or
/// an honest transport error, never a corrupt-accepted response.
enum class MangleKind : uint8_t {
  kClean = 0,   ///< forward faithfully
  kTruncate,    ///< forward exactly N bytes, then close the write half
  kBitflip,     ///< flip one bit of byte N, keep forwarding
  kDisconnect,  ///< forward N bytes, then slam both directions shut
  kStall,       ///< forward N bytes, then swallow input with the
                ///< connection held open (slow-loris / wedged peer)
  kDuplicate,   ///< re-send the 64 bytes before offset N a second time
  kGarbage,     ///< inject M seeded random bytes after byte N
};

const char* MangleName(MangleKind kind);

/// One direction's scripted fault. Offsets count bytes *forwarded in that
/// direction on that connection*, so a script is deterministic over the
/// byte stream regardless of TCP chunking.
struct FaultScript {
  MangleKind kind = MangleKind::kClean;
  /// Apply to server->client bytes (responses) instead of client->server
  /// (requests).
  bool server_to_client = false;
  uint64_t byte_offset = 0;  ///< where the fault lands
  uint32_t bit = 0;          ///< kBitflip: bit index 0..7
  uint32_t garbage_len = 0;  ///< kGarbage: bytes to inject
  uint64_t seed = 1;         ///< kGarbage: byte-content seed

  std::string ToString() const;
};

struct FaultProxyStats {
  uint64_t connections = 0;
  uint64_t bytes_client_to_server = 0;
  uint64_t bytes_server_to_client = 0;
  uint64_t faults_applied = 0;
};

/// A deterministic man-in-the-middle for loopback RPC connections: listens
/// on its own ephemeral port, forwards each accepted connection to the
/// target port, and applies the currently-set FaultScript to the byte
/// stream. The script applies per connection (offsets reset each accept),
/// so a retry on a fresh connection replays the same fault — tests that
/// want the retry to *succeed* switch the script to kClean first, or point
/// the retried leg at the target directly.
///
/// Threading: one accept thread plus two pump threads per live connection,
/// all joined by Shutdown()/destructor. The mangling itself is pure
/// function of (script, byte offsets), so the damage done to the stream is
/// reproducible byte for byte even though TCP chunk boundaries are not.
class FaultProxy {
 public:
  explicit FaultProxy(uint16_t target_port);
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  Status Start();
  void Shutdown();

  uint16_t port() const { return port_; }

  /// Script applied to connections accepted from now on.
  void SetScript(const FaultScript& script);
  FaultProxyStats stats() const;

 private:
  struct Pipe;

  void AcceptLoop();
  void Pump(std::shared_ptr<Pipe> pipe, bool server_to_client,
            FaultScript script);

  const uint16_t target_port_;
  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread accept_thread_;
  std::mutex pipes_mu_;
  std::vector<std::shared_ptr<Pipe>> pipes_;
  std::vector<std::thread> pump_threads_;  // guarded by pipes_mu_

  mutable std::mutex script_mu_;
  FaultScript script_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> bytes_c2s_{0};
  std::atomic<uint64_t> bytes_s2c_{0};
  std::atomic<uint64_t> faults_applied_{0};
};

}  // namespace xclean::rpc

#endif  // XCLEAN_RPC_FAULT_PROXY_H_
