#ifndef XCLEAN_RPC_RPC_SHARD_SERVER_H_
#define XCLEAN_RPC_RPC_SHARD_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "rpc/frame.h"
#include "rpc/socket.h"
#include "shard/shard_server.h"

namespace xclean::rpc {

struct RpcServerOptions {
  /// Listen port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// port() after Start()).
  uint16_t port = 0;
  /// Shard id stamped on transport-level error responses (a decode failure
  /// never reaches the backend, so the backend cannot stamp it).
  uint32_t shard_id = 0;
  /// Connections beyond this are accepted and immediately closed — the
  /// refusal is visible to the peer as EOF, and an abusive client cannot
  /// starve the pool for the healthy ones.
  size_t max_connections = 16;
  /// Worker threads available for request evaluation, beyond the one the
  /// accept loop and each connection reader occupy.
  size_t eval_threads = 4;
  /// A connection silent this long is closed (half-open peers, slow-loris
  /// byte drips — a stalled peer costs one poll slot, then nothing).
  std::chrono::milliseconds idle_timeout{30000};
  /// Per-response write budget; a peer that stops draining its socket gets
  /// its connection closed rather than a worker parked forever.
  std::chrono::milliseconds write_timeout{5000};
  size_t max_payload = kDefaultMaxPayload;
  /// Time source for idle/write deadlines. Null = real clock.
  Clock* clock = nullptr;
};

/// Monitoring counters (point-in-time copy; connections_open is a gauge).
struct RpcServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;  ///< over max_connections
  uint64_t connections_open = 0;
  uint64_t requests = 0;
  uint64_t responses_sent = 0;
  uint64_t cancels_received = 0;
  uint64_t cancels_applied = 0;  ///< matched an in-flight evaluation
  uint64_t corrupt_frames = 0;   ///< rejected in-stream (connection kept)
  uint64_t fatal_streams = 0;    ///< framing lost: connection closed
  uint64_t idle_closes = 0;
};

/// Socket front end for one shard backend: accepts loopback connections,
/// decodes request frames, evaluates them on a worker pool and writes
/// response frames back. One backend, many connections, many in-flight
/// requests per connection (responses may complete out of order; the
/// request id pairs them).
///
/// Failure containment is per-frame, then per-connection, never global: a
/// payload-checksum mismatch answers that one request id with DataLoss and
/// keeps the connection; a corrupt header (framing lost) or an oversized
/// length closes that connection; other connections never notice either.
/// Cancel frames raise the evaluation's external-cancel flag, so a hedged
/// loser stops burning CPU mid-algorithm and still sends its (truncated)
/// response — the stream stays strictly one-response-per-request.
///
/// Shutdown() drains gracefully: stop accepting, shut the read half of
/// every connection (readers exit at EOF), let in-flight evaluations
/// finish and flush their responses, then join the pool.
class RpcShardServer {
 public:
  /// The backend is borrowed and must outlive the server.
  RpcShardServer(shard::ShardBackend* backend,
                 RpcServerOptions options = RpcServerOptions());
  ~RpcShardServer();

  RpcShardServer(const RpcShardServer&) = delete;
  RpcShardServer& operator=(const RpcShardServer&) = delete;

  /// Binds, listens and starts the accept loop. Call once.
  Status Start();

  /// Graceful drain; idempotent, also run by the destructor.
  void Shutdown();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  RpcServerStats stats() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  void HandleRequestFrame(const std::shared_ptr<Connection>& conn,
                          Frame frame);
  void HandleCancelFrame(const std::shared_ptr<Connection>& conn,
                         uint64_t request_id);
  void EvaluateAndRespond(const std::shared_ptr<Connection>& conn,
                          uint64_t request_id,
                          const shard::ShardRequest& request,
                          std::shared_ptr<std::atomic<bool>> cancel);
  void WriteResponse(const std::shared_ptr<Connection>& conn,
                     uint64_t request_id,
                     const shard::ShardResponse& response);
  void WriteErrorResponse(const std::shared_ptr<Connection>& conn,
                          uint64_t request_id, Status status);
  void RemoveConnection(Connection* conn);

  shard::ShardBackend* const backend_;
  const RpcServerOptions options_;
  Clock* const clock_;

  Socket listener_;
  uint16_t port_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::unordered_map<Connection*, std::shared_ptr<Connection>> connections_;
  size_t live_tasks_ = 0;  ///< accept loop + connection readers, not evals

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_refused_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_sent_{0};
  std::atomic<uint64_t> cancels_received_{0};
  std::atomic<uint64_t> cancels_applied_{0};
  std::atomic<uint64_t> corrupt_frames_{0};
  std::atomic<uint64_t> fatal_streams_{0};
  std::atomic<uint64_t> idle_closes_{0};
};

}  // namespace xclean::rpc

#endif  // XCLEAN_RPC_RPC_SHARD_SERVER_H_
