#ifndef XCLEAN_RPC_FRAME_H_
#define XCLEAN_RPC_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace xclean::rpc {

/// The framing layer of the shard RPC protocol: every message on a
/// connection is one frame,
///
///   offset  size  field
///   ------  ----  -----------------------------------------------------
///        0     2  magic 0x5258 ("XR", little-endian)
///        2     1  protocol version (kProtocolVersion)
///        3     1  frame type (FrameType)
///        4     4  payload length in bytes (little-endian uint32)
///        8     8  request id (little-endian uint64)
///       16     8  FNV-1a 64 of the payload bytes
///       24     8  FNV-1a 64 of header bytes [0, 24)
///   ------  ----  -----------------------------------------------------
///       32   len  payload
///
/// The header checksum makes header corruption (including a mangled
/// length field) detectable before a single payload byte is trusted; the
/// payload checksum catches corruption of the body. The two failure modes
/// deliberately differ in severity: a bad header means the stream can no
/// longer be framed (there is no resynchronisation marker) and the
/// connection must die, while a payload-checksum mismatch under a valid
/// header leaves the stream perfectly framed — the receiver may reject
/// just that frame (Status::DataLoss) and keep the connection.
enum class FrameType : uint8_t {
  kRequest = 1,   ///< payload: wire-encoded ShardRequest
  kResponse = 2,  ///< payload: wire-encoded ShardResponse
  /// Cooperative cancellation of an in-flight request (by request id).
  /// No payload. The server raises the evaluation's external-cancel flag;
  /// the (truncated) response still arrives, so the stream stays framed.
  kCancel = 3,
};

inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 32;
/// Default cap on a frame payload. A response carries top-k partial
/// accumulators, not postings, so single-digit MiB is already generous;
/// anything larger is a corrupt length field or an abusive peer.
inline constexpr size_t kDefaultMaxPayload = 8u << 20;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kRequest;
  uint64_t request_id = 0;
  std::string payload;
};

/// Appends one encoded frame (header + payload) to `out`.
void EncodeFrame(FrameType type, uint64_t request_id,
                 const std::string& payload, std::string& out);

/// How one FrameDecoder::Next() call concluded.
enum class DecodeOutcome : uint8_t {
  /// Not enough buffered bytes for a full frame; feed more.
  kNeedMore,
  /// `frame` holds a validated frame (both checksums pass, known type).
  kFrame,
  /// A well-framed but unusable frame: valid header, payload present, but
  /// the payload checksum failed or the frame type is unknown. The frame's
  /// bytes have been consumed and the stream remains framed — the caller
  /// may reject just this frame (respond DataLoss) and continue.
  /// `frame.request_id` and `frame.type` carry the header's best-effort
  /// values; `status` says what was wrong.
  kCorruptFrame,
  /// The header itself cannot be trusted (bad magic, version, header
  /// checksum, or a length above the cap). Framing is lost; the caller
  /// must close the connection. Sticky: every later Next() repeats it.
  kFatal,
};

struct DecodeEvent {
  DecodeOutcome outcome = DecodeOutcome::kNeedMore;
  Frame frame;
  Status status;
};

/// Incremental frame decoder: feed raw connection bytes, pull validated
/// frames. Never over-reads (all accesses bounded by the buffered size)
/// and never sizes an allocation from an unvalidated length field — the
/// declared payload length is checked against the cap while only the
/// 32-byte header is buffered.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes to the internal buffer. After a kFatal event the
  /// bytes are discarded (the stream is already lost).
  void Feed(const char* data, size_t size);

  /// Consumes at most one frame from the buffer.
  DecodeEvent Next();

  /// Bytes currently buffered (bounded by max_payload + header + the
  /// largest single Feed the caller performs).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  bool fatal() const { return fatal_; }

 private:
  void Compact();

  const size_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  bool fatal_ = false;
  Status fatal_status_;
};

}  // namespace xclean::rpc

#endif  // XCLEAN_RPC_FRAME_H_
