#include "rpc/fault_proxy.h"

#include <sys/socket.h>

#include <algorithm>
#include <utility>

#include "common/random.h"

namespace xclean::rpc {

const char* MangleName(MangleKind kind) {
  switch (kind) {
    case MangleKind::kClean:
      return "clean";
    case MangleKind::kTruncate:
      return "truncate";
    case MangleKind::kBitflip:
      return "bitflip";
    case MangleKind::kDisconnect:
      return "disconnect";
    case MangleKind::kStall:
      return "stall";
    case MangleKind::kDuplicate:
      return "duplicate";
    case MangleKind::kGarbage:
      return "garbage";
  }
  return "?";
}

std::string FaultScript::ToString() const {
  std::string out = std::string("fault{") + MangleName(kind) +
                    (server_to_client ? " s->c" : " c->s") +
                    " at=" + std::to_string(byte_offset);
  if (kind == MangleKind::kBitflip) out += " bit=" + std::to_string(bit);
  if (kind == MangleKind::kGarbage) {
    out += " len=" + std::to_string(garbage_len) +
           " seed=" + std::to_string(seed);
  }
  out += "}";
  return out;
}

/// One proxied connection: the two sockets plus a retain-window of the
/// most recent bytes (for kDuplicate).
struct FaultProxy::Pipe {
  Socket client;  // accepted side
  Socket server;  // dialed side
  std::atomic<bool> dead{false};

  void KillBoth() {
    dead.store(true, std::memory_order_release);
    client.ShutdownBoth();
    server.ShutdownBoth();
  }
};

FaultProxy::FaultProxy(uint16_t target_port) : target_port_(target_port) {}

FaultProxy::~FaultProxy() { Shutdown(); }

Status FaultProxy::Start() {
  Result<Socket> listener = ListenLoopback(0);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Result<uint16_t> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  port_ = port.value();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::Ok();
}

void FaultProxy::Shutdown() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  listener_.ShutdownBoth();
  {
    std::lock_guard<std::mutex> lock(pipes_mu_);
    for (auto& pipe : pipes_) pipe->KillBoth();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> pumps;
  {
    std::lock_guard<std::mutex> lock(pipes_mu_);
    pumps.swap(pump_threads_);
  }
  for (std::thread& t : pumps) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(pipes_mu_);
    pipes_.clear();
  }
  listener_.Close();
  started_ = false;
}

void FaultProxy::SetScript(const FaultScript& script) {
  std::lock_guard<std::mutex> lock(script_mu_);
  script_ = script;
}

FaultProxyStats FaultProxy::stats() const {
  FaultProxyStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.bytes_client_to_server = bytes_c2s_.load(std::memory_order_relaxed);
  s.bytes_server_to_client = bytes_s2c_.load(std::memory_order_relaxed);
  s.faults_applied = faults_applied_.load(std::memory_order_relaxed);
  return s;
}

void FaultProxy::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<Socket> accepted =
        AcceptWithTimeout(listener_, std::chrono::milliseconds(50));
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kNotFound) continue;
      break;
    }
    Result<Socket> upstream =
        DialLoopback(target_port_, std::chrono::milliseconds(1000));
    if (!upstream.ok()) continue;  // accepted socket closes: clean refusal

    auto pipe = std::make_shared<Pipe>();
    pipe->client = std::move(accepted).value();
    pipe->server = std::move(upstream).value();
    connections_.fetch_add(1, std::memory_order_relaxed);

    FaultScript script;
    {
      std::lock_guard<std::mutex> lock(script_mu_);
      script = script_;
    }
    std::lock_guard<std::mutex> lock(pipes_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      pipe->KillBoth();
      break;
    }
    pipes_.push_back(pipe);
    pump_threads_.emplace_back(
        [this, pipe, script] { Pump(pipe, /*server_to_client=*/false, script); });
    pump_threads_.emplace_back(
        [this, pipe, script] { Pump(pipe, /*server_to_client=*/true, script); });
  }
}

void FaultProxy::Pump(std::shared_ptr<Pipe> pipe, bool server_to_client,
                      FaultScript script) {
  const bool mangled = script.server_to_client == server_to_client &&
                       script.kind != MangleKind::kClean;
  Socket& from = server_to_client ? pipe->server : pipe->client;
  Socket& to = server_to_client ? pipe->client : pipe->server;
  std::atomic<uint64_t>& byte_counter =
      server_to_client ? bytes_s2c_ : bytes_c2s_;

  Rng garbage_rng(script.seed * 0x9E3779B97F4A7C15ull + 1);
  uint64_t forwarded = 0;     // bytes forwarded so far in this direction
  bool fault_done = false;    // one-shot faults fire once
  bool fault_counted = false;
  // Retain window for kDuplicate: the last bytes before the offset.
  std::string dup_window;

  char buf[4096];
  for (;;) {
    if (pipe->dead.load(std::memory_order_acquire) ||
        stopping_.load(std::memory_order_acquire)) {
      break;
    }
    Result<size_t> got =
        RecvSome(from, buf, sizeof(buf), std::chrono::milliseconds(20));
    if (!got.ok()) {
      if (got.status().code() == StatusCode::kNotFound) continue;  // slice
      break;
    }
    const size_t n = got.value();
    if (n == 0) {  // EOF from the source: propagate the half-close
      ::shutdown(to.fd(), SHUT_WR);
      break;
    }

    std::string chunk(buf, n);
    bool close_after = false;
    bool close_both_after = false;

    if (mangled && !fault_done) {
      switch (script.kind) {
        case MangleKind::kClean:
          break;
        case MangleKind::kTruncate:
          if (forwarded + chunk.size() >= script.byte_offset) {
            chunk.resize(script.byte_offset > forwarded
                             ? script.byte_offset - forwarded
                             : 0);
            close_after = true;
            fault_done = true;
          }
          break;
        case MangleKind::kBitflip:
          if (forwarded + chunk.size() > script.byte_offset &&
              script.byte_offset >= forwarded) {
            chunk[script.byte_offset - forwarded] ^=
                static_cast<char>(1u << (script.bit & 7));
            fault_done = true;
          }
          break;
        case MangleKind::kDisconnect:
          if (forwarded + chunk.size() >= script.byte_offset) {
            chunk.resize(script.byte_offset > forwarded
                             ? script.byte_offset - forwarded
                             : 0);
            close_both_after = true;
            fault_done = true;
          }
          break;
        case MangleKind::kStall:
          if (forwarded >= script.byte_offset) {
            // Swallow everything from here on: bytes vanish, the
            // connection stays open, the peer's deadline must save it.
            fault_done = false;  // keep swallowing
            chunk.clear();
          } else if (forwarded + chunk.size() > script.byte_offset) {
            chunk.resize(script.byte_offset - forwarded);
          }
          break;
        case MangleKind::kDuplicate:
          if (forwarded + chunk.size() >= script.byte_offset) {
            // Replay the retained tail (up to 64 bytes) mid-stream: the
            // receiver sees a once-valid byte run twice, which can only
            // parse as garbage.
            const size_t keep = std::min<size_t>(dup_window.size(), 64);
            chunk += dup_window.substr(dup_window.size() - keep);
            fault_done = true;
          } else {
            dup_window += chunk;
            if (dup_window.size() > 64) {
              dup_window.erase(0, dup_window.size() - 64);
            }
          }
          break;
        case MangleKind::kGarbage:
          if (forwarded + chunk.size() >= script.byte_offset) {
            std::string garbage;
            for (uint32_t i = 0; i < script.garbage_len; ++i) {
              garbage.push_back(
                  static_cast<char>(garbage_rng.Uniform(256)));
            }
            const size_t cut =
                script.byte_offset > forwarded
                    ? std::min<size_t>(script.byte_offset - forwarded,
                                       chunk.size())
                    : 0;
            chunk.insert(cut, garbage);
            fault_done = true;
          }
          break;
      }
      if (!fault_counted &&
          (fault_done || (script.kind == MangleKind::kStall &&
                          forwarded >= script.byte_offset))) {
        fault_counted = true;
        faults_applied_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    forwarded += n;  // count source bytes, so offsets track the original
    byte_counter.fetch_add(n, std::memory_order_relaxed);

    if (!chunk.empty()) {
      Status sent = SendAll(to, chunk.data(), chunk.size(),
                            std::chrono::steady_clock::now() +
                                std::chrono::seconds(5),
                            nullptr);
      if (!sent.ok()) break;
    }
    if (close_after) {
      ::shutdown(to.fd(), SHUT_WR);
      break;
    }
    if (close_both_after) {
      pipe->KillBoth();
      break;
    }
  }
}

}  // namespace xclean::rpc
