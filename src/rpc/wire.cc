#include "rpc/wire.h"

#include <cstring>
#include <limits>

#include "common/varint.h"

namespace xclean::rpc {

namespace {

/// Sentinel for "no deadline" (ShardRequest defaults to time_point::max(),
/// which must survive the relative-budget conversion).
constexpr uint64_t kNoDeadline = std::numeric_limits<uint64_t>::max();

void PutDouble(std::string& out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void PutString(std::string& out, const std::string& s) {
  PutVarint64(out, s.size());
  out.append(s);
}

/// Bounded cursor over the payload. Every Get* checks the remaining bytes
/// before touching them, so a truncated or lying payload can never cause
/// an over-read.
struct Cursor {
  const char* p;
  const char* end;

  bool GetU64(uint64_t* out) {
    const char* next = GetVarint64(p, end, out);
    if (next == nullptr) return false;
    p = next;
    return true;
  }
  bool GetU32(uint32_t* out) {
    const char* next = GetVarint32(p, end, out);
    if (next == nullptr) return false;
    p = next;
    return true;
  }
  bool GetU8(uint8_t* out) {
    if (p >= end) return false;
    *out = static_cast<uint8_t>(*p++);
    return true;
  }
  bool GetDouble(double* out) {
    if (end - p < 8) return false;
    uint64_t bits = 0;
    const uint8_t* u = reinterpret_cast<const uint8_t*>(p);
    for (int i = 0; i < 8; ++i) bits |= static_cast<uint64_t>(u[i]) << (8 * i);
    std::memcpy(out, &bits, sizeof(*out));
    p += 8;
    return true;
  }
  bool GetString(std::string* out, size_t max_bytes) {
    uint64_t len = 0;
    if (!GetU64(&len)) return false;
    if (len > max_bytes || static_cast<uint64_t>(end - p) < len) return false;
    out->assign(p, len);
    p += len;
    return true;
  }
  bool AtEnd() const { return p == end; }
};

Status Malformed(const char* what) {
  return Status::DataLoss(std::string("rpc wire: malformed ") + what);
}

}  // namespace

void EncodeShardRequest(const shard::ShardRequest& request,
                        std::chrono::steady_clock::time_point now,
                        std::string& out) {
  if (request.deadline == std::chrono::steady_clock::time_point::max()) {
    PutVarint64(out, kNoDeadline);
  } else {
    const auto budget = std::chrono::duration_cast<std::chrono::nanoseconds>(
        request.deadline - now);
    // An expired deadline stays expired (budget 0), it does not wrap.
    uint64_t ns = 0;
    if (budget.count() > 0) ns = static_cast<uint64_t>(budget.count());
    // kNoDeadline is unreachable for a finite deadline (it would need a
    // 584-year budget), but clamp anyway so the sentinel stays unambiguous.
    if (ns >= kNoDeadline) ns = kNoDeadline - 1;
    PutVarint64(out, ns);
  }
  PutVarint64(out, request.query.keywords.size());
  for (const std::string& kw : request.query.keywords) PutString(out, kw);
  PutVarint64(out, request.queue_depth);
  PutVarint64(out, request.queue_capacity);
  PutVarint64(out, request.expected_generation);
}

Status DecodeShardRequest(const std::string& payload,
                          std::chrono::steady_clock::time_point now,
                          shard::ShardRequest* request,
                          const WireLimits& limits) {
  *request = shard::ShardRequest();
  Cursor c{payload.data(), payload.data() + payload.size()};

  uint64_t budget_ns = 0;
  if (!c.GetU64(&budget_ns)) return Malformed("deadline budget");
  if (budget_ns == kNoDeadline) {
    request->deadline = std::chrono::steady_clock::time_point::max();
  } else {
    // Saturate instead of overflowing time_point arithmetic on a huge
    // (corrupt) budget.
    const auto max_budget = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::time_point::max() - now);
    if (budget_ns >= static_cast<uint64_t>(max_budget.count())) {
      request->deadline = std::chrono::steady_clock::time_point::max();
    } else {
      request->deadline =
          now + std::chrono::nanoseconds(static_cast<int64_t>(budget_ns));
    }
  }

  uint64_t num_keywords = 0;
  if (!c.GetU64(&num_keywords)) return Malformed("keyword count");
  if (num_keywords > limits.max_keywords) return Malformed("keyword count");
  request->query.keywords.reserve(num_keywords);
  for (uint64_t i = 0; i < num_keywords; ++i) {
    std::string kw;
    if (!c.GetString(&kw, limits.max_keyword_bytes)) return Malformed("keyword");
    request->query.keywords.push_back(std::move(kw));
  }

  uint64_t queue_depth = 0, queue_capacity = 0;
  if (!c.GetU64(&queue_depth)) return Malformed("queue depth");
  if (!c.GetU64(&queue_capacity)) return Malformed("queue capacity");
  request->queue_depth = queue_depth;
  request->queue_capacity = queue_capacity;
  if (!c.GetU64(&request->expected_generation)) {
    return Malformed("expected generation");
  }
  if (!c.AtEnd()) return Malformed("trailing request bytes");
  return Status::Ok();
}

void EncodeShardResponse(const shard::ShardResponse& response,
                         std::string& out) {
  PutVarint64(out, static_cast<uint64_t>(response.status.code()));
  PutString(out, response.status.message());
  PutVarint32(out, response.shard_id);
  PutVarint64(out, response.generation);
  out.push_back(static_cast<char>(response.tier));
  out.push_back(static_cast<char>(response.truncated ? 1 : 0));
  out.push_back(static_cast<char>(response.cancel_cause));
  PutVarint64(out, response.partials.size());
  for (const PartialCandidate& partial : response.partials) {
    PutVarint64(out, partial.tokens.size());
    for (TokenId token : partial.tokens) PutVarint32(out, token);
    PutDouble(out, partial.error_weight);
    PutDouble(out, partial.sum);
    PutVarint32(out, partial.entity_count);
    PutVarint32(out, partial.lca_total);
    PutVarint32(out, partial.result_type);
  }
  const XCleanRunStats& rs = response.run_stats;
  PutVarint64(out, rs.subtrees_processed);
  PutVarint64(out, rs.occurrences_collected);
  PutVarint64(out, rs.candidates_enumerated);
  PutVarint64(out, rs.entities_scored);
  PutVarint64(out, rs.result_type_computations);
  PutVarint64(out, rs.accumulator_evictions);
  PutVarint64(out, rs.accumulators_final);
  out.push_back(static_cast<char>(rs.truncated ? 1 : 0));
  out.push_back(static_cast<char>(rs.cancel_cause));
}

Status DecodeShardResponse(const std::string& payload,
                           shard::ShardResponse* response,
                           const WireLimits& limits) {
  *response = shard::ShardResponse();
  Cursor c{payload.data(), payload.data() + payload.size()};

  uint64_t code = 0;
  std::string message;
  if (!c.GetU64(&code)) return Malformed("status code");
  if (code > static_cast<uint64_t>(StatusCode::kDataLoss)) {
    return Malformed("status code");
  }
  if (!c.GetString(&message, limits.max_status_message_bytes)) {
    return Malformed("status message");
  }
  response->status = Status(static_cast<StatusCode>(code), std::move(message));

  if (!c.GetU32(&response->shard_id)) return Malformed("shard id");
  if (!c.GetU64(&response->generation)) return Malformed("generation");
  uint8_t tier = 0, truncated = 0, cancel_cause = 0;
  if (!c.GetU8(&tier) || tier > static_cast<uint8_t>(ServiceTier::kShed)) {
    return Malformed("tier");
  }
  response->tier = static_cast<ServiceTier>(tier);
  if (!c.GetU8(&truncated) || truncated > 1) return Malformed("truncated flag");
  response->truncated = truncated != 0;
  if (!c.GetU8(&cancel_cause) ||
      cancel_cause > static_cast<uint8_t>(CancelCause::kExternal)) {
    return Malformed("cancel cause");
  }
  response->cancel_cause = static_cast<CancelCause>(cancel_cause);

  uint64_t num_partials = 0;
  if (!c.GetU64(&num_partials)) return Malformed("partial count");
  // A partial is at least 20 bytes (1 token-count + 16 double bytes + 3
  // one-byte varints), so the remaining payload bounds the count long
  // before any allocation is sized from it.
  if (num_partials > limits.max_partials ||
      num_partials > static_cast<uint64_t>(c.end - c.p) / 20) {
    return Malformed("partial count");
  }
  response->partials.reserve(num_partials);
  for (uint64_t i = 0; i < num_partials; ++i) {
    PartialCandidate partial;
    uint64_t num_tokens = 0;
    if (!c.GetU64(&num_tokens)) return Malformed("token count");
    if (num_tokens > limits.max_tokens_per_partial) {
      return Malformed("token count");
    }
    partial.tokens.reserve(num_tokens);
    for (uint64_t t = 0; t < num_tokens; ++t) {
      uint32_t token = 0;
      if (!c.GetU32(&token)) return Malformed("token");
      partial.tokens.push_back(token);
    }
    if (!c.GetDouble(&partial.error_weight)) return Malformed("error weight");
    if (!c.GetDouble(&partial.sum)) return Malformed("partial sum");
    if (!c.GetU32(&partial.entity_count)) return Malformed("entity count");
    if (!c.GetU32(&partial.lca_total)) return Malformed("lca total");
    if (!c.GetU32(&partial.result_type)) return Malformed("result type");
    response->partials.push_back(std::move(partial));
  }

  XCleanRunStats& rs = response->run_stats;
  uint8_t rs_truncated = 0, rs_cause = 0;
  if (!c.GetU64(&rs.subtrees_processed) ||
      !c.GetU64(&rs.occurrences_collected) ||
      !c.GetU64(&rs.candidates_enumerated) || !c.GetU64(&rs.entities_scored) ||
      !c.GetU64(&rs.result_type_computations) ||
      !c.GetU64(&rs.accumulator_evictions) ||
      !c.GetU64(&rs.accumulators_final)) {
    return Malformed("run stats");
  }
  if (!c.GetU8(&rs_truncated) || rs_truncated > 1) {
    return Malformed("run stats truncated flag");
  }
  rs.truncated = rs_truncated != 0;
  if (!c.GetU8(&rs_cause) ||
      rs_cause > static_cast<uint8_t>(CancelCause::kExternal)) {
    return Malformed("run stats cancel cause");
  }
  rs.cancel_cause = static_cast<CancelCause>(rs_cause);
  if (!c.AtEnd()) return Malformed("trailing response bytes");
  return Status::Ok();
}

}  // namespace xclean::rpc
