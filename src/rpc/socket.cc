#include "rpc/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <string>

namespace xclean::rpc {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best-effort: latency tuning, not correctness.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// poll() one fd for `events`, returning >0 ready / 0 timeout / <0 error
/// with EINTR retried against the remaining budget.
int PollOne(int fd, short events, std::chrono::milliseconds timeout) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int ms = static_cast<int>(
      std::clamp<int64_t>(timeout.count(), 0, 60 * 60 * 1000));
  for (;;) {
    const int rc = poll(&pfd, 1, ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Socket> ListenLoopback(uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  int one = 1;
  (void)setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (listen(s.fd(), backlog) < 0) return Errno("listen");
  if (Status st = SetNonBlocking(s.fd()); !st.ok()) return st;
  return s;
}

Result<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<Socket> AcceptWithTimeout(const Socket& listener,
                                 std::chrono::milliseconds timeout) {
  const int rc = PollOne(listener.fd(), POLLIN, timeout);
  if (rc < 0) return Errno("poll(accept)");
  if (rc == 0) return Status::NotFound("accept timeout");
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::NotFound("accept timeout");
    }
    return Errno("accept");
  }
  Socket s(fd);
  if (Status st = SetNonBlocking(fd); !st.ok()) return st;
  SetNoDelay(fd);
  return s;
}

Result<Socket> DialLoopback(uint16_t port, std::chrono::milliseconds timeout) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  if (Status st = SetNonBlocking(s.fd()); !st.ok()) return st;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) return Errno("connect");
    const int rc = PollOne(s.fd(), POLLOUT, timeout);
    if (rc < 0) return Errno("poll(connect)");
    if (rc == 0) return Status::DeadlineExceeded("connect timeout");
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      errno = err != 0 ? err : errno;
      return Errno("connect");
    }
  }
  SetNoDelay(s.fd());
  return s;
}

Status SendAll(const Socket& socket, const char* data, size_t size,
               std::chrono::steady_clock::time_point deadline, Clock* clock) {
  clock = ResolveClock(clock);
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that vanished mid-write is a Status, not a
    // process-wide SIGPIPE.
    const ssize_t n =
        ::send(socket.fd(), data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Errno("send");
    }
    const auto now = clock->Now();
    if (now >= deadline) return Status::DeadlineExceeded("rpc write timeout");
    const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    const int rc = PollOne(socket.fd(), POLLOUT,
                           std::min(remain, std::chrono::milliseconds(50)));
    if (rc < 0) return Errno("poll(send)");
  }
  return Status::Ok();
}

Result<size_t> RecvSome(const Socket& socket, char* buf, size_t size,
                        std::chrono::milliseconds timeout) {
  for (;;) {
    const ssize_t n = ::recv(socket.fd(), buf, size, 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) return static_cast<size_t>(0);  // orderly EOF
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return Errno("recv");
    const int rc = PollOne(socket.fd(), POLLIN, timeout);
    if (rc < 0) return Errno("poll(recv)");
    if (rc == 0) return Status::NotFound("recv timeout");
  }
}

}  // namespace xclean::rpc
