#ifndef XCLEAN_RPC_SOCKET_H_
#define XCLEAN_RPC_SOCKET_H_

#include <chrono>
#include <cstdint>

#include "common/clock.h"
#include "common/status.h"

namespace xclean::rpc {

/// Thin POSIX socket layer shared by the RPC server, client and fault
/// proxy: RAII fds, loopback listen/dial with timeouts, and deadline-aware
/// send/receive built on poll(). Everything is blocking-with-poll rather
/// than an event loop — connection counts here are per-shard fan-out legs,
/// not C10K — and every wait is sliced so callers can observe deadlines
/// and cancellation flags between slices.

/// Move-only owner of a socket fd. Closing is idempotent.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// shutdown(2) both directions: wakes any thread blocked in poll on this
  /// fd with EOF/err, without racing the fd number reuse that Close risks.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port).
Result<Socket> ListenLoopback(uint16_t port, int backlog = 64);

/// Local port of a bound socket.
Result<uint16_t> LocalPort(const Socket& socket);

/// Accepts one connection, waiting at most `timeout`. NotFound on timeout
/// (the caller's poll-loop idiom), Unavailable on listener teardown.
Result<Socket> AcceptWithTimeout(const Socket& listener,
                                 std::chrono::milliseconds timeout);

/// Connects to 127.0.0.1:`port` with a connect timeout (non-blocking
/// connect + poll). The returned socket is non-blocking with TCP_NODELAY.
Result<Socket> DialLoopback(uint16_t port, std::chrono::milliseconds timeout);

/// Writes all of [data, data+size), polling for writability in slices
/// until `deadline` (per the injected clock). DeadlineExceeded when time
/// runs out mid-write; Unavailable when the peer is gone.
Status SendAll(const Socket& socket, const char* data, size_t size,
               std::chrono::steady_clock::time_point deadline, Clock* clock);

/// One bounded read. Returns the byte count (> 0), 0 on orderly EOF,
/// NotFound when `timeout` elapsed with nothing to read, or an error
/// status for a broken connection. The short timeout is the slice of a
/// caller's deadline loop, not the overall budget.
Result<size_t> RecvSome(const Socket& socket, char* buf, size_t size,
                        std::chrono::milliseconds timeout);

}  // namespace xclean::rpc

#endif  // XCLEAN_RPC_SOCKET_H_
