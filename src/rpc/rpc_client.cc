#include "rpc/rpc_client.h"

#include <algorithm>
#include <string>
#include <utility>

#include "rpc/wire.h"

namespace xclean::rpc {

RpcShardBackend::RpcShardBackend(uint16_t port, uint32_t shard_id,
                                 RpcClientOptions options)
    : port_(port),
      shard_id_(shard_id),
      options_(options),
      clock_(ResolveClock(options.clock)) {}

RpcShardBackend::~RpcShardBackend() { CloseIdleConnections(); }

void RpcShardBackend::CloseIdleConnections() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  pooled_.clear();  // Socket destructors close
}

size_t RpcShardBackend::pooled_connections() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return pooled_.size();
}

RpcClientStats RpcShardBackend::stats() const {
  RpcClientStats s;
  s.dials = dials_.load(std::memory_order_relaxed);
  s.dial_failures = dial_failures_.load(std::memory_order_relaxed);
  s.pooled_reuses = pooled_reuses_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.data_loss = data_loss_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.cancels_sent = cancels_sent_.load(std::memory_order_relaxed);
  s.connections_evicted =
      connections_evicted_.load(std::memory_order_relaxed);
  return s;
}

Socket RpcShardBackend::PopPooled() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pooled_.empty()) return Socket();
  Socket s = std::move(pooled_.back());
  pooled_.pop_back();
  return s;
}

void RpcShardBackend::PoolOrClose(Socket socket) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pooled_.size() < options_.max_pooled_connections) {
    pooled_.push_back(std::move(socket));
  }
  // else: socket destructor closes it
}

Result<Socket> RpcShardBackend::DialWithRetries(
    std::chrono::steady_clock::time_point deadline) {
  Backoff backoff(options_.dial_backoff,
                  options_.seed ^ next_request_id_.load(std::memory_order_relaxed));
  Status last = Status::Unavailable("no dial attempted");
  for (uint32_t attempt = 0; attempt < options_.max_dial_attempts; ++attempt) {
    if (attempt > 0) {
      const auto delay = backoff.Next();
      if (clock_->Now() + delay >= deadline) break;
      clock_->SleepFor(delay);
    }
    if (clock_->Now() >= deadline) break;
    dials_.fetch_add(1, std::memory_order_relaxed);
    const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - clock_->Now());
    Result<Socket> dialed =
        DialLoopback(port_, std::min(remain, options_.connect_timeout));
    if (dialed.ok()) return dialed;
    dial_failures_.fetch_add(1, std::memory_order_relaxed);
    last = dialed.status();
  }
  return last;
}

shard::ShardResponse RpcShardBackend::TransportError(Status status) {
  shard::ShardResponse response;
  response.status = std::move(status);
  response.shard_id = shard_id_;
  return response;
}

shard::ShardResponse RpcShardBackend::Evaluate(
    const shard::ShardRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const auto now = clock_->Now();
  // The transport deadline: the request's own budget when it has one, a
  // default response-wait otherwise (a no-deadline request must still not
  // park a leg forever on a stalled peer).
  const auto deadline =
      request.deadline == std::chrono::steady_clock::time_point::max()
          ? now + options_.default_read_timeout
          : request.deadline;

  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  std::string payload;
  EncodeShardRequest(request, now, payload);
  std::string wire;
  EncodeFrame(FrameType::kRequest, request_id, payload, wire);

  Socket socket = PopPooled();
  bool from_pool = socket.valid();
  if (from_pool) pooled_reuses_.fetch_add(1, std::memory_order_relaxed);
  if (!socket.valid()) {
    Result<Socket> dialed = DialWithRetries(deadline);
    if (!dialed.ok()) return TransportError(dialed.status());
    socket = std::move(dialed).value();
  }

  bool retryable = false;
  shard::ShardResponse response = Exchange(
      std::move(socket), request, wire, request_id, deadline, &retryable);
  if (retryable && from_pool) {
    // The pooled connection was stale (server restarted or closed it while
    // idle) and nothing of this exchange reached the peer: one fresh dial.
    Result<Socket> dialed = DialWithRetries(deadline);
    if (!dialed.ok()) return response;
    response = Exchange(std::move(dialed).value(), request, wire, request_id,
                        deadline, &retryable);
  }
  return response;
}

shard::ShardResponse RpcShardBackend::Exchange(
    Socket socket, const shard::ShardRequest& request, const std::string& wire,
    uint64_t request_id, std::chrono::steady_clock::time_point deadline,
    bool* retryable) {
  *retryable = false;
  const auto write_deadline =
      std::min(deadline, clock_->Now() + options_.write_timeout);
  Status sent = SendAll(socket, wire.data(), wire.size(), write_deadline,
                        clock_);
  if (!sent.ok()) {
    // A send failing outright usually means a dead pooled connection
    // (RST on first write); nothing was exchanged, so a retry is safe.
    *retryable = true;
    connections_evicted_.fetch_add(1, std::memory_order_relaxed);
    return TransportError(std::move(sent));
  }

  FrameDecoder decoder(options_.max_payload);
  char buf[16384];
  bool got_bytes = false;
  bool cancel_sent = false;
  auto effective_deadline = deadline;

  for (;;) {
    // Propagate cooperative cancellation as a cancel frame exactly once,
    // then linger briefly for the server's truncated response so the
    // stream ends in a known state.
    if (!cancel_sent && request.external_cancel != nullptr &&
        request.external_cancel->load(std::memory_order_acquire)) {
      cancel_sent = true;
      cancels_sent_.fetch_add(1, std::memory_order_relaxed);
      std::string cancel_wire;
      EncodeFrame(FrameType::kCancel, request_id, std::string(), cancel_wire);
      const auto linger_deadline = clock_->Now() + options_.cancel_linger;
      (void)SendAll(socket, cancel_wire.data(), cancel_wire.size(),
                    linger_deadline, clock_);
      effective_deadline = std::min(deadline, linger_deadline);
    }

    const auto now = clock_->Now();
    if (now >= effective_deadline) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      connections_evicted_.fetch_add(1, std::memory_order_relaxed);
      // The connection now owes us a response we will never read; it must
      // not return to the pool.
      return TransportError(
          request.deadline != std::chrono::steady_clock::time_point::max() &&
                  now >= request.deadline
              ? Status::DeadlineExceeded("rpc response timeout")
              : Status::Unavailable("rpc response timeout"));
    }
    const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
        effective_deadline - now);
    Result<size_t> got = RecvSome(
        socket, buf, sizeof(buf),
        std::clamp(remain, std::chrono::milliseconds(1),
                   std::chrono::milliseconds(5)));
    if (!got.ok()) {
      if (got.status().code() == StatusCode::kNotFound) continue;  // slice
      connections_evicted_.fetch_add(1, std::memory_order_relaxed);
      return TransportError(got.status());
    }
    if (got.value() == 0) {  // EOF
      *retryable = !got_bytes;
      connections_evicted_.fetch_add(1, std::memory_order_relaxed);
      return TransportError(
          Status::Unavailable("rpc connection closed by server"));
    }
    got_bytes = true;
    decoder.Feed(buf, got.value());

    for (;;) {
      DecodeEvent event = decoder.Next();
      if (event.outcome == DecodeOutcome::kNeedMore) break;
      if (event.outcome == DecodeOutcome::kFatal) {
        data_loss_.fetch_add(1, std::memory_order_relaxed);
        connections_evicted_.fetch_add(1, std::memory_order_relaxed);
        return TransportError(event.status);
      }
      if (event.outcome == DecodeOutcome::kCorruptFrame) {
        // The frame meant for us arrived damaged. The stream is still
        // framed, but the response is unrecoverable: surface DataLoss and
        // let the routing layer retry on a fresh connection.
        data_loss_.fetch_add(1, std::memory_order_relaxed);
        connections_evicted_.fetch_add(1, std::memory_order_relaxed);
        return TransportError(event.status);
      }
      if (event.frame.type != FrameType::kResponse ||
          event.frame.request_id != request_id) {
        // A response for a request this connection no longer owns (or a
        // nonsense type): drop the frame, keep waiting for ours.
        continue;
      }
      shard::ShardResponse response;
      Status decoded = DecodeShardResponse(event.frame.payload, &response);
      if (!decoded.ok()) {
        data_loss_.fetch_add(1, std::memory_order_relaxed);
        connections_evicted_.fetch_add(1, std::memory_order_relaxed);
        return TransportError(std::move(decoded));
      }
      responses_.fetch_add(1, std::memory_order_relaxed);
      if (decoder.buffered_bytes() == 0) {
        PoolOrClose(std::move(socket));
      } else {
        // Bytes past our response mean the stream carries something we
        // did not ask for (trailing garbage, duplicated frames): poisoned
        // streams never return to the pool.
        connections_evicted_.fetch_add(1, std::memory_order_relaxed);
      }
      return response;
    }
  }
}

}  // namespace xclean::rpc
