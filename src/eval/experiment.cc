#include "eval/experiment.h"

#include <cstdio>

#include "common/string_util.h"
#include "common/timer.h"

namespace xclean {

ExperimentResult RunExperiment(QueryCleaner& cleaner, const QuerySet& set,
                               size_t max_precision_n) {
  ExperimentResult result;
  result.cleaner_name = cleaner.name();
  result.query_set_name = set.name;
  result.query_count = set.queries.size();

  MetricsAccumulator metrics;
  double total_seconds = 0.0;
  for (const EvalQuery& eq : set.queries) {
    Stopwatch watch;
    std::vector<Suggestion> suggestions = cleaner.Suggest(eq.dirty);
    total_seconds += watch.ElapsedSeconds();
    metrics.Add(RankOfTruth(suggestions, eq.truth));
  }

  result.mrr = metrics.Mrr();
  result.precision_at.resize(max_precision_n);
  for (size_t n = 1; n <= max_precision_n; ++n) {
    result.precision_at[n - 1] = metrics.PrecisionAt(n);
  }
  result.avg_seconds =
      set.queries.empty()
          ? 0.0
          : total_seconds / static_cast<double>(set.queries.size());
  return result;
}

TablePrinter::TablePrinter(const std::vector<std::string>& headers)
    : headers_(headers) {
  widths_.reserve(headers_.size());
  for (const std::string& h : headers_) {
    widths_.push_back(h.size() + 2 < 12 ? 12 : h.size() + 2);
  }
}

void TablePrinter::PrintHeader() const {
  std::string line;
  for (size_t i = 0; i < headers_.size(); ++i) {
    line += StrFormat("%-*s", static_cast<int>(widths_[i]),
                      headers_[i].c_str());
  }
  std::printf("%s\n", line.c_str());
  std::printf("%s\n", std::string(line.size(), '-').c_str());
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  std::string line;
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    line += StrFormat("%-*s", static_cast<int>(widths_[i]), cells[i].c_str());
  }
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
}

std::string TablePrinter::Num(double v) {
  if (v >= 100.0) return StrFormat("%.1f", v);
  return StrFormat("%.2f", v);
}

}  // namespace xclean
