#ifndef XCLEAN_EVAL_METRICS_H_
#define XCLEAN_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "core/query.h"

namespace xclean {

/// 1-based rank of the ground truth in a suggestion list (match on the
/// keyword sequence); 0 if absent.
size_t RankOfTruth(const std::vector<Suggestion>& suggestions,
                   const Query& truth);

/// Reciprocal rank: 1/rank, or 0 when the truth is absent.
double ReciprocalRank(const std::vector<Suggestion>& suggestions,
                      const Query& truth);

/// Aggregates per-query ranks into MRR and Precision@N (Sec. VII-B):
///
///   MRR          = (1/|Q|) Σ 1/rank(Q_g)
///   precision@N  = |{Q : rank(Q_g) <= N}| / |Q|
class MetricsAccumulator {
 public:
  /// Records one query's outcome; rank = 0 means the truth was not
  /// suggested.
  void Add(size_t rank);

  double Mrr() const;
  double PrecisionAt(size_t n) const;
  size_t query_count() const { return ranks_.size(); }

 private:
  std::vector<size_t> ranks_;
};

}  // namespace xclean

#endif  // XCLEAN_EVAL_METRICS_H_
