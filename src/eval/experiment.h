#ifndef XCLEAN_EVAL_EXPERIMENT_H_
#define XCLEAN_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/query.h"
#include "data/workload.h"
#include "eval/metrics.h"

namespace xclean {

/// Result of running one cleaner over one query set.
struct ExperimentResult {
  std::string cleaner_name;
  std::string query_set_name;
  double mrr = 0.0;
  /// precision_at[n-1] = Precision@n for n in 1..10.
  std::vector<double> precision_at;
  /// Mean wall-clock seconds per query (suggestion time only; variant and
  /// index structures are shared and prebuilt, matching the paper's setup).
  double avg_seconds = 0.0;
  size_t query_count = 0;
};

/// Runs `cleaner` over every query in `set`, measuring quality against the
/// ground truth and per-query latency.
ExperimentResult RunExperiment(QueryCleaner& cleaner, const QuerySet& set,
                               size_t max_precision_n = 10);

/// Fixed-width table printing helpers shared by the bench binaries. Rows
/// are printed immediately (streaming results as benches go).
class TablePrinter {
 public:
  /// Column headers; widths adapt to the header length (min 10 chars).
  explicit TablePrinter(const std::vector<std::string>& headers);

  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;

  /// Formats a double with 2-3 significant decimals as the paper's tables
  /// do ("0.76", "12.24").
  static std::string Num(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
};

}  // namespace xclean

#endif  // XCLEAN_EVAL_EXPERIMENT_H_
