#include "eval/metrics.h"

namespace xclean {

size_t RankOfTruth(const std::vector<Suggestion>& suggestions,
                   const Query& truth) {
  for (size_t i = 0; i < suggestions.size(); ++i) {
    if (suggestions[i].words == truth.keywords) return i + 1;
  }
  return 0;
}

double ReciprocalRank(const std::vector<Suggestion>& suggestions,
                      const Query& truth) {
  size_t rank = RankOfTruth(suggestions, truth);
  return rank == 0 ? 0.0 : 1.0 / static_cast<double>(rank);
}

void MetricsAccumulator::Add(size_t rank) { ranks_.push_back(rank); }

double MetricsAccumulator::Mrr() const {
  if (ranks_.empty()) return 0.0;
  double sum = 0.0;
  for (size_t rank : ranks_) {
    if (rank != 0) sum += 1.0 / static_cast<double>(rank);
  }
  return sum / static_cast<double>(ranks_.size());
}

double MetricsAccumulator::PrecisionAt(size_t n) const {
  if (ranks_.empty()) return 0.0;
  size_t hits = 0;
  for (size_t rank : ranks_) {
    if (rank != 0 && rank <= n) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(ranks_.size());
}

}  // namespace xclean
