#include "text/edit_distance.h"

#include <algorithm>
#include <vector>

namespace xclean {

uint32_t EditDistance(std::string_view s, std::string_view t) {
  if (s.size() > t.size()) std::swap(s, t);  // s is the shorter string
  const size_t n = s.size();
  const size_t m = t.size();
  if (n == 0) return static_cast<uint32_t>(m);

  std::vector<uint32_t> row(n + 1);
  for (size_t j = 0; j <= n; ++j) row[j] = static_cast<uint32_t>(j);
  for (size_t i = 1; i <= m; ++i) {
    uint32_t diag = row[0];  // D[i-1][j-1]
    row[0] = static_cast<uint32_t>(i);
    for (size_t j = 1; j <= n; ++j) {
      uint32_t up = row[j];  // D[i-1][j]
      uint32_t cost = (t[i - 1] == s[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
    }
  }
  return row[n];
}

uint32_t EditDistanceBounded(std::string_view s, std::string_view t,
                             uint32_t max_ed) {
  if (s.size() > t.size()) std::swap(s, t);
  const size_t n = s.size();
  const size_t m = t.size();
  if (m - n > max_ed) return max_ed + 1;
  if (n == 0) return static_cast<uint32_t>(m);
  if (max_ed == 0) return s == t ? 0 : 1;

  // Banded DP over the shorter string's axis: only cells with
  // |i - j| <= max_ed can hold a value <= max_ed. kBig marks cells outside
  // the band (chosen so adding 1 cannot overflow).
  constexpr uint32_t kBig = 0x3FFFFFFF;
  std::vector<uint32_t> row(n + 1, kBig);
  size_t band = max_ed;
  for (size_t j = 0; j <= std::min(n, band); ++j) {
    row[j] = static_cast<uint32_t>(j);
  }
  for (size_t i = 1; i <= m; ++i) {
    size_t lo = i > band ? i - band : 0;
    size_t hi = std::min(n, i + band);
    if (lo > n) return max_ed + 1;
    uint32_t diag = row[lo > 0 ? lo - 1 : 0];  // D[i-1][lo-1]
    uint32_t left = kBig;                      // D[i][lo-1] (outside band)
    if (lo == 0) {
      diag = row[0];
      row[0] = static_cast<uint32_t>(i);
      left = row[0];
      lo = 1;
    }
    uint32_t row_min = left;
    for (size_t j = lo; j <= hi; ++j) {
      uint32_t up = row[j];  // D[i-1][j]
      uint32_t cost = (t[i - 1] == s[j - 1]) ? 0 : 1;
      uint32_t v = std::min({left + 1, up + 1, diag + cost});
      row[j] = v;
      left = v;
      diag = up;
      row_min = std::min(row_min, v);
    }
    if (hi < n) row[hi + 1] = kBig;  // invalidate the cell leaving the band
    if (row_min > max_ed) return max_ed + 1;
  }
  return std::min<uint32_t>(row[n], max_ed + 1);
}

bool WithinEditDistance(std::string_view s, std::string_view t,
                        uint32_t max_ed) {
  return EditDistanceBounded(s, t, max_ed) <= max_ed;
}

}  // namespace xclean
