#include "text/edit_distance.h"

#include <algorithm>
#include <vector>

#include "common/simd.h"

namespace xclean {

namespace {

/// Myers' bit-parallel edit distance (Hyyrö's formulation): the DP column
/// is encoded as vertical-positive/negative bit vectors, so one text
/// character costs ~15 word operations instead of |s| cell updates.
/// Requires 1 <= |s| <= 64 and |s| <= |t|. With `cap` != UINT32_MAX the
/// scan exits as soon as the score cannot fall back to cap even if every
/// remaining character decrements it (early-exit banding), returning
/// cap + 1; otherwise the exact distance is returned (callers clamp).
///
/// The Peq table is thread_local and cleaned after use (only the pattern's
/// characters were touched), keeping the hot path allocation-free without
/// paying a 2 KiB memset per call.
uint32_t MyersEditDistance(std::string_view s, std::string_view t,
                           uint32_t cap) {
  const size_t n = s.size();
  const size_t m = t.size();
  thread_local uint64_t peq[256];  // zero outside calls
  for (size_t j = 0; j < n; ++j) {
    peq[static_cast<uint8_t>(s[j])] |= uint64_t{1} << j;
  }
  uint64_t vp = ~uint64_t{0};
  uint64_t vn = 0;
  uint32_t score = static_cast<uint32_t>(n);
  const uint64_t top = uint64_t{1} << (n - 1);
  bool exceeded = false;
  for (size_t i = 0; i < m; ++i) {
    const uint64_t pm = peq[static_cast<uint8_t>(t[i])];
    const uint64_t x = pm | vn;
    const uint64_t d0 = ((vp + (x & vp)) ^ vp) | x;
    const uint64_t hn = vp & d0;
    const uint64_t hp = vn | ~(vp | d0);
    if (hp & top) {
      ++score;
    } else if (hn & top) {
      --score;
    }
    const uint64_t y = (hp << 1) | 1;
    vn = y & d0;
    vp = (hn << 1) | ~(y | d0);
    // score == ed(s, t[0..i]); each remaining character can lower the
    // final distance by at most 1.
    if (cap != UINT32_MAX &&
        score > cap + static_cast<uint32_t>(m - 1 - i)) {
      exceeded = true;
      break;
    }
  }
  for (size_t j = 0; j < n; ++j) {
    peq[static_cast<uint8_t>(s[j])] = 0;
  }
  if (exceeded) return cap + 1;
  return score;
}

}  // namespace

uint32_t EditDistanceScalar(std::string_view s, std::string_view t) {
  if (s.size() > t.size()) std::swap(s, t);  // s is the shorter string
  const size_t n = s.size();
  const size_t m = t.size();
  if (n == 0) return static_cast<uint32_t>(m);

  std::vector<uint32_t> row(n + 1);
  for (size_t j = 0; j <= n; ++j) row[j] = static_cast<uint32_t>(j);
  for (size_t i = 1; i <= m; ++i) {
    uint32_t diag = row[0];  // D[i-1][j-1]
    row[0] = static_cast<uint32_t>(i);
    for (size_t j = 1; j <= n; ++j) {
      uint32_t up = row[j];  // D[i-1][j]
      uint32_t cost = (t[i - 1] == s[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
    }
  }
  return row[n];
}

uint32_t EditDistance(std::string_view s, std::string_view t) {
  if (s.size() > t.size()) std::swap(s, t);
  if (!s.empty() && s.size() <= 64 &&
      simd::ActiveLevel() != simd::Level::kScalar) {
    return MyersEditDistance(s, t, UINT32_MAX);
  }
  return EditDistanceScalar(s, t);
}

uint32_t EditDistanceBoundedScalar(std::string_view s, std::string_view t,
                                   uint32_t max_ed) {
  if (s.size() > t.size()) std::swap(s, t);
  const size_t n = s.size();
  const size_t m = t.size();
  if (m - n > max_ed) return max_ed + 1;
  if (n == 0) return static_cast<uint32_t>(m);
  if (max_ed == 0) return s == t ? 0 : 1;

  // Banded DP over the shorter string's axis: only cells with
  // |i - j| <= max_ed can hold a value <= max_ed. kBig marks cells outside
  // the band (chosen so adding 1 cannot overflow).
  constexpr uint32_t kBig = 0x3FFFFFFF;
  std::vector<uint32_t> row(n + 1, kBig);
  size_t band = max_ed;
  for (size_t j = 0; j <= std::min(n, band); ++j) {
    row[j] = static_cast<uint32_t>(j);
  }
  for (size_t i = 1; i <= m; ++i) {
    size_t lo = i > band ? i - band : 0;
    size_t hi = std::min(n, i + band);
    if (lo > n) return max_ed + 1;
    uint32_t diag = row[lo > 0 ? lo - 1 : 0];  // D[i-1][lo-1]
    uint32_t left = kBig;                      // D[i][lo-1] (outside band)
    if (lo == 0) {
      diag = row[0];
      row[0] = static_cast<uint32_t>(i);
      left = row[0];
      lo = 1;
    }
    uint32_t row_min = left;
    for (size_t j = lo; j <= hi; ++j) {
      uint32_t up = row[j];  // D[i-1][j]
      uint32_t cost = (t[i - 1] == s[j - 1]) ? 0 : 1;
      uint32_t v = std::min({left + 1, up + 1, diag + cost});
      row[j] = v;
      left = v;
      diag = up;
      row_min = std::min(row_min, v);
    }
    if (hi < n) row[hi + 1] = kBig;  // invalidate the cell leaving the band
    if (row_min > max_ed) return max_ed + 1;
  }
  return std::min<uint32_t>(row[n], max_ed + 1);
}

uint32_t EditDistanceBounded(std::string_view s, std::string_view t,
                             uint32_t max_ed) {
  if (s.size() > t.size()) std::swap(s, t);
  const size_t n = s.size();
  if (t.size() - n > max_ed) return max_ed + 1;
  if (n == 0) return static_cast<uint32_t>(t.size());
  if (max_ed == 0) return s == t ? 0 : 1;
  if (n <= 64 && simd::ActiveLevel() != simd::Level::kScalar) {
    // UINT32_MAX means "no cap" inside MyersEditDistance; every real
    // max_ed below it gets the early-exit band.
    const uint32_t cap = max_ed >= UINT32_MAX - 1 ? UINT32_MAX - 2 : max_ed;
    return std::min(MyersEditDistance(s, t, cap), cap + 1);
  }
  return EditDistanceBoundedScalar(s, t, max_ed);
}

bool WithinEditDistance(std::string_view s, std::string_view t,
                        uint32_t max_ed) {
  return EditDistanceBounded(s, t, max_ed) <= max_ed;
}

}  // namespace xclean
