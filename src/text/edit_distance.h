#ifndef XCLEAN_TEXT_EDIT_DISTANCE_H_
#define XCLEAN_TEXT_EDIT_DISTANCE_H_

#include <cstdint>
#include <string_view>

namespace xclean {

/// Levenshtein edit distance (insertions, deletions, substitutions), the
/// error measure of the paper's typographical model (Sec. III). Full
/// O(|s|·|t|) dynamic program with a two-row rolling buffer.
uint32_t EditDistance(std::string_view s, std::string_view t);

/// Thresholded edit distance: returns ed(s, t) if it is <= max_ed, and
/// max_ed + 1 otherwise. Runs the banded O(max(|s|,|t|) · max_ed) dynamic
/// program, which is what FastSS candidate verification calls in the hot
/// path.
uint32_t EditDistanceBounded(std::string_view s, std::string_view t,
                             uint32_t max_ed);

/// Convenience predicate: ed(s, t) <= max_ed.
bool WithinEditDistance(std::string_view s, std::string_view t,
                        uint32_t max_ed);

}  // namespace xclean

#endif  // XCLEAN_TEXT_EDIT_DISTANCE_H_
