#ifndef XCLEAN_TEXT_EDIT_DISTANCE_H_
#define XCLEAN_TEXT_EDIT_DISTANCE_H_

#include <cstdint>
#include <string_view>

namespace xclean {

/// Levenshtein edit distance (insertions, deletions, substitutions), the
/// error measure of the paper's typographical model (Sec. III). Dispatches
/// on the common/simd.h capability tier: patterns up to 64 characters run
/// Myers' bit-parallel algorithm (one 64-bit word per text character);
/// longer patterns — and the XCLEAN_FORCE_SCALAR tier — run the rolling
/// two-row dynamic program. Both paths return identical distances (pinned
/// by the `kernels` differential tests).
uint32_t EditDistance(std::string_view s, std::string_view t);

/// Thresholded edit distance: returns ed(s, t) if it is <= max_ed, and
/// max_ed + 1 otherwise. This is the FastSS candidate-verification hot
/// path. The bit-parallel tier adds early-exit banding (stop as soon as
/// even max-decrements per remaining character cannot reach max_ed); the
/// scalar tier runs the banded O(max(|s|,|t|) * max_ed) dynamic program.
uint32_t EditDistanceBounded(std::string_view s, std::string_view t,
                             uint32_t max_ed);

/// Convenience predicate: ed(s, t) <= max_ed.
bool WithinEditDistance(std::string_view s, std::string_view t,
                        uint32_t max_ed);

/// Scalar twins, exported so the differential tests and benches can pin
/// bit-parallel == scalar without toggling the global dispatch level.
uint32_t EditDistanceScalar(std::string_view s, std::string_view t);
uint32_t EditDistanceBoundedScalar(std::string_view s, std::string_view t,
                                   uint32_t max_ed);

}  // namespace xclean

#endif  // XCLEAN_TEXT_EDIT_DISTANCE_H_
