#include "text/soundex.h"

#include "common/string_util.h"

namespace xclean {

namespace {

/// Soundex digit for a lowercase letter; '0' for vowels & ignored letters
/// (a e i o u y h w).
char SoundexDigit(char c) {
  switch (c) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

bool IsHw(char c) { return c == 'h' || c == 'w'; }

}  // namespace

std::string Soundex(std::string_view word) {
  // Find the first alphabetic character.
  std::string letters;
  for (char c : word) {
    if (IsAsciiAlpha(c)) {
      letters.push_back(
          c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
    }
  }
  if (letters.empty()) return "";

  std::string code;
  code.push_back(static_cast<char>(letters[0] - 'a' + 'A'));
  char prev_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    char c = letters[i];
    char digit = SoundexDigit(c);
    if (digit != '0') {
      // Letters separated by h/w share a code slot; vowels break the run.
      if (digit != prev_digit) code.push_back(digit);
      prev_digit = digit;
    } else if (!IsHw(c)) {
      prev_digit = '0';  // vowel: reset run so the next digit is emitted
    }
    // h/w: keep prev_digit so equal codes across h/w collapse.
  }
  while (code.size() < 4) code.push_back('0');
  return code;
}

bool SoundexEqual(std::string_view a, std::string_view b) {
  std::string ca = Soundex(a);
  if (ca.empty()) return false;
  return ca == Soundex(b);
}

}  // namespace xclean
