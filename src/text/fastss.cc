#include "text/fastss.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "text/edit_distance.h"

namespace xclean {

namespace {

/// FNV-1a over a tag byte plus the variant bytes. Collisions are harmless
/// (verification filters), they only waste one EditDistanceBounded call.
uint64_t Fnv1a(uint8_t tag, std::string_view s) {
  uint64_t h = 14695981039346656037ULL;
  h = (h ^ tag) * 1099511628211ULL;
  for (char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h;
}

/// Recursively enumerates deletion variants; dedupes via a set (deleting
/// different positions of repeated characters yields the same string).
void EnumerateDeletions(const std::string& current, uint32_t remaining,
                        size_t min_pos,
                        std::unordered_set<std::string>& out) {
  out.insert(current);
  if (remaining == 0 || current.empty()) return;
  for (size_t i = min_pos; i < current.size(); ++i) {
    std::string next = current;
    next.erase(i, 1);
    // Deleting at position i then at j >= i covers all position subsets
    // exactly once (combinations, not permutations).
    EnumerateDeletions(next, remaining - 1, i, out);
  }
}

}  // namespace

FastSsIndex::FastSsIndex() : FastSsIndex(Options()) {}

FastSsIndex::FastSsIndex(Options options) : options_(options) {}

std::vector<std::string> FastSsIndex::DeletionNeighborhood(
    std::string_view word, uint32_t max_deletions) {
  std::unordered_set<std::string> set;
  EnumerateDeletions(std::string(word), max_deletions, 0, set);
  return std::vector<std::string>(set.begin(), set.end());
}

uint64_t FastSsIndex::HashVariant(Tag tag, std::string_view variant) {
  return Fnv1a(static_cast<uint8_t>(tag), variant);
}

void FastSsIndex::EmitNeighborhood(Tag tag, std::string_view piece,
                                   uint32_t max_deletions, uint32_t word_id) {
  std::unordered_set<std::string> set;
  EnumerateDeletions(std::string(piece), max_deletions, 0, set);
  for (const std::string& variant : set) {
    postings_.push_back(Posting{HashVariant(tag, variant), word_id});
  }
}

void FastSsIndex::Build(const std::vector<std::string>& words) {
  XCLEAN_CHECK(!built_);
  built_ = true;
  words_ = words;
  const uint32_t k = options_.max_ed;
  const uint32_t half_k = k / 2;
  for (uint32_t id = 0; id < words_.size(); ++id) {
    const std::string& w = words_[id];
    if (k > 0 && w.size() >= options_.partition_min_length) {
      // Partitioned representation: floor(k/2)-deletion neighborhoods of
      // the two halves (left half gets the ceiling of the length split).
      has_partitioned_ = true;
      size_t h = (w.size() + 1) / 2;
      EmitNeighborhood(Tag::kLeft, std::string_view(w).substr(0, h), half_k,
                       id);
      EmitNeighborhood(Tag::kRight, std::string_view(w).substr(h), half_k,
                       id);
    } else {
      EmitNeighborhood(Tag::kWhole, w, k, id);
    }
  }
  std::sort(postings_.begin(), postings_.end(),
            [](const Posting& a, const Posting& b) {
              return a.hash < b.hash ||
                     (a.hash == b.hash && a.word_id < b.word_id);
            });
}

uint64_t FastSsIndex::ApproxMemoryBytes() const {
  uint64_t bytes = postings_.capacity() * sizeof(Posting);
  for (const std::string& w : words_) bytes += sizeof(std::string) + w.size();
  return bytes;
}

void FastSsIndex::ProbeHash(uint64_t hash,
                            std::vector<uint32_t>& candidates) const {
  auto it = std::lower_bound(
      postings_.begin(), postings_.end(), hash,
      [](const Posting& p, uint64_t h) { return p.hash < h; });
  for (; it != postings_.end() && it->hash == hash; ++it) {
    candidates.push_back(it->word_id);
  }
}

void FastSsIndex::ProbeNeighborhood(Tag tag, std::string_view piece,
                                    uint32_t max_deletions,
                                    std::vector<uint32_t>& candidates) const {
  std::unordered_set<std::string> set;
  EnumerateDeletions(std::string(piece), max_deletions, 0, set);
  for (const std::string& variant : set) {
    ProbeHash(HashVariant(tag, variant), candidates);
  }
}

std::vector<FastSsIndex::Match> FastSsIndex::Find(std::string_view query,
                                                  uint32_t max_ed) const {
  XCLEAN_CHECK(built_);
  XCLEAN_CHECK(max_ed <= options_.max_ed);

  std::vector<uint32_t> candidates;
  // Whole-word probes cover words indexed unpartitioned.
  ProbeNeighborhood(Tag::kWhole, query, max_ed, candidates);

  if (has_partitioned_ && max_ed > 0) {
    // Split probes cover partitioned words: for the split induced by the
    // optimal alignment, one half pair has edit distance <= floor(max_ed/2)
    // (pigeonhole over the two halves). We try every plausible split point
    // of the query around its middle.
    const uint32_t half_k = options_.max_ed / 2;
    size_t mid = (query.size() + 1) / 2;
    size_t lo = mid > max_ed + 1 ? mid - max_ed - 1 : 0;
    size_t hi = std::min(query.size(), mid + max_ed + 1);
    for (size_t g = lo; g <= hi; ++g) {
      ProbeNeighborhood(Tag::kLeft, query.substr(0, g), half_k, candidates);
      ProbeNeighborhood(Tag::kRight, query.substr(g), half_k, candidates);
    }
  }

  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<Match> matches;
  for (uint32_t id : candidates) {
    uint32_t d = EditDistanceBounded(query, words_[id], max_ed);
    if (d <= max_ed) matches.push_back(Match{id, d});
  }
  return matches;
}

}  // namespace xclean
