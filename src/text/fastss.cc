#include "text/fastss.h"

#include <algorithm>
#include <iterator>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/parallel_for.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "text/edit_distance.h"

namespace xclean {

namespace {

/// Seed shared by every variant hash of one tag: FNV offset with the tag
/// byte folded in. Hash(tag, s) == fold s's bytes into TagSeed(tag).
uint64_t TagSeed(uint8_t tag) {
  return (14695981039346656037ULL ^ tag) * 1099511628211ULL;
}

/// FNV-1a over a tag byte plus the variant bytes. Collisions are harmless
/// (verification filters), they only waste one EditDistanceBounded call.
uint64_t Fnv1a(uint8_t tag, std::string_view s) {
  uint64_t h = TagSeed(tag);
  for (char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h;
}

/// Recursively enumerates deletion variants; dedupes via a set (deleting
/// different positions of repeated characters yields the same string).
void EnumerateDeletions(const std::string& current, uint32_t remaining,
                        size_t min_pos,
                        std::unordered_set<std::string>& out) {
  out.insert(current);
  if (remaining == 0 || current.empty()) return;
  for (size_t i = min_pos; i < current.size(); ++i) {
    std::string next = current;
    next.erase(i, 1);
    // Deleting at position i then at j >= i covers all position subsets
    // exactly once (combinations, not permutations).
    EnumerateDeletions(next, remaining - 1, i, out);
  }
}

/// Query-side variant of EnumerateDeletions that never materializes the
/// variants: FNV-1a is prefix-incremental, so a keep/delete branch per
/// character folds each surviving byte into the running hash. Appends the
/// hash of every variant with at most `remaining` deletions (each variant
/// exactly once; repeated characters yield duplicate hashes, deduped by
/// the caller — equivalent to string dedup because probes are by hash).
void EnumerateDeletionHashes(std::string_view s, size_t pos,
                             uint32_t remaining, uint64_t hash,
                             std::vector<uint64_t>& out) {
  if (pos == s.size()) {
    out.push_back(hash);
    return;
  }
  EnumerateDeletionHashes(
      s, pos + 1, remaining,
      (hash ^ static_cast<uint8_t>(s[pos])) * 1099511628211ULL, out);
  if (remaining > 0) {
    EnumerateDeletionHashes(s, pos + 1, remaining - 1, hash, out);
  }
}

}  // namespace

FastSsIndex::FastSsIndex() : FastSsIndex(Options()) {}

FastSsIndex::FastSsIndex(Options options) : options_(options) {}

std::vector<std::string> FastSsIndex::DeletionNeighborhood(
    std::string_view word, uint32_t max_deletions) {
  std::unordered_set<std::string> set;
  EnumerateDeletions(std::string(word), max_deletions, 0, set);
  return std::vector<std::string>(set.begin(), set.end());
}

uint64_t FastSsIndex::HashVariant(Tag tag, std::string_view variant) {
  return Fnv1a(static_cast<uint8_t>(tag), variant);
}

void FastSsIndex::EmitNeighborhood(Tag tag, std::string_view piece,
                                   uint32_t max_deletions, uint32_t word_id,
                                   std::vector<Posting>& out) {
  std::unordered_set<std::string> set;
  EnumerateDeletions(std::string(piece), max_deletions, 0, set);
  // Hash four independent variants per step (Fnv1aBatch4 is bit-identical
  // to HashVariant per lane); the interleaved chains hide the per-byte
  // multiply latency. Deletion variants are short, so the gain is modest —
  // the batch runs on every tier (the kernel is plain interleaved scalar
  // code everywhere; see Fnv1aBatch4) to keep scalar and vector builds on
  // one code path. Posting order within the word is irrelevant — Build
  // sorts the whole run afterwards.
  const uint64_t seed = TagSeed(static_cast<uint8_t>(tag));
  const simd::Level level = simd::ActiveLevel();
  auto it = set.begin();
  size_t left = set.size();
  while (left >= 4) {
    std::string_view batch[4];
    for (int l = 0; l < 4; ++l) batch[l] = *it++;
    uint64_t hashes[4];
    simd::Fnv1aBatch4(level, seed, batch, hashes);
    for (int l = 0; l < 4; ++l) out.push_back(Posting{hashes[l], word_id});
    left -= 4;
  }
  for (; it != set.end(); ++it) {
    out.push_back(Posting{HashVariant(tag, *it), word_id});
  }
}

bool FastSsIndex::EmitWord(uint32_t word_id, std::vector<Posting>& out) const {
  const uint32_t k = options_.max_ed;
  const std::string& w = words_[word_id];
  if (k > 0 && w.size() >= options_.partition_min_length) {
    // Partitioned representation: floor(k/2)-deletion neighborhoods of
    // the two halves (left half gets the ceiling of the length split).
    size_t h = (w.size() + 1) / 2;
    EmitNeighborhood(Tag::kLeft, std::string_view(w).substr(0, h), k / 2,
                     word_id, out);
    EmitNeighborhood(Tag::kRight, std::string_view(w).substr(h), k / 2,
                     word_id, out);
    return true;
  }
  EmitNeighborhood(Tag::kWhole, w, k, word_id, out);
  return false;
}

void FastSsIndex::Build(const std::vector<std::string>& words) {
  Build(words, nullptr);
}

void FastSsIndex::Build(const std::vector<std::string>& words,
                        ThreadPool* pool) {
  XCLEAN_CHECK(!built_);
  built_ = true;
  words_ = words;
  const size_t word_count = words_.size();
  if (word_count == 0) {
    FinalizeBuckets();
    return;
  }

  auto less = [](const Posting& a, const Posting& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.word_id < b.word_id);
  };

  // Shard the vocabulary into contiguous word-id ranges; each shard emits
  // its neighborhoods into a private run and sorts it. Shard boundaries
  // depend only on the participant count, and the runs are merged below
  // with a total order whose only ties are bit-identical (hash, word_id)
  // pairs (hash collisions within one word), so the final array is
  // byte-identical for any thread count — including the serial one.
  const size_t participants =
      pool != nullptr ? pool->num_threads() + 1 : 1;
  const size_t num_shards = std::min(word_count, participants * 4);
  const size_t shard_size = (word_count + num_shards - 1) / num_shards;
  std::vector<std::vector<Posting>> runs(num_shards);
  std::vector<uint8_t> shard_partitioned(num_shards, 0);
  ParallelFor(
      pool, num_shards,
      [&](size_t begin, size_t end) {
        for (size_t shard = begin; shard < end; ++shard) {
          const size_t lo = shard * shard_size;
          const size_t hi = std::min(word_count, lo + shard_size);
          std::vector<Posting>& out = runs[shard];
          for (size_t id = lo; id < hi; ++id) {
            if (EmitWord(static_cast<uint32_t>(id), out)) {
              shard_partitioned[shard] = 1;
            }
          }
          std::sort(out.begin(), out.end(), less);
        }
      },
      ParallelForOptions{.min_chunk = 1, .chunks_per_thread = 2});
  for (uint8_t flag : shard_partitioned) {
    if (flag != 0) has_partitioned_ = true;
  }

  // Parallel pairwise merges of the sorted runs (log passes) instead of one
  // serial global sort, so the merge step scales with the emit step.
  while (runs.size() > 1) {
    const size_t pairs = runs.size() / 2;
    std::vector<std::vector<Posting>> next((runs.size() + 1) / 2);
    ParallelFor(
        pool, pairs,
        [&](size_t begin, size_t end) {
          for (size_t p = begin; p < end; ++p) {
            std::vector<Posting>& a = runs[2 * p];
            std::vector<Posting>& b = runs[2 * p + 1];
            std::vector<Posting> merged;
            merged.reserve(a.size() + b.size());
            std::merge(a.begin(), a.end(), b.begin(), b.end(),
                       std::back_inserter(merged), less);
            next[p] = std::move(merged);
          }
        },
        ParallelForOptions{.min_chunk = 1, .chunks_per_thread = 1});
    if (runs.size() % 2 != 0) next.back() = std::move(runs.back());
    runs = std::move(next);
  }
  postings_ = std::move(runs.front());
  FinalizeBuckets();
}

void FastSsIndex::FinalizeBuckets() {
  XCLEAN_CHECK(postings_.size() <= UINT32_MAX);
  bucket_start_.assign(kNumBuckets + 1, 0);
  for (const Posting& p : postings_) {
    ++bucket_start_[(p.hash >> (64 - kBucketBits)) + 1];
  }
  for (size_t b = 1; b <= kNumBuckets; ++b) {
    bucket_start_[b] += bucket_start_[b - 1];
  }
}

uint64_t FastSsIndex::ApproxMemoryBytes() const {
  uint64_t bytes = postings_.capacity() * sizeof(Posting);
  for (const std::string& w : words_) bytes += sizeof(std::string) + w.size();
  return bytes;
}

void FastSsIndex::ProbeHash(uint64_t hash,
                            std::vector<uint32_t>& candidates) const {
  static_assert(sizeof(Posting) == 16,
                "Posting must be a 16-byte (hash, word_id) record");
  const size_t bucket = hash >> (64 - kBucketBits);
  const Posting* begin = postings_.data() + bucket_start_[bucket];
  const Posting* end = postings_.data() + bucket_start_[bucket + 1];
  const size_t size = static_cast<size_t>(end - begin);
  const simd::Level level = simd::ActiveLevel();
  const Posting* it;
  // Buckets are short (postings spread over 2^16 buckets), so the vector
  // lower bound usually finishes in its final window scan; degenerate
  // buckets stay logarithmic via the kernel's internal binary narrowing.
  // Both paths land on the identical lower-bound position.
  if (level != simd::Level::kScalar) {
    it = begin + simd::LowerBoundKey64Stride16(level, begin, size, hash);
  } else {
    it = std::lower_bound(
        begin, end, hash,
        [](const Posting& p, uint64_t h) { return p.hash < h; });
  }
  for (; it != end && it->hash == hash; ++it) {
    candidates.push_back(it->word_id);
  }
}

void FastSsIndex::ProbeNeighborhood(Tag tag, std::string_view piece,
                                    uint32_t max_deletions,
                                    std::vector<uint32_t>& candidates) const {
  // Hash-identical to hashing each materialized deletion variant with
  // HashVariant, minus the per-variant string and set-node allocations.
  std::vector<uint64_t> hashes;
  const uint64_t seed =
      (14695981039346656037ULL ^ static_cast<uint8_t>(tag)) *
      1099511628211ULL;
  EnumerateDeletionHashes(piece, 0, max_deletions, seed, hashes);
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  for (uint64_t hash : hashes) {
    ProbeHash(hash, candidates);
  }
}

std::vector<FastSsIndex::Match> FastSsIndex::Find(std::string_view query,
                                                  uint32_t max_ed) const {
  XCLEAN_CHECK(built_);
  XCLEAN_CHECK(max_ed <= options_.max_ed);

  std::vector<uint32_t> candidates;
  // Whole-word probes cover words indexed unpartitioned.
  ProbeNeighborhood(Tag::kWhole, query, max_ed, candidates);

  if (has_partitioned_ && max_ed > 0) {
    // Split probes cover partitioned words: for the split induced by the
    // optimal alignment, one half pair has edit distance <= floor(max_ed/2)
    // (pigeonhole over the two halves). We try every plausible split point
    // of the query around its middle.
    const uint32_t half_k = options_.max_ed / 2;
    size_t mid = (query.size() + 1) / 2;
    size_t lo = mid > max_ed + 1 ? mid - max_ed - 1 : 0;
    size_t hi = std::min(query.size(), mid + max_ed + 1);
    for (size_t g = lo; g <= hi; ++g) {
      ProbeNeighborhood(Tag::kLeft, query.substr(0, g), half_k, candidates);
      ProbeNeighborhood(Tag::kRight, query.substr(g), half_k, candidates);
    }
  }

  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<Match> matches;
  for (uint32_t id : candidates) {
    uint32_t d = EditDistanceBounded(query, words_[id], max_ed);
    if (d <= max_ed) matches.push_back(Match{id, d});
  }
  return matches;
}

}  // namespace xclean
