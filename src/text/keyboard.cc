#include "text/keyboard.h"

namespace xclean {

std::string KeyboardNeighbors(char c) {
  switch (c) {
    case 'q': return "wa";
    case 'w': return "qase";
    case 'e': return "wsdr";
    case 'r': return "edft";
    case 't': return "rfgy";
    case 'y': return "tghu";
    case 'u': return "yhji";
    case 'i': return "ujko";
    case 'o': return "iklp";
    case 'p': return "ol";
    case 'a': return "qwsz";
    case 's': return "awedxz";
    case 'd': return "serfcx";
    case 'f': return "drtgvc";
    case 'g': return "ftyhbv";
    case 'h': return "gyujnb";
    case 'j': return "huikmn";
    case 'k': return "jiolm";
    case 'l': return "kop";
    case 'z': return "asx";
    case 'x': return "zsdc";
    case 'c': return "xdfv";
    case 'v': return "cfgb";
    case 'b': return "vghn";
    case 'n': return "bhjm";
    case 'm': return "njk";
    default: return "";
  }
}

char RandomKeyboardNeighbor(char c, Rng& rng) {
  std::string neighbors = KeyboardNeighbors(c);
  if (neighbors.empty()) {
    for (;;) {
      char r = static_cast<char>('a' + rng.Uniform(26));
      if (r != c) return r;
    }
  }
  return neighbors[rng.Uniform(neighbors.size())];
}

}  // namespace xclean
