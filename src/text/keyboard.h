#ifndef XCLEAN_TEXT_KEYBOARD_H_
#define XCLEAN_TEXT_KEYBOARD_H_

#include <string>

#include "common/random.h"

namespace xclean {

/// QWERTY adjacency used by the synthetic workload generators: real typists
/// substitute neighbouring keys far more often than random letters, and the
/// paper's RAND perturbation is meant to model typographical slips.
///
/// Returns the neighbouring keys of a lowercase letter ('q' -> "wa", ...).
/// Empty for non-letters.
std::string KeyboardNeighbors(char c);

/// A random neighbouring key of `c`; if `c` has no neighbours, a random
/// lowercase letter different from `c`.
char RandomKeyboardNeighbor(char c, Rng& rng);

}  // namespace xclean

#endif  // XCLEAN_TEXT_KEYBOARD_H_
