#ifndef XCLEAN_TEXT_SOUNDEX_H_
#define XCLEAN_TEXT_SOUNDEX_H_

#include <string>
#include <string_view>

namespace xclean {

/// American Soundex code ("R163" style) of a word. Non-alphabetic
/// characters are ignored; an empty/non-alphabetic input yields "".
///
/// This implements the cognitive-error extension the paper sketches in
/// Sec. VI-A: defining var(q) by phonetic equivalence instead of (or in
/// addition to) edit distance. core/variant_gen can union soundex-equal
/// vocabulary tokens into the variant set.
std::string Soundex(std::string_view word);

/// True if the two words share a Soundex code (and both have one).
bool SoundexEqual(std::string_view a, std::string_view b);

}  // namespace xclean

#endif  // XCLEAN_TEXT_SOUNDEX_H_
