#ifndef XCLEAN_TEXT_FASTSS_H_
#define XCLEAN_TEXT_FASTSS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xclean {

class ThreadPool;

/// Partitioned FastSS index for approximate string matching under an edit
/// distance constraint (Sec. V-A of the paper, citing the FastSS family).
///
/// Principle: if ed(s, t) <= k then deleting at most k characters from each
/// yields a common string, so the k-deletion neighborhoods of s and t
/// intersect. We index every vocabulary token's deletion neighborhood and,
/// at query time, probe with the query's neighborhood; survivors are
/// verified with a banded edit distance computation.
///
/// Partitioning: the deletion neighborhood grows as O(l^k), so for long
/// tokens the index instead stores the floor(k/2)-deletion neighborhoods of
/// the token's two halves. If ed(q, w) <= k, the optimal alignment splits q
/// so that one half pair has edit distance <= floor(k/2) (pigeonhole), hence
/// probing all plausible splits of q against the half indexes is complete.
/// This gives the paper's O(min(l^eps, eps^2 * l_p) * |V|) space behaviour.
///
/// Implementation notes (database-engine idioms):
///  - neighborhood variants are stored as 64-bit hashes in one sorted flat
///    array of (hash, word_id) pairs: ~12 bytes per posting, binary-searched
///    at query time; hash collisions only cost a wasted verification,
///  - the index is built once and frozen (Build), matching the offline
///    index construction in the paper.
class FastSsIndex {
 public:
  struct Options {
    /// Maximum edit distance the index can answer ("eps" in the paper).
    uint32_t max_ed = 2;
    /// Tokens at least this long use the partitioned representation.
    size_t partition_min_length = 13;
  };

  struct Match {
    uint32_t word_id;
    uint32_t distance;
  };

  FastSsIndex();
  explicit FastSsIndex(Options options);

  /// Indexes all words; words get dense ids [0, words.size()) in order.
  /// Must be called exactly once.
  void Build(const std::vector<std::string>& words);

  /// Same, generating deletion neighborhoods in parallel over contiguous
  /// vocabulary shards on `pool` (nullptr = serial). The shard outputs are
  /// merged in word-id order and sorted with a total order whose ties are
  /// bit-identical entries, so the resulting index — and its serialized
  /// form — is byte-identical for every thread count.
  void Build(const std::vector<std::string>& words, ThreadPool* pool);

  /// All indexed words within edit distance max_ed of `query`, unordered.
  /// Requires max_ed <= options().max_ed and Build() to have run.
  std::vector<Match> Find(std::string_view query, uint32_t max_ed) const;

  const std::string& word(uint32_t id) const { return words_[id]; }
  size_t size() const { return words_.size(); }
  const Options& options() const { return options_; }

  /// Number of (hash, id) postings — exposed for space accounting in the
  /// micro benchmarks.
  size_t posting_count() const { return postings_.size(); }

  /// Approximate resident bytes (posting array + word copies).
  uint64_t ApproxMemoryBytes() const;

  /// Generates the distinct strings obtainable from `word` by deleting at
  /// most max_deletions characters (includes the word itself). Public for
  /// tests and benchmarks.
  static std::vector<std::string> DeletionNeighborhood(
      std::string_view word, uint32_t max_deletions);

 private:
  friend struct SerializationAccess;  // index/index_io.cc

  struct Posting {
    uint64_t hash;
    uint32_t word_id;
  };

  enum class Tag : uint8_t { kWhole = 0, kLeft = 1, kRight = 2 };

  static uint64_t HashVariant(Tag tag, std::string_view variant);
  static void EmitNeighborhood(Tag tag, std::string_view piece,
                               uint32_t max_deletions, uint32_t word_id,
                               std::vector<Posting>& out);
  /// Emits the (possibly partitioned) neighborhood of one word into `out`;
  /// returns true when the word used the partitioned layout.
  bool EmitWord(uint32_t word_id, std::vector<Posting>& out) const;
  void ProbeNeighborhood(Tag tag, std::string_view piece,
                         uint32_t max_deletions,
                         std::vector<uint32_t>& candidates) const;
  void ProbeHash(uint64_t hash, std::vector<uint32_t>& candidates) const;

  /// Bucket directory over the top kBucketBits hash bits: probes binary-
  /// search one bucket instead of the whole posting array. Rebuilt (not
  /// serialized) after Build() and after deserialization.
  void FinalizeBuckets();

  static constexpr uint32_t kBucketBits = 16;
  static constexpr size_t kNumBuckets = size_t{1} << kBucketBits;

  Options options_;
  std::vector<std::string> words_;
  std::vector<Posting> postings_;
  /// bucket_start_[b] = first posting whose hash's top bits are >= b;
  /// size kNumBuckets + 1 (empty until FinalizeBuckets runs).
  std::vector<uint32_t> bucket_start_;
  bool built_ = false;
  bool has_partitioned_ = false;
};

}  // namespace xclean

#endif  // XCLEAN_TEXT_FASTSS_H_
