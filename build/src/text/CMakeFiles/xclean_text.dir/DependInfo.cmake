
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/edit_distance.cc" "src/text/CMakeFiles/xclean_text.dir/edit_distance.cc.o" "gcc" "src/text/CMakeFiles/xclean_text.dir/edit_distance.cc.o.d"
  "/root/repo/src/text/fastss.cc" "src/text/CMakeFiles/xclean_text.dir/fastss.cc.o" "gcc" "src/text/CMakeFiles/xclean_text.dir/fastss.cc.o.d"
  "/root/repo/src/text/keyboard.cc" "src/text/CMakeFiles/xclean_text.dir/keyboard.cc.o" "gcc" "src/text/CMakeFiles/xclean_text.dir/keyboard.cc.o.d"
  "/root/repo/src/text/soundex.cc" "src/text/CMakeFiles/xclean_text.dir/soundex.cc.o" "gcc" "src/text/CMakeFiles/xclean_text.dir/soundex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
