# Empty dependencies file for xclean_text.
# This may be replaced when dependencies are built.
