file(REMOVE_RECURSE
  "libxclean_text.a"
)
