file(REMOVE_RECURSE
  "CMakeFiles/xclean_text.dir/edit_distance.cc.o"
  "CMakeFiles/xclean_text.dir/edit_distance.cc.o.d"
  "CMakeFiles/xclean_text.dir/fastss.cc.o"
  "CMakeFiles/xclean_text.dir/fastss.cc.o.d"
  "CMakeFiles/xclean_text.dir/keyboard.cc.o"
  "CMakeFiles/xclean_text.dir/keyboard.cc.o.d"
  "CMakeFiles/xclean_text.dir/soundex.cc.o"
  "CMakeFiles/xclean_text.dir/soundex.cc.o.d"
  "libxclean_text.a"
  "libxclean_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
