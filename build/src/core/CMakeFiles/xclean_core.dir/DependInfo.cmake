
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accumulator.cc" "src/core/CMakeFiles/xclean_core.dir/accumulator.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/accumulator.cc.o.d"
  "/root/repo/src/core/elca.cc" "src/core/CMakeFiles/xclean_core.dir/elca.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/elca.cc.o.d"
  "/root/repo/src/core/log_correct.cc" "src/core/CMakeFiles/xclean_core.dir/log_correct.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/log_correct.cc.o.d"
  "/root/repo/src/core/naive.cc" "src/core/CMakeFiles/xclean_core.dir/naive.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/naive.cc.o.d"
  "/root/repo/src/core/prior.cc" "src/core/CMakeFiles/xclean_core.dir/prior.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/prior.cc.o.d"
  "/root/repo/src/core/py08.cc" "src/core/CMakeFiles/xclean_core.dir/py08.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/py08.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/xclean_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/query.cc.o.d"
  "/root/repo/src/core/slca.cc" "src/core/CMakeFiles/xclean_core.dir/slca.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/slca.cc.o.d"
  "/root/repo/src/core/space_edit.cc" "src/core/CMakeFiles/xclean_core.dir/space_edit.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/space_edit.cc.o.d"
  "/root/repo/src/core/suggester.cc" "src/core/CMakeFiles/xclean_core.dir/suggester.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/suggester.cc.o.d"
  "/root/repo/src/core/variant_gen.cc" "src/core/CMakeFiles/xclean_core.dir/variant_gen.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/variant_gen.cc.o.d"
  "/root/repo/src/core/xclean.cc" "src/core/CMakeFiles/xclean_core.dir/xclean.cc.o" "gcc" "src/core/CMakeFiles/xclean_core.dir/xclean.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xclean_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xclean_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/xclean_text.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/xclean_index.dir/DependInfo.cmake"
  "/root/repo/build/src/lm/CMakeFiles/xclean_lm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
