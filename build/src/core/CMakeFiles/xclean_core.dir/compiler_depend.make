# Empty compiler generated dependencies file for xclean_core.
# This may be replaced when dependencies are built.
