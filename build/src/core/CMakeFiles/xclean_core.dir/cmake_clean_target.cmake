file(REMOVE_RECURSE
  "libxclean_core.a"
)
