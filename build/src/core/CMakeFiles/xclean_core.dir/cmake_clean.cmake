file(REMOVE_RECURSE
  "CMakeFiles/xclean_core.dir/accumulator.cc.o"
  "CMakeFiles/xclean_core.dir/accumulator.cc.o.d"
  "CMakeFiles/xclean_core.dir/elca.cc.o"
  "CMakeFiles/xclean_core.dir/elca.cc.o.d"
  "CMakeFiles/xclean_core.dir/log_correct.cc.o"
  "CMakeFiles/xclean_core.dir/log_correct.cc.o.d"
  "CMakeFiles/xclean_core.dir/naive.cc.o"
  "CMakeFiles/xclean_core.dir/naive.cc.o.d"
  "CMakeFiles/xclean_core.dir/prior.cc.o"
  "CMakeFiles/xclean_core.dir/prior.cc.o.d"
  "CMakeFiles/xclean_core.dir/py08.cc.o"
  "CMakeFiles/xclean_core.dir/py08.cc.o.d"
  "CMakeFiles/xclean_core.dir/query.cc.o"
  "CMakeFiles/xclean_core.dir/query.cc.o.d"
  "CMakeFiles/xclean_core.dir/slca.cc.o"
  "CMakeFiles/xclean_core.dir/slca.cc.o.d"
  "CMakeFiles/xclean_core.dir/space_edit.cc.o"
  "CMakeFiles/xclean_core.dir/space_edit.cc.o.d"
  "CMakeFiles/xclean_core.dir/suggester.cc.o"
  "CMakeFiles/xclean_core.dir/suggester.cc.o.d"
  "CMakeFiles/xclean_core.dir/variant_gen.cc.o"
  "CMakeFiles/xclean_core.dir/variant_gen.cc.o.d"
  "CMakeFiles/xclean_core.dir/xclean.cc.o"
  "CMakeFiles/xclean_core.dir/xclean.cc.o.d"
  "libxclean_core.a"
  "libxclean_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
