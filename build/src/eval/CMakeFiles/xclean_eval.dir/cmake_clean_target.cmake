file(REMOVE_RECURSE
  "libxclean_eval.a"
)
