file(REMOVE_RECURSE
  "CMakeFiles/xclean_eval.dir/experiment.cc.o"
  "CMakeFiles/xclean_eval.dir/experiment.cc.o.d"
  "CMakeFiles/xclean_eval.dir/metrics.cc.o"
  "CMakeFiles/xclean_eval.dir/metrics.cc.o.d"
  "libxclean_eval.a"
  "libxclean_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
