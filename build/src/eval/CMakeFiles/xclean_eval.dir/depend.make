# Empty dependencies file for xclean_eval.
# This may be replaced when dependencies are built.
