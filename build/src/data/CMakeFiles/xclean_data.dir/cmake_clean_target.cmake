file(REMOVE_RECURSE
  "libxclean_data.a"
)
