file(REMOVE_RECURSE
  "CMakeFiles/xclean_data.dir/dblp_gen.cc.o"
  "CMakeFiles/xclean_data.dir/dblp_gen.cc.o.d"
  "CMakeFiles/xclean_data.dir/inex_gen.cc.o"
  "CMakeFiles/xclean_data.dir/inex_gen.cc.o.d"
  "CMakeFiles/xclean_data.dir/misspell.cc.o"
  "CMakeFiles/xclean_data.dir/misspell.cc.o.d"
  "CMakeFiles/xclean_data.dir/wordlist.cc.o"
  "CMakeFiles/xclean_data.dir/wordlist.cc.o.d"
  "CMakeFiles/xclean_data.dir/workload.cc.o"
  "CMakeFiles/xclean_data.dir/workload.cc.o.d"
  "libxclean_data.a"
  "libxclean_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
