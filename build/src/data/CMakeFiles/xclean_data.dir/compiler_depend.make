# Empty compiler generated dependencies file for xclean_data.
# This may be replaced when dependencies are built.
