file(REMOVE_RECURSE
  "libxclean_common.a"
)
