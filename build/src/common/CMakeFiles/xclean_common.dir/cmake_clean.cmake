file(REMOVE_RECURSE
  "CMakeFiles/xclean_common.dir/random.cc.o"
  "CMakeFiles/xclean_common.dir/random.cc.o.d"
  "CMakeFiles/xclean_common.dir/status.cc.o"
  "CMakeFiles/xclean_common.dir/status.cc.o.d"
  "CMakeFiles/xclean_common.dir/string_util.cc.o"
  "CMakeFiles/xclean_common.dir/string_util.cc.o.d"
  "libxclean_common.a"
  "libxclean_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
