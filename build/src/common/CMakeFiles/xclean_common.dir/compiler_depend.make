# Empty compiler generated dependencies file for xclean_common.
# This may be replaced when dependencies are built.
