# Empty dependencies file for xclean_lm.
# This may be replaced when dependencies are built.
