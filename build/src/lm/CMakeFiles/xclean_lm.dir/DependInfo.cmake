
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lm/error_model.cc" "src/lm/CMakeFiles/xclean_lm.dir/error_model.cc.o" "gcc" "src/lm/CMakeFiles/xclean_lm.dir/error_model.cc.o.d"
  "/root/repo/src/lm/result_type.cc" "src/lm/CMakeFiles/xclean_lm.dir/result_type.cc.o" "gcc" "src/lm/CMakeFiles/xclean_lm.dir/result_type.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xclean_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/xclean_index.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/xclean_text.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xclean_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
