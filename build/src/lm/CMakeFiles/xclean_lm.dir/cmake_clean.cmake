file(REMOVE_RECURSE
  "CMakeFiles/xclean_lm.dir/error_model.cc.o"
  "CMakeFiles/xclean_lm.dir/error_model.cc.o.d"
  "CMakeFiles/xclean_lm.dir/result_type.cc.o"
  "CMakeFiles/xclean_lm.dir/result_type.cc.o.d"
  "libxclean_lm.a"
  "libxclean_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
