file(REMOVE_RECURSE
  "libxclean_lm.a"
)
