file(REMOVE_RECURSE
  "libxclean_xml.a"
)
