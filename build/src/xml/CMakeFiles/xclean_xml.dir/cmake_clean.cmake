file(REMOVE_RECURSE
  "CMakeFiles/xclean_xml.dir/dewey.cc.o"
  "CMakeFiles/xclean_xml.dir/dewey.cc.o.d"
  "CMakeFiles/xclean_xml.dir/parser.cc.o"
  "CMakeFiles/xclean_xml.dir/parser.cc.o.d"
  "CMakeFiles/xclean_xml.dir/tokenizer.cc.o"
  "CMakeFiles/xclean_xml.dir/tokenizer.cc.o.d"
  "CMakeFiles/xclean_xml.dir/tree.cc.o"
  "CMakeFiles/xclean_xml.dir/tree.cc.o.d"
  "CMakeFiles/xclean_xml.dir/writer.cc.o"
  "CMakeFiles/xclean_xml.dir/writer.cc.o.d"
  "libxclean_xml.a"
  "libxclean_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
