# Empty dependencies file for xclean_xml.
# This may be replaced when dependencies are built.
