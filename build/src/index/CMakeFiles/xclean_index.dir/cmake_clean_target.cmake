file(REMOVE_RECURSE
  "libxclean_index.a"
)
