# Empty compiler generated dependencies file for xclean_index.
# This may be replaced when dependencies are built.
