file(REMOVE_RECURSE
  "CMakeFiles/xclean_index.dir/index_io.cc.o"
  "CMakeFiles/xclean_index.dir/index_io.cc.o.d"
  "CMakeFiles/xclean_index.dir/merged_list.cc.o"
  "CMakeFiles/xclean_index.dir/merged_list.cc.o.d"
  "CMakeFiles/xclean_index.dir/postings.cc.o"
  "CMakeFiles/xclean_index.dir/postings.cc.o.d"
  "CMakeFiles/xclean_index.dir/vocabulary.cc.o"
  "CMakeFiles/xclean_index.dir/vocabulary.cc.o.d"
  "CMakeFiles/xclean_index.dir/xml_index.cc.o"
  "CMakeFiles/xclean_index.dir/xml_index.cc.o.d"
  "libxclean_index.a"
  "libxclean_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
