
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/index_io.cc" "src/index/CMakeFiles/xclean_index.dir/index_io.cc.o" "gcc" "src/index/CMakeFiles/xclean_index.dir/index_io.cc.o.d"
  "/root/repo/src/index/merged_list.cc" "src/index/CMakeFiles/xclean_index.dir/merged_list.cc.o" "gcc" "src/index/CMakeFiles/xclean_index.dir/merged_list.cc.o.d"
  "/root/repo/src/index/postings.cc" "src/index/CMakeFiles/xclean_index.dir/postings.cc.o" "gcc" "src/index/CMakeFiles/xclean_index.dir/postings.cc.o.d"
  "/root/repo/src/index/vocabulary.cc" "src/index/CMakeFiles/xclean_index.dir/vocabulary.cc.o" "gcc" "src/index/CMakeFiles/xclean_index.dir/vocabulary.cc.o.d"
  "/root/repo/src/index/xml_index.cc" "src/index/CMakeFiles/xclean_index.dir/xml_index.cc.o" "gcc" "src/index/CMakeFiles/xclean_index.dir/xml_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xclean_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xclean_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/xclean_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
