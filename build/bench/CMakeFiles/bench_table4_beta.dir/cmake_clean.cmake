file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_beta.dir/bench_table4_beta.cc.o"
  "CMakeFiles/bench_table4_beta.dir/bench_table4_beta.cc.o.d"
  "bench_table4_beta"
  "bench_table4_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
