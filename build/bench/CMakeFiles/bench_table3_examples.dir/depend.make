# Empty dependencies file for bench_table3_examples.
# This may be replaced when dependencies are built.
