# Empty compiler generated dependencies file for bench_table5_gamma.
# This may be replaced when dependencies are built.
