file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_gamma.dir/bench_table5_gamma.cc.o"
  "CMakeFiles/bench_table5_gamma.dir/bench_table5_gamma.cc.o.d"
  "bench_table5_gamma"
  "bench_table5_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
