file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mrr.dir/bench_fig3_mrr.cc.o"
  "CMakeFiles/bench_fig3_mrr.dir/bench_fig3_mrr.cc.o.d"
  "bench_fig3_mrr"
  "bench_fig3_mrr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
