# Empty dependencies file for bench_fig3_mrr.
# This may be replaced when dependencies are built.
