file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_precision.dir/bench_fig4_precision.cc.o"
  "CMakeFiles/bench_fig4_precision.dir/bench_fig4_precision.cc.o.d"
  "bench_fig4_precision"
  "bench_fig4_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
