# Empty dependencies file for xclean_bench_common.
# This may be replaced when dependencies are built.
