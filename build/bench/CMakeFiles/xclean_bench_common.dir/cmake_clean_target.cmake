file(REMOVE_RECURSE
  "libxclean_bench_common.a"
)
