file(REMOVE_RECURSE
  "CMakeFiles/xclean_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/xclean_bench_common.dir/bench_common.cc.o.d"
  "libxclean_bench_common.a"
  "libxclean_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
