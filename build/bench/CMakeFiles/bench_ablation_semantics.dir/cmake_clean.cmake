file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_semantics.dir/bench_ablation_semantics.cc.o"
  "CMakeFiles/bench_ablation_semantics.dir/bench_ablation_semantics.cc.o.d"
  "bench_ablation_semantics"
  "bench_ablation_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
