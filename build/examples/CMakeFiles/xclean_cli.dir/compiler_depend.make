# Empty compiler generated dependencies file for xclean_cli.
# This may be replaced when dependencies are built.
