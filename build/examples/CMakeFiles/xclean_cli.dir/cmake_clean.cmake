file(REMOVE_RECURSE
  "CMakeFiles/xclean_cli.dir/xclean_cli.cpp.o"
  "CMakeFiles/xclean_cli.dir/xclean_cli.cpp.o.d"
  "xclean_cli"
  "xclean_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
