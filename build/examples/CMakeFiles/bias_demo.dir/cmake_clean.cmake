file(REMOVE_RECURSE
  "CMakeFiles/bias_demo.dir/bias_demo.cpp.o"
  "CMakeFiles/bias_demo.dir/bias_demo.cpp.o.d"
  "bias_demo"
  "bias_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bias_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
