# Empty compiler generated dependencies file for bias_demo.
# This may be replaced when dependencies are built.
