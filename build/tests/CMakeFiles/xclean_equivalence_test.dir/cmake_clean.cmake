file(REMOVE_RECURSE
  "CMakeFiles/xclean_equivalence_test.dir/xclean_equivalence_test.cc.o"
  "CMakeFiles/xclean_equivalence_test.dir/xclean_equivalence_test.cc.o.d"
  "xclean_equivalence_test"
  "xclean_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
