file(REMOVE_RECURSE
  "CMakeFiles/suggester_test.dir/suggester_test.cc.o"
  "CMakeFiles/suggester_test.dir/suggester_test.cc.o.d"
  "suggester_test"
  "suggester_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suggester_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
