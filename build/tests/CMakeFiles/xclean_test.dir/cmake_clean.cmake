file(REMOVE_RECURSE
  "CMakeFiles/xclean_test.dir/xclean_test.cc.o"
  "CMakeFiles/xclean_test.dir/xclean_test.cc.o.d"
  "xclean_test"
  "xclean_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xclean_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
