# Empty compiler generated dependencies file for xclean_test.
# This may be replaced when dependencies are built.
