# Empty dependencies file for result_type_test.
# This may be replaced when dependencies are built.
