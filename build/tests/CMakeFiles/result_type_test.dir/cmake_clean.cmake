file(REMOVE_RECURSE
  "CMakeFiles/result_type_test.dir/result_type_test.cc.o"
  "CMakeFiles/result_type_test.dir/result_type_test.cc.o.d"
  "result_type_test"
  "result_type_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
