# Empty dependencies file for py08_test.
# This may be replaced when dependencies are built.
