file(REMOVE_RECURSE
  "CMakeFiles/py08_test.dir/py08_test.cc.o"
  "CMakeFiles/py08_test.dir/py08_test.cc.o.d"
  "py08_test"
  "py08_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/py08_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
