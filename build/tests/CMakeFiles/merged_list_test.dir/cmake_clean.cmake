file(REMOVE_RECURSE
  "CMakeFiles/merged_list_test.dir/merged_list_test.cc.o"
  "CMakeFiles/merged_list_test.dir/merged_list_test.cc.o.d"
  "merged_list_test"
  "merged_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merged_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
