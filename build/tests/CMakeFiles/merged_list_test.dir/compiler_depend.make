# Empty compiler generated dependencies file for merged_list_test.
# This may be replaced when dependencies are built.
