# Empty dependencies file for slca_test.
# This may be replaced when dependencies are built.
