file(REMOVE_RECURSE
  "CMakeFiles/space_edit_test.dir/space_edit_test.cc.o"
  "CMakeFiles/space_edit_test.dir/space_edit_test.cc.o.d"
  "space_edit_test"
  "space_edit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_edit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
