file(REMOVE_RECURSE
  "CMakeFiles/soundex_test.dir/soundex_test.cc.o"
  "CMakeFiles/soundex_test.dir/soundex_test.cc.o.d"
  "soundex_test"
  "soundex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soundex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
