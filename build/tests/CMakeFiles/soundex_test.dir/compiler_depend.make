# Empty compiler generated dependencies file for soundex_test.
# This may be replaced when dependencies are built.
