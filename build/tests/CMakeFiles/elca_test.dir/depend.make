# Empty dependencies file for elca_test.
# This may be replaced when dependencies are built.
