file(REMOVE_RECURSE
  "CMakeFiles/elca_test.dir/elca_test.cc.o"
  "CMakeFiles/elca_test.dir/elca_test.cc.o.d"
  "elca_test"
  "elca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
