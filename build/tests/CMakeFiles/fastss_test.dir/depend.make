# Empty dependencies file for fastss_test.
# This may be replaced when dependencies are built.
