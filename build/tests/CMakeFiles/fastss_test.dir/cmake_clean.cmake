file(REMOVE_RECURSE
  "CMakeFiles/fastss_test.dir/fastss_test.cc.o"
  "CMakeFiles/fastss_test.dir/fastss_test.cc.o.d"
  "fastss_test"
  "fastss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
