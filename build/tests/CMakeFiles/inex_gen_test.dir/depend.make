# Empty dependencies file for inex_gen_test.
# This may be replaced when dependencies are built.
