file(REMOVE_RECURSE
  "CMakeFiles/inex_gen_test.dir/inex_gen_test.cc.o"
  "CMakeFiles/inex_gen_test.dir/inex_gen_test.cc.o.d"
  "inex_gen_test"
  "inex_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inex_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
