
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/log_correct_test.cc" "tests/CMakeFiles/log_correct_test.dir/log_correct_test.cc.o" "gcc" "tests/CMakeFiles/log_correct_test.dir/log_correct_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/xclean_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/xclean_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xclean_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lm/CMakeFiles/xclean_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/xclean_index.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/xclean_text.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xclean_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
