file(REMOVE_RECURSE
  "CMakeFiles/log_correct_test.dir/log_correct_test.cc.o"
  "CMakeFiles/log_correct_test.dir/log_correct_test.cc.o.d"
  "log_correct_test"
  "log_correct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_correct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
