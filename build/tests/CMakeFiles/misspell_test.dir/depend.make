# Empty dependencies file for misspell_test.
# This may be replaced when dependencies are built.
