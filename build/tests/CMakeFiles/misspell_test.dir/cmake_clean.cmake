file(REMOVE_RECURSE
  "CMakeFiles/misspell_test.dir/misspell_test.cc.o"
  "CMakeFiles/misspell_test.dir/misspell_test.cc.o.d"
  "misspell_test"
  "misspell_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misspell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
