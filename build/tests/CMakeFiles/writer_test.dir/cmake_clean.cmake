file(REMOVE_RECURSE
  "CMakeFiles/writer_test.dir/writer_test.cc.o"
  "CMakeFiles/writer_test.dir/writer_test.cc.o.d"
  "writer_test"
  "writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
