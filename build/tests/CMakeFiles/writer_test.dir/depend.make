# Empty dependencies file for writer_test.
# This may be replaced when dependencies are built.
