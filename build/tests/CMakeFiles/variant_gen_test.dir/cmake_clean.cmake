file(REMOVE_RECURSE
  "CMakeFiles/variant_gen_test.dir/variant_gen_test.cc.o"
  "CMakeFiles/variant_gen_test.dir/variant_gen_test.cc.o.d"
  "variant_gen_test"
  "variant_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
