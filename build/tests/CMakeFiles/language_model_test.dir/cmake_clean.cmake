file(REMOVE_RECURSE
  "CMakeFiles/language_model_test.dir/language_model_test.cc.o"
  "CMakeFiles/language_model_test.dir/language_model_test.cc.o.d"
  "language_model_test"
  "language_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/language_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
