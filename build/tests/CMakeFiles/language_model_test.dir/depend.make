# Empty dependencies file for language_model_test.
# This may be replaced when dependencies are built.
