# Empty dependencies file for wordlist_test.
# This may be replaced when dependencies are built.
