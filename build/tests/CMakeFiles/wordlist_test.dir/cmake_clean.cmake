file(REMOVE_RECURSE
  "CMakeFiles/wordlist_test.dir/wordlist_test.cc.o"
  "CMakeFiles/wordlist_test.dir/wordlist_test.cc.o.d"
  "wordlist_test"
  "wordlist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
