// Reproduces Table III of the paper: qualitative example of PY08's
// suggestions vs XClean's for the same dirty query, showing the
// rare-token bias ("PY08 tends to suggest rare tokens ... and does not
// consider if the suggested query has any result").
//
// We pick dirty queries from the DBLP-RULE set where the two systems
// disagree, and print the top suggestions of each, annotated with whether
// the suggestion has any result in the database.

#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"

using namespace xclean;
using namespace xclean::bench;

namespace {

/// True if some depth-2 record contains all the suggestion's words.
bool HasResults(const XmlIndex& index, const Suggestion& s) {
  const XmlTree& tree = index.tree();
  std::vector<TokenId> tokens;
  for (const std::string& w : s.words) {
    TokenId t = index.vocabulary().Find(w);
    if (t == kInvalidToken) return false;
    tokens.push_back(t);
  }
  if (tokens.empty()) return false;
  // Scan the rarest token's postings, check the others per record.
  size_t rarest = 0;
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (index.postings(tokens[i]).size() <
        index.postings(tokens[rarest]).size()) {
      rarest = i;
    }
  }
  for (const Posting& p : index.postings(tokens[rarest])) {
    if (tree.depth(p.node) < 2) continue;
    NodeId record = tree.AncestorAtDepth(p.node, 2);
    bool all = true;
    for (TokenId t : tokens) {
      bool found = false;
      for (const Posting& q : index.postings(t)) {
        if (q.node >= record && q.node <= tree.subtree_end(record)) {
          found = true;
          break;
        }
      }
      if (!found) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

void PrintSide(const XmlIndex& index, const char* name,
               const std::vector<Suggestion>& list) {
  std::printf("  %s:\n", name);
  if (list.empty()) {
    std::printf("    (no suggestions)\n");
    return;
  }
  for (size_t i = 0; i < list.size() && i < 3; ++i) {
    std::printf("    %zu. %-40s [results: %s]\n", i + 1,
                list[i].ToString().c_str(),
                HasResults(index, list[i]) ? "yes" : "NO");
  }
}

}  // namespace

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  Corpus dblp = BuildDblpCorpus(config);

  std::printf("== Table III: example suggestions, PY08 vs XClean ==\n");
  int shown = 0;
  for (const EvalQuery& eq : dblp.rule.queries) {
    if (shown >= 4) break;
    Perturbation p = Perturbation::kRule;
    XClean xclean_cleaner(*dblp.index, MakeXCleanOptions(p));
    Py08Cleaner py08(*dblp.index, MakePy08Options(p));
    auto sx = xclean_cleaner.Suggest(eq.dirty);
    auto sp = py08.Suggest(eq.dirty);
    size_t rank_x = RankOfTruth(sx, eq.truth);
    size_t rank_p = RankOfTruth(sp, eq.truth);
    // Interesting rows: XClean finds the truth at the top, PY08 does not.
    if (rank_x != 1 || rank_p == 1) continue;
    ++shown;
    std::printf("\nquery: \"%s\"   (intended: \"%s\")\n",
                eq.dirty.ToString().c_str(), eq.truth.ToString().c_str());
    PrintSide(*dblp.index, "PY08", sp);
    PrintSide(*dblp.index, "XClean", sx);
  }
  if (shown == 0) {
    std::printf("\n(no disagreement found at this scale — rerun without "
                "XCLEAN_BENCH_SMALL)\n");
  }
  std::printf(
      "\npaper shape: PY08's top suggestions favor rare tokens and often "
      "have\nno results; XClean's always do.\n");
  return 0;
}
