// Reproduces Table V of the paper: MRR as a function of the number of
// in-memory accumulators gamma, for XClean and PY08 (where gamma is the
// number of top segments per partial query), beta = 5.
//
// Paper reference values (Table V): XClean's quality saturates by
// gamma ~ 1000 (earlier on the small-candidate-space sets); small gamma
// hurts most where the candidate space is large (the RULE sets). PY08
// peaks around gamma = 100.

#include <cstdio>

#include "bench_common.h"
#include "eval/experiment.h"

using namespace xclean;
using namespace xclean::bench;

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  std::vector<Corpus> corpora;
  corpora.push_back(BuildDblpCorpus(config));
  corpora.push_back(BuildInexCorpus(config));

  const size_t gammas[] = {1, 2, 5, 10, 1000};

  for (const char* system : {"XClean", "PY08"}) {
    std::printf("== Table V (%s): MRR vs gamma (beta=5) ==\n", system);
    TablePrinter table({"query set", "g=1", "g=2", "g=5", "g=10", "g=1000"});
    table.PrintHeader();
    for (const Corpus& corpus : corpora) {
      for (Perturbation p : {Perturbation::kRand, Perturbation::kRule,
                             Perturbation::kClean}) {
        const QuerySet& set = corpus.set(p);
        std::vector<std::string> row = {set.name};
        for (size_t gamma : gammas) {
          double mrr;
          if (std::string(system) == "XClean") {
            XClean cleaner(*corpus.index, MakeXCleanOptions(p, gamma));
            mrr = RunExperiment(cleaner, set).mrr;
          } else {
            Py08Cleaner cleaner(*corpus.index, MakePy08Options(p, gamma));
            mrr = RunExperiment(cleaner, set).mrr;
          }
          row.push_back(TablePrinter::Num(mrr));
        }
        table.PrintRow(row);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: quality improves with gamma and then saturates, with "
      "the\nRULE sets (largest candidate spaces) most sensitive. At the "
      "paper's\ncorpus scale saturation needs gamma ~ 1000; our effective "
      "candidate\nspaces are smaller, so it arrives by gamma ~ 5-10 — same "
      "curve,\ncompressed x-axis.\n");
  return 0;
}
