// Scaling extension (not a paper table): per-query latency and index build
// time as the corpus grows. The paper's Table VI gap between XClean's
// single skip-based pass and PY08's repeated full-list passes is a
// function of posting-list length; this bench shows the trend line that
// extrapolates to the paper's GB-scale setting.

#include <cstdio>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "common/timer.h"
#include "data/dblp_gen.h"
#include "eval/experiment.h"
#include "index/index_io.h"

using namespace xclean;
using namespace xclean::bench;

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  const uint32_t sizes_full[] = {5000, 10000, 20000, 40000};
  const uint32_t sizes_small[] = {1000, 2000, 4000, 8000};
  const bool small = config.dblp_publications < 10000;

  std::printf("== Scaling: DBLP-like corpus size vs build & query time ==\n");
  TablePrinter table({"#pubs", "#nodes", "build s", "XClean ms", "PY08 ms",
                      "XClean MRR", "PY08 MRR"});
  table.PrintHeader();

  for (uint32_t pubs : (small ? sizes_small : sizes_full)) {
    DblpGenOptions gen;
    gen.num_publications = pubs;
    gen.content_typo_rate = config.dblp_typo_rate;
    gen.seed = config.seed;
    IndexOptions index_options;
    index_options.fastss_max_ed = config.fastss_max_ed;
    Stopwatch build_watch;
    XmlTree tree = GenerateDblp(gen);
    build_watch.Restart();
    auto index = XmlIndex::Build(std::move(tree), index_options);
    double build_seconds = build_watch.ElapsedSeconds();

    WorkloadOptions wo;
    wo.num_queries = 60;
    wo.seed = config.seed;
    std::vector<Query> initial = SampleInitialQueries(*index, wo);
    QuerySet set =
        MakeQuerySet("RAND", *index, initial, Perturbation::kRand, wo);

    XClean xclean_cleaner(*index, MakeXCleanOptions(Perturbation::kRand));
    Py08Cleaner py08(*index, MakePy08Options(Perturbation::kRand));
    ExperimentResult rx = RunExperiment(xclean_cleaner, set);
    ExperimentResult rp = RunExperiment(py08, set);

    table.PrintRow({std::to_string(pubs), std::to_string(index->tree().size()),
                    TablePrinter::Num(build_seconds),
                    TablePrinter::Num(rx.avg_seconds * 1e3),
                    TablePrinter::Num(rp.avg_seconds * 1e3),
                    TablePrinter::Num(rx.mrr), TablePrinter::Num(rp.mrr)});
  }
  std::printf(
      "\nexpected trend: PY08's latency grows with list length faster than\n"
      "XClean's skip-based pass; quality is size-stable for XClean while\n"
      "PY08 degrades as rare trap tokens accumulate.\n");

  // Parallel build scaling on one fixed corpus: wall-clock, speedup over
  // the serial build, and whether the snapshot stays byte-identical (the
  // determinism guarantee of the pipeline, asserted here too, not just in
  // the tests).
  std::printf("\n== Parallel index build: threads vs wall-clock ==\n");
  {
    DblpGenOptions gen;
    gen.num_publications = small ? 8000 : 40000;
    gen.content_typo_rate = config.dblp_typo_rate;
    gen.seed = config.seed;
    IndexOptions index_options;
    index_options.fastss_max_ed = config.fastss_max_ed;

    TablePrinter build_table(
        {"threads", "build s", "speedup", "bytes == serial"});
    build_table.PrintHeader();
    double serial_seconds = 0.0;
    std::string serial_bytes;
    std::string v1_bytes;
    for (size_t threads : {1, 2, 4, 8}) {
      index_options.build_threads = threads;
      XmlTree tree = GenerateDblp(gen);
      Stopwatch watch;
      auto index = XmlIndex::Build(std::move(tree), index_options);
      double seconds = watch.ElapsedSeconds();

      std::ostringstream snapshot;
      SaveIndex(*index, snapshot);
      if (threads == 1) {
        serial_seconds = seconds;
        serial_bytes = snapshot.str();
        std::ostringstream v1;
        SaveIndex(*index, v1,
                  IndexSaveOptions{.format_version = kIndexFormatV1});
        v1_bytes = v1.str();
      }
      build_table.PrintRow(
          {std::to_string(threads), TablePrinter::Num(seconds),
           TablePrinter::Num(serial_seconds / seconds),
           snapshot.str() == serial_bytes ? "yes" : "NO (BUG)"});
    }

    std::printf(
        "\n== Snapshot size: v1 (raw structs) vs v2 (varint+delta) ==\n");
    TablePrinter size_table({"format", "bytes", "vs v1"});
    size_table.PrintHeader();
    size_table.PrintRow({"v1", std::to_string(v1_bytes.size()),
                         TablePrinter::Num(1.0)});
    size_table.PrintRow(
        {"v2", std::to_string(serial_bytes.size()),
         TablePrinter::Num(static_cast<double>(serial_bytes.size()) /
                           static_cast<double>(v1_bytes.size()))});
  }
  return 0;
}
