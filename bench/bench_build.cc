// Build-throughput benchmarks (google-benchmark): index construction at
// 1/2/4/8 threads, snapshot save/load in both format versions, and the
// durable-publish path (manifest journal + atomic rename, with and without
// fsync) against the plain file write it wraps — the overhead of crash
// safety is a first-class number, not a guess. The CI bench-smoke job runs
// this on a tiny corpus (XCLEAN_BENCH_SMALL=1) with
// --benchmark_format=json and archives the output, so build-throughput and
// snapshot-size trends are visible across commits.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include "data/dblp_gen.h"
#include "delta/live_index.h"
#include "index/index_io.h"
#include "index/manifest.h"
#include "index/xml_index.h"

namespace {

using namespace xclean;

uint32_t BenchPublications() {
  return std::getenv("XCLEAN_BENCH_SMALL") != nullptr ? 1500 : 10000;
}

XmlTree MakeCorpus() {
  DblpGenOptions gen;
  gen.num_publications = BenchPublications();
  return GenerateDblp(gen);
}

std::unique_ptr<XmlIndex> BuildOnce(size_t threads) {
  IndexOptions options;
  options.build_threads = threads;
  return XmlIndex::Build(MakeCorpus(), options);
}

void BM_IndexBuild(benchmark::State& state) {
  IndexOptions options;
  options.build_threads = static_cast<size_t>(state.range(0));
  uint64_t tokens = 0;
  for (auto _ : state) {
    state.PauseTiming();
    XmlTree tree = MakeCorpus();  // Build consumes the tree
    state.ResumeTiming();
    auto index = XmlIndex::Build(std::move(tree), options);
    tokens = index->total_tokens();
    benchmark::DoNotOptimize(index);
  }
  state.counters["tokens_per_s"] = benchmark::Counter(
      static_cast<double>(tokens) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IndexBuild)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SaveSnapshot(benchmark::State& state) {
  static std::unique_ptr<XmlIndex> index = BuildOnce(0);
  IndexSaveOptions save;
  save.format_version = static_cast<uint32_t>(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    benchmark::DoNotOptimize(SaveIndex(*index, out, save));
    bytes = out.str().size();
  }
  state.counters["snapshot_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
}
BENCHMARK(BM_SaveSnapshot)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_LoadSnapshot(benchmark::State& state) {
  static std::unique_ptr<XmlIndex> index = BuildOnce(0);
  IndexSaveOptions save;
  save.format_version = static_cast<uint32_t>(state.range(0));
  std::ostringstream out;
  if (!SaveIndex(*index, out, save).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    auto loaded = LoadIndex(in);
    benchmark::DoNotOptimize(loaded);
  }
  state.counters["snapshot_bytes"] =
      benchmark::Counter(static_cast<double>(bytes.size()));
}
BENCHMARK(BM_LoadSnapshot)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

/// Baseline the durable publish competes against: serialize + write the
/// snapshot file at a fixed path, no journal, no fsync, no atomicity.
void BM_SaveSnapshotToFile(benchmark::State& state) {
  static std::unique_ptr<XmlIndex> index = BuildOnce(0);
  const std::string path =
      (std::filesystem::temp_directory_path() / "bench_plain.idx").string();
  IndexSaveOptions save;
  save.sync = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SaveIndex(*index, path, save));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_SaveSnapshotToFile)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// The full crash-safe publish: serialize, atomic-write the generation
/// file, append the journal commit record, retire the previous generation.
/// Arg 0 measures the pure protocol overhead (no fsync); arg 1 is the
/// production configuration (fsync file + directory + journal). Compare
/// against BM_SaveSnapshotToFile with the matching sync arg — the
/// acceptance bar for the durable path is < 10% over the plain write.
void BM_PublishSnapshot(benchmark::State& state) {
  static std::unique_ptr<XmlIndex> index = BuildOnce(0);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bench_publish").string();
  std::filesystem::remove_all(dir);
  SnapshotLifecycle lifecycle(dir);
  PublishOptions options;
  options.sync = state.range(0) != 0;
  for (auto _ : state) {
    Result<PublishedSnapshot> p = lifecycle.Publish(*index, options);
    if (!p.ok()) {
      state.SkipWithError(p.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(p);
    state.PauseTiming();
    // Keep the directory bounded; retirement is operator-cadence work
    // (after the serving engine swaps), not part of the publish cost.
    if (!lifecycle.RetireOldGenerations(1).ok()) {
      state.SkipWithError("retire failed");
    }
    state.ResumeTiming();
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_PublishSnapshot)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Startup recovery: journal replay + whole-file checksum + load of the
/// newest generation. What a restarting server pays before serving.
void BM_RecoverLatestSnapshot(benchmark::State& state) {
  static std::unique_ptr<XmlIndex> index = BuildOnce(0);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bench_recover").string();
  std::filesystem::remove_all(dir);
  SnapshotLifecycle lifecycle(dir);
  PublishOptions options;
  options.sync = false;
  if (!lifecycle.Publish(*index, options).ok()) {
    state.SkipWithError("publish failed");
    return;
  }
  for (auto _ : state) {
    Result<RecoveredSnapshot> r = RecoverLatestSnapshot(dir);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RecoverLatestSnapshot)->Unit(benchmark::kMillisecond);

/// Incremental-indexing compaction: fold `arg` freshly added documents over
/// the dblp base generation into a new durable generation (journal publish,
/// no fsync — the protocol cost, comparable to BM_PublishSnapshot arg 0).
/// The publish_ms counter splits the journal/write share out of the total
/// merge cost, from the subsystem's own last_publish_micros counter.
void BM_LiveCompactPublish(benchmark::State& state) {
  static std::shared_ptr<const XmlIndex> base = BuildOnce(0);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bench_live_compact").string();
  std::filesystem::remove_all(dir);
  SnapshotLifecycle lifecycle(dir);
  const int adds = static_cast<int>(state.range(0));
  double publish_ms = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    delta::LiveIndex live(base, delta::LiveIndexOptions());
    for (int i = 0; i < adds; ++i) {
      std::string doc = "<article><title>live doc " + std::to_string(i) +
                        " incremental</title><year>2026</year></article>";
      if (!live.Add(doc).ok()) {
        state.SkipWithError("add failed");
        break;
      }
    }
    state.ResumeTiming();
    Result<uint64_t> gen = live.Compact(&lifecycle, /*sync=*/false);
    if (!gen.ok()) {
      state.SkipWithError(gen.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(gen);
    state.PauseTiming();
    publish_ms =
        static_cast<double>(live.counters().last_publish_micros) / 1e3;
    if (!lifecycle.RetireOldGenerations(1).ok()) {
      state.SkipWithError("retire failed");
    }
    state.ResumeTiming();
  }
  state.counters["publish_ms"] = benchmark::Counter(publish_ms);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LiveCompactPublish)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
