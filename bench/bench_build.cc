// Build-throughput benchmarks (google-benchmark): index construction at
// 1/2/4/8 threads plus snapshot save/load in both format versions, with
// snapshot sizes reported as counters. The CI bench-smoke job runs this on
// a tiny corpus (XCLEAN_BENCH_SMALL=1) with --benchmark_format=json and
// archives the output, so build-throughput and snapshot-size trends are
// visible across commits.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "data/dblp_gen.h"
#include "index/index_io.h"
#include "index/xml_index.h"

namespace {

using namespace xclean;

uint32_t BenchPublications() {
  return std::getenv("XCLEAN_BENCH_SMALL") != nullptr ? 1500 : 10000;
}

XmlTree MakeCorpus() {
  DblpGenOptions gen;
  gen.num_publications = BenchPublications();
  return GenerateDblp(gen);
}

std::unique_ptr<XmlIndex> BuildOnce(size_t threads) {
  IndexOptions options;
  options.build_threads = threads;
  return XmlIndex::Build(MakeCorpus(), options);
}

void BM_IndexBuild(benchmark::State& state) {
  IndexOptions options;
  options.build_threads = static_cast<size_t>(state.range(0));
  uint64_t tokens = 0;
  for (auto _ : state) {
    state.PauseTiming();
    XmlTree tree = MakeCorpus();  // Build consumes the tree
    state.ResumeTiming();
    auto index = XmlIndex::Build(std::move(tree), options);
    tokens = index->total_tokens();
    benchmark::DoNotOptimize(index);
  }
  state.counters["tokens_per_s"] = benchmark::Counter(
      static_cast<double>(tokens) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IndexBuild)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SaveSnapshot(benchmark::State& state) {
  static std::unique_ptr<XmlIndex> index = BuildOnce(0);
  IndexSaveOptions save;
  save.format_version = static_cast<uint32_t>(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    benchmark::DoNotOptimize(SaveIndex(*index, out, save));
    bytes = out.str().size();
  }
  state.counters["snapshot_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
}
BENCHMARK(BM_SaveSnapshot)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_LoadSnapshot(benchmark::State& state) {
  static std::unique_ptr<XmlIndex> index = BuildOnce(0);
  IndexSaveOptions save;
  save.format_version = static_cast<uint32_t>(state.range(0));
  std::ostringstream out;
  if (!SaveIndex(*index, out, save).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    auto loaded = LoadIndex(in);
    benchmark::DoNotOptimize(loaded);
  }
  state.counters["snapshot_bytes"] =
      benchmark::Counter(static_cast<double>(bytes.size()));
}
BENCHMARK(BM_LoadSnapshot)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
