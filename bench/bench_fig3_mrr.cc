// Reproduces Figure 3 of the paper: MRR of XClean, PY08 and the two search
// engines (here: the query-log-based SE proxy) on all six query sets.
//
// Paper reference values (Fig. 3, approximate readings):
//   DBLP:  XClean 0.76/0.81/0.78 (RAND/RULE/CLEAN), PY08 0.41/0.13/0.19,
//          SEs ~0.5-0.7 dirty, ~1.0 CLEAN.
//   INEX:  XClean 0.94/0.93/0.96, PY08 0.24/0.08/0.08, SEs similar shape.
// Shape to reproduce: XClean >> PY08 everywhere; SE proxy ~1.0 on CLEAN,
// better on RULE than RAND among dirty sets at most comparable to XClean.

#include <cstdio>

#include "bench_common.h"
#include "eval/experiment.h"

using namespace xclean;
using namespace xclean::bench;

int main() {
  BenchConfig config = BenchConfig::FromEnv();

  std::printf("== Figure 3: MRR of all systems on all query sets ==\n");
  TablePrinter table({"query set", "XClean", "PY08", "SE-proxy"});
  table.PrintHeader();

  std::vector<Corpus> corpora;
  corpora.push_back(BuildDblpCorpus(config));
  corpora.push_back(BuildInexCorpus(config));
  for (const Corpus& corpus : corpora) {
    auto se_proxy = MakeSeProxy(corpus, config.seed + 17);
    for (Perturbation p : {Perturbation::kRand, Perturbation::kRule,
                           Perturbation::kClean}) {
      const QuerySet& set = corpus.set(p);
      XClean xclean_cleaner(*corpus.index, MakeXCleanOptions(p));
      Py08Cleaner py08(*corpus.index, MakePy08Options(p));
      ExperimentResult rx = RunExperiment(xclean_cleaner, set);
      ExperimentResult rp = RunExperiment(py08, set);
      ExperimentResult rs = RunExperiment(*se_proxy, set);
      table.PrintRow({set.name, TablePrinter::Num(rx.mrr),
                      TablePrinter::Num(rp.mrr), TablePrinter::Num(rs.mrr)});
    }
  }

  std::printf(
      "\nnote: the SE proxy returns at most one suggestion, so like the\n"
      "paper's SE1/SE2 its MRR is a lower bound.\n");
  return 0;
}
