// Reproduces Table I (dataset statistics) and Table II (query sets with
// sample queries) of the paper, over the synthetic stand-in corpora.
//
// Paper reference values (real DBLP / INEX):
//   INEX: 5878 MB, 52M nodes, max depth 50, avg depth 5.58
//   DBLP:  526 MB, 12M nodes, max depth  7, avg depth 3.8
// Our corpora are laptop-scale, so absolute sizes are smaller; the shape
// to check is the structural contrast (deep+verbose vs shallow+record).

#include <cstdio>

#include "bench_common.h"
#include "eval/experiment.h"
#include "xml/writer.h"

using namespace xclean;
using namespace xclean::bench;

namespace {

void PrintCorpusRow(const TablePrinter& table, const Corpus& corpus) {
  const XmlIndex& index = *corpus.index;
  WriteOptions wo;
  wo.indent = false;
  uint64_t xml_bytes = WriteXml(index.tree(), wo).size();
  IndexStats stats = index.stats();
  table.PrintRow({
      corpus.name,
      TablePrinter::Num(static_cast<double>(xml_bytes) / (1024.0 * 1024.0)),
      std::to_string(stats.node_count),
      std::to_string(stats.max_depth),
      TablePrinter::Num(stats.avg_depth),
      std::to_string(stats.vocabulary_size),
      std::to_string(stats.path_count),
      TablePrinter::Num(static_cast<double>(index.ApproxMemoryBytes()) /
                        (1024.0 * 1024.0)),
  });
}

void PrintSampleQueries(const Corpus& corpus) {
  for (Perturbation p : {Perturbation::kClean, Perturbation::kRand,
                         Perturbation::kRule}) {
    const QuerySet& set = corpus.set(p);
    std::printf("  %-12s (%zu queries)  e.g. \"%s\" | \"%s\"\n",
                set.name.c_str(), set.queries.size(),
                set.queries[0].dirty.ToString().c_str(),
                set.queries[1].dirty.ToString().c_str());
  }
}

}  // namespace

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  Corpus dblp = BuildDblpCorpus(config);
  Corpus inex = BuildInexCorpus(config);

  std::printf("== Table I: dataset statistics ==\n");
  TablePrinter table(
      {"dataset", "size(MB)", "#node", "max depth", "avg depth", "vocab",
       "#types", "index(MB)"});
  table.PrintHeader();
  PrintCorpusRow(table, inex);
  PrintCorpusRow(table, dblp);

  std::printf(
      "\npaper shape check: INEX-like deeper (max/avg depth) and with a\n"
      "several-times larger vocabulary than DBLP-like; DBLP-like max depth "
      "<= 7.\n");

  std::printf("\n== Table II: query sets and sample dirty queries ==\n");
  PrintSampleQueries(inex);
  PrintSampleQueries(dblp);
  return 0;
}
