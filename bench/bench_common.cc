#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "data/dblp_gen.h"
#include "data/inex_gen.h"

namespace xclean::bench {

BenchConfig BenchConfig::FromEnv() {
  BenchConfig config;
  const char* small = std::getenv("XCLEAN_BENCH_SMALL");
  if (small != nullptr && small[0] == '1') {
    config.dblp_publications = 3000;
    config.inex_articles = 600;
    config.queries_per_set = 30;
  }
  return config;
}

namespace {

Corpus FinishCorpus(std::string name, std::unique_ptr<XmlIndex> index,
                    const BenchConfig& config) {
  Corpus corpus;
  corpus.name = name;
  corpus.index = std::move(index);

  WorkloadOptions wo;
  wo.num_queries = config.queries_per_set;
  wo.seed = config.seed;
  corpus.initial = SampleInitialQueries(*corpus.index, wo);
  corpus.clean = MakeQuerySet(name + "-CLEAN", *corpus.index, corpus.initial,
                              Perturbation::kClean, wo);
  corpus.rand = MakeQuerySet(name + "-RAND", *corpus.index, corpus.initial,
                             Perturbation::kRand, wo);
  corpus.rule = MakeQuerySet(name + "-RULE", *corpus.index, corpus.initial,
                             Perturbation::kRule, wo);
  return corpus;
}

}  // namespace

Corpus BuildDblpCorpus(const BenchConfig& config) {
  Stopwatch watch;
  DblpGenOptions gen;
  gen.num_publications = config.dblp_publications;
  gen.content_typo_rate = config.dblp_typo_rate;
  gen.seed = config.seed;
  IndexOptions index_options;
  index_options.fastss_max_ed = config.fastss_max_ed;
  auto index = XmlIndex::Build(GenerateDblp(gen), index_options);
  std::fprintf(stderr, "[bench] DBLP corpus: %u pubs, %u nodes, %zu vocab "
               "(%.1fs)\n",
               gen.num_publications, index->tree().size(),
               index->vocabulary().size(), watch.ElapsedSeconds());
  return FinishCorpus("DBLP", std::move(index), config);
}

Corpus BuildInexCorpus(const BenchConfig& config) {
  Stopwatch watch;
  InexGenOptions gen;
  gen.num_articles = config.inex_articles;
  gen.content_typo_rate = config.inex_typo_rate;
  gen.seed = config.seed + 1;
  IndexOptions index_options;
  index_options.fastss_max_ed = config.fastss_max_ed;
  auto index = XmlIndex::Build(GenerateInex(gen), index_options);
  std::fprintf(stderr, "[bench] INEX corpus: %u articles, %u nodes, %zu "
               "vocab (%.1fs)\n",
               gen.num_articles, index->tree().size(),
               index->vocabulary().size(), watch.ElapsedSeconds());
  return FinishCorpus("INEX", std::move(index), config);
}

uint32_t EpsilonFor(Perturbation p) {
  return p == Perturbation::kRule ? 3 : 2;
}

XCleanOptions MakeXCleanOptions(Perturbation p, size_t gamma) {
  XCleanOptions options;
  options.max_ed = EpsilonFor(p);
  options.beta = 5.0;
  options.mu = 2000.0;
  options.reduction = 0.8;
  options.min_depth = 2;
  options.gamma = gamma;
  options.top_k = 10;
  return options;
}

Py08Options MakePy08Options(Perturbation p, size_t gamma) {
  Py08Options options;
  options.max_ed = EpsilonFor(p);
  options.gamma = gamma;
  options.top_k = 10;
  return options;
}

std::unique_ptr<LogCorrector> MakeSeProxy(const Corpus& corpus,
                                          uint64_t seed) {
  return BuildSeProxy(*corpus.index, corpus.initial, seed);
}

const char* PerturbationName(Perturbation p) {
  switch (p) {
    case Perturbation::kClean:
      return "CLEAN";
    case Perturbation::kRand:
      return "RAND";
    default:
      return "RULE";
  }
}

}  // namespace xclean::bench
