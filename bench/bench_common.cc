#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include <string>

#include "common/timer.h"
#include "data/dblp_gen.h"
#include "data/inex_gen.h"
#include "index/index_io.h"

namespace xclean::bench {

BenchConfig BenchConfig::FromEnv() {
  BenchConfig config;
  const char* small = std::getenv("XCLEAN_BENCH_SMALL");
  if (small != nullptr && small[0] == '1') {
    config.dblp_publications = 3000;
    config.inex_articles = 600;
    config.queries_per_set = 30;
  }
  return config;
}

namespace {

Corpus FinishCorpus(std::string name, std::unique_ptr<XmlIndex> index,
                    const BenchConfig& config) {
  Corpus corpus;
  corpus.name = name;
  corpus.index = std::move(index);

  WorkloadOptions wo;
  wo.num_queries = config.queries_per_set;
  wo.seed = config.seed;
  corpus.initial = SampleInitialQueries(*corpus.index, wo);
  corpus.clean = MakeQuerySet(name + "-CLEAN", *corpus.index, corpus.initial,
                              Perturbation::kClean, wo);
  corpus.rand = MakeQuerySet(name + "-RAND", *corpus.index, corpus.initial,
                             Perturbation::kRand, wo);
  corpus.rule = MakeQuerySet(name + "-RULE", *corpus.index, corpus.initial,
                             Perturbation::kRule, wo);
  return corpus;
}

/// Generated corpora are deterministic functions of their scale knobs, so
/// the built index can be cached on disk as an index_io snapshot: when
/// XCLEAN_BENCH_CORPUS_DIR is set, BuildCorpusIndex loads the snapshot if
/// present and saves it after the first build. CI wires the directory to
/// actions/cache so the perf-trajectory and bench-smoke jobs skip the
/// multi-minute index construction on warm runs. The cache key encodes
/// every knob that shapes the index; changing scales or the snapshot
/// format version simply misses and rebuilds.
std::string CorpusCachePath(const std::string& name, uint32_t scale,
                            double typo_rate, const BenchConfig& config) {
  const char* dir = std::getenv("XCLEAN_BENCH_CORPUS_DIR");
  if (dir == nullptr || dir[0] == '\0') return {};
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s/%s-%u-%.4f-%u-%llu.xci", dir,
                name.c_str(), scale, typo_rate, config.fastss_max_ed,
                static_cast<unsigned long long>(config.seed));
  return buf;
}

template <typename TreeFn>
std::unique_ptr<XmlIndex> BuildCorpusIndex(const std::string& cache_path,
                                           TreeFn make_tree,
                                           const BenchConfig& config) {
  if (!cache_path.empty()) {
    Result<std::unique_ptr<XmlIndex>> cached = LoadIndex(cache_path);
    if (cached.ok()) {
      std::fprintf(stderr, "[bench] corpus cache hit: %s\n",
                   cache_path.c_str());
      return std::move(cached).value();
    }
  }
  IndexOptions index_options;
  index_options.fastss_max_ed = config.fastss_max_ed;
  auto index = XmlIndex::Build(make_tree(), index_options);
  if (!cache_path.empty()) {
    Status saved = SaveIndex(*index, cache_path);
    std::fprintf(stderr, "[bench] corpus cache %s: %s\n",
                 saved.ok() ? "saved" : "save failed", cache_path.c_str());
  }
  return index;
}

}  // namespace

Corpus BuildDblpCorpus(const BenchConfig& config) {
  Stopwatch watch;
  DblpGenOptions gen;
  gen.num_publications = config.dblp_publications;
  gen.content_typo_rate = config.dblp_typo_rate;
  gen.seed = config.seed;
  auto index = BuildCorpusIndex(
      CorpusCachePath("DBLP", gen.num_publications, gen.content_typo_rate,
                      config),
      [&] { return GenerateDblp(gen); }, config);
  std::fprintf(stderr, "[bench] DBLP corpus: %u pubs, %u nodes, %zu vocab "
               "(%.1fs)\n",
               gen.num_publications, index->tree().size(),
               index->vocabulary().size(), watch.ElapsedSeconds());
  return FinishCorpus("DBLP", std::move(index), config);
}

Corpus BuildInexCorpus(const BenchConfig& config) {
  Stopwatch watch;
  InexGenOptions gen;
  gen.num_articles = config.inex_articles;
  gen.content_typo_rate = config.inex_typo_rate;
  gen.seed = config.seed + 1;
  auto index = BuildCorpusIndex(
      CorpusCachePath("INEX", gen.num_articles, gen.content_typo_rate,
                      config),
      [&] { return GenerateInex(gen); }, config);
  std::fprintf(stderr, "[bench] INEX corpus: %u articles, %u nodes, %zu "
               "vocab (%.1fs)\n",
               gen.num_articles, index->tree().size(),
               index->vocabulary().size(), watch.ElapsedSeconds());
  return FinishCorpus("INEX", std::move(index), config);
}

uint32_t EpsilonFor(Perturbation p) {
  return p == Perturbation::kRule ? 3 : 2;
}

XCleanOptions MakeXCleanOptions(Perturbation p, size_t gamma) {
  XCleanOptions options;
  options.max_ed = EpsilonFor(p);
  options.beta = 5.0;
  options.mu = 2000.0;
  options.reduction = 0.8;
  options.min_depth = 2;
  options.gamma = gamma;
  options.top_k = 10;
  return options;
}

Py08Options MakePy08Options(Perturbation p, size_t gamma) {
  Py08Options options;
  options.max_ed = EpsilonFor(p);
  options.gamma = gamma;
  options.top_k = 10;
  return options;
}

std::unique_ptr<LogCorrector> MakeSeProxy(const Corpus& corpus,
                                          uint64_t seed) {
  return BuildSeProxy(*corpus.index, corpus.initial, seed);
}

const char* PerturbationName(Perturbation p) {
  switch (p) {
    case Perturbation::kClean:
      return "CLEAN";
    case Perturbation::kRand:
      return "RAND";
    default:
      return "RULE";
  }
}

}  // namespace xclean::bench
