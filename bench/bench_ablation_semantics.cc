// Ablation for Sec. VI-B: node-type semantics vs SLCA semantics. The paper
// reports SLCA "works equally well on the DBLP dataset (data-centric), but
// less well on the INEX dataset (document-centric)".
//
// Also sweeps the minimal depth threshold d (Sec. V-B): the paper states
// d = 2 "is usually enough to prune [unpromising candidates] without
// affecting the suggestion quality"; larger d starts cutting real result
// types, smaller d admits root-only connections.

#include <cstdio>

#include "bench_common.h"
#include "eval/experiment.h"

using namespace xclean;
using namespace xclean::bench;

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  std::vector<Corpus> corpora;
  corpora.push_back(BuildDblpCorpus(config));
  corpora.push_back(BuildInexCorpus(config));

  std::printf(
      "== Ablation (Sec. VI-B / VIII): node-type vs SLCA vs ELCA semantics "
      "==\n");
  {
    TablePrinter table({"query set", "node-type", "SLCA", "ELCA", "nt ms",
                        "slca ms", "elca ms"});
    table.PrintHeader();
    for (const Corpus& corpus : corpora) {
      for (Perturbation p : {Perturbation::kRand, Perturbation::kRule}) {
        const QuerySet& set = corpus.set(p);
        XCleanOptions node_type = MakeXCleanOptions(p);
        XCleanOptions slca = node_type;
        slca.semantics = Semantics::kSlca;
        XCleanOptions elca = node_type;
        elca.semantics = Semantics::kElca;
        XClean a(*corpus.index, node_type);
        XClean b(*corpus.index, slca);
        XClean c(*corpus.index, elca);
        ExperimentResult ra = RunExperiment(a, set);
        ExperimentResult rb = RunExperiment(b, set);
        ExperimentResult rc = RunExperiment(c, set);
        table.PrintRow({set.name, TablePrinter::Num(ra.mrr),
                        TablePrinter::Num(rb.mrr), TablePrinter::Num(rc.mrr),
                        TablePrinter::Num(ra.avg_seconds * 1e3),
                        TablePrinter::Num(rb.avg_seconds * 1e3),
                        TablePrinter::Num(rc.avg_seconds * 1e3)});
      }
    }
  }

  std::printf("\n== Ablation (Sec. V-B): minimal depth threshold d ==\n");
  {
    TablePrinter table({"query set", "d=1", "d=2", "d=3", "d=4"});
    table.PrintHeader();
    for (const Corpus& corpus : corpora) {
      for (Perturbation p : {Perturbation::kRand}) {
        // With d = 1 every candidate pair is "connected" through the root:
        // the whole document becomes one subtree and the per-subtree
        // candidate space is the full Cartesian product — the very
        // explosion the paper's d >= 2 threshold exists to prevent. Keep
        // the sweep tractable with a narrow variant space and short
        // queries; the d-trend is unaffected.
        QuerySet set;
        set.name = corpus.set(p).name + "*";  // *: len<=3, eps=1 subset
        for (const EvalQuery& eq : corpus.set(p).queries) {
          if (eq.dirty.size() <= 3) set.queries.push_back(eq);
        }
        std::vector<std::string> row = {set.name};
        for (uint32_t d : {1u, 2u, 3u, 4u}) {
          XCleanOptions options = MakeXCleanOptions(p);
          options.max_ed = 1;
          options.min_depth = d;
          XClean cleaner(*corpus.index, options);
          row.push_back(TablePrinter::Num(RunExperiment(cleaner, set).mrr));
        }
        table.PrintRow(row);
      }
    }
  }

  std::printf(
      "\n(*) d-sweep subset: queries of <= 3 keywords at eps = 1 — d = 1 "
      "makes\nthe whole document one subtree, whose Cartesian candidate "
      "space is\nexactly the explosion the paper's threshold prevents.\n"
      "\npaper shapes: SLCA ~ node-type on the data-centric corpus, worse "
      "on\nthe document-centric one; d=2 loses nothing vs d=1.\n");
  return 0;
}
