// Micro benchmarks (google-benchmark) for the performance-critical
// substrate pieces behind Sec. V's claims: FastSS variant generation, the
// banded edit distance verifier, MergedList skipping, posting-cursor
// galloping, SLCA computation, tokenization, parsing and index build.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "common/varint.h"
#include "core/slca.h"
#include "core/xclean.h"
#include "data/dblp_gen.h"
#include "index/merged_list.h"
#include "index/xml_index.h"
#include "text/edit_distance.h"
#include "text/fastss.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace {

using namespace xclean;

/// Kernel benches take a trailing "simd" argument: 0 pins the scalar tier,
/// 1 runs the best tier the CPU supports. The pair makes the scalar-vs-
/// vector ratio a first-class number in BENCH_micro.json instead of
/// something to eyeball across machines.
simd::Level LevelForArg(int64_t arg) {
  return arg == 0 ? simd::Level::kScalar : simd::DetectedLevel();
}

std::vector<std::string> RandomWords(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> words;
  words.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string w;
    size_t len = 4 + rng.Uniform(8);
    for (size_t j = 0; j < len; ++j) {
      w.push_back(static_cast<char>('a' + rng.Uniform(12)));
    }
    words.push_back(std::move(w));
  }
  return words;
}

const XmlIndex& SharedDblpIndex() {
  static const XmlIndex* index = [] {
    DblpGenOptions gen;
    gen.num_publications = 5000;
    return XmlIndex::Build(GenerateDblp(gen)).release();
  }();
  return *index;
}

void BM_EditDistanceFull(benchmark::State& state) {
  simd::ScopedLevel scoped(LevelForArg(state.range(0)));
  std::vector<std::string> words = RandomWords(256, 1);
  size_t i = 0;
  int64_t bytes = 0;
  int64_t cells = 0;
  for (auto _ : state) {
    const std::string& a = words[i % words.size()];
    const std::string& b = words[(i + 7) % words.size()];
    benchmark::DoNotOptimize(EditDistance(a, b));
    bytes += static_cast<int64_t>(a.size() + b.size());
    cells += static_cast<int64_t>(a.size() * b.size());
    ++i;
  }
  // bytes/s: input characters consumed; comparisons/s: DP cells the scalar
  // algorithm would evaluate — the bit-parallel tier's advantage shows up
  // as a higher cell rate at identical outputs.
  state.SetBytesProcessed(bytes);
  state.counters["comparisons"] =
      benchmark::Counter(static_cast<double>(cells),
                         benchmark::Counter::kIsRate);
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_EditDistanceFull)->ArgName("simd")->Arg(0)->Arg(1);

void BM_EditDistanceBounded(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  simd::ScopedLevel scoped(LevelForArg(state.range(1)));
  std::vector<std::string> words = RandomWords(256, 2);
  size_t i = 0;
  int64_t bytes = 0;
  int64_t cells = 0;
  for (auto _ : state) {
    const std::string& a = words[i % words.size()];
    const std::string& b = words[(i + 7) % words.size()];
    benchmark::DoNotOptimize(EditDistanceBounded(a, b, k));
    bytes += static_cast<int64_t>(a.size() + b.size());
    cells += static_cast<int64_t>(a.size() * b.size());
    ++i;
  }
  state.SetBytesProcessed(bytes);
  state.counters["comparisons"] =
      benchmark::Counter(static_cast<double>(cells),
                         benchmark::Counter::kIsRate);
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_EditDistanceBounded)
    ->ArgNames({"k", "simd"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1});

void BM_VarintGroupDecode(benchmark::State& state) {
  simd::ScopedLevel scoped(LevelForArg(state.range(0)));
  // Posting-delta-like stream: overwhelmingly one-byte varints with the
  // occasional wide value, the regime the vector group decoder targets.
  Rng rng(12);
  constexpr size_t kCount = 65536;
  std::string buf;
  for (size_t i = 0; i < kCount; ++i) {
    PutVarint32(buf, static_cast<uint32_t>(rng.Bernoulli(0.05)
                                               ? rng.Uniform(1u << 20)
                                               : rng.Uniform(120)));
  }
  std::vector<uint32_t> out(kCount);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GetVarint32Group(
        buf.data(), buf.data() + buf.size(), out.data(), kCount));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() *
                                               buf.size()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kCount));
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_VarintGroupDecode)->ArgName("simd")->Arg(0)->Arg(1);

void BM_FastSsBuild(benchmark::State& state) {
  simd::ScopedLevel scoped(LevelForArg(state.range(1)));
  std::vector<std::string> words =
      RandomWords(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    FastSsIndex index(FastSsIndex::Options{2, 13});
    index.Build(words);
    benchmark::DoNotOptimize(index.posting_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_FastSsBuild)
    ->ArgNames({"words", "simd"})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

void BM_FastSsFind(benchmark::State& state) {
  const uint32_t ed = static_cast<uint32_t>(state.range(0));
  simd::ScopedLevel scoped(LevelForArg(state.range(1)));
  static FastSsIndex* index = [] {
    auto* idx = new FastSsIndex(FastSsIndex::Options{3, 13});
    idx->Build(RandomWords(20000, 4));
    return idx;
  }();
  std::vector<std::string> queries = RandomWords(64, 5);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Find(queries[i % queries.size()], ed));
    ++i;
  }
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_FastSsFind)
    ->ArgNames({"ed", "simd"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1});

void BM_PostingSkipTo(benchmark::State& state) {
  simd::ScopedLevel scoped(LevelForArg(state.range(0)));
  std::vector<Posting> postings;
  Rng rng(6);
  NodeId node = 0;
  for (int i = 0; i < 1000000; ++i) {
    node += 1 + static_cast<NodeId>(rng.Uniform(4));
    postings.push_back(Posting{node, 1});
  }
  PostingList list(std::move(postings));
  Rng probe_rng(7);
  for (auto _ : state) {
    PostingCursor cursor(list);
    // 100 skips of increasing targets across the list.
    NodeId target = 0;
    for (int i = 0; i < 100; ++i) {
      target += node / 100;
      cursor.SkipTo(target);
      if (cursor.AtEnd()) break;
      benchmark::DoNotOptimize(cursor.Get().node);
    }
  }
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_PostingSkipTo)->ArgName("simd")->Arg(0)->Arg(1);

void BM_MergedListDrainVsSkip(benchmark::State& state) {
  const bool use_skip = state.range(0) != 0;
  // 8 member lists, 100k entries each.
  std::vector<PostingList> lists;
  Rng rng(8);
  for (int m = 0; m < 8; ++m) {
    std::vector<Posting> postings;
    NodeId node = static_cast<NodeId>(rng.Uniform(37));
    for (int i = 0; i < 100000; ++i) {
      node += 1 + static_cast<NodeId>(rng.Uniform(40));
      postings.push_back(Posting{node, 1});
    }
    lists.emplace_back(std::move(postings));
  }
  for (auto _ : state) {
    std::vector<MergedList::Member> members;
    for (size_t m = 0; m < lists.size(); ++m) {
      members.push_back(MergedList::Member{static_cast<TokenId>(m),
                                           PostingCursor(lists[m])});
    }
    MergedList merged(std::move(members));
    uint64_t consumed = 0;
    if (use_skip) {
      // Skip in strides (the anchor pattern): read one entry per stride.
      NodeId target = 0;
      while (merged.SkipTo(target) != nullptr) {
        MergedList::Head h = merged.Next();
        ++consumed;
        target = h.node + 20000;
      }
    } else {
      while (merged.cur_pos() != nullptr) {
        merged.Next();
        ++consumed;
      }
    }
    benchmark::DoNotOptimize(consumed);
  }
}
BENCHMARK(BM_MergedListDrainVsSkip)->Arg(0)->Arg(1);

/// Tunes MergedList::SkipTo's lazy-vs-rebuild crossover (the lazy_limit in
/// merged_list.cc): sweeps the anchor stride — short strides move one or
/// two members per skip (lazy path wins), long strides leave most members
/// behind the target (wholesale rebuild wins) — and reports the SkipStats
/// counters alongside wall time, so a crossover change shows up as a shift
/// in lazy_advances/rebuilds per skip, not just as noise in ns/op.
void BM_MergedListSkipTuning(benchmark::State& state) {
  const NodeId stride = static_cast<NodeId>(state.range(0));
  // 32 member lists (a RULE-like variant fanout), 20k entries each.
  std::vector<PostingList> lists;
  Rng rng(32);
  for (int m = 0; m < 32; ++m) {
    std::vector<Posting> postings;
    NodeId node = static_cast<NodeId>(rng.Uniform(37));
    for (int i = 0; i < 20000; ++i) {
      node += 1 + static_cast<NodeId>(rng.Uniform(40));
      postings.push_back(Posting{node, 1});
    }
    lists.emplace_back(std::move(postings));
  }
  uint64_t moving_calls = 0, lazy_advances = 0, rebuilds = 0;
  for (auto _ : state) {
    MergedList merged;
    merged.Reset();
    for (size_t m = 0; m < lists.size(); ++m) {
      merged.AddMember(static_cast<TokenId>(m), PostingCursor(lists[m]));
    }
    merged.Finish();
    uint64_t consumed = 0;
    NodeId target = 0;
    while (merged.SkipTo(target) != nullptr) {
      MergedList::Head h = merged.Next();
      ++consumed;
      target = h.node + stride;
    }
    benchmark::DoNotOptimize(consumed);
    const MergedList::SkipStats& stats = merged.skip_stats();
    moving_calls += stats.moving_calls;
    lazy_advances += stats.lazy_advances;
    rebuilds += stats.rebuilds;
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["moving_calls"] = moving_calls / iters;
  state.counters["lazy_advances"] = lazy_advances / iters;
  state.counters["rebuilds"] = rebuilds / iters;
}
BENCHMARK(BM_MergedListSkipTuning)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384);

void BM_Slca(benchmark::State& state) {
  const XmlIndex& index = SharedDblpIndex();
  const XmlTree& tree = index.tree();
  Rng rng(9);
  std::vector<std::vector<NodeId>> lists(3);
  for (auto& list : lists) {
    for (int i = 0; i < 200; ++i) {
      list.push_back(static_cast<NodeId>(rng.Uniform(tree.size())));
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSlcas(tree, lists));
  }
}
BENCHMARK(BM_Slca);

void BM_Tokenize(benchmark::State& state) {
  Tokenizer tokenizer;
  std::string text;
  Rng rng(10);
  auto words = RandomWords(1000, 11);
  for (const auto& w : words) {
    text += w;
    text += rng.Bernoulli(0.2) ? ", " : " ";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_Tokenize);

void BM_ParseXml(benchmark::State& state) {
  DblpGenOptions gen;
  gen.num_publications = 1000;
  std::string xml = WriteXml(GenerateDblp(gen));
  for (auto _ : state) {
    Result<XmlTree> tree = ParseXmlString(xml);
    benchmark::DoNotOptimize(tree.ok());
  }
  state.SetBytesProcessed(state.iterations() * xml.size());
}
BENCHMARK(BM_ParseXml);

void BM_IndexBuild(benchmark::State& state) {
  DblpGenOptions gen;
  gen.num_publications = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    XmlTree tree = GenerateDblp(gen);
    state.ResumeTiming();
    auto index = XmlIndex::Build(std::move(tree));
    benchmark::DoNotOptimize(index->total_tokens());
  }
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_XCleanSuggest(benchmark::State& state) {
  simd::ScopedLevel scoped(LevelForArg(state.range(0)));
  const XmlIndex& index = SharedDblpIndex();
  XCleanOptions options;
  options.gamma = 1000;
  XClean cleaner(index, options);
  Query query;
  query.keywords = {"algorithm", "databse"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cleaner.Suggest(query));
  }
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_XCleanSuggest)->ArgName("simd")->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
