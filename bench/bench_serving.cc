// Closed-loop throughput benchmark for the concurrent serving engine
// (serve/engine.h): 1/2/4/8 threads, with and without the suggestion
// cache, in two driving modes.
//
//   inline: T client threads call ServingEngine::Suggest() synchronously —
//           each thread issues its next query the moment the previous one
//           completes (classic closed loop). Measures raw concurrent
//           serving scalability over the shared immutable snapshot.
//   pool:   T worker threads; T closed-loop clients go through the bounded
//           queue via SubmitSuggest and wait for their callback. Adds the
//           queue/dispatch overhead to every request.
//
// The headline number is the warm-cache inline speedup at 4 threads vs 1.
//
//   $ ./bench_serving            # full scale (~20k publications)
//   $ XCLEAN_BENCH_SMALL=1 ./bench_serving
//
// Closed-loop means throughput is T / mean-latency; an engine that
// serializes anywhere (a hot lock, a serial cache) shows up immediately as
// a flat speedup column.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/suggester.h"
#include "data/dblp_gen.h"
#include "data/workload.h"
#include "serve/engine.h"

namespace xclean::serve {
namespace {

struct RunResult {
  double qps = 0.0;
  double hit_rate = 0.0;
  MetricsSnapshot metrics;
};

std::vector<std::string> MakeQueries(const XCleanSuggester& suggester,
                                     uint32_t count, uint64_t seed) {
  WorkloadOptions options;
  options.num_queries = count;
  options.seed = seed;
  std::vector<Query> initial =
      SampleInitialQueries(suggester.index(), options);
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(initial.size());
  for (const Query& q : initial) {
    out.push_back(PerturbRand(q, suggester.index(), options, rng).ToString());
  }
  return out;
}

EngineOptions MakeEngineOptions(size_t pool_threads, bool cache_on) {
  EngineOptions options;
  options.pool.num_threads = pool_threads;
  options.pool.queue_capacity = 16384;
  options.cache.capacity = cache_on ? 16384 : 0;
  return options;
}

void WarmCache(ServingEngine& engine,
               const std::vector<std::string>& queries) {
  for (const std::string& q : queries) engine.Suggest(q);
}

/// T client threads in a closed loop on the synchronous entry point.
RunResult RunInline(const std::shared_ptr<const XCleanSuggester>& suggester,
                    const std::vector<std::string>& queries, size_t threads,
                    bool cache_on, double seconds) {
  ServingEngine engine(suggester, MakeEngineOptions(1, cache_on));
  if (cache_on) WarmCache(engine, queries);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> clients;
  clients.reserve(threads);
  Stopwatch watch;
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      uint64_t local = 0;
      for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        engine.Suggest(queries[(t * 31 + i) % queries.size()]);
        ++local;
      }
      ops.fetch_add(local);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& c : clients) c.join();
  double elapsed = watch.ElapsedSeconds();

  RunResult r;
  r.metrics = engine.Metrics();
  r.qps = static_cast<double>(ops.load()) / elapsed;
  uint64_t looked_up = r.metrics.cache_hits + r.metrics.cache_misses;
  r.hit_rate = looked_up == 0 ? 0.0
                              : static_cast<double>(r.metrics.cache_hits) /
                                    static_cast<double>(looked_up);
  return r;
}

/// T workers behind the bounded queue; T closed-loop clients each submit
/// one request and spin-wait for its callback.
RunResult RunPool(const std::shared_ptr<const XCleanSuggester>& suggester,
                  const std::vector<std::string>& queries, size_t threads,
                  bool cache_on, double seconds) {
  ServingEngine engine(suggester, MakeEngineOptions(threads, cache_on));
  if (cache_on) WarmCache(engine, queries);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> clients;
  clients.reserve(threads);
  Stopwatch watch;
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      uint64_t local = 0;
      for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        std::atomic<bool> ready{false};
        Status s = engine.SubmitSuggest(
            queries[(t * 31 + i) % queries.size()], [&ready](ServeResult) {
              ready.store(true, std::memory_order_release);
            });
        if (!s.ok()) {
          std::this_thread::yield();  // backpressure: retry
          continue;
        }
        while (!ready.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        ++local;
      }
      ops.fetch_add(local);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& c : clients) c.join();
  double elapsed = watch.ElapsedSeconds();
  engine.Shutdown();

  RunResult r;
  r.metrics = engine.Metrics();
  r.qps = static_cast<double>(ops.load()) / elapsed;
  uint64_t looked_up = r.metrics.cache_hits + r.metrics.cache_misses;
  r.hit_rate = looked_up == 0 ? 0.0
                              : static_cast<double>(r.metrics.cache_hits) /
                                    static_cast<double>(looked_up);
  return r;
}

void PrintRow(const char* mode, size_t threads, bool cache_on,
              const RunResult& r, double baseline_qps) {
  std::printf("%-6s %7zu  %-5s %12.0f %8.2fx %7.0f%% %8.3f %8.3f %8.3f\n",
              mode, threads, cache_on ? "warm" : "off", r.qps,
              baseline_qps > 0 ? r.qps / baseline_qps : 1.0,
              r.hit_rate * 100.0, r.metrics.latency_p50_ms,
              r.metrics.latency_p95_ms, r.metrics.latency_p99_ms);
}

}  // namespace
}  // namespace xclean::serve

int main() {
  using namespace xclean;
  using namespace xclean::serve;

  bool small = std::getenv("XCLEAN_BENCH_SMALL") != nullptr;
  DblpGenOptions gen;
  gen.num_publications = small ? 3000 : 20000;
  double seconds = small ? 0.5 : 1.5;

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware concurrency: %u core(s)\n", cores);

  std::printf("building DBLP-like corpus (%u publications)...\n",
              gen.num_publications);
  Stopwatch build_watch;
  auto suggester = std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromTree(GenerateDblp(gen)));
  std::vector<std::string> queries = MakeQueries(*suggester, 256, 20110411);
  std::printf("built in %.1fs; %zu distinct misspelled queries\n\n",
              build_watch.ElapsedSeconds(), queries.size());

  std::printf("%-6s %7s  %-5s %12s %9s %8s %8s %8s %8s\n", "mode", "threads",
              "cache", "qps", "speedup", "hit", "p50ms", "p95ms", "p99ms");

  const size_t kThreadCounts[] = {1, 2, 4, 8};
  double warm_speedup_at_4 = 0.0;
  for (bool cache_on : {false, true}) {
    double inline_base = 0.0;
    for (size_t threads : kThreadCounts) {
      RunResult r = RunInline(suggester, queries, threads, cache_on, seconds);
      if (threads == 1) inline_base = r.qps;
      if (cache_on && threads == 4 && inline_base > 0.0) {
        warm_speedup_at_4 = r.qps / inline_base;
      }
      PrintRow("inline", threads, cache_on, r, inline_base);
    }
    double pool_base = 0.0;
    for (size_t threads : kThreadCounts) {
      RunResult r = RunPool(suggester, queries, threads, cache_on, seconds);
      if (threads == 1) pool_base = r.qps;
      PrintRow("pool", threads, cache_on, r, pool_base);
    }
    std::printf("\n");
  }

  std::printf("warm-cache inline speedup at 4 threads: %.2fx %s\n",
              warm_speedup_at_4, warm_speedup_at_4 >= 3.0 ? "(>=3x ok)" : "");
  if (cores < 4) {
    std::printf(
        "note: this machine has %u core(s); closed-loop speedup is bounded "
        "by min(threads, cores), so parallel scaling cannot show here. The "
        "engine has no serial section on the hit path (sharded cache locks, "
        "lock-free metrics, read-only shared snapshot).\n",
        cores);
  }
  return 0;
}
