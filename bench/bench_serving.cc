// Closed-loop throughput benchmark for the concurrent serving engine
// (serve/engine.h): 1/2/4/8 threads, with and without the suggestion
// cache, in two driving modes.
//
//   inline: T client threads call ServingEngine::Suggest() synchronously —
//           each thread issues its next query the moment the previous one
//           completes (classic closed loop). Measures raw concurrent
//           serving scalability over the shared immutable snapshot.
//   pool:   T worker threads; T closed-loop clients go through the bounded
//           queue via SubmitSuggest and wait for their callback. Adds the
//           queue/dispatch overhead to every request.
//
// The headline number is the warm-cache inline speedup at 4 threads vs 1.
//
//   $ ./bench_serving            # full scale (~20k publications)
//   $ XCLEAN_BENCH_SMALL=1 ./bench_serving
//
// Closed-loop means throughput is T / mean-latency; an engine that
// serializes anywhere (a hot lock, a serial cache) shows up immediately as
// a flat speedup column.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/suggester.h"
#include "data/dblp_gen.h"
#include "data/workload.h"
#include "serve/engine.h"

namespace xclean::serve {
namespace {

struct RunResult {
  double qps = 0.0;
  double hit_rate = 0.0;
  MetricsSnapshot metrics;
};

std::vector<std::string> MakeQueries(const XCleanSuggester& suggester,
                                     uint32_t count, uint64_t seed) {
  WorkloadOptions options;
  options.num_queries = count;
  options.seed = seed;
  std::vector<Query> initial =
      SampleInitialQueries(suggester.index(), options);
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(initial.size());
  for (const Query& q : initial) {
    out.push_back(PerturbRand(q, suggester.index(), options, rng).ToString());
  }
  return out;
}

EngineOptions MakeEngineOptions(size_t pool_threads, bool cache_on) {
  EngineOptions options;
  options.pool.num_threads = pool_threads;
  options.pool.queue_capacity = 16384;
  options.cache.capacity = cache_on ? 16384 : 0;
  return options;
}

void WarmCache(ServingEngine& engine,
               const std::vector<std::string>& queries) {
  for (const std::string& q : queries) engine.Suggest(q);
}

/// T client threads in a closed loop on the synchronous entry point.
RunResult RunInline(const std::shared_ptr<const XCleanSuggester>& suggester,
                    const std::vector<std::string>& queries, size_t threads,
                    bool cache_on, double seconds) {
  ServingEngine engine(suggester, MakeEngineOptions(1, cache_on));
  if (cache_on) WarmCache(engine, queries);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> clients;
  clients.reserve(threads);
  Stopwatch watch;
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      uint64_t local = 0;
      for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        engine.Suggest(queries[(t * 31 + i) % queries.size()]);
        ++local;
      }
      ops.fetch_add(local);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& c : clients) c.join();
  double elapsed = watch.ElapsedSeconds();

  RunResult r;
  r.metrics = engine.Metrics();
  r.qps = static_cast<double>(ops.load()) / elapsed;
  uint64_t looked_up = r.metrics.cache_hits + r.metrics.cache_misses;
  r.hit_rate = looked_up == 0 ? 0.0
                              : static_cast<double>(r.metrics.cache_hits) /
                                    static_cast<double>(looked_up);
  return r;
}

/// T workers behind the bounded queue; T closed-loop clients each submit
/// one request and spin-wait for its callback.
RunResult RunPool(const std::shared_ptr<const XCleanSuggester>& suggester,
                  const std::vector<std::string>& queries, size_t threads,
                  bool cache_on, double seconds) {
  ServingEngine engine(suggester, MakeEngineOptions(threads, cache_on));
  if (cache_on) WarmCache(engine, queries);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> clients;
  clients.reserve(threads);
  Stopwatch watch;
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      uint64_t local = 0;
      for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        std::atomic<bool> ready{false};
        Status s = engine.SubmitSuggest(
            queries[(t * 31 + i) % queries.size()], [&ready](ServeResult) {
              ready.store(true, std::memory_order_release);
            });
        if (!s.ok()) {
          std::this_thread::yield();  // backpressure: retry
          continue;
        }
        while (!ready.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        ++local;
      }
      ops.fetch_add(local);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& c : clients) c.join();
  double elapsed = watch.ElapsedSeconds();
  engine.Shutdown();

  RunResult r;
  r.metrics = engine.Metrics();
  r.qps = static_cast<double>(ops.load()) / elapsed;
  uint64_t looked_up = r.metrics.cache_hits + r.metrics.cache_misses;
  r.hit_rate = looked_up == 0 ? 0.0
                              : static_cast<double>(r.metrics.cache_hits) /
                                    static_cast<double>(looked_up);
  return r;
}

/// Overload resilience run: an open-loop driver offers ~4x the measured
/// serving capacity with a tight per-request deadline. Unlike the closed
/// loops above, arrivals do NOT wait for completions — exactly the regime
/// where an engine without admission control grows an unbounded queue and
/// serves every request late. Verifies the three overload guarantees:
///
///   1. accepted requests stay fast: served p99 within the deadline
///      (2x bucket resolution of the log histogram);
///   2. overload is shed, not queued: rejections/sheds absorb the excess
///      while the queue stays within its hard bound;
///   3. cancellation holds inside the algorithm: no request ever spends
///      more than 2x its deadline inside Suggest.
void RunOverload(const std::shared_ptr<const XCleanSuggester>& suggester,
                 const std::vector<std::string>& queries, bool small) {
  // Measure single-worker capacity first (closed loop, cache off).
  RunResult cap = RunInline(suggester, queries, 1, false, small ? 0.3 : 0.8);
  const double capacity_qps = cap.qps;
  const double offered_qps = 4.0 * capacity_qps;
  const double deadline_ms = small ? 20.0 : 10.0;
  const double seconds = small ? 1.0 : 2.0;

  EngineOptions options;
  options.pool.num_threads = 1;
  options.pool.queue_capacity = 64;
  options.cache.capacity = 0;  // every accepted request computes
  options.default_deadline =
      std::chrono::milliseconds(static_cast<int64_t>(deadline_ms));
  ServingEngine engine(suggester, options);

  std::atomic<uint64_t> done_ok{0};
  std::atomic<uint64_t> done_truncated{0};
  std::atomic<uint64_t> done_deadline{0};
  std::atomic<uint64_t> done_shed{0};
  std::atomic<uint64_t> max_compute_us{0};
  auto on_done = [&](ServeResult r) {
    uint64_t us = static_cast<uint64_t>(r.compute_ms * 1000.0);
    uint64_t prev = max_compute_us.load(std::memory_order_relaxed);
    while (us > prev &&
           !max_compute_us.compare_exchange_weak(prev, us)) {
    }
    if (r.status.ok()) {
      done_ok.fetch_add(1);
      if (r.truncated) done_truncated.fetch_add(1);
    } else if (r.status.code() == StatusCode::kDeadlineExceeded) {
      done_deadline.fetch_add(1);
    } else {
      done_shed.fetch_add(1);
    }
  };

  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / offered_qps));
  uint64_t submitted = 0;
  uint64_t rejected_at_submit = 0;
  size_t max_queue_depth = 0;
  const auto start = std::chrono::steady_clock::now();
  auto next_arrival = start;
  for (size_t i = 0;
       std::chrono::steady_clock::now() - start <
       std::chrono::duration<double>(seconds);
       ++i) {
    Status s = engine.SubmitSuggest(queries[i % queries.size()], on_done);
    ++submitted;
    if (!s.ok()) ++rejected_at_submit;
    if (engine.queue_depth() > max_queue_depth) {
      max_queue_depth = engine.queue_depth();
    }
    next_arrival += interval;
    std::this_thread::sleep_until(next_arrival);
  }
  engine.Shutdown();

  MetricsSnapshot m = engine.Metrics();
  const double max_compute_ms =
      static_cast<double>(max_compute_us.load()) / 1000.0;
  const uint64_t shed_total =
      rejected_at_submit + m.shed_overload + m.deadline_exceeded;

  std::printf("capacity %.0f qps, offered %.0f qps (4.0x) for %.1fs, "
              "deadline %.0fms\n",
              capacity_qps, offered_qps, seconds, deadline_ms);
  std::printf("submitted %llu: served %llu (%llu truncated), "
              "deadline-exceeded %llu, rejected %llu, shed %llu\n",
              static_cast<unsigned long long>(submitted),
              static_cast<unsigned long long>(done_ok.load()),
              static_cast<unsigned long long>(done_truncated.load()),
              static_cast<unsigned long long>(m.deadline_exceeded),
              static_cast<unsigned long long>(rejected_at_submit),
              static_cast<unsigned long long>(m.shed_overload));
  std::printf("tiers full/reduced/cache_only/shed = "
              "%llu/%llu/%llu/%llu, controller p95 %.2fms\n",
              static_cast<unsigned long long>(m.tier_requests[0]),
              static_cast<unsigned long long>(m.tier_requests[1]),
              static_cast<unsigned long long>(m.tier_requests[2]),
              static_cast<unsigned long long>(m.tier_requests[3]),
              m.overload_p95_ms);

  const bool p99_ok = m.latency_p99_ms <= 2.0 * deadline_ms;
  const bool queue_ok =
      max_queue_depth <= options.pool.queue_capacity && shed_total > 0;
  const bool compute_ok = max_compute_ms <= 2.0 * deadline_ms;
  std::printf("[%s] served p99 %.2fms vs %.0fms deadline "
              "(log-bucket resolution 2x)\n",
              p99_ok ? "PASS" : "FAIL", m.latency_p99_ms, deadline_ms);
  std::printf("[%s] overload shed, queue bounded: max depth %zu <= %zu, "
              "%llu requests shed\n",
              queue_ok ? "PASS" : "FAIL", max_queue_depth,
              options.pool.queue_capacity,
              static_cast<unsigned long long>(shed_total));
  std::printf("[%s] max time inside Suggest %.2fms <= 2x deadline %.0fms\n",
              compute_ok ? "PASS" : "FAIL", max_compute_ms,
              2.0 * deadline_ms);
}

void PrintRow(const char* mode, size_t threads, bool cache_on,
              const RunResult& r, double baseline_qps) {
  std::printf("%-6s %7zu  %-5s %12.0f %8.2fx %7.0f%% %8.3f %8.3f %8.3f\n",
              mode, threads, cache_on ? "warm" : "off", r.qps,
              baseline_qps > 0 ? r.qps / baseline_qps : 1.0,
              r.hit_rate * 100.0, r.metrics.latency_p50_ms,
              r.metrics.latency_p95_ms, r.metrics.latency_p99_ms);
}

}  // namespace
}  // namespace xclean::serve

int main() {
  using namespace xclean;
  using namespace xclean::serve;

  bool small = std::getenv("XCLEAN_BENCH_SMALL") != nullptr;
  DblpGenOptions gen;
  gen.num_publications = small ? 3000 : 20000;
  double seconds = small ? 0.5 : 1.5;

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware concurrency: %u core(s)\n", cores);

  std::printf("building DBLP-like corpus (%u publications)...\n",
              gen.num_publications);
  Stopwatch build_watch;
  auto suggester = std::make_shared<const XCleanSuggester>(
      XCleanSuggester::FromTree(GenerateDblp(gen)));
  std::vector<std::string> queries = MakeQueries(*suggester, 256, 20110411);
  std::printf("built in %.1fs; %zu distinct misspelled queries\n\n",
              build_watch.ElapsedSeconds(), queries.size());

  std::printf("%-6s %7s  %-5s %12s %9s %8s %8s %8s %8s\n", "mode", "threads",
              "cache", "qps", "speedup", "hit", "p50ms", "p95ms", "p99ms");

  const size_t kThreadCounts[] = {1, 2, 4, 8};
  double warm_speedup_at_4 = 0.0;
  for (bool cache_on : {false, true}) {
    double inline_base = 0.0;
    for (size_t threads : kThreadCounts) {
      RunResult r = RunInline(suggester, queries, threads, cache_on, seconds);
      if (threads == 1) inline_base = r.qps;
      if (cache_on && threads == 4 && inline_base > 0.0) {
        warm_speedup_at_4 = r.qps / inline_base;
      }
      PrintRow("inline", threads, cache_on, r, inline_base);
    }
    double pool_base = 0.0;
    for (size_t threads : kThreadCounts) {
      RunResult r = RunPool(suggester, queries, threads, cache_on, seconds);
      if (threads == 1) pool_base = r.qps;
      PrintRow("pool", threads, cache_on, r, pool_base);
    }
    std::printf("\n");
  }

  std::printf("== overload run: open-loop at 4x capacity ==\n");
  RunOverload(suggester, queries, small);
  std::printf("\n");

  std::printf("warm-cache inline speedup at 4 threads: %.2fx %s\n",
              warm_speedup_at_4, warm_speedup_at_4 >= 3.0 ? "(>=3x ok)" : "");
  if (cores < 4) {
    std::printf(
        "note: this machine has %u core(s); closed-loop speedup is bounded "
        "by min(threads, cores), so parallel scaling cannot show here. The "
        "engine has no serial section on the hit path (sharded cache locks, "
        "lock-free metrics, read-only shared snapshot).\n",
        cores);
  }
  return 0;
}
