#ifndef XCLEAN_BENCH_BENCH_COMMON_H_
#define XCLEAN_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/log_correct.h"
#include "core/py08.h"
#include "core/xclean.h"
#include "data/workload.h"
#include "index/xml_index.h"

namespace xclean::bench {

/// Scale knobs shared by every paper-table bench. The defaults are chosen
/// so the full bench suite regenerates every table/figure in a few minutes
/// on a laptop while preserving the statistical regimes the paper's
/// results depend on (Zipf skew, content-typo traps, deep vs shallow
/// structure). Set XCLEAN_BENCH_SMALL=1 in the environment for a quick
/// smoke-scale run.
struct BenchConfig {
  uint32_t dblp_publications = 20000;
  double dblp_typo_rate = 0.02;
  uint32_t inex_articles = 4000;
  double inex_typo_rate = 0.01;
  uint32_t queries_per_set = 100;
  /// FastSS index radius: 3 so the RULE sets can search their larger
  /// variant space (Sec. VII-A: RULE misspellings "are distant from the
  /// correct form, hence we need to explore a larger space of variants").
  uint32_t fastss_max_ed = 3;
  uint64_t seed = 20110411;  // ICDE 2011 opening day

  /// Loads defaults, then applies XCLEAN_BENCH_SMALL if set.
  static BenchConfig FromEnv();
};

/// One evaluation corpus: the index plus its three query sets.
struct Corpus {
  std::string name;  // "DBLP" or "INEX"
  std::unique_ptr<XmlIndex> index;
  std::vector<Query> initial;
  QuerySet clean;
  QuerySet rand;
  QuerySet rule;

  const QuerySet& set(Perturbation p) const {
    switch (p) {
      case Perturbation::kClean:
        return clean;
      case Perturbation::kRand:
        return rand;
      default:
        return rule;
    }
  }
};

/// Builds the DBLP-like corpus and its DBLP-{CLEAN,RAND,RULE} query sets.
Corpus BuildDblpCorpus(const BenchConfig& config);

/// Builds the INEX-like corpus and its INEX-{CLEAN,RAND,RULE} query sets.
Corpus BuildInexCorpus(const BenchConfig& config);

/// Edit threshold used per perturbation kind (RULE explores a larger
/// space, matching the paper's setup and its Table VI slowdown).
uint32_t EpsilonFor(Perturbation p);

/// Standard algorithm options for a query set (paper defaults: beta=5,
/// r=0.8, d=2, mu=2000).
XCleanOptions MakeXCleanOptions(Perturbation p, size_t gamma = 1000);
Py08Options MakePy08Options(Perturbation p, size_t gamma = 100);

/// Builds the SE-proxy trained on the corpus's clean queries.
std::unique_ptr<LogCorrector> MakeSeProxy(const Corpus& corpus,
                                          uint64_t seed);

/// All three perturbations in the paper's reporting order.
inline constexpr Perturbation kAllPerturbations[] = {
    Perturbation::kRand, Perturbation::kRule, Perturbation::kClean};

/// Human name of a perturbation ("RAND"/"RULE"/"CLEAN").
const char* PerturbationName(Perturbation p);

}  // namespace xclean::bench

#endif  // XCLEAN_BENCH_BENCH_COMMON_H_
