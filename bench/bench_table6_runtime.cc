// Reproduces Table VI of the paper: average running time per query
// (seconds) of XClean and PY08 on every query set, gamma = 1000 — plus
// the naive candidate-at-a-time scorer the paper's Sec. V argues against.
//
// Paper reference values (Table VI, seconds):
//   DBLP:  XClean 0.01/0.53/0.01 (RAND/RULE/CLEAN), PY08 0.17/5.11/0.16
//   INEX:  XClean 0.11/12.24/0.13, PY08 0.77/59.15/0.75
// Shapes to reproduce: RULE sets are by far the slowest (larger variant
// spaces); the INEX-like corpus is slower than the DBLP-like one; the
// naive scorer is the slowest strategy. The paper's 5-10x XClean-vs-PY08
// gap depends on corpus sizes (tens of GB) where repeated full-list
// passes dominate; at laptop scale the two converge — see EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "core/naive.h"
#include "eval/experiment.h"

using namespace xclean;
using namespace xclean::bench;

namespace {

/// One Table VI cell triple, kept around so the optional JSON dump (the
/// XCLEAN_BENCH_JSON env var names the output file) can be written after
/// the human-readable table. CI archives the file per commit so runtime
/// trends are diffable across runs without scraping stdout.
struct Row {
  std::string set;
  double xclean_ms;
  double py08_ms;
  double naive_ms;
};

void WriteJson(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "XCLEAN_BENCH_JSON: cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"set\": \"%s\", \"xclean_ms\": %.6f, "
                 "\"py08_ms\": %.6f, \"naive_ms\": %.6f}%s\n",
                 r.set.c_str(), r.xclean_ms, r.py08_ms, r.naive_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote JSON results to %s\n", path);
}

}  // namespace

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  std::vector<Corpus> corpora;
  corpora.push_back(BuildDblpCorpus(config));
  corpora.push_back(BuildInexCorpus(config));

  std::printf(
      "== Table VI: average running time per query in ms (gamma=1000) "
      "==\n");
  TablePrinter table({"query set", "XClean", "PY08", "Naive(capped)"});
  table.PrintHeader();
  std::vector<Row> rows;
  for (const Corpus& corpus : corpora) {
    for (Perturbation p : {Perturbation::kRand, Perturbation::kRule,
                           Perturbation::kClean}) {
      const QuerySet& set = corpus.set(p);
      XClean xclean_cleaner(*corpus.index, MakeXCleanOptions(p));
      Py08Cleaner py08(*corpus.index, MakePy08Options(p));
      NaiveCleaner naive(*corpus.index, MakeXCleanOptions(p));
      // The naive strategy is exponential in query length; cap its
      // candidate space so the bench terminates (skipped queries still
      // consume ~no time, biasing Naive's number DOWN — it is the lower
      // bound of an even worse truth).
      naive.set_candidate_cap(20000);
      ExperimentResult rx = RunExperiment(xclean_cleaner, set);
      ExperimentResult rp = RunExperiment(py08, set);
      ExperimentResult rn = RunExperiment(naive, set);
      table.PrintRow({set.name, TablePrinter::Num(rx.avg_seconds * 1e3),
                      TablePrinter::Num(rp.avg_seconds * 1e3),
                      TablePrinter::Num(rn.avg_seconds * 1e3)});
      rows.push_back(Row{set.name, rx.avg_seconds * 1e3,
                         rp.avg_seconds * 1e3, rn.avg_seconds * 1e3});
    }
  }
  std::printf(
      "\npaper shapes: RULE slowest by a wide margin; INEX-like slower "
      "than\nDBLP-like; naive slowest strategy.\n");
  if (const char* json_path = std::getenv("XCLEAN_BENCH_JSON")) {
    WriteJson(json_path, rows);
  }
  return 0;
}
