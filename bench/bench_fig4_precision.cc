// Reproduces Figures 4(a)-4(f): Precision@N (N = 1..10) of XClean, PY08
// and the SE proxy on every query set.
//
// Shape to reproduce (Sec. VII-C):
//  - XClean's curves are high and nearly flat in N ("most of the correct
//    suggestions are found at the top of the suggestion list"),
//  - PY08's curves start low and improve gradually with N,
//  - the SE proxy is a horizontal line (it returns one suggestion).

#include <cstdio>

#include "bench_common.h"
#include "eval/experiment.h"

using namespace xclean;
using namespace xclean::bench;

namespace {

void PrintSeries(const TablePrinter& table, const ExperimentResult& r) {
  std::vector<std::string> row = {r.cleaner_name};
  for (double p : r.precision_at) row.push_back(TablePrinter::Num(p));
  table.PrintRow(row);
}

}  // namespace

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  std::vector<Corpus> corpora;
  corpora.push_back(BuildDblpCorpus(config));
  corpora.push_back(BuildInexCorpus(config));

  const char* figure = "abcdef";
  int figure_index = 0;
  for (const Corpus& corpus : corpora) {
    auto se_proxy = MakeSeProxy(corpus, config.seed + 17);
    for (Perturbation p : {Perturbation::kRand, Perturbation::kRule,
                           Perturbation::kClean}) {
      const QuerySet& set = corpus.set(p);
      std::printf("\n== Figure 4(%c): Precision@N on %s ==\n",
                  figure[figure_index++], set.name.c_str());
      TablePrinter table({"system", "P@1", "P@2", "P@3", "P@4", "P@5", "P@6",
                          "P@7", "P@8", "P@9", "P@10"});
      table.PrintHeader();
      XClean xclean_cleaner(*corpus.index, MakeXCleanOptions(p));
      Py08Cleaner py08(*corpus.index, MakePy08Options(p));
      PrintSeries(table, RunExperiment(xclean_cleaner, set));
      PrintSeries(table, RunExperiment(py08, set));
      PrintSeries(table, RunExperiment(*se_proxy, set));
    }
  }
  return 0;
}
