#!/usr/bin/env python3
"""Compare two benchmark JSON files and flag perf regressions.

Understands both result formats this repo produces:
  * google-benchmark JSON (an object with a "benchmarks" list), as written
    by bench_micro/bench_build with --benchmark_out=..., and
  * the Table VI runtime dump (a list of {"set", "xclean_ms", "py08_ms",
    "naive_ms"} rows) written via the XCLEAN_BENCH_JSON env var.

Every metric is normalised to nanoseconds (lower is better). A metric
regresses when BOTH hold:
  current > baseline * (1 + --rel-tolerance)     # relative, noise-aware
  current - baseline > --abs-floor-ns            # absolute floor

The dual threshold keeps sub-microsecond kernels from tripping on
scheduler jitter while still catching a 2x regression on a 10 us bench.
Added benchmarks are reported but never fail the run (they are expected
whenever a PR adds a bench). A baseline key MISSING from the current run
is a hard failure under --enforce: a silently vanished benchmark is
indistinguishable from an unboundedly regressed one (a renamed or crashed
bench would otherwise pass CI forever). Retiring a bench deliberately
means either refreshing the committed baseline in the same PR or naming
the key in --allow-missing.

Usage:
  compare_bench.py --baseline BENCH_micro.json --current out.json \
      [--rel-tolerance 0.35] [--abs-floor-ns 100000] [--enforce] \
      [--allow-missing name ...] [--report report.md]
"""

import argparse
import json
import sys

_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_metrics(path):
    """Returns {metric_name: value_ns} for either supported format."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read benchmark JSON {path}: {e}")
    metrics = {}
    if isinstance(data, dict) and "benchmarks" in data:
        for bench in data["benchmarks"]:
            # Skip aggregate rows (mean/median/stddev of repetitions): the
            # iteration rows are what single-repetition CI runs produce.
            if bench.get("run_type", "iteration") != "iteration":
                continue
            scale = _UNIT_TO_NS.get(bench.get("time_unit", "ns"), 1.0)
            metrics[bench["name"]] = bench["real_time"] * scale
    elif isinstance(data, list):
        for row in data:
            name = row.get("set", "?")
            for key, value in row.items():
                if key == "set" or not isinstance(value, (int, float)):
                    continue
                scale = 1e6 if key.endswith("_ms") else 1.0
                metrics["%s/%s" % (name, key)] = value * scale
    else:
        raise ValueError("%s: unrecognised benchmark JSON shape" % path)
    return metrics


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return "%.3f %s" % (ns / scale, unit)
    return "%.0f ns" % ns


def main():
    parser = argparse.ArgumentParser(
        description="Flag perf regressions between two benchmark JSONs.")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly measured JSON")
    parser.add_argument("--rel-tolerance", type=float, default=0.35,
                        help="relative slowdown tolerated before flagging "
                             "(default 0.35 = 35%%, sized for shared CI "
                             "runners)")
    parser.add_argument("--abs-floor-ns", type=float, default=100000,
                        help="absolute slowdown (ns) a metric must also "
                             "exceed (default 100000 = 0.1 ms)")
    parser.add_argument("--enforce", action="store_true",
                        help="exit 1 when any metric regresses or a "
                             "baseline key is missing from the current run")
    parser.add_argument("--allow-missing", nargs="*", default=[],
                        metavar="NAME",
                        help="baseline keys that may be absent from the "
                             "current run without failing --enforce "
                             "(deliberately retired benches)")
    parser.add_argument("--report", default=None,
                        help="also write the report to this file")
    args = parser.parse_args()

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)

    regressions, improvements, stable = [], [], []
    for name in sorted(set(baseline) & set(current)):
        base, cur = baseline[name], current[name]
        ratio = cur / base if base > 0 else float("inf")
        line = "%-60s %12s -> %12s  (%+.1f%%)" % (
            name, fmt_ns(base), fmt_ns(cur), (ratio - 1.0) * 100.0)
        if cur > base * (1.0 + args.rel_tolerance) and \
                cur - base > args.abs_floor_ns:
            regressions.append(line)
        elif cur < base * (1.0 - args.rel_tolerance) and \
                base - cur > args.abs_floor_ns:
            improvements.append(line)
        else:
            stable.append(line)

    added = sorted(set(current) - set(baseline))
    removed = sorted(set(baseline) - set(current))
    allowed = set(args.allow_missing)
    unknown_allowed = sorted(allowed - set(baseline))
    missing = [name for name in removed if name not in allowed]

    out = []
    out.append("# Benchmark comparison")
    out.append("baseline: %s" % args.baseline)
    out.append("current:  %s" % args.current)
    out.append("thresholds: rel > %.0f%% AND abs > %s" %
               (args.rel_tolerance * 100.0, fmt_ns(args.abs_floor_ns)))
    out.append("")
    for title, lines in (("REGRESSIONS", regressions),
                         ("improvements", improvements),
                         ("stable", stable)):
        out.append("## %s (%d)" % (title, len(lines)))
        out.extend(lines or ["(none)"])
        out.append("")
    if added:
        out.append("## added (not compared): %s" % ", ".join(added))
    if removed:
        out.append("## MISSING from current run: %s" % ", ".join(removed))
        if allowed & set(removed):
            out.append("   allowlisted: %s" %
                       ", ".join(sorted(allowed & set(removed))))

    report = "\n".join(out) + "\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)

    failed = False
    if unknown_allowed:
        # A typo'd allowlist entry would silently re-open the hole this
        # check closes; reject names the baseline has never heard of.
        sys.stderr.write(
            "FAIL: --allow-missing names not present in the baseline: %s\n"
            % ", ".join(unknown_allowed))
        failed = True
    if regressions and args.enforce:
        sys.stderr.write(
            "FAIL: %d benchmark(s) regressed beyond the noise envelope. "
            "If the slowdown is intentional (e.g. a correctness fix), "
            "refresh the committed baseline in the same PR and explain "
            "why in the PR description.\n" % len(regressions))
        failed = True
    if missing and args.enforce:
        sys.stderr.write(
            "FAIL: %d baseline benchmark(s) missing from the current run: "
            "%s. A vanished bench hides any regression it would have "
            "caught; refresh the baseline or name the key in "
            "--allow-missing if the retirement is deliberate.\n"
            % (len(missing), ", ".join(missing)))
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
