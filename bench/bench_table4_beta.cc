// Reproduces Table IV of the paper: XClean's MRR as a function of the
// error penalty beta (Eq. 5), gamma = 1000.
//
// Paper reference values (Table IV): MRR rises steeply from beta=0 to
// beta=5, then plateaus; beta=5 is best or tied-best on almost every set,
// with minor decreases beyond 5 on the INEX sets.

#include <cstdio>

#include "bench_common.h"
#include "eval/experiment.h"

using namespace xclean;
using namespace xclean::bench;

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  std::vector<Corpus> corpora;
  corpora.push_back(BuildDblpCorpus(config));
  corpora.push_back(BuildInexCorpus(config));

  const double betas[] = {0.0, 1.0, 2.0, 5.0, 10.0, 20.0};

  std::printf("== Table IV: MRR vs error penalty beta (gamma=1000) ==\n");
  TablePrinter table({"query set", "b=0", "b=1", "b=2", "b=5", "b=10",
                      "b=20"});
  table.PrintHeader();
  for (const Corpus& corpus : corpora) {
    for (Perturbation p : {Perturbation::kRand, Perturbation::kRule,
                           Perturbation::kClean}) {
      const QuerySet& set = corpus.set(p);
      std::vector<std::string> row = {set.name};
      for (double beta : betas) {
        XCleanOptions options = MakeXCleanOptions(p);
        options.beta = beta;
        XClean cleaner(*corpus.index, options);
        row.push_back(TablePrinter::Num(RunExperiment(cleaner, set).mrr));
      }
      table.PrintRow(row);
    }
  }
  std::printf(
      "\npaper shape: sharp improvement 0 -> 5, plateau after; beta=5 "
      "best\noverall.\n");
  return 0;
}
