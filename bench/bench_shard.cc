// Scatter-gather overhead benchmark: coordinator fan-out over N in-process
// shards vs the unsharded single-index evaluation, on the same DBLP-like
// corpus and the same misspelled queries.
//
//   $ ./bench_shard              # full scale (~20k publications)
//   $ XCLEAN_BENCH_SMALL=1 ./bench_shard
//
// Three numbers per shard count N:
//
//   scatter: end-to-end Coordinator::Suggest latency — threaded fan-out,
//            gather, merge. The headline serving-topology cost.
//   serial:  sum of the N ShardServer::Evaluate calls run back to back on
//            one thread. N times the per-shard work minus all concurrency;
//            scatter below serial is the fan-out's parallel win.
//   merge:   Coordinator::Merge alone on pre-computed healthy outcomes —
//            the pure coordination tax (accumulator fold + renormalise +
//            rank), the part that cannot be parallelised away.
//
// gamma = 0 (unbounded accumulators) so every configuration computes the
// same exact scores as the unsharded oracle and the comparison is work for
// work; each run cross-checks the top suggestion against the oracle's.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/xclean.h"
#include "data/dblp_gen.h"
#include "data/workload.h"
#include "index/xml_index.h"
#include "shard/coordinator.h"
#include "shard/shard_server.h"
#include "shard/sharded_corpus.h"

namespace xclean::shard {
namespace {

constexpr uint64_t kSeed = 20110411;
constexpr uint64_t kGeneration = 1;

XCleanOptions BenchOptions() {
  XCleanOptions options;
  options.gamma = 0;  // exactness precondition; see header comment
  return options;
}

std::vector<Query> MakeQueries(const XmlIndex& index, uint32_t count) {
  WorkloadOptions wl;
  wl.num_queries = count;
  wl.seed = kSeed;
  std::vector<Query> initial = SampleInitialQueries(index, wl);
  Rng rng(kSeed);
  std::vector<Query> out;
  out.reserve(initial.size());
  for (const Query& q : initial) {
    out.push_back(PerturbRand(q, index, wl, rng));
  }
  return out;
}

struct ShardFleet {
  ShardedCorpus corpus;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<ShardBackend*> backends;
  std::unique_ptr<Coordinator> coordinator;
};

ShardFleet MakeFleet(const XmlTree& corpus, size_t num_shards) {
  ShardedCorpusOptions options;
  options.num_shards = num_shards;
  options.xclean = BenchOptions();
  Result<ShardedCorpus> built =
      BuildShardedCorpus(corpus, options, kGeneration);
  if (!built.ok()) {
    std::fprintf(stderr, "BuildShardedCorpus(%zu): %s\n", num_shards,
                 built.status().ToString().c_str());
    std::exit(1);
  }
  ShardFleet fleet;
  fleet.corpus = std::move(built).value();
  for (uint32_t s = 0; s < fleet.corpus.num_shards(); ++s) {
    fleet.servers.push_back(
        std::make_unique<ShardServer>(s, fleet.corpus.engine, kGeneration));
    fleet.backends.push_back(fleet.servers.back().get());
  }
  CoordinatorOptions copts;
  copts.fanout_timeout = std::chrono::milliseconds(5000);
  fleet.coordinator = std::make_unique<Coordinator>(
      fleet.backends, fleet.corpus.stats, BenchOptions(), copts);
  return fleet;
}

double MeanMs(double total_ms, size_t count) {
  return count == 0 ? 0.0 : total_ms / static_cast<double>(count);
}

}  // namespace
}  // namespace xclean::shard

int main() {
  using namespace xclean;
  using namespace xclean::shard;

  const bool small = std::getenv("XCLEAN_BENCH_SMALL") != nullptr;
  DblpGenOptions gen;
  gen.num_publications = small ? 3000 : 20000;
  const int rounds = small ? 3 : 10;

  std::printf("building DBLP-like corpus (%u publications)...\n",
              gen.num_publications);
  Stopwatch build_watch;
  const XmlTree corpus = GenerateDblp(gen);
  std::unique_ptr<XmlIndex> oracle_index =
      XmlIndex::Build(GenerateDblp(gen), IndexOptions());
  XClean oracle(*oracle_index, BenchOptions());
  const std::vector<Query> queries = MakeQueries(*oracle_index, 64);
  std::printf("built in %.1fs; %zu misspelled queries, %d rounds each\n\n",
              build_watch.ElapsedSeconds(), queries.size(), rounds);

  // Unsharded baseline: the single-index evaluation every topology is
  // measured against.
  std::vector<std::vector<Suggestion>> oracle_answers;
  oracle_answers.reserve(queries.size());
  double oracle_ms = 0.0;
  for (int r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < queries.size(); ++i) {
      Stopwatch watch;
      std::vector<Suggestion> got = oracle.Suggest(queries[i]);
      oracle_ms += watch.ElapsedSeconds() * 1000.0;
      if (r == 0) oracle_answers.push_back(std::move(got));
    }
  }
  const double oracle_mean = MeanMs(oracle_ms, queries.size() * rounds);
  std::printf("%7s %12s %12s %12s %10s\n", "shards", "scatter-ms", "serial-ms",
              "merge-ms", "vs-oracle");
  std::printf("%7s %12.3f %12s %12s %10s\n", "1 (un)", oracle_mean, "-", "-",
              "1.00x");

  for (size_t num_shards : {2, 4, 8}) {
    ShardFleet fleet = MakeFleet(corpus, num_shards);

    // End-to-end threaded fan-out, with a top-1 cross-check per query.
    double scatter_ms = 0.0;
    size_t mismatches = 0;
    for (int r = 0; r < rounds; ++r) {
      for (size_t i = 0; i < queries.size(); ++i) {
        Stopwatch watch;
        CoordinatorResult result =
            fleet.coordinator->Suggest(queries[i], kGeneration);
        scatter_ms += watch.ElapsedSeconds() * 1000.0;
        const std::vector<Suggestion>& want = oracle_answers[i];
        const bool top_matches =
            result.suggestions.empty()
                ? want.empty()
                : !want.empty() &&
                      result.suggestions[0].words == want[0].words;
        if (!result.status.ok() || result.truncated || !top_matches) {
          ++mismatches;
        }
      }
    }

    // The same legs, serially on this thread, then the merge alone.
    double serial_ms = 0.0;
    double merge_ms = 0.0;
    for (int r = 0; r < rounds; ++r) {
      for (const Query& query : queries) {
        std::vector<ShardOutcome> outcomes(num_shards);
        Stopwatch serial_watch;
        for (size_t s = 0; s < num_shards; ++s) {
          ShardRequest request;
          request.query = query;
          outcomes[s] = {ShardOutcomeKind::kOk,
                         fleet.backends[s]->Evaluate(request)};
        }
        serial_ms += serial_watch.ElapsedSeconds() * 1000.0;
        Stopwatch merge_watch;
        CoordinatorResult merged = Coordinator::Merge(
            *fleet.corpus.stats, BenchOptions(),
            fleet.coordinator->options(), kGeneration, outcomes);
        merge_ms += merge_watch.ElapsedSeconds() * 1000.0;
        if (!merged.status.ok()) ++mismatches;
      }
    }

    const double scatter_mean = MeanMs(scatter_ms, queries.size() * rounds);
    std::printf("%7zu %12.3f %12.3f %12.3f %9.2fx%s\n", num_shards,
                scatter_mean, MeanMs(serial_ms, queries.size() * rounds),
                MeanMs(merge_ms, queries.size() * rounds),
                oracle_mean > 0 ? scatter_mean / oracle_mean : 0.0,
                mismatches ? "  [MISMATCH]" : "");
    if (mismatches) {
      std::fprintf(stderr,
                   "%zu of %zu scatter-gather answers disagreed with the "
                   "unsharded oracle's top suggestion\n",
                   mismatches, queries.size() * static_cast<size_t>(rounds));
      return 1;
    }
  }

  std::printf(
      "\nscatter = threaded fan-out end to end; serial = the N per-shard\n"
      "evaluations back to back on one thread; merge = accumulator fold +\n"
      "renormalise + rank only. scatter/serial gap is the parallel win,\n"
      "merge is the coordination tax.\n");
  return 0;
}
