// Scatter-gather overhead benchmark: coordinator fan-out over N in-process
// shards vs the unsharded single-index evaluation, on the same DBLP-like
// corpus and the same misspelled queries.
//
//   $ ./bench_shard              # full scale (~20k publications)
//   $ XCLEAN_BENCH_SMALL=1 ./bench_shard
//
// Three numbers per shard count N:
//
//   scatter: end-to-end Coordinator::Suggest latency — threaded fan-out,
//            gather, merge. The headline serving-topology cost.
//   serial:  sum of the N ShardServer::Evaluate calls run back to back on
//            one thread. N times the per-shard work minus all concurrency;
//            scatter below serial is the fan-out's parallel win.
//   merge:   Coordinator::Merge alone on pre-computed healthy outcomes —
//            the pure coordination tax (accumulator fold + renormalise +
//            rank), the part that cannot be parallelised away.
//
// gamma = 0 (unbounded accumulators) so every configuration computes the
// same exact scores as the unsharded oracle and the comparison is work for
// work; each run cross-checks the top suggestion against the oracle's.
//
// Two wire sections follow the in-process table: the same scatter-gather
// with every shard behind a real loopback socket (RpcShardServer +
// RpcShardBackend) prices serialization + framing + syscalls against the
// in-process fan-out, and the straggler-tail comparison is repeated with
// both replicas of every shard behind sockets, so the hedged p99 is
// measured over the wire — cancel frames and all. XCLEAN_BENCH_JSON dumps
// all three sections.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/xclean.h"
#include "data/dblp_gen.h"
#include "data/workload.h"
#include "index/xml_index.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_shard_server.h"
#include "shard/coordinator.h"
#include "shard/replica_set.h"
#include "shard/shard_server.h"
#include "shard/sharded_corpus.h"

namespace xclean::shard {
namespace {

constexpr uint64_t kSeed = 20110411;
constexpr uint64_t kGeneration = 1;

XCleanOptions BenchOptions() {
  XCleanOptions options;
  options.gamma = 0;  // exactness precondition; see header comment
  return options;
}

std::vector<Query> MakeQueries(const XmlIndex& index, uint32_t count) {
  WorkloadOptions wl;
  wl.num_queries = count;
  wl.seed = kSeed;
  std::vector<Query> initial = SampleInitialQueries(index, wl);
  Rng rng(kSeed);
  std::vector<Query> out;
  out.reserve(initial.size());
  for (const Query& q : initial) {
    out.push_back(PerturbRand(q, index, wl, rng));
  }
  return out;
}

struct ShardFleet {
  ShardedCorpus corpus;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<ShardBackend*> backends;
  std::unique_ptr<Coordinator> coordinator;
};

ShardFleet MakeFleet(const XmlTree& corpus, size_t num_shards) {
  ShardedCorpusOptions options;
  options.num_shards = num_shards;
  options.xclean = BenchOptions();
  Result<ShardedCorpus> built =
      BuildShardedCorpus(corpus, options, kGeneration);
  if (!built.ok()) {
    std::fprintf(stderr, "BuildShardedCorpus(%zu): %s\n", num_shards,
                 built.status().ToString().c_str());
    std::exit(1);
  }
  ShardFleet fleet;
  fleet.corpus = std::move(built).value();
  for (uint32_t s = 0; s < fleet.corpus.num_shards(); ++s) {
    fleet.servers.push_back(
        std::make_unique<ShardServer>(s, fleet.corpus.engine, kGeneration));
    fleet.backends.push_back(fleet.servers.back().get());
  }
  CoordinatorOptions copts;
  copts.fanout_timeout = std::chrono::milliseconds(5000);
  fleet.coordinator = std::make_unique<Coordinator>(
      fleet.backends, fleet.corpus.stats, BenchOptions(), copts);
  return fleet;
}

double MeanMs(double total_ms, size_t count) {
  return count == 0 ? 0.0 : total_ms / static_cast<double>(count);
}

/// The same fleet with every shard behind a real loopback socket: a
/// ShardServer per shard fronted by an RpcShardServer, an RpcShardBackend
/// dialing it, and the coordinator fanning out over the clients. The delta
/// against the in-process scatter is the whole wire tax — exact request/
/// response serialization, frame checksums, and loopback syscalls.
struct RpcFleet {
  std::vector<std::unique_ptr<ShardServer>> backends;
  std::vector<std::unique_ptr<rpc::RpcShardServer>> servers;
  std::vector<std::unique_ptr<rpc::RpcShardBackend>> clients;
  std::vector<ShardBackend*> backend_ptrs;
  std::unique_ptr<Coordinator> coordinator;
};

RpcFleet MakeRpcFleet(const ShardedCorpus& sharded) {
  RpcFleet fleet;
  for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
    fleet.backends.push_back(
        std::make_unique<ShardServer>(s, sharded.engine, kGeneration));
    rpc::RpcServerOptions sopts;
    sopts.shard_id = s;
    fleet.servers.push_back(std::make_unique<rpc::RpcShardServer>(
        fleet.backends.back().get(), sopts));
    const Status started = fleet.servers.back()->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "RpcShardServer(%u): %s\n", s,
                   started.ToString().c_str());
      std::exit(1);
    }
    fleet.clients.push_back(std::make_unique<rpc::RpcShardBackend>(
        fleet.servers.back()->port(), s));
    fleet.backend_ptrs.push_back(fleet.clients.back().get());
  }
  CoordinatorOptions copts;
  copts.fanout_timeout = std::chrono::milliseconds(5000);
  fleet.coordinator = std::make_unique<Coordinator>(
      fleet.backend_ptrs, sharded.stats, BenchOptions(), copts);
  return fleet;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

/// A replica whose transport occasionally stalls: every `period`-th call
/// sleeps `delay` (watching the hedged-loser kill switch) before
/// delegating — the deterministic stand-in for the straggling machine
/// hedging exists to route around.
class StragglerBackend : public ShardBackend {
 public:
  StragglerBackend(uint32_t shard_id,
                   std::shared_ptr<const delta::LayeredXClean> engine,
                   std::chrono::milliseconds delay, uint32_t period)
      : delay_(delay), period_(period), server_(shard_id, engine, kGeneration) {}

  ShardResponse Evaluate(const ShardRequest& request) override {
    if (++calls_ % period_ == 0) {
      const auto step = std::chrono::milliseconds(1);
      for (auto waited = std::chrono::milliseconds(0); waited < delay_;
           waited += step) {
        if (request.external_cancel != nullptr &&
            request.external_cancel->load(std::memory_order_acquire)) {
          break;  // hedge already won; stop stalling and answer cheap
        }
        std::this_thread::sleep_for(step);
      }
    }
    return server_.Evaluate(request);
  }

 private:
  const std::chrono::milliseconds delay_;
  const uint32_t period_;
  uint32_t calls_ = 0;
  ShardServer server_;
};

/// Latency distribution of the coordinator over straggler-primary replica
/// sets, hedged vs unhedged. Same backends, same queries; the only
/// difference is whether the ReplicaSets get a hedge pool.
struct HedgeResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
};

HedgeResult RunHedgeLeg(const ShardedCorpus& sharded,
                        const std::vector<Query>& queries, int rounds,
                        bool hedged) {
  ThreadPoolOptions popts;
  popts.num_threads = 2 * sharded.num_shards();
  ThreadPool hedge_pool(popts);

  std::vector<std::unique_ptr<StragglerBackend>> primaries;
  std::vector<std::unique_ptr<ShardServer>> siblings;
  std::vector<std::unique_ptr<ReplicaSet>> sets;
  std::vector<ShardBackend*> backends;
  for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
    primaries.push_back(std::make_unique<StragglerBackend>(
        s, sharded.engine, std::chrono::milliseconds(25), /*period=*/13));
    siblings.push_back(
        std::make_unique<ShardServer>(s, sharded.engine, kGeneration));
    ReplicaSetOptions ropts;
    if (hedged) {
      ropts.hedge_pool = &hedge_pool;
      ropts.hedge_rate_cap = 1.0;  // price the mechanism, not the budget
      ropts.hedge_delay_floor = std::chrono::milliseconds(2);
      ropts.hedge_delay_cap = std::chrono::milliseconds(10);
    }
    sets.push_back(std::make_unique<ReplicaSet>(
        s,
        std::vector<ShardBackend*>{primaries.back().get(),
                                   siblings.back().get()},
        ropts));
    backends.push_back(sets.back().get());
  }
  CoordinatorOptions copts;
  copts.fanout_timeout = std::chrono::milliseconds(5000);
  Coordinator coordinator(backends, sharded.stats, BenchOptions(), copts);

  std::vector<double> samples;
  samples.reserve(queries.size() * static_cast<size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    for (const Query& query : queries) {
      Stopwatch watch;
      CoordinatorResult result = coordinator.Suggest(query, kGeneration);
      samples.push_back(watch.ElapsedSeconds() * 1000.0);
      if (!result.status.ok()) {
        std::fprintf(stderr, "hedge leg failed: %s\n",
                     result.status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  HedgeResult out;
  out.p50_ms = Percentile(samples, 0.50);
  out.p99_ms = Percentile(samples, 0.99);
  for (const auto& set : sets) {
    const ReplicaSetStats stats = set->stats();
    out.hedges += stats.hedges;
    out.hedge_wins += stats.hedge_wins;
  }
  return out;
}

/// The straggler-tail experiment over the wire: both replicas of every
/// shard sit behind a real RpcShardServer socket and the ReplicaSet races
/// RpcShardBackend clients. A hedge win now exercises the full cancel
/// path — the loser's client sends a cancel frame, the server raises the
/// evaluation's external-cancel flag, the straggler stops stalling and
/// flushes its truncated response, and the connection stays pooled.
HedgeResult RunWireHedgeLeg(const ShardedCorpus& sharded,
                            const std::vector<Query>& queries, int rounds,
                            bool hedged) {
  ThreadPoolOptions popts;
  popts.num_threads = 2 * sharded.num_shards();
  ThreadPool hedge_pool(popts);

  std::vector<std::unique_ptr<StragglerBackend>> primaries;
  std::vector<std::unique_ptr<ShardServer>> siblings;
  std::vector<std::unique_ptr<rpc::RpcShardServer>> wire_servers;
  std::vector<std::unique_ptr<rpc::RpcShardBackend>> wire_clients;
  std::vector<std::unique_ptr<ReplicaSet>> sets;
  std::vector<ShardBackend*> backends;
  for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
    primaries.push_back(std::make_unique<StragglerBackend>(
        s, sharded.engine, std::chrono::milliseconds(25), /*period=*/13));
    siblings.push_back(
        std::make_unique<ShardServer>(s, sharded.engine, kGeneration));
    std::vector<ShardBackend*> replicas;
    for (ShardBackend* local :
         {static_cast<ShardBackend*>(primaries.back().get()),
          static_cast<ShardBackend*>(siblings.back().get())}) {
      rpc::RpcServerOptions sopts;
      sopts.shard_id = s;
      wire_servers.push_back(
          std::make_unique<rpc::RpcShardServer>(local, sopts));
      const Status started = wire_servers.back()->Start();
      if (!started.ok()) {
        std::fprintf(stderr, "wire hedge RpcShardServer(%u): %s\n", s,
                     started.ToString().c_str());
        std::exit(1);
      }
      wire_clients.push_back(std::make_unique<rpc::RpcShardBackend>(
          wire_servers.back()->port(), s));
      replicas.push_back(wire_clients.back().get());
    }
    ReplicaSetOptions ropts;
    if (hedged) {
      ropts.hedge_pool = &hedge_pool;
      ropts.hedge_rate_cap = 1.0;  // price the mechanism, not the budget
      ropts.hedge_delay_floor = std::chrono::milliseconds(2);
      ropts.hedge_delay_cap = std::chrono::milliseconds(10);
    }
    sets.push_back(std::make_unique<ReplicaSet>(s, replicas, ropts));
    backends.push_back(sets.back().get());
  }
  CoordinatorOptions copts;
  copts.fanout_timeout = std::chrono::milliseconds(5000);
  Coordinator coordinator(backends, sharded.stats, BenchOptions(), copts);

  std::vector<double> samples;
  samples.reserve(queries.size() * static_cast<size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    for (const Query& query : queries) {
      Stopwatch watch;
      CoordinatorResult result = coordinator.Suggest(query, kGeneration);
      samples.push_back(watch.ElapsedSeconds() * 1000.0);
      if (!result.status.ok()) {
        std::fprintf(stderr, "wire hedge leg failed: %s\n",
                     result.status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  HedgeResult out;
  out.p50_ms = Percentile(samples, 0.50);
  out.p99_ms = Percentile(samples, 0.99);
  for (const auto& set : sets) {
    const ReplicaSetStats stats = set->stats();
    out.hedges += stats.hedges;
    out.hedge_wins += stats.hedge_wins;
  }
  return out;
}

}  // namespace
}  // namespace xclean::shard

int main() {
  using namespace xclean;
  using namespace xclean::shard;

  const bool small = std::getenv("XCLEAN_BENCH_SMALL") != nullptr;
  DblpGenOptions gen;
  gen.num_publications = small ? 3000 : 20000;
  const int rounds = small ? 3 : 10;

  std::printf("building DBLP-like corpus (%u publications)...\n",
              gen.num_publications);
  Stopwatch build_watch;
  const XmlTree corpus = GenerateDblp(gen);
  std::unique_ptr<XmlIndex> oracle_index =
      XmlIndex::Build(GenerateDblp(gen), IndexOptions());
  XClean oracle(*oracle_index, BenchOptions());
  const std::vector<Query> queries = MakeQueries(*oracle_index, 64);
  std::printf("built in %.1fs; %zu misspelled queries, %d rounds each\n\n",
              build_watch.ElapsedSeconds(), queries.size(), rounds);

  // Unsharded baseline: the single-index evaluation every topology is
  // measured against.
  std::vector<std::vector<Suggestion>> oracle_answers;
  oracle_answers.reserve(queries.size());
  double oracle_ms = 0.0;
  for (int r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < queries.size(); ++i) {
      Stopwatch watch;
      std::vector<Suggestion> got = oracle.Suggest(queries[i]);
      oracle_ms += watch.ElapsedSeconds() * 1000.0;
      if (r == 0) oracle_answers.push_back(std::move(got));
    }
  }
  const double oracle_mean = MeanMs(oracle_ms, queries.size() * rounds);
  std::printf("%7s %12s %12s %12s %10s\n", "shards", "scatter-ms", "serial-ms",
              "merge-ms", "vs-oracle");
  std::printf("%7s %12.3f %12s %12s %10s\n", "1 (un)", oracle_mean, "-", "-",
              "1.00x");

  for (size_t num_shards : {2, 4, 8}) {
    ShardFleet fleet = MakeFleet(corpus, num_shards);

    // End-to-end threaded fan-out, with a top-1 cross-check per query.
    double scatter_ms = 0.0;
    size_t mismatches = 0;
    for (int r = 0; r < rounds; ++r) {
      for (size_t i = 0; i < queries.size(); ++i) {
        Stopwatch watch;
        CoordinatorResult result =
            fleet.coordinator->Suggest(queries[i], kGeneration);
        scatter_ms += watch.ElapsedSeconds() * 1000.0;
        const std::vector<Suggestion>& want = oracle_answers[i];
        const bool top_matches =
            result.suggestions.empty()
                ? want.empty()
                : !want.empty() &&
                      result.suggestions[0].words == want[0].words;
        if (!result.status.ok() || result.truncated || !top_matches) {
          ++mismatches;
        }
      }
    }

    // The same legs, serially on this thread, then the merge alone.
    double serial_ms = 0.0;
    double merge_ms = 0.0;
    for (int r = 0; r < rounds; ++r) {
      for (const Query& query : queries) {
        std::vector<ShardOutcome> outcomes(num_shards);
        Stopwatch serial_watch;
        for (size_t s = 0; s < num_shards; ++s) {
          ShardRequest request;
          request.query = query;
          outcomes[s] = {ShardOutcomeKind::kOk,
                         fleet.backends[s]->Evaluate(request)};
        }
        serial_ms += serial_watch.ElapsedSeconds() * 1000.0;
        Stopwatch merge_watch;
        CoordinatorResult merged = Coordinator::Merge(
            *fleet.corpus.stats, BenchOptions(),
            fleet.coordinator->options(), kGeneration, outcomes);
        merge_ms += merge_watch.ElapsedSeconds() * 1000.0;
        if (!merged.status.ok()) ++mismatches;
      }
    }

    const double scatter_mean = MeanMs(scatter_ms, queries.size() * rounds);
    std::printf("%7zu %12.3f %12.3f %12.3f %9.2fx%s\n", num_shards,
                scatter_mean, MeanMs(serial_ms, queries.size() * rounds),
                MeanMs(merge_ms, queries.size() * rounds),
                oracle_mean > 0 ? scatter_mean / oracle_mean : 0.0,
                mismatches ? "  [MISMATCH]" : "");
    if (mismatches) {
      std::fprintf(stderr,
                   "%zu of %zu scatter-gather answers disagreed with the "
                   "unsharded oracle's top suggestion\n",
                   mismatches, queries.size() * static_cast<size_t>(rounds));
      return 1;
    }
  }

  std::printf(
      "\nscatter = threaded fan-out end to end; serial = the N per-shard\n"
      "evaluations back to back on one thread; merge = accumulator fold +\n"
      "renormalise + rank only. scatter/serial gap is the parallel win,\n"
      "merge is the coordination tax.\n");

  const size_t num_shards = 4;
  ShardFleet fleet = MakeFleet(corpus, num_shards);  // reuses the build

  // Wire tax: the identical scatter-gather, but every per-shard leg now
  // crosses a real loopback socket — exact request/response serialization,
  // checksummed frames, connect/read/write syscalls. Each shard's
  // connection is dialed once and then pooled, so the steady-state delta
  // vs the in-process fan-out is pure per-request wire cost.
  double inproc_mean = 0.0, inproc_p50 = 0.0, inproc_p99 = 0.0;
  double wire_mean = 0.0, wire_p50 = 0.0, wire_p99 = 0.0;
  unsigned long long wire_dials = 0, wire_reuses = 0;
  {
    RpcFleet rpc_fleet = MakeRpcFleet(fleet.corpus);
    std::vector<double> inproc_samples, wire_samples;
    inproc_samples.reserve(queries.size() * static_cast<size_t>(rounds));
    wire_samples.reserve(queries.size() * static_cast<size_t>(rounds));
    size_t mismatches = 0;
    for (int r = 0; r < rounds; ++r) {
      for (size_t i = 0; i < queries.size(); ++i) {
        Stopwatch inproc_watch;
        CoordinatorResult local =
            fleet.coordinator->Suggest(queries[i], kGeneration);
        inproc_samples.push_back(inproc_watch.ElapsedSeconds() * 1000.0);
        Stopwatch wire_watch;
        CoordinatorResult wired =
            rpc_fleet.coordinator->Suggest(queries[i], kGeneration);
        wire_samples.push_back(wire_watch.ElapsedSeconds() * 1000.0);
        const std::vector<Suggestion>& want = oracle_answers[i];
        for (const CoordinatorResult* result : {&local, &wired}) {
          const bool top_matches =
              result->suggestions.empty()
                  ? want.empty()
                  : !want.empty() &&
                        result->suggestions[0].words == want[0].words;
          if (!result->status.ok() || result->truncated || !top_matches) {
            ++mismatches;
          }
        }
      }
    }
    inproc_mean = MeanMs(
        std::accumulate(inproc_samples.begin(), inproc_samples.end(), 0.0),
        inproc_samples.size());
    inproc_p50 = Percentile(inproc_samples, 0.50);
    inproc_p99 = Percentile(inproc_samples, 0.99);
    wire_mean = MeanMs(
        std::accumulate(wire_samples.begin(), wire_samples.end(), 0.0),
        wire_samples.size());
    wire_p50 = Percentile(wire_samples, 0.50);
    wire_p99 = Percentile(wire_samples, 0.99);
    for (const auto& client : rpc_fleet.clients) {
      const rpc::RpcClientStats stats = client->stats();
      wire_dials += stats.dials;
      wire_reuses += stats.pooled_reuses;
    }
    std::printf("\nwire tax (%zu shards, loopback RPC vs in-process):\n",
                num_shards);
    std::printf("%11s %10s %10s %10s\n", "", "mean-ms", "p50-ms", "p99-ms");
    std::printf("%11s %10.3f %10.3f %10.3f\n", "in-process", inproc_mean,
                inproc_p50, inproc_p99);
    std::printf("%11s %10.3f %10.3f %10.3f   (dials=%llu reuses=%llu)%s\n",
                "loopback", wire_mean, wire_p50, wire_p99, wire_dials,
                wire_reuses, mismatches ? "  [MISMATCH]" : "");
    if (mismatches) {
      std::fprintf(stderr,
                   "%zu wire-tax answers disagreed with the unsharded "
                   "oracle's top suggestion\n", mismatches);
      return 1;
    }
  }

  // Tail latency with a straggling primary on every shard (1 in 13 calls
  // stalls 25ms): hedging fires a sibling attempt after a small delay and
  // the first usable answer wins, so the p99 collapses toward the healthy
  // path while the p50 (no straggle, no hedge needed) stays put. The wire
  // rows repeat the experiment with both replicas behind real sockets, so
  // the hedged row prices the full cancel-frame path too.
  const HedgeResult unhedged =
      RunHedgeLeg(fleet.corpus, queries, rounds, /*hedged=*/false);
  const HedgeResult hedged =
      RunHedgeLeg(fleet.corpus, queries, rounds, /*hedged=*/true);
  const HedgeResult wire_unhedged =
      RunWireHedgeLeg(fleet.corpus, queries, rounds, /*hedged=*/false);
  const HedgeResult wire_hedged =
      RunWireHedgeLeg(fleet.corpus, queries, rounds, /*hedged=*/true);
  std::printf(
      "\nstraggler tail (%zu shards, 2 replicas each, 1/13 legs stall "
      "25ms):\n", num_shards);
  std::printf("%15s %10s %10s %10s %12s\n", "", "p50-ms", "p99-ms",
              "hedges", "hedge-wins");
  std::printf("%15s %10.3f %10.3f %10s %12s\n", "unhedged", unhedged.p50_ms,
              unhedged.p99_ms, "-", "-");
  std::printf("%15s %10.3f %10.3f %10llu %12llu\n", "hedged", hedged.p50_ms,
              hedged.p99_ms,
              static_cast<unsigned long long>(hedged.hedges),
              static_cast<unsigned long long>(hedged.hedge_wins));
  std::printf("%15s %10.3f %10.3f %10s %12s\n", "wire unhedged",
              wire_unhedged.p50_ms, wire_unhedged.p99_ms, "-", "-");
  std::printf("%15s %10.3f %10.3f %10llu %12llu\n", "wire hedged",
              wire_hedged.p50_ms, wire_hedged.p99_ms,
              static_cast<unsigned long long>(wire_hedged.hedges),
              static_cast<unsigned long long>(wire_hedged.hedge_wins));

  if (const char* json_path = std::getenv("XCLEAN_BENCH_JSON")) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f != nullptr) {
      std::fprintf(
          f,
          "[\n  {\"bench\": \"shard_hedge\", "
          "\"unhedged_p50_ms\": %.6f, \"unhedged_p99_ms\": %.6f, "
          "\"hedged_p50_ms\": %.6f, \"hedged_p99_ms\": %.6f, "
          "\"hedges\": %llu, \"hedge_wins\": %llu},\n",
          unhedged.p50_ms, unhedged.p99_ms, hedged.p50_ms, hedged.p99_ms,
          static_cast<unsigned long long>(hedged.hedges),
          static_cast<unsigned long long>(hedged.hedge_wins));
      std::fprintf(
          f,
          "  {\"bench\": \"rpc_wire_tax\", "
          "\"inproc_mean_ms\": %.6f, \"inproc_p50_ms\": %.6f, "
          "\"inproc_p99_ms\": %.6f, \"wire_mean_ms\": %.6f, "
          "\"wire_p50_ms\": %.6f, \"wire_p99_ms\": %.6f, "
          "\"dials\": %llu, \"pooled_reuses\": %llu},\n",
          inproc_mean, inproc_p50, inproc_p99, wire_mean, wire_p50,
          wire_p99, wire_dials, wire_reuses);
      std::fprintf(
          f,
          "  {\"bench\": \"rpc_wire_hedge\", "
          "\"unhedged_p50_ms\": %.6f, \"unhedged_p99_ms\": %.6f, "
          "\"hedged_p50_ms\": %.6f, \"hedged_p99_ms\": %.6f, "
          "\"hedges\": %llu, \"hedge_wins\": %llu}\n]\n",
          wire_unhedged.p50_ms, wire_unhedged.p99_ms, wire_hedged.p50_ms,
          wire_hedged.p99_ms,
          static_cast<unsigned long long>(wire_hedged.hedges),
          static_cast<unsigned long long>(wire_hedged.hedge_wins));
      std::fclose(f);
      std::printf("wrote JSON results to %s\n", json_path);
    } else {
      std::fprintf(stderr, "XCLEAN_BENCH_JSON: cannot open %s\n",
                   json_path);
    }
  }
  return 0;
}
