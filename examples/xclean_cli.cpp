// Command-line front end: the shape of a real deployment (offline index
// build, online suggestion serving).
//
//   xclean_cli index   <corpus.xml> <out.idx>     build & save an index
//   xclean_cli stats   <file.idx|corpus.xml>      print Table-I statistics
//   xclean_cli suggest <file.idx|corpus.xml> <query words...>
//   xclean_cli demo                               end-to-end demo on a
//                                                 generated corpus
//
// Files ending in ".idx" are loaded as saved indexes; anything else is
// parsed as XML and indexed on the fly.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/xclean.h"
#include "data/dblp_gen.h"
#include "index/index_io.h"
#include "xml/parser.h"

namespace {

using namespace xclean;

int Usage() {
  std::printf(
      "xclean_cli — valid spelling suggestions for XML keyword queries\n"
      "\n"
      "  xclean_cli index   <corpus.xml> <out.idx>\n"
      "  xclean_cli stats   <file.idx | corpus.xml>\n"
      "  xclean_cli suggest <file.idx | corpus.xml> <query words...>\n"
      "  xclean_cli demo\n");
  return 0;
}

std::unique_ptr<XmlIndex> OpenIndex(const std::string& path) {
  Stopwatch watch;
  std::unique_ptr<XmlIndex> index;
  if (EndsWith(path, ".idx")) {
    Result<std::unique_ptr<XmlIndex>> loaded = LoadIndex(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return nullptr;
    }
    index = std::move(loaded).value();
    std::fprintf(stderr, "loaded index in %.2fs\n", watch.ElapsedSeconds());
  } else {
    Result<XmlTree> tree = ParseXmlFile(path);
    if (!tree.ok()) {
      std::fprintf(stderr, "error: %s\n", tree.status().ToString().c_str());
      return nullptr;
    }
    index = XmlIndex::Build(std::move(tree).value());
    std::fprintf(stderr, "parsed + indexed in %.2fs\n",
                 watch.ElapsedSeconds());
  }
  return index;
}

void PrintStats(const XmlIndex& index) {
  IndexStats stats = index.stats();
  std::printf("nodes:             %llu\n",
              static_cast<unsigned long long>(stats.node_count));
  std::printf("text nodes:        %llu\n",
              static_cast<unsigned long long>(stats.text_node_count));
  std::printf("token occurrences: %llu\n",
              static_cast<unsigned long long>(stats.token_occurrences));
  std::printf("vocabulary:        %llu\n",
              static_cast<unsigned long long>(stats.vocabulary_size));
  std::printf("label paths:       %llu\n",
              static_cast<unsigned long long>(stats.path_count));
  std::printf("max depth:         %u\n", stats.max_depth);
  std::printf("avg depth:         %.2f\n", stats.avg_depth);
}

int RunSuggest(XmlIndex& index, const std::string& query_text) {
  XCleanOptions options;
  options.gamma = 1000;
  options.max_ed = std::min(2u, index.options().fastss_max_ed);
  XClean cleaner(index, options);
  Query query = ParseQuery(query_text, index.tokenizer());
  if (query.empty()) {
    std::printf("query is empty after normalization\n");
    return 1;
  }
  Stopwatch watch;
  std::vector<Suggestion> suggestions = cleaner.Suggest(query);
  double ms = watch.ElapsedMillis();
  if (suggestions.empty()) {
    std::printf("no suggestions (%.2f ms)\n", ms);
    return 0;
  }
  std::printf("suggestions for \"%s\" (%.2f ms):\n", query.ToString().c_str(),
              ms);
  for (size_t i = 0; i < suggestions.size(); ++i) {
    const Suggestion& s = suggestions[i];
    std::printf("  %2zu. %-32s  results=%-5u type=%s\n", i + 1,
                s.ToString().c_str(), s.entity_count,
                s.result_type == XmlTree::kInvalidPath
                    ? "-"
                    : index.tree().PathString(s.result_type).c_str());
  }
  return 0;
}

int RunDemo() {
  std::printf("building demo corpus (5000 synthetic publications)...\n");
  DblpGenOptions gen;
  gen.num_publications = 5000;
  auto index = XmlIndex::Build(GenerateDblp(gen));
  PrintStats(*index);
  std::printf("\n");
  for (const char* q : {"clustering algoritm", "thompson algoritm"}) {
    RunSuggest(*index, q);
    std::printf("\n");
  }
  std::printf("try: xclean_cli suggest <your.xml> <query...>\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];

  if (command == "demo") return RunDemo();

  if (command == "index") {
    if (argc != 4) return Usage();
    std::unique_ptr<XmlIndex> index = OpenIndex(argv[2]);
    if (index == nullptr) return 1;
    Stopwatch watch;
    Status s = SaveIndex(*index, argv[3]);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("saved %s in %.2fs\n", argv[3], watch.ElapsedSeconds());
    return 0;
  }

  if (command == "stats") {
    if (argc != 3) return Usage();
    std::unique_ptr<XmlIndex> index = OpenIndex(argv[2]);
    if (index == nullptr) return 1;
    PrintStats(*index);
    return 0;
  }

  if (command == "suggest") {
    if (argc < 4) return Usage();
    std::unique_ptr<XmlIndex> index = OpenIndex(argv[2]);
    if (index == nullptr) return 1;
    std::vector<std::string> words;
    for (int i = 3; i < argc; ++i) words.emplace_back(argv[i]);
    return RunSuggest(*index, Join(words, " "));
  }

  return Usage();
}
