// Encyclopedia scenario: document-centric XML (the paper's INEX/Wikipedia
// side) with two twists the library supports beyond the quickstart:
//
//  - switching the entity semantics between specific-node-type and SLCA
//    (Sec. VI-B) and comparing what each suggests,
//  - the space-error extension (Sec. VI-A): "data base" vs "database".
//
//   $ ./wiki_search

#include <cstdio>
#include <string>
#include <vector>

#include "core/suggester.h"
#include "core/xclean.h"
#include "data/inex_gen.h"

namespace {

void Show(const char* header, const std::vector<xclean::Suggestion>& list) {
  std::printf("  %s\n", header);
  if (list.empty()) {
    std::printf("    (none)\n");
    return;
  }
  for (size_t i = 0; i < list.size() && i < 3; ++i) {
    std::printf("    %zu. %-32s score=%.3e results=%u\n", i + 1,
                list[i].ToString().c_str(), list[i].score,
                list[i].entity_count);
  }
}

}  // namespace

int main() {
  std::printf("generating synthetic Wikipedia-like collection...\n");
  xclean::InexGenOptions gen;
  gen.num_articles = 2000;
  xclean::XmlTree tree = xclean::GenerateInex(gen);

  xclean::IndexOptions index_options;
  index_options.fastss_max_ed = 3;
  auto index = xclean::XmlIndex::Build(std::move(tree), index_options);
  std::printf("indexed %u nodes, vocabulary %zu, max depth %u\n\n",
              index->tree().size(), index->vocabulary().size(),
              index->tree().max_depth());

  // Two cleaners sharing one index: node-type vs SLCA semantics.
  xclean::XCleanOptions node_type_options;
  node_type_options.max_ed = 2;
  xclean::XClean node_type(*index, node_type_options);

  xclean::XCleanOptions slca_options = node_type_options;
  slca_options.semantics = xclean::Semantics::kSlca;
  xclean::XClean slca(*index, slca_options);

  for (const char* q : {
           "anceint architecture",   // transposition
           "volcano geolohy",        // keyboard slip
           "reneissance sculpture",  // vowel confusion
       }) {
    std::printf("query: \"%s\"\n", q);
    xclean::Query query =
        xclean::ParseQuery(q, index->tokenizer());
    Show("node-type semantics:", node_type.Suggest(query));
    Show("SLCA semantics:", slca.Suggest(query));
    std::printf("\n");
  }

  // Space-error extension demo via the facade.
  xclean::SuggesterOptions facade_options;
  facade_options.space_tau = 1;
  xclean::InexGenOptions gen2 = gen;
  gen2.num_articles = 500;
  xclean::XCleanSuggester facade = xclean::XCleanSuggester::FromTree(
      xclean::GenerateInex(gen2), facade_options);
  std::printf("space-error extension (tau=1):\n");
  for (const char* q : {"king dom history", "lighth ouse"}) {
    std::printf("  query: \"%s\"\n", q);
    for (const xclean::Suggestion& s : facade.Suggest(q)) {
      std::printf("    -> %s (score %.3e)\n", s.ToString().c_str(), s.score);
      break;  // top suggestion only
    }
  }
  return 0;
}
